//! The paper's §IV motivation on TPC-H Q5: 648 interesting-order
//! combinations, but only a few dozen distinct plans — ~90% of classic
//! INUM's optimizer calls are redundant, which is exactly the waste PINUM
//! eliminates.
//!
//! Run with: `cargo run --release --example tpch_q5_redundancy`

use pinum::core::builder::{build_cache_inum, build_cache_pinum, BuilderOptions};
use pinum::optimizer::Optimizer;
use pinum::workload::{tpch_catalog, tpch_q5};

fn main() {
    let catalog = tpch_catalog(1.0);
    let q5 = tpch_q5(&catalog);
    let orders = q5.interesting_orders();
    println!("TPC-H Q5 joins {} tables", q5.relation_count());
    for rel in 0..q5.relation_count() as u16 {
        println!(
            "  table {:<9} has {} interesting orders",
            catalog.table(q5.table_of(rel)).name(),
            orders.orders_of(rel).len()
        );
    }
    println!(
        "interesting-order combinations: {} (the paper's 648)\n",
        orders.combination_count()
    );

    let optimizer = Optimizer::new(&catalog);
    let opts = BuilderOptions::default();
    let inum = build_cache_inum(&optimizer, &q5, &opts);
    println!(
        "classic INUM: {} optimizer calls in {:?} → {} distinct plan structures",
        inum.stats.optimizer_calls, inum.stats.wall, inum.stats.unique_plan_structures
    );
    println!(
        "  → {:.0}% of the calls returned a plan the cache already had",
        100.0 * (1.0 - inum.stats.unique_plan_structures as f64 / inum.stats.ioc_count as f64)
    );
    let pinum = build_cache_pinum(&optimizer, &q5, &opts);
    println!(
        "PINUM: {} optimizer calls in {:?} → {} cached plans ({:.1}x faster)",
        pinum.stats.optimizer_calls,
        pinum.stats.wall,
        pinum.stats.plans_cached,
        inum.stats.wall.as_secs_f64() / pinum.stats.wall.as_secs_f64()
    );
}
