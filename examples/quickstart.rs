//! Quickstart: build a small star schema, optimize a query, fill the INUM
//! plan cache with two optimizer calls (the paper's titular trick), and
//! price a few configurations without calling the optimizer again.
//!
//! Run with: `cargo run --release --example quickstart`

use pinum::advisor::candidates::generate_candidates;
use pinum::catalog::Configuration;
use pinum::core::access_costs::collect_pinum;
use pinum::core::builder::{build_cache_pinum, BuilderOptions};
use pinum::core::{CacheCostModel, Selection};
use pinum::optimizer::{Optimizer, OptimizerOptions};
use pinum::workload::star::{StarSchema, StarWorkload};

fn main() {
    // The paper's synthetic workload (§VI-A), scaled to ~1% of 10 GB.
    let schema = StarSchema::generate(42, 0.01);
    let workload = StarWorkload::generate(&schema, 7, 10);
    let optimizer = Optimizer::new(&schema.catalog);
    let query = &workload.queries[4];
    println!(
        "query {} joins {} tables, {} interesting-order combinations\n",
        query.name,
        query.relation_count(),
        query.interesting_orders().combination_count()
    );

    // Plain optimizer call: the plan without any indexes.
    let planned = optimizer.optimize(
        query,
        &Configuration::empty(),
        &OptimizerOptions::standard(),
    );
    println!(
        "plan without indexes (cost {:.0}):",
        planned.best_cost.total
    );
    println!("{}", planned.plan.explain());

    // Fill the whole INUM plan cache with two calls (paper §V-D).
    let built = build_cache_pinum(&optimizer, query, &BuilderOptions::default());
    println!(
        "PINUM cache: {} plans for {} IOCs from {} optimizer calls in {:?}",
        built.stats.plans_cached,
        built.stats.ioc_count,
        built.stats.optimizer_calls,
        built.stats.wall
    );

    // Price every candidate index with one more call (paper §V-C).
    let pool = generate_candidates(&schema.catalog, std::slice::from_ref(query));
    let (access, astats) = collect_pinum(&optimizer, query, &pool);
    println!(
        "access costs for {} candidates from {} call(s)\n",
        pool.len(),
        astats.optimizer_calls
    );

    // Now any configuration is priced in microseconds.
    let model = CacheCostModel::new(&built.cache, &access);
    let empty = Selection::empty(pool.len());
    let full = Selection::full(pool.len());
    println!(
        "estimated cost with no indexes:  {:.0}",
        model.estimate(&empty).unwrap().cost
    );
    println!(
        "estimated cost with all {} candidates: {:.0}",
        pool.len(),
        model.estimate(&full).unwrap().cost
    );
}
