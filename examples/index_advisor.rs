//! The paper's end-to-end use case (§V-E, Fig. 6/7): run the index
//! advisor over the ten-query star workload with a disk budget and report
//! per-query improvements.
//!
//! Run with: `cargo run --release --example index_advisor [budget-MB]`

use pinum::advisor::tool::{advise, AdvisorOptions};
use pinum::workload::star::{StarSchema, StarWorkload};

fn main() {
    let budget_mb: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(512);
    // A 10%-scale database keeps this example snappy.
    let schema = StarSchema::generate(42, 0.1);
    let workload = StarWorkload::generate(&schema, 7, 10);
    println!(
        "database: {:.2} GB, {} queries, budget {budget_mb} MB\n",
        schema.total_bytes() as f64 / (1024.0 * 1024.0 * 1024.0),
        workload.queries.len()
    );

    let opts = AdvisorOptions {
        budget_bytes: budget_mb * 1024 * 1024,
        ..AdvisorOptions::paper_defaults()
    };
    let advice = advise(&schema.catalog, &workload.queries, &opts);

    println!(
        "{:<6} {:>14} {:>14} {:>12}",
        "query", "original", "with indexes", "improvement"
    );
    for o in &advice.per_query {
        println!(
            "{:<6} {:>14.0} {:>14.0} {:>11.0}%",
            o.name,
            o.original_cost,
            o.final_cost,
            o.improvement() * 100.0
        );
    }
    println!("\nsuggested indexes:");
    for ix in advice.selected_indexes() {
        println!(
            "  {} ({:.1} MB)",
            ix.name(),
            ix.size().total_bytes() as f64 / (1024.0 * 1024.0)
        );
    }
    println!(
        "\naverage improvement {:.0}% | model built with {} optimizer calls in {:?}",
        advice.average_improvement() * 100.0,
        advice.model_build_calls,
        advice.model_build_time
    );
}
