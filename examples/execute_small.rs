//! End-to-end execution: generate a small database matching the catalog
//! statistics, run the advisor, and *execute* a query's plans before and
//! after tuning with the mini engine — demonstrating the plans are
//! result-equivalent while doing very different amounts of work.
//!
//! Run with: `cargo run --release --example execute_small`

use pinum::advisor::tool::{advise, AdvisorOptions};
use pinum::catalog::Configuration;
use pinum::engine::{execute, Database};
use pinum::optimizer::{Optimizer, OptimizerOptions};
use pinum::workload::star::{StarSchema, StarWorkload};

fn main() {
    let schema = StarSchema::generate(42, 0.001); // ~25k fact rows
    let workload = StarWorkload::generate(&schema, 7, 6);
    let db = Database::generate(&schema.catalog, 99);
    println!(
        "generated {} rows across {} tables\n",
        db.total_rows(),
        schema.catalog.table_count()
    );

    let advice = advise(
        &schema.catalog,
        &workload.queries,
        &AdvisorOptions {
            budget_bytes: 8 * 1024 * 1024,
            ..AdvisorOptions::paper_defaults()
        },
    );
    let (tuned_config, _) = advice.pool.configuration(&advice.greedy.selection);
    println!("advisor picked {} indexes\n", advice.greedy.picked.len());

    let optimizer = Optimizer::new(&schema.catalog);
    for query in workload.queries.iter().take(3) {
        let before = optimizer.optimize(
            query,
            &Configuration::empty(),
            &OptimizerOptions::standard(),
        );
        let after = optimizer.optimize(query, &tuned_config, &OptimizerOptions::standard());
        let out_before = execute(&schema.catalog, query, &db, &before.plan);
        let out_after = execute(&schema.catalog, query, &db, &after.plan);
        let mut a = out_before.project(&schema.catalog, query);
        let mut b = out_after.project(&schema.catalog, query);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "tuned plan must return identical rows");
        println!(
            "{}: {} rows | est cost {:>9.0} → {:>9.0} | rows scanned {:>8} → {:>8}",
            query.name,
            out_before.rows.len(),
            before.best_cost.total,
            after.best_cost.total,
            out_before.stats.rows_scanned,
            out_after.stats.rows_scanned,
        );
    }
    println!("\nall tuned plans returned identical results ✓");
}
