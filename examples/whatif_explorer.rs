//! What-if exploration: compare the optimizer's plan and cost across
//! hand-picked hypothetical configurations for one query, and check the
//! INUM cache tracks the optimizer (paper §VI-B/C in miniature).
//!
//! Run with: `cargo run --release --example whatif_explorer`

use pinum::catalog::{Configuration, Index};
use pinum::core::access_costs::collect_pinum;
use pinum::core::builder::{build_cache_pinum, BuilderOptions};
use pinum::core::{CacheCostModel, CandidatePool, Selection};
use pinum::optimizer::{Optimizer, OptimizerOptions};
use pinum::workload::star::{StarSchema, StarWorkload};

fn main() {
    let schema = StarSchema::generate(42, 0.02);
    let workload = StarWorkload::generate(&schema, 7, 10);
    let optimizer = Optimizer::new(&schema.catalog);
    let query = &workload.queries[2];
    let fact = schema.catalog.table(schema.fact);

    // Three configurations of increasing ambition on the fact table.
    let filter_col = query.filters[0].column;
    let referenced = query.referenced_columns(0);
    let mut covering_keys = vec![filter_col];
    covering_keys.extend(referenced.iter().copied().filter(|&c| c != filter_col));
    let configs: Vec<(&str, Vec<Index>)> = vec![
        ("no indexes", vec![]),
        (
            "single-column filter index",
            vec![Index::hypothetical(fact, vec![filter_col], false)],
        ),
        (
            "covering index",
            vec![Index::hypothetical(fact, covering_keys.clone(), false)],
        ),
    ];

    // Build the cache once; price each configuration against it too.
    let built = build_cache_pinum(&optimizer, query, &BuilderOptions::default());
    let pool = CandidatePool::from_indexes(vec![
        Index::hypothetical(fact, vec![filter_col], false),
        Index::hypothetical(fact, covering_keys, false),
    ]);
    let (access, _) = collect_pinum(&optimizer, query, &pool);
    let model = CacheCostModel::new(&built.cache, &access);

    for (i, (name, indexes)) in configs.into_iter().enumerate() {
        let config = Configuration::new(indexes);
        let planned = optimizer.optimize(query, &config, &OptimizerOptions::standard());
        let sel = match i {
            0 => Selection::empty(pool.len()),
            1 => Selection::from_ids(pool.len(), &[0]),
            _ => Selection::from_ids(pool.len(), &[1]),
        };
        let est = model.estimate(&sel).unwrap();
        println!("=== {name}");
        println!(
            "optimizer cost {:>12.0} | cache estimate {:>12.0} | error {:.2}%",
            planned.best_cost.total,
            est.cost,
            (est.cost - planned.best_cost.total).abs() / planned.best_cost.total * 100.0
        );
        println!("{}", planned.plan.explain());
    }
}
