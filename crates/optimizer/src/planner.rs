//! The top-level planner: orchestrates preprocessing, access-path
//! collection, join search and grouping, and exports the PINUM payloads.

use crate::access::{collect_access_paths, AccessCostEntry};
use crate::addpath::{AddPathStats, PathList, PruneMode};
use crate::grouping::finish_paths;
use crate::joinsearch::{JoinSearch, JoinSearchOptions};
use crate::path::PathArena;
use crate::plan::{build_plan, PlanNode};
use crate::preprocess::PlannerInfo;
use pinum_catalog::{Catalog, Configuration};
use pinum_cost::{Cost, CostParams};
use pinum_query::{InterestingOrders, Ioc, Query};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Optimizer switches, including the three PINUM hooks (§V).
#[derive(Debug, Clone, Copy)]
pub struct OptimizerOptions {
    /// PostgreSQL `enable_nestloop`; PINUM needs NL joins *completely
    /// absent* when off (§V-B).
    pub enable_nestloop: bool,
    /// §V-C hook: report the access cost of **every** index, not just the
    /// cheapest per interesting order.
    pub keep_all_access_paths: bool,
    /// §V-D hook: retain and export one optimal plan per interesting-order
    /// combination (switches the join planner to subset-cost pruning).
    pub export_ioc_plans: bool,
    /// Consider bushy join trees.
    pub enable_bushy: bool,
    /// Apply the §V-D subset-cost pruning sweeps in export mode (on by
    /// default; the ablation experiment turns it off to measure what the
    /// pruning buys).
    pub pinum_subset_pruning: bool,
}

impl Default for OptimizerOptions {
    fn default() -> Self {
        Self {
            enable_nestloop: true,
            keep_all_access_paths: false,
            export_ioc_plans: false,
            enable_bushy: true,
            pinum_subset_pruning: true,
        }
    }
}

impl OptimizerOptions {
    /// The configuration of a classic (unmodified-optimizer) call.
    pub fn standard() -> Self {
        Self::default()
    }

    /// The configuration of a PINUM cache-filling call (§V-D).
    pub fn pinum_export() -> Self {
        Self {
            export_ioc_plans: true,
            keep_all_access_paths: true,
            ..Self::default()
        }
    }
}

/// Counters and timing of one optimize call.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlannerStats {
    pub elapsed: Duration,
    pub paths_added: usize,
    pub paths_rejected: usize,
    pub paths_displaced: usize,
    pub joinrels_planned: usize,
    pub final_paths: usize,
    pub arena_size: usize,
}

/// One cached-plan payload exported by the §V-D hook: a plan's interesting
/// order requirements plus its cost as a linear function of per-table
/// access costs.
#[derive(Debug, Clone)]
pub struct ExportedPlan {
    /// Leaf interesting-order combination the plan requires.
    pub ioc: Ioc,
    /// Constant ("internal") cost — join/sort/aggregation work.
    pub internal: f64,
    /// Per-relation coefficients on the standalone access costs (1 for
    /// hash/merge inputs, the outer cardinality for re-scanned nested-loop
    /// inners).
    pub coefs: Vec<f64>,
    /// Per-relation coefficients on the *per-probe* access costs — the
    /// outer cardinality for parameterized nested-loop inner index scans.
    pub probe_coefs: Vec<f64>,
    /// True if the plan contains a nested-loop join (INUM caches these
    /// separately, §V-D).
    pub uses_nlj: bool,
    /// Estimated output rows.
    pub rows: f64,
    /// The plan's total cost at build time (= `internal + Σ coef·access`
    /// under the build configuration) — kept for validation.
    pub total_at_build: f64,
    /// Compact operator summary, e.g. `HJ(ix(0),seq(1))`.
    pub description: String,
}

impl ExportedPlan {
    /// Evaluates the cached plan under new per-relation standalone and
    /// per-probe access costs.
    pub fn evaluate(&self, access: &[f64], probes: &[f64]) -> f64 {
        debug_assert_eq!(access.len(), self.coefs.len());
        self.internal
            + self
                .coefs
                .iter()
                .zip(access)
                .map(|(c, a)| c * a)
                .sum::<f64>()
            + self
                .probe_coefs
                .iter()
                .zip(probes)
                .map(|(c, a)| c * a)
                .sum::<f64>()
    }
}

/// The result of one optimize call.
#[derive(Debug)]
pub struct PlannedQuery {
    /// The winning plan.
    pub plan: PlanNode,
    /// Its cost.
    pub best_cost: Cost,
    /// Its estimated output rows.
    pub best_rows: f64,
    /// The winning plan in exported (cache-ready) form — what classic INUM
    /// obtains by "parsing the generated plan" of each per-IOC call.
    pub best_export: ExportedPlan,
    /// §V-D payload: one optimal plan per retained IOC (empty unless
    /// `export_ioc_plans`).
    pub exported: Vec<ExportedPlan>,
    /// §V-C payload: all access costs (empty unless
    /// `keep_all_access_paths`).
    pub access_costs: Vec<AccessCostEntry>,
    /// The query's interesting orders (needed to interpret [`Ioc`]s).
    pub orders: InterestingOrders,
    pub stats: PlannerStats,
}

/// The bottom-up query optimizer.
///
/// One instance per catalog; every [`Optimizer::optimize`] call is
/// independent and takes the what-if [`Configuration`] to overlay.
pub struct Optimizer<'a> {
    catalog: &'a Catalog,
    params: CostParams,
}

impl<'a> Optimizer<'a> {
    pub fn new(catalog: &'a Catalog) -> Self {
        Self {
            catalog,
            params: CostParams::default(),
        }
    }

    pub fn with_params(catalog: &'a Catalog, params: CostParams) -> Self {
        Self { catalog, params }
    }

    pub fn catalog(&self) -> &'a Catalog {
        self.catalog
    }

    pub fn params(&self) -> &CostParams {
        &self.params
    }

    /// Workload-level batch hook (§V-C taken one level up): prices every
    /// access arm of one relation *template* — a `(table, filter shape)`
    /// signature shared by all queries whose relations match it — against
    /// `config`, in a single optimizer call.
    ///
    /// Each arm carries both covering variants and its leading key column,
    /// so the caller can fan the shared arms out to every member query
    /// (applying that member's covering test and interesting-order
    /// mapping) without further calls. `pinum_core`'s `WorkloadCollector`
    /// is the consumer: one `price_template` call per distinct template
    /// shape replaces one keep-all [`Self::optimize`] call per query.
    pub fn price_template(
        &self,
        template: &pinum_query::RelTemplate,
        config: &Configuration,
    ) -> Vec<crate::access::TemplateArm> {
        crate::access::collect_template_arms(self.catalog, &self.params, template, config)
    }

    /// Optimizes `query` under `config`.
    pub fn optimize(
        &self,
        query: &Query,
        config: &Configuration,
        options: &OptimizerOptions,
    ) -> PlannedQuery {
        let start = Instant::now();
        let info = PlannerInfo::new(self.catalog, query, config);
        let prune_mode = if options.export_ioc_plans {
            PruneMode::KeepIoc
        } else {
            PruneMode::Standard
        };

        // --- Access Path Collector. ---
        let mut arena = PathArena::new();
        let mut add_stats = AddPathStats::default();
        let mut access_costs = Vec::new();
        let mut base_lists = Vec::with_capacity(info.relation_count());
        for rel in 0..info.relation_count() as u16 {
            let acc = collect_access_paths(&info, &self.params, rel, options.keep_all_access_paths);
            access_costs.extend(acc.entries);
            let mut list = PathList::new();
            for p in acc.paths {
                list.add_path(&mut arena, p, prune_mode, &mut add_stats);
            }
            if prune_mode == PruneMode::KeepIoc && options.pinum_subset_pruning {
                list.subset_cost_sweep(&arena, &mut add_stats);
            }
            base_lists.push(list);
        }

        // --- Join Planner. ---
        let search_opts = JoinSearchOptions {
            enable_nestloop: options.enable_nestloop,
            enable_bushy: options.enable_bushy,
            prune_mode,
            subset_pruning: options.pinum_subset_pruning,
        };
        let search = JoinSearch::new(&info, &self.params, search_opts);
        let (top, join_stats, joinrels) = search.run(&mut arena, base_lists);
        add_stats.added += join_stats.added;
        add_stats.rejected += join_stats.rejected;
        add_stats.displaced += join_stats.displaced;

        // --- Grouping Planner. ---
        let mut finished = finish_paths(
            &mut arena,
            &info,
            &self.params,
            top,
            prune_mode,
            &mut add_stats,
        );
        if prune_mode == PruneMode::KeepIoc && options.pinum_subset_pruning {
            finished.subset_cost_sweep(&arena, &mut add_stats);
        }
        assert!(!finished.is_empty(), "no plan produced for {}", query.name);

        // --- Winner + exports. ---
        let best_id = finished.cheapest_total(&arena).expect("non-empty");
        let best = arena.get(best_id);
        let best_cost = best.cost;
        let best_rows = best.rows;
        let best_export = ExportedPlan {
            ioc: best.leaf_ioc,
            internal: best.linear.c0,
            coefs: best.linear.coefs.clone(),
            probe_coefs: best.linear.probe_coefs.clone(),
            uses_nlj: best.uses_nestloop(&arena),
            rows: best.rows,
            total_at_build: best.cost.total,
            description: arena.describe(best_id),
        };
        let plan = build_plan(&arena, &info, best_id);

        let exported = if options.export_ioc_plans {
            // One cheapest plan per retained leaf IOC.
            let mut per_ioc: HashMap<Ioc, crate::path::PathId> = HashMap::new();
            for &id in finished.ids() {
                let p = arena.get(id);
                per_ioc
                    .entry(p.leaf_ioc)
                    .and_modify(|cur| {
                        if arena.get(*cur).cost.total > p.cost.total {
                            *cur = id;
                        }
                    })
                    .or_insert(id);
            }
            let mut plans: Vec<ExportedPlan> = per_ioc
                .into_values()
                .map(|id| {
                    let p = arena.get(id);
                    ExportedPlan {
                        ioc: p.leaf_ioc,
                        internal: p.linear.c0,
                        coefs: p.linear.coefs.clone(),
                        probe_coefs: p.linear.probe_coefs.clone(),
                        uses_nlj: p.uses_nestloop(&arena),
                        rows: p.rows,
                        total_at_build: p.cost.total,
                        description: arena.describe(id),
                    }
                })
                .collect();
            plans.sort_by_key(|p| p.ioc);
            plans
        } else {
            Vec::new()
        };

        let stats = PlannerStats {
            elapsed: start.elapsed(),
            paths_added: add_stats.added,
            paths_rejected: add_stats.rejected,
            paths_displaced: add_stats.displaced,
            joinrels_planned: joinrels,
            final_paths: finished.len(),
            arena_size: arena.len(),
        };

        PlannedQuery {
            plan,
            best_cost,
            best_rows,
            best_export,
            exported,
            access_costs,
            orders: info.orders.clone(),
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinum_catalog::{Column, ColumnType, ConfigurationBuilder, Table};
    use pinum_query::QueryBuilder;

    fn star_catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.add_table(Table::new(
            "fact",
            1_000_000,
            vec![
                Column::new("d1", ColumnType::Int8).with_ndv(10_000),
                Column::new("d2", ColumnType::Int8).with_ndv(1_000),
                Column::new("m", ColumnType::Int4).with_ndv(10_000),
            ],
        ));
        cat.add_table(Table::new(
            "dim1",
            10_000,
            vec![
                Column::new("k", ColumnType::Int8).with_ndv(10_000),
                Column::new("a", ColumnType::Int4).with_ndv(100),
            ],
        ));
        cat.add_table(Table::new(
            "dim2",
            1_000,
            vec![
                Column::new("k", ColumnType::Int8).with_ndv(1_000),
                Column::new("b", ColumnType::Int4).with_ndv(20),
            ],
        ));
        cat
    }

    fn star_query(cat: &Catalog) -> Query {
        QueryBuilder::new("q", cat)
            .table("fact")
            .table("dim1")
            .table("dim2")
            .join(("fact", "d1"), ("dim1", "k"))
            .join(("fact", "d2"), ("dim2", "k"))
            .filter_range(("fact", "m"), 0.0, 100.0) // 1 %
            .select(("dim1", "a"))
            .order_by(("dim2", "b"))
            .build()
    }

    #[test]
    fn standard_call_returns_single_best_plan() {
        let cat = star_catalog();
        let q = star_query(&cat);
        let opt = Optimizer::new(&cat);
        let planned = opt.optimize(&q, &Configuration::empty(), &OptimizerOptions::standard());
        assert!(planned.exported.is_empty());
        assert!(planned.access_costs.is_empty());
        assert!(planned.best_cost.total > 0.0);
        assert!(planned.plan.node_count() >= 5);
    }

    #[test]
    fn pinum_call_exports_ioc_plans_and_access_costs() {
        let cat = star_catalog();
        let q = star_query(&cat);
        // Cover every interesting order, as the PINUM builder does.
        let cfg = ConfigurationBuilder::new()
            .whatif_index(&cat, cat.table_id("fact").unwrap(), vec![0])
            .whatif_index(&cat, cat.table_id("fact").unwrap(), vec![1])
            .whatif_index(&cat, cat.table_id("dim1").unwrap(), vec![0])
            .whatif_index(&cat, cat.table_id("dim2").unwrap(), vec![0])
            .whatif_index(&cat, cat.table_id("dim2").unwrap(), vec![1])
            .build();
        let opt = Optimizer::new(&cat);
        let planned = opt.optimize(&q, &cfg, &OptimizerOptions::pinum_export());
        assert!(!planned.exported.is_empty());
        assert!(planned.exported.len() > 1, "should retain multiple IOCs");
        // All access costs reported: 1 seq + indexes per relation.
        assert_eq!(
            planned.access_costs.len(),
            3 /* seq scans */ + 5 /* config indexes */
        );
        // Exported plans are consistent: internal + coef·access == total.
        for e in &planned.exported {
            // `internal` may go slightly negative for NLJ plans: probe
            // slots are normalized to the reference loop count, and the
            // residual lands in the constant. It must stay a bounded
            // fraction of the build-time total.
            assert!(
                e.internal > -0.5 * e.total_at_build,
                "internal cost implausibly negative: {e:?}"
            );
            assert!(e.total_at_build > 0.0);
        }
        // The best plan cost matches a standard call on the same config.
        let std = opt.optimize(&q, &cfg, &OptimizerOptions::standard());
        assert!(
            (std.best_cost.total - planned.best_cost.total).abs() / std.best_cost.total < 1e-9,
            "PINUM pruning changed the winner: {} vs {}",
            std.best_cost.total,
            planned.best_cost.total
        );
    }

    #[test]
    fn nestloop_disabled_yields_nlj_free_plan() {
        let cat = star_catalog();
        let q = star_query(&cat);
        let opt = Optimizer::new(&cat);
        let mut opts = OptimizerOptions::pinum_export();
        opts.enable_nestloop = false;
        let planned = opt.optimize(&q, &Configuration::empty(), &opts);
        assert!(!planned.plan.uses_nestloop());
        for e in &planned.exported {
            assert!(!e.uses_nlj, "exported NLJ plan with NL disabled: {e:?}");
        }
    }

    #[test]
    fn single_table_query_plans() {
        let cat = star_catalog();
        let q = QueryBuilder::new("q1", &cat)
            .table("dim1")
            .filter_range(("dim1", "a"), 0.0, 10.0)
            .select(("dim1", "k"))
            .order_by(("dim1", "k"))
            .build();
        let opt = Optimizer::new(&cat);
        let planned = opt.optimize(&q, &Configuration::empty(), &OptimizerOptions::standard());
        assert!(planned.best_cost.total > 0.0);
        let text = planned.plan.explain();
        assert!(text.contains("Sort"), "{text}");
    }
}
