//! `add_path`: path-list maintenance with pruning.
//!
//! * [`PruneMode::Standard`] mirrors PostgreSQL: a path survives unless an
//!   existing path is at least as good on *total cost*, *startup cost* and
//!   *output ordering*.
//! * [`PruneMode::KeepIoc`] is the PINUM modification (§V-D): one optimal
//!   plan is retained per *(leaf interesting-order combination, output
//!   ordering)*, with the paper's subset-cost rule — "If plans A and B
//!   provide interesting orders in set SA and SB, where SA ⊆ SB and
//!   Cost(SA) < Cost(SB), then we remove Plan B" — applied as a sweep when
//!   a join relation is complete ([`PathList::subset_cost_sweep`]). The
//!   split keeps inserts O(1) (hash-keyed) while the sweep "reduces the
//!   search space of the join planner, while preserving all useful plans".
//!
//! Keeping only the cheapest *total* per key in KeepIoc mode is lossless
//! for final plan totals: every parent operator's total cost in this cost
//! model is a function of child totals only (startup is pass-through
//! bookkeeping), so a path that loses on total can never win later.

use crate::path::{Path, PathArena, PathId};
use crate::preprocess::EcId;
use std::collections::HashMap;

/// Pruning discipline for a [`PathList`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PruneMode {
    /// PostgreSQL behaviour: cheapest per (startup, total, pathkeys).
    Standard,
    /// PINUM §V-D: retain per leaf interesting-order combination.
    KeepIoc,
}

/// Statistics about pruning decisions (reported in `PlannerStats`).
#[derive(Debug, Default, Clone, Copy)]
pub struct AddPathStats {
    pub added: usize,
    pub rejected: usize,
    pub displaced: usize,
}

/// A set of surviving paths for one relation set.
#[derive(Debug, Default)]
pub struct PathList {
    ids: Vec<PathId>,
    /// KeepIoc fast index: (ioc, pathkeys) → slot in `ids`.
    fast: HashMap<(u64, Vec<EcId>), usize>,
}

/// Numeric slack: costs within this relative tolerance count as equal, so
/// tie-breaking is deterministic (first-added wins).
const FUZZ: f64 = 1.0 + 1e-10;

/// `a`'s pathkeys subsume `b`'s (b's keys are a prefix of a's).
fn pathkeys_subsume(a: &Path, b: &Path) -> bool {
    b.pathkeys.len() <= a.pathkeys.len() && a.pathkeys[..b.pathkeys.len()] == b.pathkeys[..]
}

/// Full PostgreSQL-style dominance (Standard mode).
fn dominates_standard(a: &Path, b: &Path) -> bool {
    a.cost.total <= b.cost.total * FUZZ
        && a.cost.startup <= b.cost.startup * FUZZ
        && pathkeys_subsume(a, b)
}

impl PathList {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn ids(&self) -> &[PathId] {
        &self.ids
    }

    pub fn len(&self) -> usize {
        self.ids.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Considers `candidate` for membership; returns its id if it survived.
    pub fn add_path(
        &mut self,
        arena: &mut PathArena,
        candidate: Path,
        mode: PruneMode,
        stats: &mut AddPathStats,
    ) -> Option<PathId> {
        match mode {
            PruneMode::Standard => self.add_path_standard(arena, candidate, stats),
            PruneMode::KeepIoc => self.add_path_keepioc(arena, candidate, stats),
        }
    }

    fn add_path_standard(
        &mut self,
        arena: &mut PathArena,
        candidate: Path,
        stats: &mut AddPathStats,
    ) -> Option<PathId> {
        for &id in &self.ids {
            if dominates_standard(arena.get(id), &candidate) {
                stats.rejected += 1;
                return None;
            }
        }
        let before = self.ids.len();
        self.ids
            .retain(|&id| !dominates_standard(&candidate, arena.get(id)));
        stats.displaced += before - self.ids.len();
        let id = arena.add(candidate);
        self.ids.push(id);
        stats.added += 1;
        Some(id)
    }

    /// O(1) retention per (ioc, pathkeys): keep the cheapest total.
    fn add_path_keepioc(
        &mut self,
        arena: &mut PathArena,
        candidate: Path,
        stats: &mut AddPathStats,
    ) -> Option<PathId> {
        let key = (candidate.leaf_ioc.raw(), candidate.pathkeys.clone());
        if let Some(&pos) = self.fast.get(&key) {
            let existing = arena.get(self.ids[pos]);
            if candidate.cost.total * FUZZ < existing.cost.total {
                let id = arena.add(candidate);
                self.ids[pos] = id;
                stats.displaced += 1;
                stats.added += 1;
                Some(id)
            } else {
                stats.rejected += 1;
                None
            }
        } else {
            let id = arena.add(candidate);
            self.fast.insert(key, self.ids.len());
            self.ids.push(id);
            stats.added += 1;
            Some(id)
        }
    }

    /// The §V-D subset-cost pruning pass: drops every path for which a
    /// cheaper path with a subset of its interesting-order requirements
    /// (and an output ordering subsuming its own) exists. Called once per
    /// completed join relation in KeepIoc mode.
    pub fn subset_cost_sweep(&mut self, arena: &PathArena, stats: &mut AddPathStats) {
        if self.ids.len() <= 1 {
            return;
        }
        let mut order = self.ids.clone();
        order.sort_by(|a, b| {
            arena
                .get(*a)
                .cost
                .total
                .partial_cmp(&arena.get(*b).cost.total)
                .unwrap()
                .then(a.0.cmp(&b.0))
        });
        let mut kept: Vec<PathId> = Vec::with_capacity(order.len());
        'candidates: for id in order {
            let p = arena.get(id);
            for &k in &kept {
                let a = arena.get(k);
                // Kept paths are no costlier (total) than p by
                // construction; like PostgreSQL's add_path, a better
                // startup cost or stronger ordering still saves p.
                if a.leaf_ioc.is_subset_of(p.leaf_ioc)
                    && pathkeys_subsume(a, p)
                    && a.cost.startup <= p.cost.startup * FUZZ
                {
                    stats.rejected += 1;
                    continue 'candidates;
                }
            }
            kept.push(id);
        }
        self.ids = kept;
        self.fast.clear();
        // Rebuild the fast index so later inserts (e.g. the grouping
        // planner's finished list) stay consistent.
        for (pos, &id) in self.ids.iter().enumerate() {
            let p = arena.get(id);
            self.fast
                .insert((p.leaf_ioc.raw(), p.pathkeys.clone()), pos);
        }
    }

    /// The cheapest-total path.
    pub fn cheapest_total(&self, arena: &PathArena) -> Option<PathId> {
        self.ids.iter().copied().min_by(|a, b| {
            arena
                .get(*a)
                .cost
                .total
                .partial_cmp(&arena.get(*b).cost.total)
                .unwrap()
                .then(a.0.cmp(&b.0))
        })
    }

    /// The cheapest path whose pathkeys satisfy `required` (prefix match).
    pub fn cheapest_with_order(&self, arena: &PathArena, required: &[EcId]) -> Option<PathId> {
        self.ids
            .iter()
            .copied()
            .filter(|id| arena.get(*id).provides_order(required))
            .min_by(|a, b| {
                arena
                    .get(*a)
                    .cost
                    .total
                    .partial_cmp(&arena.get(*b).cost.total)
                    .unwrap()
                    .then(a.0.cmp(&b.0))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::{LinearCost, PathKind};
    use crate::relset::RelSet;
    use pinum_cost::Cost;
    use pinum_query::Ioc;

    fn mk(total: f64, startup: f64, keys: Vec<EcId>, ioc: Ioc) -> Path {
        Path {
            kind: PathKind::SeqScan { rel: 0 },
            rels: RelSet::single(0),
            rows: 1.0,
            cost: Cost::new(startup, total),
            rescan: Cost::new(startup, total),
            pathkeys: keys,
            leaf_ioc: ioc,
            linear: LinearCost::leaf(1, 0),
            leaf_access: vec![total],
            probe_access: vec![0.0],
        }
    }

    #[test]
    fn standard_keeps_cheapest_per_order() {
        let mut arena = PathArena::new();
        let mut list = PathList::new();
        let mut st = AddPathStats::default();
        let a = list.add_path(
            &mut arena,
            mk(10.0, 0.0, vec![], Ioc::NONE),
            PruneMode::Standard,
            &mut st,
        );
        assert!(a.is_some());
        // More expensive unordered path: rejected.
        assert!(list
            .add_path(
                &mut arena,
                mk(20.0, 0.0, vec![], Ioc::NONE),
                PruneMode::Standard,
                &mut st
            )
            .is_none());
        // More expensive but ordered: kept.
        assert!(list
            .add_path(
                &mut arena,
                mk(20.0, 0.0, vec![EcId(0)], Ioc::NONE),
                PruneMode::Standard,
                &mut st
            )
            .is_some());
        // Cheaper ordered path displaces both (it subsumes unordered too).
        assert!(list
            .add_path(
                &mut arena,
                mk(5.0, 0.0, vec![EcId(0)], Ioc::NONE),
                PruneMode::Standard,
                &mut st
            )
            .is_some());
        assert_eq!(list.len(), 1);
        assert_eq!(st.displaced, 2);
    }

    #[test]
    fn startup_cost_is_a_separate_dimension_in_standard() {
        let mut arena = PathArena::new();
        let mut list = PathList::new();
        let mut st = AddPathStats::default();
        list.add_path(
            &mut arena,
            mk(10.0, 5.0, vec![], Ioc::NONE),
            PruneMode::Standard,
            &mut st,
        );
        // Worse total but better startup: kept.
        assert!(list
            .add_path(
                &mut arena,
                mk(12.0, 0.0, vec![], Ioc::NONE),
                PruneMode::Standard,
                &mut st
            )
            .is_some());
        assert_eq!(list.len(), 2);
    }

    #[test]
    fn keepioc_retains_per_combination() {
        let mut arena = PathArena::new();
        let mut list = PathList::new();
        let mut st = AddPathStats::default();
        let phi = Ioc::NONE;
        let a = Ioc::NONE.with_order(0, 0);
        list.add_path(
            &mut arena,
            mk(10.0, 0.0, vec![], phi),
            PruneMode::KeepIoc,
            &mut st,
        );
        // A cheaper plan requiring order A coexists with the Φ plan.
        assert!(list
            .add_path(
                &mut arena,
                mk(5.0, 0.0, vec![], a),
                PruneMode::KeepIoc,
                &mut st
            )
            .is_some());
        assert_eq!(list.len(), 2);
        // Same (ioc, pathkeys) key, worse total: rejected immediately.
        assert!(list
            .add_path(
                &mut arena,
                mk(7.0, 0.0, vec![], a),
                PruneMode::KeepIoc,
                &mut st
            )
            .is_none());
        // Same key, better total: replaces in place.
        assert!(list
            .add_path(
                &mut arena,
                mk(3.0, 0.0, vec![], a),
                PruneMode::KeepIoc,
                &mut st
            )
            .is_some());
        assert_eq!(list.len(), 2);
    }

    #[test]
    fn sweep_applies_subset_cost_rule() {
        // Paper §V-D: SA ⊆ SB and cost(A) < cost(B) ⇒ drop B.
        let mut arena = PathArena::new();
        let mut list = PathList::new();
        let mut st = AddPathStats::default();
        let a = Ioc::NONE.with_order(0, 0);
        let ab = a.with_order(1, 0);
        list.add_path(
            &mut arena,
            mk(10.0, 0.0, vec![], a),
            PruneMode::KeepIoc,
            &mut st,
        );
        // Requires more orders *and* costs more: survives insert …
        assert!(list
            .add_path(
                &mut arena,
                mk(15.0, 0.0, vec![], ab),
                PruneMode::KeepIoc,
                &mut st
            )
            .is_some());
        assert_eq!(list.len(), 2);
        // … but the sweep removes it.
        list.subset_cost_sweep(&arena, &mut st);
        assert_eq!(list.len(), 1);
        // A cheaper superset-requirement plan survives the sweep, along
        // with the subset plan.
        list.add_path(
            &mut arena,
            mk(5.0, 0.0, vec![], ab),
            PruneMode::KeepIoc,
            &mut st,
        );
        list.subset_cost_sweep(&arena, &mut st);
        assert_eq!(list.len(), 2);
    }

    #[test]
    fn sweep_respects_pathkey_subsumption() {
        let mut arena = PathArena::new();
        let mut list = PathList::new();
        let mut st = AddPathStats::default();
        let phi = Ioc::NONE;
        // Cheap unordered plan + costlier ordered plan with same (empty)
        // requirements: the ordered one must survive (its ordering may be
        // needed upstream).
        list.add_path(
            &mut arena,
            mk(10.0, 0.0, vec![], phi),
            PruneMode::KeepIoc,
            &mut st,
        );
        list.add_path(
            &mut arena,
            mk(15.0, 0.0, vec![EcId(1)], phi),
            PruneMode::KeepIoc,
            &mut st,
        );
        list.subset_cost_sweep(&arena, &mut st);
        assert_eq!(list.len(), 2);
        // But a costlier *less-ordered* plan is swept: [1,2] at 12 beats
        // [1] at 20.
        list.add_path(
            &mut arena,
            mk(12.0, 0.0, vec![EcId(1), EcId(2)], phi),
            PruneMode::KeepIoc,
            &mut st,
        );
        list.add_path(
            &mut arena,
            mk(20.0, 0.0, vec![EcId(1)], phi),
            PruneMode::KeepIoc,
            &mut st,
        );
        // The 15-cost [1] plan is now dominated by the 12-cost [1,2] plan.
        list.subset_cost_sweep(&arena, &mut st);
        let totals: Vec<f64> = list
            .ids()
            .iter()
            .map(|&i| arena.get(i).cost.total)
            .collect();
        assert!(totals.contains(&10.0));
        assert!(totals.contains(&12.0));
        assert!(!totals.contains(&15.0));
        assert!(!totals.contains(&20.0));
    }

    #[test]
    fn cheapest_queries() {
        let mut arena = PathArena::new();
        let mut list = PathList::new();
        let mut st = AddPathStats::default();
        list.add_path(
            &mut arena,
            mk(10.0, 0.0, vec![], Ioc::NONE),
            PruneMode::Standard,
            &mut st,
        );
        let ordered = list
            .add_path(
                &mut arena,
                mk(20.0, 0.0, vec![EcId(3)], Ioc::NONE),
                PruneMode::Standard,
                &mut st,
            )
            .unwrap();
        let cheapest = list.cheapest_total(&arena).unwrap();
        assert_eq!(arena.get(cheapest).cost.total, 10.0);
        assert_eq!(list.cheapest_with_order(&arena, &[EcId(3)]), Some(ordered));
        assert!(list.cheapest_with_order(&arena, &[EcId(9)]).is_none());
    }
}
