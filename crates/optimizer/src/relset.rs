//! Bitsets over a query's relations, the DP's subset currency.

use pinum_query::RelIdx;
use std::fmt;

/// A set of relations of one query (bit `r` = relation `r` is present).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelSet(pub u32);

impl RelSet {
    pub const EMPTY: RelSet = RelSet(0);

    /// The singleton set `{rel}`.
    pub fn single(rel: RelIdx) -> Self {
        RelSet(1 << rel)
    }

    /// All relations `0..n`.
    pub fn all(n: usize) -> Self {
        debug_assert!(n <= 32);
        if n == 32 {
            RelSet(u32::MAX)
        } else {
            RelSet((1u32 << n) - 1)
        }
    }

    pub fn contains(self, rel: RelIdx) -> bool {
        self.0 & (1 << rel) != 0
    }

    pub fn len(self) -> u32 {
        self.0.count_ones()
    }

    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    pub fn union(self, other: RelSet) -> RelSet {
        RelSet(self.0 | other.0)
    }

    pub fn intersect(self, other: RelSet) -> RelSet {
        RelSet(self.0 & other.0)
    }

    pub fn is_disjoint(self, other: RelSet) -> bool {
        self.0 & other.0 == 0
    }

    pub fn is_subset_of(self, other: RelSet) -> bool {
        self.0 & !other.0 == 0
    }

    pub fn insert(self, rel: RelIdx) -> RelSet {
        RelSet(self.0 | (1 << rel))
    }

    /// Iterates the members in ascending order.
    pub fn iter(self) -> impl Iterator<Item = RelIdx> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let r = bits.trailing_zeros() as RelIdx;
                bits &= bits - 1;
                Some(r)
            }
        })
    }

    /// Lowest member (panics on empty set).
    pub fn first(self) -> RelIdx {
        debug_assert!(!self.is_empty());
        self.0.trailing_zeros() as RelIdx
    }

    /// Iterates all non-empty **proper** subsets of `self` that contain the
    /// lowest member — the standard trick to enumerate each unordered
    /// partition `{L, R}` exactly once in join DP.
    pub fn proper_submasks_with_first(self) -> impl Iterator<Item = RelSet> {
        let full = self.0;
        let anchor = 1u32 << self.first();
        let free = full & !anchor;
        // Enumerate submasks of `free`, each unioned with the anchor; skip
        // the full set itself.
        let mut sub = free;
        let mut done = false;
        std::iter::from_fn(move || loop {
            if done {
                return None;
            }
            let current = sub | anchor;
            if sub == 0 {
                done = true;
            } else {
                sub = (sub - 1) & free;
            }
            if current != full {
                return Some(RelSet(current));
            }
        })
    }
}

impl fmt::Display for RelSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, r) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let s = RelSet::single(0).union(RelSet::single(2));
        assert!(s.contains(0) && !s.contains(1) && s.contains(2));
        assert_eq!(s.len(), 2);
        assert_eq!(s.first(), 0);
        assert!(RelSet::single(0).is_subset_of(s));
        assert!(s.is_disjoint(RelSet::single(1)));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(RelSet::all(3), RelSet(0b111));
    }

    #[test]
    fn partition_enumeration_is_exact() {
        // {0,1,2}: partitions with anchor 0 are {0},{0,1},{0,2} — the
        // complements {1,2},{2},{1} complete each split exactly once.
        let s = RelSet::all(3);
        let parts: Vec<RelSet> = s.proper_submasks_with_first().collect();
        assert_eq!(parts.len(), 3);
        for l in &parts {
            assert!(l.contains(0));
            let r = RelSet(s.0 & !l.0);
            assert!(!r.is_empty());
            assert_eq!(l.union(r), s);
        }
        // 4 relations → 2^3 - 1 = 7 splits.
        assert_eq!(RelSet::all(4).proper_submasks_with_first().count(), 7);
    }

    #[test]
    fn singleton_has_no_partitions() {
        assert_eq!(RelSet::single(3).proper_submasks_with_first().count(), 0);
    }

    #[test]
    fn display() {
        assert_eq!(RelSet::all(2).to_string(), "{0,1}");
        assert_eq!(RelSet::EMPTY.to_string(), "{}");
    }
}
