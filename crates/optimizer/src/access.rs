//! The access-path collector (paper Fig. 2): sequential and index access
//! paths per base relation, with the PINUM *keep-all* hook (§V-C).
//!
//! Standard behaviour: "If two indexes cover the same interesting order,
//! then this component filters out the access path with the higher cost."
//! PINUM hook: "We modify the module to keep all index access paths,
//! instead of the least expensive one. This allows PINUM to determine the
//! access costs of a large set of indexes by calling the optimizer just
//! once."

use crate::path::{LinearCost, Path, PathKind};
use crate::preprocess::{EcId, PlannerInfo};
use crate::relset::RelSet;
use pinum_catalog::{Catalog, Configuration, Index, Table, TableId};
use pinum_cost::scan::{cost_bitmap_heap_scan, cost_index_scan, cost_seqscan, IndexScanInput};
use pinum_cost::{Cost, CostParams};

use pinum_query::{FilterOp, Ioc, RelIdx, RelTemplate};

pub use crate::path::IndexRef;

/// Where an access cost comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessSource {
    SeqScan,
    Index(IndexRef),
}

/// One access-cost observation, reported by the keep-all hook. This is the
/// payload PINUM piggy-backs on a single optimizer call so the designer can
/// price every candidate index without further calls.
#[derive(Debug, Clone)]
pub struct AccessCostEntry {
    pub rel: RelIdx,
    pub source: AccessSource,
    /// The interesting order this access path covers (`None` = Φ): the
    /// index's leading column when that column is an interesting order.
    pub order: Option<u16>,
    pub cost: Cost,
    pub index_only: bool,
    /// Output rows of the access path (after all filters).
    pub rows: f64,
    /// Pricing inputs for using this index as a parameterized nested-loop
    /// inner (equality probe on the leading key). The consumer re-prices
    /// with `cost_index_scan` at the cached plan's actual loop count, since
    /// Mackert–Lohman amortization depends on it. `None` for unordered
    /// sources.
    pub probe_spec: Option<IndexScanInput>,
}

/// All candidate access paths of one relation, before list pruning.
pub struct RelAccessPaths {
    pub paths: Vec<Path>,
    pub entries: Vec<AccessCostEntry>,
}

/// Result of matching an index's key prefix against a relation's filters.
struct IndexMatch {
    /// Selectivity of the matched prefix conditions.
    index_selectivity: f64,
    /// Number of filters *not* handled as index conditions.
    residual_filter_ops: u32,
}

/// Matches an index's key prefix against a relation's filter shape. This
/// is the single arithmetic path both per-query collection and the
/// template batch hook price through — sharing it is what makes batched
/// collection bit-identical to the per-query reference.
fn match_template_conditions(
    catalog: &Catalog,
    table: TableId,
    filters: &[(u16, FilterOp)],
    index: &Index,
) -> IndexMatch {
    let mut sel = 1.0;
    let mut matched = 0u32;
    'prefix: for &key_col in index.key_columns() {
        let mut advanced = false;
        for &(column, op) in filters {
            if column != key_col {
                continue;
            }
            let s = pinum_query::selectivity::column_filter_selectivity(catalog, table, column, op);
            sel *= s;
            matched += 1;
            match op {
                // Equality pins the column; the scan can keep matching the
                // next key column.
                FilterOp::Eq { .. } => advanced = true,
                // A range bound consumes the prefix; matching stops here.
                FilterOp::Range { .. } => break 'prefix,
            }
        }
        if !advanced {
            break;
        }
    }
    let total = filters.len() as u32;
    IndexMatch {
        index_selectivity: sel,
        residual_filter_ops: total - matched.min(total),
    }
}

/// Pricing inputs of a standalone scan through `index` (loop count 1).
/// Shared by the per-query collector and the template batch hook.
fn standalone_input(
    table: &Table,
    index: &Index,
    m: &IndexMatch,
    index_only: bool,
) -> IndexScanInput {
    IndexScanInput {
        // PostgreSQL prices scans against the index's full relpages;
        // hypothetical indexes report zero internal pages (§V-A), which
        // is the what-if accuracy gap of §VI-B.
        index_leaf_pages: index.size().leaf_pages + index.size().internal_pages,
        index_height: index.size().height,
        index_rows: index.rows() as f64,
        heap_pages: table.heap_pages(),
        heap_rows: table.rows() as f64,
        index_selectivity: m.index_selectivity,
        correlation: index.correlation(),
        filter_ops: m.residual_filter_ops,
        index_only,
        loop_count: 1.0,
    }
}

/// Pricing inputs of an equality probe on `index`'s leading key
/// (`loop_count` stays 1; consumers re-price at the plan's actual loop
/// count). Shared by both collection paths.
fn probe_input(table: &Table, index: &Index, filter_ops: u32, index_only: bool) -> IndexScanInput {
    let leading = index.leading_column();
    let ndv = table.column(leading).stats().n_distinct.max(1.0);
    IndexScanInput {
        index_leaf_pages: index.size().leaf_pages + index.size().internal_pages,
        index_height: index.size().height,
        index_rows: index.rows() as f64,
        heap_pages: table.heap_pages(),
        heap_rows: table.rows() as f64,
        index_selectivity: 1.0 / ndv,
        correlation: index.correlation(),
        filter_ops,
        index_only,
        loop_count: 1.0,
    }
}

/// Builds the pathkeys an index scan provides: equivalence classes of its
/// key columns, as long as they are ordering-relevant.
fn index_pathkeys(info: &PlannerInfo<'_>, rel: RelIdx, index: &Index) -> Vec<EcId> {
    let mut keys = Vec::new();
    for &col in index.key_columns() {
        match info.ec(rel, col) {
            Some(ec) => keys.push(ec),
            None => break,
        }
    }
    keys
}

/// The leaf-IOC contribution of scanning `rel` through `index`: the leading
/// column's order slot when it is an interesting order (definition 4:
/// an index covers an interesting order iff the order is its first column).
fn index_leaf_ioc(info: &PlannerInfo<'_>, rel: RelIdx, index: &Index) -> Ioc {
    let leading = index.leading_column();
    match info
        .orders
        .orders_of(rel)
        .iter()
        .position(|&c| c == leading)
    {
        Some(k) => Ioc::NONE.with_order(rel, k as u8),
        None => Ioc::NONE,
    }
}

/// Pricing inputs for an equality probe on `index`'s leading key
/// (`loop_count` is left at 1; consumers set the actual loop count before
/// calling `cost_index_scan`).
fn probe_spec(info: &PlannerInfo<'_>, rel: RelIdx, index: &Index) -> IndexScanInput {
    let base = &info.base[rel as usize];
    let table = info.catalog.table(base.table);
    let index_only = index.covers_columns(&base.referenced_columns);
    probe_input(table, index, base.filter_ops, index_only)
}

/// Generates every access path of `rel`.
///
/// `keep_all` triggers the PINUM hook: every index contributes an
/// [`AccessCostEntry`] even when its path is obviously dominated.
pub fn collect_access_paths(
    info: &PlannerInfo<'_>,
    params: &CostParams,
    rel: RelIdx,
    keep_all: bool,
) -> RelAccessPaths {
    let n_rels = info.relation_count();
    let base = &info.base[rel as usize];
    let table = info.catalog.table(base.table);
    // The relation's filter shape, materialized once: index-condition
    // matching runs through the same template arithmetic as the batched
    // collector (`collect_template_arms`), so both stay bit-identical.
    let filters: Vec<(u16, FilterOp)> = info
        .query
        .filters_on(rel)
        .map(|f| (f.column, f.op))
        .collect();
    let mut paths = Vec::new();
    let mut entries = Vec::new();

    // --- Sequential scan: always available, provides Φ. ---
    let seq_cost = cost_seqscan(params, table.heap_pages(), base.raw_rows, base.filter_ops);
    paths.push(Path {
        kind: PathKind::SeqScan { rel },
        rels: RelSet::single(rel),
        rows: base.rows,
        cost: seq_cost,
        rescan: seq_cost,
        pathkeys: vec![],
        leaf_ioc: Ioc::NONE,
        linear: LinearCost::leaf(n_rels, rel),
        leaf_access: leaf_access_vec(n_rels, rel, seq_cost.total),
        probe_access: vec![0.0; n_rels],
    });
    entries.push(AccessCostEntry {
        rel,
        source: AccessSource::SeqScan,
        order: None,
        cost: seq_cost,
        index_only: false,
        rows: base.rows,
        probe_spec: None,
    });

    // --- Index scans: catalog indexes then configuration indexes. ---
    let catalog_ixs = info
        .catalog
        .table_indexes(base.table)
        .iter()
        .map(|id| (IndexRef::Catalog(*id), info.catalog.index(*id)));
    let config_ixs = info
        .config
        .indexes()
        .iter()
        .enumerate()
        .filter(|(_, ix)| ix.table() == base.table)
        .map(|(i, ix)| (IndexRef::Config(i), ix));

    for (ixref, index) in catalog_ixs.chain(config_ixs) {
        let m = match_template_conditions(info.catalog, base.table, &filters, index);
        let index_only = index.covers_columns(&base.referenced_columns);
        let input = standalone_input(table, index, &m, index_only);
        let cost = cost_index_scan(params, &input);
        let leaf_ioc = index_leaf_ioc(info, rel, index);
        let order = info.orders.column_of(leaf_ioc, rel);
        let probe = order.map(|_| probe_spec(info, rel, index));
        entries.push(AccessCostEntry {
            rel,
            source: AccessSource::Index(ixref),
            order,
            cost,
            index_only,
            rows: base.rows,
            probe_spec: probe,
        });
        paths.push(Path {
            kind: PathKind::IndexScan {
                rel,
                index: ixref,
                index_only,
                param: None,
            },
            rels: RelSet::single(rel),
            rows: base.rows,
            cost,
            rescan: cost,
            pathkeys: index_pathkeys(info, rel, index),
            leaf_ioc,
            linear: LinearCost::leaf(n_rels, rel),
            leaf_access: leaf_access_vec(n_rels, rel, cost.total),
            probe_access: vec![0.0; n_rels],
        });

        // Bitmap heap scan: only worthwhile when index conditions narrow
        // the scan and the heap must be visited anyway.
        if m.index_selectivity < 1.0 && !index_only {
            let bcost = cost_bitmap_heap_scan(params, &input);
            entries.push(AccessCostEntry {
                rel,
                source: AccessSource::Index(ixref),
                order: None, // bitmap output is unordered
                cost: bcost,
                index_only: false,
                rows: base.rows,
                probe_spec: None,
            });
            paths.push(Path {
                kind: PathKind::BitmapScan { rel, index: ixref },
                rels: RelSet::single(rel),
                rows: base.rows,
                cost: bcost,
                rescan: bcost,
                pathkeys: vec![],
                leaf_ioc: Ioc::NONE,
                linear: LinearCost::leaf(n_rels, rel),
                leaf_access: leaf_access_vec(n_rels, rel, bcost.total),
                probe_access: vec![0.0; n_rels],
            });
        }
    }

    if !keep_all {
        entries.clear();
    }
    RelAccessPaths { paths, entries }
}

/// One access arm of a relation *template*, priced in **both** covering
/// variants — the payload of the workload-level batch hook
/// ([`collect_template_arms`] / `Optimizer::price_template`).
///
/// Whether an index runs index-only depends on the member query's
/// referenced columns, which are *not* part of the template; pricing both
/// variants up front lets one template call serve every member, whichever
/// side of the covering test its projection lands on. All other pricing
/// inputs (selectivities, residual quals, page counts) are functions of
/// the template alone.
#[derive(Debug, Clone, PartialEq)]
pub struct TemplateArm {
    /// Sequential scan, catalog index, or configuration index (positions
    /// refer to the configuration handed to the template call).
    pub source: AccessSource,
    /// The index's leading key column (`None` for the sequential scan) —
    /// member queries map it onto their own interesting orders.
    pub leading: Option<u16>,
    /// Standalone scan cost when the heap must be visited.
    pub cost_heap: Cost,
    /// Standalone scan cost when the index covers every referenced column
    /// of the member (index-only). Equals `cost_heap` for the seq arm.
    pub cost_cover: Cost,
    /// Bitmap heap scan cost, present when the index conditions narrow the
    /// scan (`index_selectivity < 1`). Applies only to members that visit
    /// the heap — an index-only member never takes the bitmap arm.
    pub bitmap: Option<Cost>,
    /// Probe pricing inputs per covering variant (equality lookup on the
    /// leading key, `loop_count` 1; `None` for the seq arm). Members
    /// re-price at their plans' actual loop counts.
    pub probe_heap: Option<IndexScanInput>,
    /// See [`Self::probe_heap`]; the index-only variant.
    pub probe_cover: Option<IndexScanInput>,
}

/// Workload-level §V-C batch hook: prices every access arm of one
/// relation template against `config` in a single call.
///
/// Where [`collect_access_paths`] (keep-all mode) reports each arm under
/// one query's covering/ordering interpretation, this hook reports the
/// *uninterpreted* arms — both covering variants, keyed by leading column
/// — so a workload collector can fan them out to every query sharing the
/// template. Arm order matches the per-query collector exactly
/// (sequential scan, then catalog indexes, then configuration indexes),
/// and all arithmetic runs through the same shared helpers, so a member's
/// reconstructed catalog is bit-identical to a dedicated per-query call.
pub fn collect_template_arms(
    catalog: &Catalog,
    params: &CostParams,
    template: &RelTemplate,
    config: &Configuration,
) -> Vec<TemplateArm> {
    let table = catalog.table(template.table);
    let filter_ops = template.filter_count();
    let mut arms = Vec::new();

    // --- Sequential scan: covering-agnostic. ---
    let seq_cost = cost_seqscan(params, table.heap_pages(), table.rows() as f64, filter_ops);
    arms.push(TemplateArm {
        source: AccessSource::SeqScan,
        leading: None,
        cost_heap: seq_cost,
        cost_cover: seq_cost,
        bitmap: None,
        probe_heap: None,
        probe_cover: None,
    });

    // --- Index arms: catalog indexes then configuration indexes, the
    // per-query collector's order. ---
    let catalog_ixs = catalog
        .table_indexes(template.table)
        .iter()
        .map(|id| (IndexRef::Catalog(*id), catalog.index(*id)));
    let config_ixs = config
        .indexes()
        .iter()
        .enumerate()
        .filter(|(_, ix)| ix.table() == template.table)
        .map(|(i, ix)| (IndexRef::Config(i), ix));
    for (ixref, index) in catalog_ixs.chain(config_ixs) {
        let m = match_template_conditions(catalog, template.table, &template.filters, index);
        let heap_input = standalone_input(table, index, &m, false);
        let cover_input = IndexScanInput {
            index_only: true,
            ..heap_input
        };
        arms.push(TemplateArm {
            source: AccessSource::Index(ixref),
            leading: Some(index.leading_column()),
            cost_heap: cost_index_scan(params, &heap_input),
            cost_cover: cost_index_scan(params, &cover_input),
            bitmap: (m.index_selectivity < 1.0).then(|| cost_bitmap_heap_scan(params, &heap_input)),
            probe_heap: Some(probe_input(table, index, filter_ops, false)),
            probe_cover: Some(probe_input(table, index, filter_ops, true)),
        });
    }
    arms
}

/// Builds a *parameterized* inner index scan for a nested-loop join: the
/// index probes the join key once per outer row. Returns `None` when the
/// index's leading column is not the given join column.
///
/// The path's linear decomposition is **constant** — this is exactly the
/// access path the INUM cache "misses" (paper §VI-C), producing its NLJ
/// cost error.
#[allow(clippy::too_many_arguments)]
pub fn param_index_scan(
    info: &PlannerInfo<'_>,
    params: &CostParams,
    rel: RelIdx,
    ixref: IndexRef,
    index: &Index,
    join_col: u16,
    ec: EcId,
    per_probe_sel: f64,
    loop_count: f64,
) -> Option<Path> {
    if index.leading_column() != join_col {
        return None;
    }
    let n_rels = info.relation_count();
    let base = &info.base[rel as usize];
    let table = info.catalog.table(base.table);
    let index_only = index.covers_columns(&base.referenced_columns);
    let input = IndexScanInput {
        index_leaf_pages: index.size().leaf_pages + index.size().internal_pages,
        index_height: index.size().height,
        index_rows: index.rows() as f64,
        heap_pages: table.heap_pages(),
        heap_rows: base.raw_rows,
        index_selectivity: per_probe_sel,
        correlation: index.correlation(),
        filter_ops: base.filter_ops,
        index_only,
        loop_count: loop_count.max(1.0),
    };
    let cost = cost_index_scan(params, &input);
    let rows_per_probe = (base.rows * per_probe_sel).max(1.0);
    // Decompose as one probe-slot unit: the cache re-prices the probe under
    // other configurations at the same loop count, so the build value is
    // simply the charged per-execution cost.
    let mut probe_access = vec![0.0; n_rels];
    probe_access[rel as usize] = cost.total;
    Some(Path {
        kind: PathKind::IndexScan {
            rel,
            index: ixref,
            index_only,
            param: Some(ec),
        },
        rels: RelSet::single(rel),
        rows: rows_per_probe,
        cost,
        rescan: cost,
        pathkeys: index_pathkeys(info, rel, index),
        leaf_ioc: index_leaf_ioc(info, rel, index),
        linear: LinearCost::probe_leaf(n_rels, rel, 0.0),
        leaf_access: vec![0.0; n_rels],
        probe_access,
    })
}

fn leaf_access_vec(n_rels: usize, rel: RelIdx, cost: f64) -> Vec<f64> {
    let mut v = vec![0.0; n_rels];
    v[rel as usize] = cost;
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinum_catalog::{Catalog, Column, ColumnType, Configuration, ConfigurationBuilder, Table};
    use pinum_query::{Query, QueryBuilder};

    fn setup() -> (Catalog, Query) {
        let mut cat = Catalog::new();
        cat.add_table(Table::new(
            "t",
            1_000_000,
            vec![
                Column::new("a", ColumnType::Int8).with_ndv(1_000_000),
                Column::new("b", ColumnType::Int8).with_ndv(1_000),
                Column::new("c", ColumnType::Int4).with_ndv(100),
            ],
        ));
        cat.add_table(Table::new(
            "s",
            10_000,
            vec![Column::new("k", ColumnType::Int8).with_ndv(10_000)],
        ));
        let q = QueryBuilder::new("q", &cat)
            .table("t")
            .table("s")
            .join(("t", "b"), ("s", "k"))
            .filter_range(("t", "c"), 0.0, 1.0)
            .select(("t", "a"))
            .order_by(("t", "a"))
            .build();
        (cat, q)
    }

    #[test]
    fn seqscan_always_present() {
        let (cat, q) = setup();
        let cfg = Configuration::empty();
        let info = PlannerInfo::new(&cat, &q, &cfg);
        let params = CostParams::default();
        let acc = collect_access_paths(&info, &params, 0, false);
        assert_eq!(acc.paths.len(), 1);
        assert!(matches!(acc.paths[0].kind, PathKind::SeqScan { .. }));
        assert!(acc.entries.is_empty(), "entries only in keep-all mode");
    }

    #[test]
    fn config_indexes_produce_paths_and_entries() {
        let (cat, q) = setup();
        let t = cat.table_id("t").unwrap();
        let cfg = ConfigurationBuilder::new()
            .whatif_index(&cat, t, vec![1]) // covers join order b
            .whatif_index(&cat, t, vec![2]) // filter column c
            .whatif_index(&cat, t, vec![0]) // order-by column a
            .build();
        let info = PlannerInfo::new(&cat, &q, &cfg);
        let params = CostParams::default();
        let acc = collect_access_paths(&info, &params, 0, true);
        // seq + 3 index scans + 1 bitmap scan (only the c-index has a
        // matched filter condition).
        assert_eq!(acc.paths.len(), 5);
        assert_eq!(acc.entries.len(), 5);
        // The b-index covers interesting order b (ordinal 1).
        let b_entry = acc
            .entries
            .iter()
            .find(|e| matches!(e.source, AccessSource::Index(IndexRef::Config(0))))
            .unwrap();
        assert_eq!(b_entry.order, Some(1));
        // The c-index covers no interesting order.
        let c_entry = acc
            .entries
            .iter()
            .find(|e| matches!(e.source, AccessSource::Index(IndexRef::Config(1))))
            .unwrap();
        assert_eq!(c_entry.order, None);
        // The a-index covers the ORDER BY interesting order.
        let a_entry = acc
            .entries
            .iter()
            .find(|e| matches!(e.source, AccessSource::Index(IndexRef::Config(2))))
            .unwrap();
        assert_eq!(a_entry.order, Some(0));
    }

    #[test]
    fn filter_index_enables_cheap_bitmap_access() {
        let (cat, q) = setup();
        let t = cat.table_id("t").unwrap();
        let cfg = ConfigurationBuilder::new()
            .whatif_index(&cat, t, vec![2])
            .build();
        let info = PlannerInfo::new(&cat, &q, &cfg);
        let params = CostParams::default();
        let acc = collect_access_paths(&info, &params, 0, false);
        let seq = &acc.paths[0];
        let bitmap = acc
            .paths
            .iter()
            .find(|p| matches!(p.kind, PathKind::BitmapScan { .. }))
            .expect("1% filter index should generate a bitmap path");
        // At 1 % selectivity on a large uncorrelated table, the realistic
        // winner is the bitmap heap scan (a plain index scan pays one
        // random page per row and loses to the seqscan — PostgreSQL
        // behaves the same way).
        assert!(
            bitmap.cost.total < seq.cost.total,
            "bitmap scan {:?} must beat seqscan {:?}",
            bitmap.cost,
            seq.cost
        );
        assert!(bitmap.pathkeys.is_empty(), "bitmap output is unordered");
        assert_eq!(bitmap.leaf_ioc, Ioc::NONE);
    }

    #[test]
    fn param_scan_requires_matching_leading_column() {
        let (cat, q) = setup();
        let s = cat.table_id("s").unwrap();
        let cfg = ConfigurationBuilder::new()
            .whatif_index(&cat, s, vec![0])
            .build();
        let info = PlannerInfo::new(&cat, &q, &cfg);
        let params = CostParams::default();
        let ec = info.ec(1, 0).unwrap();
        let ix = &cfg.indexes()[0];
        let p = param_index_scan(
            &info,
            &params,
            1,
            IndexRef::Config(0),
            ix,
            0,
            ec,
            1.0 / 10_000.0,
            1000.0,
        )
        .unwrap();
        // Constant decomposition: evaluating under any access costs gives
        // the same value.
        // The probe slot is repriceable; the standalone slots are not used.
        assert_eq!(p.linear.coefs, vec![0.0, 0.0]);
        assert!(p.linear.probe_coefs[1] > 0.0);
        let consistent = p.linear.eval(&p.leaf_access, &p.probe_access);
        assert!((consistent - p.cost.total).abs() < 1e-9);
        assert!(p.rows >= 1.0);
        // Wrong join column → no path.
        assert!(param_index_scan(
            &info,
            &params,
            1,
            IndexRef::Config(0),
            ix,
            99,
            ec,
            0.1,
            10.0
        )
        .is_none());
    }

    #[test]
    fn template_arms_reproduce_per_query_entries_bit_identically() {
        let (cat, q) = setup();
        let t = cat.table_id("t").unwrap();
        let cfg = ConfigurationBuilder::new()
            .whatif_index(&cat, t, vec![1]) // join order b
            .whatif_index(&cat, t, vec![2]) // filter column c
            .whatif_index(&cat, t, vec![0, 1, 2]) // covering
            .build();
        let info = PlannerInfo::new(&cat, &q, &cfg);
        let params = CostParams::default();
        let per_query = collect_access_paths(&info, &params, 0, true);

        let template = RelTemplate::of(&q, 0);
        let arms = collect_template_arms(&cat, &params, &template, &cfg);
        // One seq arm plus one arm per index, in the same order.
        assert!(matches!(arms[0].source, AccessSource::SeqScan));
        assert_eq!(arms.len(), 1 + cfg.len());

        // Fan the arms out under this query's covering/ordering
        // interpretation and compare against the per-query entries.
        let refs = &info.base[0].referenced_columns;
        let orders = info.orders.orders_of(0);
        let mut reconstructed: Vec<AccessCostEntry> = Vec::new();
        for arm in &arms {
            match arm.source {
                AccessSource::SeqScan => reconstructed.push(AccessCostEntry {
                    rel: 0,
                    source: AccessSource::SeqScan,
                    order: None,
                    cost: arm.cost_heap,
                    index_only: false,
                    rows: info.base[0].rows,
                    probe_spec: None,
                }),
                AccessSource::Index(IndexRef::Config(i)) => {
                    let index = &cfg.indexes()[i];
                    let index_only = index.covers_columns(refs);
                    let leading = arm.leading.expect("index arm has a leading column");
                    let order = orders.contains(&leading).then_some(leading);
                    reconstructed.push(AccessCostEntry {
                        rel: 0,
                        source: arm.source.clone(),
                        order,
                        cost: if index_only {
                            arm.cost_cover
                        } else {
                            arm.cost_heap
                        },
                        index_only,
                        rows: info.base[0].rows,
                        probe_spec: order.and(if index_only {
                            arm.probe_cover
                        } else {
                            arm.probe_heap
                        }),
                    });
                    if let Some(bitmap) = arm.bitmap.filter(|_| !index_only) {
                        reconstructed.push(AccessCostEntry {
                            rel: 0,
                            source: arm.source.clone(),
                            order: None,
                            cost: bitmap,
                            index_only: false,
                            rows: info.base[0].rows,
                            probe_spec: None,
                        });
                    }
                }
                AccessSource::Index(IndexRef::Catalog(_)) => unreachable!("no catalog indexes"),
            }
        }
        assert_eq!(reconstructed.len(), per_query.entries.len());
        for (a, b) in reconstructed.iter().zip(&per_query.entries) {
            assert_eq!(a.source, b.source);
            assert_eq!(a.order, b.order, "{:?}", a.source);
            assert_eq!(
                a.cost.total.to_bits(),
                b.cost.total.to_bits(),
                "{:?}",
                a.source
            );
            assert_eq!(a.index_only, b.index_only);
            assert_eq!(a.probe_spec, b.probe_spec, "{:?}", a.source);
        }
    }

    #[test]
    fn leaf_linear_decomposition_matches_cost() {
        let (cat, q) = setup();
        let t = cat.table_id("t").unwrap();
        let cfg = ConfigurationBuilder::new()
            .whatif_index(&cat, t, vec![1])
            .build();
        let info = PlannerInfo::new(&cat, &q, &cfg);
        let params = CostParams::default();
        let acc = collect_access_paths(&info, &params, 0, false);
        for p in &acc.paths {
            let eval = p.linear.eval(&p.leaf_access, &p.probe_access);
            assert!(
                (eval - p.cost.total).abs() < 1e-9,
                "linear decomposition mismatch: {eval} vs {}",
                p.cost.total
            );
        }
    }
}
