//! # pinum-optimizer
//!
//! A bottom-up, System-R-style dynamic-programming query optimizer modeled
//! on PostgreSQL 8.3's planner — the substrate the paper instruments — with
//! the three PINUM hooks:
//!
//! 1. **what-if indexes** (§V-A) arrive via
//!    [`pinum_catalog::Configuration`];
//! 2. **keep-all access paths** (§V-C,
//!    [`OptimizerOptions::keep_all_access_paths`]) reports the access cost
//!    of *every* candidate index from a single call;
//! 3. **per-IOC plan retention and export** (§V-D,
//!    [`OptimizerOptions::export_ioc_plans`]) switches the join planner to
//!    the subset-cost pruning rule and piggy-backs one optimal plan per
//!    interesting-order combination on the result — the titular "caching
//!    all plans with just one optimizer call".
//!
//! A fourth, workload-level hook extends §V-C across queries:
//! [`Optimizer::price_template`] prices every access arm of one relation
//! *template* (`pinum_query::RelTemplate`: table + filter shape) in both
//! covering variants with a single call, so a workload collector spends
//! one call per distinct template instead of one keep-all call per query.
//!
//! The component layout follows the paper's Figure 2: query preprocessor
//! ([`preprocess`]), sub-query planner ([`subquery`]), grouping planner
//! ([`grouping`]), access path collector ([`access`]) and join planner
//! ([`joinsearch`]).

pub mod access;
pub mod addpath;
pub mod grouping;
pub mod joinsearch;
pub mod path;
pub mod plan;
pub mod planner;
pub mod preprocess;
pub mod relset;
pub mod subquery;

pub use access::{collect_template_arms, AccessCostEntry, AccessSource, TemplateArm};
pub use addpath::PruneMode;
pub use path::{AggKind, IndexRef, LinearCost};
pub use plan::PlanNode;
pub use planner::{ExportedPlan, Optimizer, OptimizerOptions, PlannedQuery, PlannerStats};
pub use preprocess::{EcId, PlannerInfo};
pub use relset::RelSet;
pub use subquery::{plan_statement, PlannedStatement, Statement};
