//! The sub-query planner (paper Fig. 2): "optimizes each sub-query that
//! cannot be merged into the top-level query individually. In this step, it
//! identifies the sub-queries and invokes the next component on each of
//! them."
//!
//! The paper's implementation "does not address queries containing complex
//! sub-queries" (§VI-A); like it, we support only *uncorrelated* scalar
//! sub-queries, each planned independently with its cost added to the
//! statement's total.

use crate::planner::{Optimizer, OptimizerOptions, PlannedQuery};
use pinum_catalog::Configuration;
use pinum_query::Query;

/// A statement: a top-level query plus uncorrelated scalar sub-queries.
#[derive(Debug, Clone)]
pub struct Statement {
    pub query: Query,
    pub scalar_subqueries: Vec<Query>,
}

impl Statement {
    /// A statement with no sub-queries.
    pub fn simple(query: Query) -> Self {
        Self {
            query,
            scalar_subqueries: Vec::new(),
        }
    }

    pub fn with_subquery(mut self, sub: Query) -> Self {
        self.scalar_subqueries.push(sub);
        self
    }
}

/// The planned statement: the top-level plan plus each sub-query's plan.
#[derive(Debug)]
pub struct PlannedStatement {
    pub top: PlannedQuery,
    pub subplans: Vec<PlannedQuery>,
    /// Total cost: top-level plus all sub-queries (each executed once).
    pub total_cost: f64,
}

/// Plans a statement: every sub-query first (each with its own optimizer
/// invocation, like PostgreSQL's `SS_process_sublinks`), then the
/// top-level query.
pub fn plan_statement(
    optimizer: &Optimizer<'_>,
    stmt: &Statement,
    config: &Configuration,
    options: &OptimizerOptions,
) -> PlannedStatement {
    let subplans: Vec<PlannedQuery> = stmt
        .scalar_subqueries
        .iter()
        .map(|sq| optimizer.optimize(sq, config, options))
        .collect();
    let top = optimizer.optimize(&stmt.query, config, options);
    let total_cost = top.best_cost.total + subplans.iter().map(|p| p.best_cost.total).sum::<f64>();
    PlannedStatement {
        top,
        subplans,
        total_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinum_catalog::{Catalog, Column, ColumnType, Table};
    use pinum_query::QueryBuilder;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.add_table(Table::new(
            "t",
            10_000,
            vec![Column::new("a", ColumnType::Int8).with_ndv(10_000)],
        ));
        cat.add_table(Table::new(
            "s",
            500,
            vec![Column::new("b", ColumnType::Int8).with_ndv(500)],
        ));
        cat
    }

    #[test]
    fn statement_cost_adds_subqueries() {
        let cat = catalog();
        let main = QueryBuilder::new("main", &cat)
            .table("t")
            .select(("t", "a"))
            .build();
        let sub = QueryBuilder::new("sub", &cat)
            .table("s")
            .select(("s", "b"))
            .build();
        let opt = Optimizer::new(&cat);
        let cfg = Configuration::empty();
        let opts = OptimizerOptions::standard();

        let simple = plan_statement(&opt, &Statement::simple(main.clone()), &cfg, &opts);
        let with_sub = plan_statement(
            &opt,
            &Statement::simple(main).with_subquery(sub),
            &cfg,
            &opts,
        );
        assert_eq!(simple.subplans.len(), 0);
        assert_eq!(with_sub.subplans.len(), 1);
        assert!(with_sub.total_cost > simple.total_cost);
        assert!(
            (with_sub.total_cost
                - (with_sub.top.best_cost.total + with_sub.subplans[0].best_cost.total))
                .abs()
                < 1e-9
        );
    }
}
