//! The query preprocessor (paper Fig. 2, first component): static analysis
//! shared by all later planning stages.
//!
//! Produces the [`PlannerInfo`]: per-relation cardinalities and widths,
//! equivalence classes over join columns (PostgreSQL's pathkey machinery),
//! join edges with selectivities, interesting orders, and required output
//! orderings.

use crate::relset::RelSet;
use pinum_catalog::{Catalog, Configuration, TableId};
use pinum_cost::agg::estimate_num_groups;
use pinum_query::selectivity::{join_selectivity, relation_rows, relation_selectivity};
use pinum_query::{InterestingOrders, Query, RelIdx};
use std::collections::HashMap;

/// Equivalence-class id: columns made equal by equi-join predicates share
/// one id; other ordering-relevant columns get singleton classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EcId(pub u16);

/// Per-base-relation planning info.
#[derive(Debug, Clone)]
pub struct BaseRelInfo {
    pub table: TableId,
    /// Rows before filtering.
    pub raw_rows: f64,
    /// Rows surviving the relation's filters.
    pub rows: f64,
    /// Combined filter selectivity.
    pub selectivity: f64,
    /// Number of filter predicates (operator charges).
    pub filter_ops: u32,
    /// Columns referenced anywhere in the query.
    pub referenced_columns: Vec<u16>,
    /// Average output tuple width (referenced columns only).
    pub width: u32,
}

/// An equi-join edge of the join graph.
#[derive(Debug, Clone)]
pub struct JoinEdge {
    pub left: (RelIdx, u16),
    pub right: (RelIdx, u16),
    pub selectivity: f64,
    /// Equivalence class of the joined columns (merge-join sort key).
    pub ec: EcId,
}

/// Everything the later planning stages need, computed once per optimize
/// call.
pub struct PlannerInfo<'a> {
    pub catalog: &'a Catalog,
    pub query: &'a Query,
    pub config: &'a Configuration,
    pub orders: InterestingOrders,
    pub base: Vec<BaseRelInfo>,
    pub edges: Vec<JoinEdge>,
    /// Equivalence class of every ordering-relevant column.
    ec_of: HashMap<(RelIdx, u16), EcId>,
    ec_count: u16,
    /// ORDER BY as equivalence classes (prefix semantics).
    pub required_order: Vec<EcId>,
    /// GROUP BY as equivalence classes (set semantics).
    pub group_order: Vec<EcId>,
    /// Estimated number of groups (1.0 when no GROUP BY).
    pub num_groups: f64,
    /// Memoized joinrel cardinalities.
    rows_cache: std::sync::Mutex<HashMap<RelSet, f64>>,
}

impl<'a> PlannerInfo<'a> {
    pub fn new(catalog: &'a Catalog, query: &'a Query, config: &'a Configuration) -> Self {
        let n = query.relation_count();
        debug_assert!(query.join_graph_connected() || n == 1);

        // --- Equivalence classes via union-find over join columns. ---
        let mut uf = UnionFind::default();
        for j in &query.joins {
            uf.union(j.left, j.right);
        }
        // Register every ordering-relevant column so it has a class.
        let orders = query.interesting_orders();
        for rel in 0..n as RelIdx {
            for &col in orders.orders_of(rel) {
                uf.find_or_insert((rel, col));
            }
        }
        for &(rel, col) in query.order_by.iter().chain(query.group_by.iter()) {
            uf.find_or_insert((rel, col));
        }
        let (ec_of, ec_count) = uf.into_classes();

        // --- Per-relation info. ---
        let base: Vec<BaseRelInfo> = (0..n as RelIdx)
            .map(|rel| {
                let table = query.table_of(rel);
                let referenced = query.referenced_columns(rel);
                let width = catalog.table(table).data_width(&referenced).max(8);
                BaseRelInfo {
                    table,
                    raw_rows: catalog.table(table).rows() as f64,
                    rows: relation_rows(catalog, query, rel),
                    selectivity: relation_selectivity(catalog, query, rel),
                    filter_ops: query.filters_on(rel).count() as u32,
                    referenced_columns: referenced,
                    width,
                }
            })
            .collect();

        // --- Join edges. ---
        let edges: Vec<JoinEdge> = query
            .joins
            .iter()
            .map(|j| JoinEdge {
                left: j.left,
                right: j.right,
                selectivity: join_selectivity(catalog, query, j),
                ec: ec_of[&j.left],
            })
            .collect();

        let required_order: Vec<EcId> = query.order_by.iter().map(|c| ec_of[c]).collect();
        let group_order: Vec<EcId> = query.group_by.iter().map(|c| ec_of[c]).collect();

        let num_groups = if query.group_by.is_empty() {
            1.0
        } else {
            let ndvs: Vec<f64> = query
                .group_by
                .iter()
                .map(|&(rel, col)| pinum_query::selectivity::filtered_ndv(catalog, query, rel, col))
                .collect();
            let top_rows: f64 = base.iter().map(|b| b.rows).product::<f64>()
                * edges.iter().map(|e| e.selectivity).product::<f64>();
            estimate_num_groups(top_rows.max(1.0), &ndvs)
        };

        Self {
            catalog,
            query,
            config,
            orders,
            base,
            edges,
            ec_of,
            ec_count,
            required_order,
            group_order,
            num_groups,
            rows_cache: std::sync::Mutex::new(HashMap::new()),
        }
    }

    pub fn relation_count(&self) -> usize {
        self.base.len()
    }

    /// Equivalence class of a column, if it participates in any ordering.
    pub fn ec(&self, rel: RelIdx, col: u16) -> Option<EcId> {
        self.ec_of.get(&(rel, col)).copied()
    }

    /// Number of equivalence classes.
    pub fn ec_count(&self) -> u16 {
        self.ec_count
    }

    /// A member column of equivalence class `ec` belonging to a relation in
    /// `rels`, if any — used to resolve pathkeys to concrete sort columns.
    pub fn ec_member_in(&self, ec: EcId, rels: RelSet) -> Option<(RelIdx, u16)> {
        self.ec_of
            .iter()
            .filter(|(&(rel, _), &e)| e == ec && rels.contains(rel))
            .map(|(&col, _)| col)
            .min() // deterministic representative
    }

    /// Join edges connecting `left` and `right` (disjoint rel sets).
    pub fn edges_between(&self, left: RelSet, right: RelSet) -> Vec<&JoinEdge> {
        self.edges
            .iter()
            .filter(|e| {
                (left.contains(e.left.0) && right.contains(e.right.0))
                    || (left.contains(e.right.0) && right.contains(e.left.0))
            })
            .collect()
    }

    /// True if some join edge connects the two sets (avoids Cartesian
    /// products, like PostgreSQL's standard join search).
    pub fn connected(&self, left: RelSet, right: RelSet) -> bool {
        self.edges.iter().any(|e| {
            (left.contains(e.left.0) && right.contains(e.right.0))
                || (left.contains(e.right.0) && right.contains(e.left.0))
        })
    }

    /// Estimated output cardinality of a joinrel: the product of filtered
    /// base rows and the selectivities of all join edges internal to the
    /// set (PostgreSQL `calc_joinrel_size_estimate` lineage).
    pub fn joinrel_rows(&self, set: RelSet) -> f64 {
        if let Some(r) = self.rows_cache.lock().unwrap().get(&set) {
            return *r;
        }
        let mut rows: f64 = set.iter().map(|r| self.base[r as usize].rows).product();
        for e in &self.edges {
            if set.contains(e.left.0) && set.contains(e.right.0) {
                rows *= e.selectivity;
            }
        }
        let rows = pinum_cost::clamp_row_est(rows);
        self.rows_cache.lock().unwrap().insert(set, rows);
        rows
    }

    /// Output width of a joinrel (sum of member widths).
    pub fn joinrel_width(&self, set: RelSet) -> u32 {
        set.iter().map(|r| self.base[r as usize].width).sum()
    }

    /// The columns of `rel` usable as parameterized inner index lookups
    /// when joining against `outer`: columns of `rel` equi-joined to some
    /// column of a relation in `outer`.
    pub fn inner_join_columns(&self, rel: RelIdx, outer: RelSet) -> Vec<(u16, EcId, f64)> {
        let mut out = Vec::new();
        for e in &self.edges {
            let (this, that) = if e.left.0 == rel {
                (e.left, e.right)
            } else if e.right.0 == rel {
                (e.right, e.left)
            } else {
                continue;
            };
            if outer.contains(that.0) {
                out.push((this.1, e.ec, e.selectivity));
            }
        }
        out
    }
}

/// Minimal union-find over qualified columns.
#[derive(Default)]
struct UnionFind {
    ids: HashMap<(RelIdx, u16), usize>,
    parent: Vec<usize>,
}

impl UnionFind {
    fn find_or_insert(&mut self, col: (RelIdx, u16)) -> usize {
        if let Some(&i) = self.ids.get(&col) {
            return self.find(i);
        }
        let i = self.parent.len();
        self.ids.insert(col, i);
        self.parent.push(i);
        i
    }

    fn find(&mut self, mut i: usize) -> usize {
        while self.parent[i] != i {
            self.parent[i] = self.parent[self.parent[i]];
            i = self.parent[i];
        }
        i
    }

    fn union(&mut self, a: (RelIdx, u16), b: (RelIdx, u16)) {
        let ra = self.find_or_insert(a);
        let rb = self.find_or_insert(b);
        if ra != rb {
            self.parent[ra] = rb;
        }
    }

    /// Collapses to dense [`EcId`]s.
    fn into_classes(mut self) -> (HashMap<(RelIdx, u16), EcId>, u16) {
        let mut dense: HashMap<usize, u16> = HashMap::new();
        let mut out = HashMap::new();
        let keys: Vec<_> = self.ids.keys().copied().collect();
        for col in keys {
            let root = {
                let i = self.ids[&col];
                self.find(i)
            };
            let next = dense.len() as u16;
            let id = *dense.entry(root).or_insert(next);
            out.insert(col, EcId(id));
        }
        let n = dense.len() as u16;
        (out, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinum_catalog::{Column, ColumnType, Table};
    use pinum_query::QueryBuilder;

    fn setup() -> (Catalog, Query) {
        let mut cat = Catalog::new();
        for (name, rows) in [("f", 100_000u64), ("d1", 1_000), ("d2", 100)] {
            cat.add_table(Table::new(
                name,
                rows,
                vec![
                    Column::new("k", ColumnType::Int8).with_ndv(rows),
                    Column::new("fk", ColumnType::Int8).with_ndv((rows / 100).max(1)),
                    Column::new("v", ColumnType::Int4).with_ndv(100),
                ],
            ));
        }
        let q = QueryBuilder::new("q", &cat)
            .table("f")
            .table("d1")
            .table("d2")
            .join(("f", "fk"), ("d1", "k"))
            .join(("d1", "fk"), ("d2", "k"))
            .filter_range(("f", "v"), 0.0, 1.0) // 1% of 100 values
            .select(("f", "v"))
            .group_by(("d2", "v"))
            .build();
        (cat, q)
    }

    #[test]
    fn equivalence_classes_merge_join_columns() {
        let (cat, q) = setup();
        let cfg = Configuration::empty();
        let info = PlannerInfo::new(&cat, &q, &cfg);
        // f.fk and d1.k are equal; d1.fk and d2.k are equal; d2.v separate.
        assert_eq!(info.ec(0, 1), info.ec(1, 0));
        assert_eq!(info.ec(1, 1), info.ec(2, 0));
        assert_ne!(info.ec(0, 1), info.ec(1, 1));
        assert!(info.ec(2, 2).is_some()); // group-by column
        assert!(info.ec(0, 0).is_none()); // unreferenced-for-order column
    }

    #[test]
    fn base_rows_apply_filters() {
        let (cat, q) = setup();
        let cfg = Configuration::empty();
        let info = PlannerInfo::new(&cat, &q, &cfg);
        assert!((info.base[0].rows - 1000.0).abs() < 2.0, "1% of 100k");
        assert_eq!(info.base[1].rows, 1000.0);
    }

    #[test]
    fn joinrel_rows_use_edge_selectivity() {
        let (cat, q) = setup();
        let cfg = Configuration::empty();
        let info = PlannerInfo::new(&cat, &q, &cfg);
        let two = info.joinrel_rows(RelSet(0b011));
        // 1000 (filtered f) × 1000 (d1) × 1/1000 = 1000.
        assert!((two - 1000.0).abs() < 5.0, "got {two}");
        let all = info.joinrel_rows(RelSet(0b111));
        assert!(all >= 1.0);
    }

    #[test]
    fn connectivity_respects_edges() {
        let (cat, q) = setup();
        let cfg = Configuration::empty();
        let info = PlannerInfo::new(&cat, &q, &cfg);
        assert!(info.connected(RelSet(0b001), RelSet(0b010)));
        assert!(!info.connected(RelSet(0b001), RelSet(0b100)));
        assert!(info.connected(RelSet(0b011), RelSet(0b100)));
    }

    #[test]
    fn inner_join_columns_for_param_scans() {
        let (cat, q) = setup();
        let cfg = Configuration::empty();
        let info = PlannerInfo::new(&cat, &q, &cfg);
        // Joining d1 as inner against {f}: usable lookup column is d1.k.
        let cols = info.inner_join_columns(1, RelSet(0b001));
        assert_eq!(cols.len(), 1);
        assert_eq!(cols[0].0, 0);
        // d2 has no edge to f directly.
        assert!(info.inner_join_columns(2, RelSet(0b001)).is_empty());
    }

    #[test]
    fn group_estimate() {
        let (cat, q) = setup();
        let cfg = Configuration::empty();
        let info = PlannerInfo::new(&cat, &q, &cfg);
        assert!(info.num_groups >= 1.0);
        assert!(info.num_groups <= 100.0);
    }
}
