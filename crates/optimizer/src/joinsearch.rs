//! The join planner (paper Fig. 2): a System-R bottom-up dynamic program.
//!
//! "Given a query joining n relations, the join planner's dynamic program
//! consists of n-1 levels. In the first level, optimal join methods are
//! determined for every two pairs of relations. Every subsequent level adds
//! one more relation to the join of the previous level and finds the optimal
//! plan for the join." We additionally allow bushy shapes, as PostgreSQL's
//! standard join search does.
//!
//! Under [`PruneMode::KeepIoc`] the per-relset path lists retain one optimal
//! plan per *leaf interesting-order combination* (the §V-D pruning rule),
//! which is what lets a single call export the whole INUM cache.

use crate::access::param_index_scan;
use crate::addpath::{AddPathStats, PathList, PruneMode};
use crate::path::{IndexRef, Path, PathArena, PathId, PathKind};
use crate::preprocess::{EcId, PlannerInfo};
use crate::relset::RelSet;
use pinum_cost::join::{cost_hashjoin, cost_mergejoin, cost_nestloop, JoinInput};
use pinum_cost::sort::{cost_material, cost_rescan_material, cost_sort};
use pinum_cost::{Cost, CostParams};
use std::collections::HashMap;

/// Options consumed by the join search.
#[derive(Debug, Clone, Copy)]
pub struct JoinSearchOptions {
    /// PostgreSQL's `enable_nestloop`; PINUM "tweak\[s\] the join planner to
    /// remove nested loop operations if this flag is set" (§V-B).
    pub enable_nestloop: bool,
    /// Allow bushy join trees (both sides composite).
    pub enable_bushy: bool,
    pub prune_mode: PruneMode,
    /// Apply the §V-D sweep per completed join relation.
    pub subset_pruning: bool,
}

/// The DP state: one [`PathList`] per planned relation set.
pub struct JoinSearch<'a, 'q> {
    info: &'a PlannerInfo<'q>,
    params: &'a CostParams,
    options: JoinSearchOptions,
    lists: HashMap<RelSet, PathList>,
    /// Memoized sort wrappers: (input, sort keys) → path.
    sorts: HashMap<(PathId, Vec<EcId>), PathId>,
    /// Memoized materialize wrappers.
    materials: HashMap<PathId, PathId>,
    pub stats: AddPathStats,
    pub joinrels_planned: usize,
}

impl<'a, 'q> JoinSearch<'a, 'q> {
    pub fn new(
        info: &'a PlannerInfo<'q>,
        params: &'a CostParams,
        options: JoinSearchOptions,
    ) -> Self {
        Self {
            info,
            params,
            options,
            lists: HashMap::new(),
            sorts: HashMap::new(),
            materials: HashMap::new(),
            stats: AddPathStats::default(),
            joinrels_planned: 0,
        }
    }

    /// Runs the DP; `base_lists[r]` holds relation `r`'s access paths.
    /// Returns the path list of the full relation set.
    pub fn run(
        mut self,
        arena: &mut PathArena,
        base_lists: Vec<PathList>,
    ) -> (PathList, AddPathStats, usize) {
        let n = self.info.relation_count();
        for (r, list) in base_lists.into_iter().enumerate() {
            self.lists.insert(RelSet::single(r as u16), list);
        }
        if n == 1 {
            let list = self.lists.remove(&RelSet::single(0)).unwrap();
            return (list, self.stats, self.joinrels_planned);
        }

        let full = RelSet::all(n);
        for size in 2..=n as u32 {
            // Enumerate masks with the right population count.
            for mask in 1..=full.0 {
                let set = RelSet(mask);
                if set.len() != size || !set.is_subset_of(full) {
                    continue;
                }
                self.plan_joinrel(arena, set);
            }
        }
        let list = self.lists.remove(&full).unwrap_or_default();
        (list, self.stats, self.joinrels_planned)
    }

    fn plan_joinrel(&mut self, arena: &mut PathArena, set: RelSet) {
        let mut list = PathList::new();
        let mut planned = false;
        let partitions: Vec<RelSet> = set.proper_submasks_with_first().collect();
        for left in partitions {
            let right = RelSet(set.0 & !left.0);
            if !self.lists.contains_key(&left) || !self.lists.contains_key(&right) {
                continue; // a side is disconnected
            }
            if !self.info.connected(left, right) {
                continue; // would be a Cartesian product
            }
            if !self.options.enable_bushy && left.len() > 1 && right.len() > 1 {
                continue;
            }
            planned = true;
            self.make_joins(arena, &mut list, left, right);
            self.make_joins(arena, &mut list, right, left);
        }
        if planned && !list.is_empty() {
            // §V-D: apply the subset-cost pruning once the relation set is
            // fully planned — "This pruning process reduces the search
            // space of the join planner, while preserving all useful
            // plans."
            if self.options.prune_mode == PruneMode::KeepIoc && self.options.subset_pruning {
                list.subset_cost_sweep(arena, &mut self.stats);
            }
            self.joinrels_planned += 1;
            self.lists.insert(set, list);
        }
    }

    /// Generates hash, merge and nested-loop paths for `outer ⋈ inner`.
    fn make_joins(
        &mut self,
        arena: &mut PathArena,
        list: &mut PathList,
        outer_set: RelSet,
        inner_set: RelSet,
    ) {
        let info = self.info;
        let set = outer_set.union(inner_set);
        let output_rows = info.joinrel_rows(set);
        let edges: Vec<(EcId, (u16, u16))> = info
            .edges_between(outer_set, inner_set)
            .iter()
            .map(|e| (e.ec, (e.left.1, e.right.1)))
            .collect();
        let qual_ops = edges.len() as u32;
        let inner_width = info.joinrel_width(inner_set);

        let outer_ids: Vec<PathId> = self.lists[&outer_set].ids().to_vec();
        let inner_ids: Vec<PathId> = self.lists[&inner_set].ids().to_vec();

        for &outer_id in &outer_ids {
            for &inner_id in &inner_ids {
                self.hash_join(
                    arena,
                    list,
                    outer_id,
                    inner_id,
                    output_rows,
                    qual_ops,
                    inner_width,
                    set,
                );
                for &(ec, _) in &edges {
                    self.merge_join(
                        arena,
                        list,
                        outer_id,
                        inner_id,
                        ec,
                        output_rows,
                        qual_ops,
                        set,
                    );
                }
                if self.options.enable_nestloop {
                    self.nest_loop_plain(
                        arena,
                        list,
                        outer_id,
                        inner_id,
                        output_rows,
                        qual_ops,
                        set,
                    );
                }
            }
            // Parameterized inner index scans (PostgreSQL 8.3 creates these
            // at join time when the inner is a single base relation).
            if self.options.enable_nestloop && inner_set.len() == 1 {
                self.nest_loop_param(
                    arena,
                    list,
                    outer_id,
                    inner_set.first(),
                    outer_set,
                    output_rows,
                    qual_ops,
                    set,
                );
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn hash_join(
        &mut self,
        arena: &mut PathArena,
        list: &mut PathList,
        outer_id: PathId,
        inner_id: PathId,
        output_rows: f64,
        qual_ops: u32,
        inner_width: u32,
        set: RelSet,
    ) {
        let (outer, inner) = (arena.get(outer_id).clone(), arena.get(inner_id).clone());
        let j = JoinInput {
            outer_cost: outer.cost,
            outer_rows: outer.rows,
            inner_cost: inner.cost,
            inner_rows: inner.rows,
            output_rows,
            qual_ops,
        };
        let cost = cost_hashjoin(self.params, &j, inner_width);
        let extra = cost.total - outer.cost.total - inner.cost.total;
        let path = Path {
            kind: PathKind::HashJoin {
                outer: outer_id,
                inner: inner_id,
            },
            rels: set,
            rows: output_rows,
            cost,
            rescan: cost,
            pathkeys: vec![], // conservative, as in PostgreSQL (multi-batch)
            leaf_ioc: outer.leaf_ioc.union(inner.leaf_ioc).expect("disjoint rels"),
            linear: outer.linear.combine(&inner.linear, extra.max(0.0)),
            leaf_access: merge_leaf_access(&outer.leaf_access, &inner.leaf_access),
            probe_access: merge_probe_access(&outer.probe_access, &inner.probe_access),
        };
        list.add_path(arena, path, self.options.prune_mode, &mut self.stats);
    }

    #[allow(clippy::too_many_arguments)]
    fn merge_join(
        &mut self,
        arena: &mut PathArena,
        list: &mut PathList,
        outer_id: PathId,
        inner_id: PathId,
        ec: EcId,
        output_rows: f64,
        qual_ops: u32,
        set: RelSet,
    ) {
        // Sort either side when it does not already deliver the key order.
        let outer_sorted = self.ensure_sorted(arena, outer_id, ec);
        let inner_sorted = self.ensure_sorted(arena, inner_id, ec);
        let (outer, inner) = (
            arena.get(outer_sorted).clone(),
            arena.get(inner_sorted).clone(),
        );
        let j = JoinInput {
            outer_cost: outer.cost,
            outer_rows: outer.rows,
            inner_cost: inner.cost,
            inner_rows: inner.rows,
            output_rows,
            qual_ops,
        };
        let cost = cost_mergejoin(self.params, &j);
        let extra = cost.total - outer.cost.total - inner.cost.total;
        let path = Path {
            kind: PathKind::MergeJoin {
                outer: outer_sorted,
                inner: inner_sorted,
            },
            rels: set,
            rows: output_rows,
            cost,
            rescan: cost,
            pathkeys: outer.pathkeys.clone(), // merge preserves outer order
            leaf_ioc: outer.leaf_ioc.union(inner.leaf_ioc).expect("disjoint rels"),
            linear: outer.linear.combine(&inner.linear, extra.max(0.0)),
            leaf_access: merge_leaf_access(&outer.leaf_access, &inner.leaf_access),
            probe_access: merge_probe_access(&outer.probe_access, &inner.probe_access),
        };
        list.add_path(arena, path, self.options.prune_mode, &mut self.stats);
    }

    #[allow(clippy::too_many_arguments)]
    fn nest_loop_plain(
        &mut self,
        arena: &mut PathArena,
        list: &mut PathList,
        outer_id: PathId,
        inner_id: PathId,
        output_rows: f64,
        qual_ops: u32,
        set: RelSet,
    ) {
        // Inner variants: leaves rescan as-is; sorts/materials rescan
        // cheaply; composite plans must be materialized.
        let inner_kind_is_leaf = matches!(
            arena.get(inner_id).kind,
            PathKind::SeqScan { .. } | PathKind::IndexScan { .. } | PathKind::BitmapScan { .. }
        );
        let inner_is_rescannable = matches!(
            arena.get(inner_id).kind,
            PathKind::Sort { .. } | PathKind::Material { .. }
        );
        let mut variants: Vec<(PathId, bool)> = Vec::with_capacity(2);
        if inner_kind_is_leaf {
            variants.push((inner_id, true)); // rescans re-access the leaf
            variants.push((self.materialize(arena, inner_id), false));
        } else if inner_is_rescannable {
            variants.push((inner_id, false));
        } else {
            variants.push((self.materialize(arena, inner_id), false));
        }

        for (iv, reaccesses) in variants {
            let (outer, inner) = (arena.get(outer_id).clone(), arena.get(iv).clone());
            let j = JoinInput {
                outer_cost: outer.cost,
                outer_rows: outer.rows,
                inner_cost: inner.cost,
                inner_rows: inner.rows,
                output_rows,
                qual_ops,
            };
            let cost = cost_nestloop(self.params, &j, inner.rescan);
            let scale = if reaccesses { outer.rows.max(1.0) } else { 1.0 };
            let extra = cost.total - outer.cost.total - scale * inner.cost.total;
            let path = Path {
                kind: PathKind::NestLoop {
                    outer: outer_id,
                    inner: iv,
                },
                rels: set,
                rows: output_rows,
                cost,
                rescan: cost,
                pathkeys: outer.pathkeys.clone(), // NLJ preserves outer order
                leaf_ioc: outer.leaf_ioc.union(inner.leaf_ioc).expect("disjoint rels"),
                linear: outer
                    .linear
                    .combine_scaled(&inner.linear, scale, extra.max(0.0)),
                leaf_access: merge_leaf_access(&outer.leaf_access, &inner.leaf_access),
                probe_access: merge_probe_access(&outer.probe_access, &inner.probe_access),
            };
            list.add_path(arena, path, self.options.prune_mode, &mut self.stats);
        }
    }

    /// Nested loop with a parameterized inner index scan: the inner index is
    /// probed with the outer row's join key.
    #[allow(clippy::too_many_arguments)]
    fn nest_loop_param(
        &mut self,
        arena: &mut PathArena,
        list: &mut PathList,
        outer_id: PathId,
        inner_rel: u16,
        outer_set: RelSet,
        output_rows: f64,
        qual_ops: u32,
        set: RelSet,
    ) {
        let info = self.info;
        let outer = arena.get(outer_id).clone();
        let inner_table = info.base[inner_rel as usize].table;
        let lookup_cols = info.inner_join_columns(inner_rel, outer_set);
        for (col, ec, sel) in lookup_cols {
            let catalog_ixs = info
                .catalog
                .table_indexes(inner_table)
                .iter()
                .map(|id| (IndexRef::Catalog(*id), info.catalog.index(*id)));
            let config_ixs = info
                .config
                .indexes()
                .iter()
                .enumerate()
                .filter(|(_, ix)| ix.table() == inner_table)
                .map(|(i, ix)| (IndexRef::Config(i), ix));
            for (ixref, index) in catalog_ixs.chain(config_ixs) {
                let Some(inner_path) = param_index_scan(
                    info,
                    self.params,
                    inner_rel,
                    ixref,
                    index,
                    col,
                    ec,
                    sel,
                    outer.rows,
                ) else {
                    continue;
                };
                let inner_id = arena.add(inner_path);
                let inner = arena.get(inner_id).clone();
                let j = JoinInput {
                    outer_cost: outer.cost,
                    outer_rows: outer.rows,
                    inner_cost: inner.cost,
                    inner_rows: inner.rows,
                    output_rows,
                    // The probe enforces this join qual via the index.
                    qual_ops: qual_ops.saturating_sub(1),
                };
                let cost = cost_nestloop(self.params, &j, inner.rescan);
                let scale = outer.rows.max(1.0);
                let extra = cost.total - outer.cost.total - scale * inner.cost.total;
                let path = Path {
                    kind: PathKind::NestLoop {
                        outer: outer_id,
                        inner: inner_id,
                    },
                    rels: set,
                    rows: output_rows,
                    cost,
                    rescan: cost,
                    pathkeys: outer.pathkeys.clone(),
                    leaf_ioc: outer.leaf_ioc.union(inner.leaf_ioc).expect("disjoint rels"),
                    linear: outer
                        .linear
                        .combine_scaled(&inner.linear, scale, extra.max(0.0)),
                    leaf_access: outer.leaf_access.clone(),
                    probe_access: merge_probe_access(&outer.probe_access, &inner.probe_access),
                };
                list.add_path(arena, path, self.options.prune_mode, &mut self.stats);
            }
        }
    }

    /// Returns `input` if already ordered on `ec`, else a (memoized) sort
    /// wrapper.
    fn ensure_sorted(&mut self, arena: &mut PathArena, input: PathId, ec: EcId) -> PathId {
        if arena.get(input).provides_order(&[ec]) {
            return input;
        }
        self.sort_path(arena, input, vec![ec])
    }

    /// Builds (or reuses) an explicit sort above `input`.
    pub fn sort_path(&mut self, arena: &mut PathArena, input: PathId, keys: Vec<EcId>) -> PathId {
        if let Some(&id) = self.sorts.get(&(input, keys.clone())) {
            return id;
        }
        let id = make_sort_path(arena, self.info, self.params, input, keys.clone());
        self.sorts.insert((input, keys), id);
        id
    }

    /// Builds (or reuses) a materialize node above `input`.
    fn materialize(&mut self, arena: &mut PathArena, input: PathId) -> PathId {
        if let Some(&id) = self.materials.get(&input) {
            return id;
        }
        let id = make_material_path(arena, self.info, self.params, input);
        self.materials.insert(input, id);
        id
    }
}

/// Standalone sort-wrapper construction (shared with the grouping planner).
pub fn make_sort_path(
    arena: &mut PathArena,
    info: &PlannerInfo<'_>,
    params: &CostParams,
    input: PathId,
    keys: Vec<EcId>,
) -> PathId {
    let inp = arena.get(input).clone();
    let width = info.joinrel_width(inp.rels);
    let sort = cost_sort(params, inp.rows, width);
    let cost = Cost::new(inp.cost.total + sort.startup, inp.cost.total + sort.total);
    let path = Path {
        kind: PathKind::Sort { input },
        rels: inp.rels,
        rows: inp.rows,
        cost,
        // Rescanning a finished sort replays the stored result.
        rescan: Cost::run_only(sort.run()),
        pathkeys: keys,
        leaf_ioc: inp.leaf_ioc,
        linear: inp.linear.plus_c0(sort.total),
        leaf_access: inp.leaf_access.clone(),
        probe_access: inp.probe_access.clone(),
    };
    arena.add(path)
}

/// Standalone materialize-wrapper construction.
pub fn make_material_path(
    arena: &mut PathArena,
    info: &PlannerInfo<'_>,
    params: &CostParams,
    input: PathId,
) -> PathId {
    let inp = arena.get(input).clone();
    let width = info.joinrel_width(inp.rels);
    let mat = cost_material(params, inp.rows, width);
    let rescan = cost_rescan_material(params, inp.rows, width);
    let cost = Cost::new(inp.cost.startup, inp.cost.total + mat.total);
    let path = Path {
        kind: PathKind::Material { input },
        rels: inp.rels,
        rows: inp.rows,
        cost,
        rescan,
        pathkeys: inp.pathkeys.clone(),
        leaf_ioc: inp.leaf_ioc,
        linear: inp.linear.plus_c0(mat.total),
        leaf_access: inp.leaf_access.clone(),
        probe_access: inp.probe_access.clone(),
    };
    arena.add(path)
}

fn merge_leaf_access(a: &[f64], b: &[f64]) -> Vec<f64> {
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

fn merge_probe_access(a: &[f64], b: &[f64]) -> Vec<f64> {
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::collect_access_paths;
    use pinum_catalog::{Catalog, Column, ColumnType, Configuration, ConfigurationBuilder, Table};
    use pinum_query::{Query, QueryBuilder};

    fn setup() -> (Catalog, Query) {
        let mut cat = Catalog::new();
        cat.add_table(Table::new(
            "f",
            1_000_000,
            vec![
                Column::new("fk1", ColumnType::Int8).with_ndv(10_000),
                Column::new("fk2", ColumnType::Int8).with_ndv(1_000),
                Column::new("v", ColumnType::Int4).with_ndv(100),
            ],
        ));
        cat.add_table(Table::new(
            "d1",
            10_000,
            vec![
                Column::new("k", ColumnType::Int8).with_ndv(10_000),
                Column::new("a", ColumnType::Int4).with_ndv(50),
            ],
        ));
        cat.add_table(Table::new(
            "d2",
            1_000,
            vec![Column::new("k", ColumnType::Int8).with_ndv(1_000)],
        ));
        let q = QueryBuilder::new("q", &cat)
            .table("f")
            .table("d1")
            .table("d2")
            .join(("f", "fk1"), ("d1", "k"))
            .join(("f", "fk2"), ("d2", "k"))
            .filter_range(("f", "v"), 0.0, 1.0)
            .select(("d1", "a"))
            .build();
        (cat, q)
    }

    fn run_search(
        cat: &Catalog,
        q: &Query,
        cfg: &Configuration,
        options: JoinSearchOptions,
    ) -> (PathArena, PathList) {
        let info = PlannerInfo::new(cat, q, cfg);
        let params = CostParams::default();
        let mut arena = PathArena::new();
        let keep_all = false;
        let mut base_lists = Vec::new();
        let mut stats = AddPathStats::default();
        for r in 0..info.relation_count() as u16 {
            let acc = collect_access_paths(&info, &params, r, keep_all);
            let mut list = PathList::new();
            for p in acc.paths {
                list.add_path(&mut arena, p, options.prune_mode, &mut stats);
            }
            base_lists.push(list);
        }
        let search = JoinSearch::new(&info, &params, options);
        let (top, _, _) = search.run(&mut arena, base_lists);
        (arena, top)
    }

    fn default_opts(mode: PruneMode) -> JoinSearchOptions {
        JoinSearchOptions {
            enable_nestloop: true,
            enable_bushy: true,
            prune_mode: mode,
            subset_pruning: true,
        }
    }

    #[test]
    fn three_way_join_produces_plans() {
        let (cat, q) = setup();
        let cfg = Configuration::empty();
        let (arena, top) = run_search(&cat, &q, &cfg, default_opts(PruneMode::Standard));
        assert!(!top.is_empty());
        let best = top.cheapest_total(&arena).unwrap();
        let path = arena.get(best);
        assert_eq!(path.rels, RelSet::all(3));
        assert!(path.cost.total > 0.0);
    }

    #[test]
    fn linear_decomposition_survives_joins() {
        let (cat, q) = setup();
        let t = cat.table_id("f").unwrap();
        let d1 = cat.table_id("d1").unwrap();
        let cfg = ConfigurationBuilder::new()
            .whatif_index(&cat, t, vec![0])
            .whatif_index(&cat, d1, vec![0])
            .build();
        let (arena, top) = run_search(&cat, &q, &cfg, default_opts(PruneMode::KeepIoc));
        assert!(!top.is_empty());
        for &id in top.ids() {
            let p = arena.get(id);
            let eval = p.linear.eval(&p.leaf_access, &p.probe_access);
            assert!(
                (eval - p.cost.total).abs() / p.cost.total.max(1.0) < 1e-6,
                "decomposition mismatch for {}: {eval} vs {}",
                arena.describe(id),
                p.cost.total
            );
        }
    }

    #[test]
    fn disabling_nestloop_removes_nl_plans() {
        let (cat, q) = setup();
        let cfg = Configuration::empty();
        let mut opts = default_opts(PruneMode::KeepIoc);
        opts.enable_nestloop = false;
        let (arena, top) = run_search(&cat, &q, &cfg, opts);
        for &id in top.ids() {
            assert!(
                !arena.get(id).uses_nestloop(&arena),
                "NL plan survived with enable_nestloop=off: {}",
                arena.describe(id)
            );
        }
    }

    #[test]
    fn keepioc_top_list_is_not_smaller_than_standard() {
        let (cat, q) = setup();
        let t = cat.table_id("f").unwrap();
        let d1 = cat.table_id("d1").unwrap();
        let d2 = cat.table_id("d2").unwrap();
        // Covering indexes for all interesting orders, as the PINUM call
        // does.
        let cfg = ConfigurationBuilder::new()
            .whatif_index(&cat, t, vec![0])
            .whatif_index(&cat, t, vec![1])
            .whatif_index(&cat, d1, vec![0])
            .whatif_index(&cat, d2, vec![0])
            .build();
        let (arena_s, std_top) = run_search(&cat, &q, &cfg, default_opts(PruneMode::Standard));
        let (arena_k, ioc_top) = run_search(&cat, &q, &cfg, default_opts(PruneMode::KeepIoc));
        let distinct_iocs = |arena: &PathArena, list: &PathList| {
            let mut iocs: Vec<_> = list.ids().iter().map(|&i| arena.get(i).leaf_ioc).collect();
            iocs.sort_unstable();
            iocs.dedup();
            iocs.len()
        };
        // KeepIoc retains plans for at least as many distinct IOCs as the
        // standard mode, and more than one.
        assert!(distinct_iocs(&arena_k, &ioc_top) >= distinct_iocs(&arena_s, &std_top));
        assert!(
            distinct_iocs(&arena_k, &ioc_top) > 1,
            "KeepIoc should retain multiple IOC plans"
        );
    }

    #[test]
    fn best_plans_match_across_modes() {
        // The PINUM pruning must never lose the overall cheapest plan.
        let (cat, q) = setup();
        let t = cat.table_id("f").unwrap();
        let cfg = ConfigurationBuilder::new()
            .whatif_index(&cat, t, vec![0])
            .build();
        let (arena_s, top_s) = run_search(&cat, &q, &cfg, default_opts(PruneMode::Standard));
        let (arena_k, top_k) = run_search(&cat, &q, &cfg, default_opts(PruneMode::KeepIoc));
        let best_s = arena_s
            .get(top_s.cheapest_total(&arena_s).unwrap())
            .cost
            .total;
        let best_k = arena_k
            .get(top_k.cheapest_total(&arena_k).unwrap())
            .cost
            .total;
        assert!(
            (best_s - best_k).abs() / best_s < 1e-9,
            "best plans diverge: {best_s} vs {best_k}"
        );
    }
}
