//! The grouping planner (paper Fig. 2): adds grouping constructs and final
//! ordering to the join planner's output.
//!
//! "On the return path, the grouping planner adds the grouping constructs
//! such as group-by, order-by, distinct etc. to the plans. If the grouping
//! can be done using one of the interesting orders covered by the plan then
//! the plan is forwarded as such, otherwise sort steps are added."

use crate::addpath::{AddPathStats, PathList, PruneMode};
use crate::joinsearch::make_sort_path;
use crate::path::{AggKind, Path, PathArena, PathId, PathKind};
use crate::preprocess::{EcId, PlannerInfo};
use pinum_cost::agg::{cost_agg, AggStrategy};
use pinum_cost::{Cost, CostParams};

/// Applies grouping and ordering to every surviving join path, returning
/// the finished path list.
pub fn finish_paths(
    arena: &mut PathArena,
    info: &PlannerInfo<'_>,
    params: &CostParams,
    top: PathList,
    mode: PruneMode,
    stats: &mut AddPathStats,
) -> PathList {
    let mut group_ecs: Vec<EcId> = info.group_order.clone();
    group_ecs.dedup();
    let mut sorted_group_ecs = group_ecs.clone();
    sorted_group_ecs.sort_by_key(|e| e.0);
    sorted_group_ecs.dedup();

    let mut finished = PathList::new();
    for &id in top.ids().to_vec().iter() {
        let grouped: Vec<PathId> = if sorted_group_ecs.is_empty() {
            vec![id]
        } else {
            let mut variants = Vec::with_capacity(3);
            if prefix_covers_set(&arena.get(id).pathkeys, &sorted_group_ecs) {
                // Streaming (sorted) aggregation reuses the delivered order.
                variants.push(agg_path(arena, info, params, id, AggKind::Sorted));
            } else {
                variants.push(agg_path(arena, info, params, id, AggKind::Hashed));
                let sorted = make_sort_path(arena, info, params, id, group_ecs.clone());
                variants.push(agg_path(arena, info, params, sorted, AggKind::Sorted));
            }
            variants
        };

        for gid in grouped {
            let final_id = if info.required_order.is_empty()
                || arena.get(gid).provides_order(&info.required_order)
            {
                gid
            } else {
                make_sort_path(arena, info, params, gid, info.required_order.clone())
            };
            let path = arena.get(final_id).clone();
            finished.add_path(arena, path, mode, stats);
        }
    }
    finished
}

/// True if the first `set.len()` pathkeys are a permutation of `set`
/// (sorted agg only needs the input *grouped*, any key order works).
fn prefix_covers_set(pathkeys: &[EcId], set: &[EcId]) -> bool {
    if pathkeys.len() < set.len() {
        return false;
    }
    let mut prefix: Vec<u16> = pathkeys[..set.len()].iter().map(|e| e.0).collect();
    prefix.sort_unstable();
    prefix.dedup();
    let expect: Vec<u16> = set.iter().map(|e| e.0).collect();
    prefix == expect
}

/// Wraps `input` in an aggregation node.
fn agg_path(
    arena: &mut PathArena,
    info: &PlannerInfo<'_>,
    params: &CostParams,
    input: PathId,
    kind: AggKind,
) -> PathId {
    let inp = arena.get(input).clone();
    let group_cols = info.group_order.len() as u32;
    let strategy = match kind {
        AggKind::Sorted => AggStrategy::Sorted,
        AggKind::Hashed => AggStrategy::Hashed,
        AggKind::Plain => AggStrategy::Plain,
    };
    let agg = cost_agg(params, strategy, inp.rows, info.num_groups, group_cols, 1);
    let cost = match kind {
        // Streaming: startup stays the input's.
        AggKind::Sorted => Cost::new(inp.cost.startup + agg.startup, inp.cost.total + agg.total),
        // Blocking: everything must be consumed first.
        AggKind::Hashed | AggKind::Plain => {
            Cost::new(inp.cost.total + agg.startup, inp.cost.total + agg.total)
        }
    };
    let pathkeys = match kind {
        AggKind::Sorted => {
            let n = info.group_order.len().min(inp.pathkeys.len());
            inp.pathkeys[..n].to_vec()
        }
        _ => vec![],
    };
    let path = Path {
        kind: PathKind::Agg { input, kind },
        rels: inp.rels,
        rows: info.num_groups,
        cost,
        rescan: cost,
        pathkeys,
        leaf_ioc: inp.leaf_ioc,
        linear: inp.linear.plus_c0(agg.total),
        leaf_access: inp.leaf_access.clone(),
        probe_access: inp.probe_access.clone(),
    };
    arena.add(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::collect_access_paths;
    use pinum_catalog::{Catalog, Column, ColumnType, Configuration, ConfigurationBuilder, Table};
    use pinum_query::QueryBuilder;

    fn setup() -> Catalog {
        let mut cat = Catalog::new();
        cat.add_table(Table::new(
            "t",
            100_000,
            vec![
                Column::new("a", ColumnType::Int8).with_ndv(100_000),
                Column::new("g", ColumnType::Int4).with_ndv(50),
            ],
        ));
        cat
    }

    fn finish_single_table(
        cat: &Catalog,
        q: &pinum_query::Query,
        cfg: &Configuration,
    ) -> (PathArena, PathList) {
        let info = PlannerInfo::new(cat, q, cfg);
        let params = CostParams::default();
        let mut arena = PathArena::new();
        let mut stats = AddPathStats::default();
        let mut list = PathList::new();
        for p in collect_access_paths(&info, &params, 0, false).paths {
            list.add_path(&mut arena, p, PruneMode::Standard, &mut stats);
        }
        let out = finish_paths(
            &mut arena,
            &info,
            &params,
            list,
            PruneMode::Standard,
            &mut stats,
        );
        (arena, out)
    }

    #[test]
    fn order_by_adds_sort_when_unordered() {
        let cat = setup();
        let q = QueryBuilder::new("q", &cat)
            .table("t")
            .select(("t", "g"))
            .order_by(("t", "a"))
            .build();
        let cfg = Configuration::empty();
        let (arena, out) = finish_single_table(&cat, &q, &cfg);
        let best = out.cheapest_total(&arena).unwrap();
        assert!(matches!(arena.get(best).kind, PathKind::Sort { .. }));
    }

    #[test]
    fn order_by_reuses_index_order() {
        let cat = setup();
        let t = cat.table_id("t").unwrap();
        let q = QueryBuilder::new("q", &cat)
            .table("t")
            .select(("t", "a"))
            .order_by(("t", "a"))
            .build();
        let cfg = ConfigurationBuilder::new()
            .whatif_index(&cat, t, vec![0])
            .build();
        let (arena, out) = finish_single_table(&cat, &q, &cfg);
        // Among finished paths there must be one with no sort (index
        // delivers the order); it should win since sorting 100k rows is
        // expensive.
        let best = out.cheapest_total(&arena).unwrap();
        assert!(
            matches!(arena.get(best).kind, PathKind::IndexScan { .. }),
            "expected bare index scan, got {}",
            arena.describe(best)
        );
    }

    #[test]
    fn group_by_generates_hash_and_sorted_variants() {
        let cat = setup();
        let q = QueryBuilder::new("q", &cat)
            .table("t")
            .select(("t", "g"))
            .group_by(("t", "g"))
            .build();
        let cfg = Configuration::empty();
        let (arena, out) = finish_single_table(&cat, &q, &cfg);
        assert!(!out.is_empty());
        for &id in out.ids() {
            assert!(matches!(arena.get(id).kind, PathKind::Agg { .. }));
            // Group output cardinality applies.
            assert!(arena.get(id).rows <= 51.0);
        }
    }

    #[test]
    fn prefix_cover_checks_permutations() {
        assert!(prefix_covers_set(&[EcId(2), EcId(1)], &[EcId(1), EcId(2)]));
        assert!(prefix_covers_set(&[EcId(1)], &[EcId(1)]));
        assert!(!prefix_covers_set(&[EcId(1)], &[EcId(2)]));
        assert!(!prefix_covers_set(&[], &[EcId(1)]));
        assert!(prefix_covers_set(
            &[EcId(3), EcId(0), EcId(9)],
            &[EcId(0), EcId(3)]
        ));
    }
}
