//! Executable plan trees: the owned, self-describing form of a winning
//! path, used by `EXPLAIN` output, the INUM cache diagnostics, and the
//! mini execution engine.

use crate::path::{AggKind, IndexRef, PathArena, PathId, PathKind};
use crate::preprocess::PlannerInfo;
use pinum_catalog::TableId;
use pinum_cost::Cost;
use pinum_query::{QualifiedColumn, RelIdx};
use std::fmt::Write as _;

/// An equi-join qual `(outer column, inner column)` attached to a join node.
pub type JoinQual = (QualifiedColumn, QualifiedColumn);

/// A fully resolved plan operator tree.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanNode {
    SeqScan {
        rel: RelIdx,
        table: TableId,
        rows: f64,
        cost: Cost,
    },
    IndexScan {
        rel: RelIdx,
        table: TableId,
        /// Resolved index name (catalog or what-if).
        index_name: String,
        key_columns: Vec<u16>,
        index_only: bool,
        /// True when this is a parameterized nested-loop inner probe.
        parameterized: bool,
        rows: f64,
        cost: Cost,
    },
    BitmapScan {
        rel: RelIdx,
        table: TableId,
        index_name: String,
        key_columns: Vec<u16>,
        rows: f64,
        cost: Cost,
    },
    Sort {
        input: Box<PlanNode>,
        /// Sort keys resolved to concrete columns of the input.
        keys: Vec<QualifiedColumn>,
        rows: f64,
        cost: Cost,
    },
    Material {
        input: Box<PlanNode>,
        rows: f64,
        cost: Cost,
    },
    NestLoop {
        outer: Box<PlanNode>,
        inner: Box<PlanNode>,
        quals: Vec<JoinQual>,
        rows: f64,
        cost: Cost,
    },
    MergeJoin {
        outer: Box<PlanNode>,
        inner: Box<PlanNode>,
        quals: Vec<JoinQual>,
        rows: f64,
        cost: Cost,
    },
    HashJoin {
        outer: Box<PlanNode>,
        inner: Box<PlanNode>,
        quals: Vec<JoinQual>,
        rows: f64,
        cost: Cost,
    },
    Agg {
        input: Box<PlanNode>,
        kind: AggKind,
        rows: f64,
        cost: Cost,
    },
}

impl PlanNode {
    pub fn total_cost(&self) -> f64 {
        self.cost().total
    }

    pub fn cost(&self) -> Cost {
        match self {
            PlanNode::SeqScan { cost, .. }
            | PlanNode::IndexScan { cost, .. }
            | PlanNode::BitmapScan { cost, .. }
            | PlanNode::Sort { cost, .. }
            | PlanNode::Material { cost, .. }
            | PlanNode::NestLoop { cost, .. }
            | PlanNode::MergeJoin { cost, .. }
            | PlanNode::HashJoin { cost, .. }
            | PlanNode::Agg { cost, .. } => *cost,
        }
    }

    pub fn rows(&self) -> f64 {
        match self {
            PlanNode::SeqScan { rows, .. }
            | PlanNode::IndexScan { rows, .. }
            | PlanNode::BitmapScan { rows, .. }
            | PlanNode::Sort { rows, .. }
            | PlanNode::Material { rows, .. }
            | PlanNode::NestLoop { rows, .. }
            | PlanNode::MergeJoin { rows, .. }
            | PlanNode::HashJoin { rows, .. }
            | PlanNode::Agg { rows, .. } => *rows,
        }
    }

    /// Number of operator nodes.
    pub fn node_count(&self) -> usize {
        1 + match self {
            PlanNode::SeqScan { .. } | PlanNode::IndexScan { .. } | PlanNode::BitmapScan { .. } => {
                0
            }
            PlanNode::Sort { input, .. }
            | PlanNode::Material { input, .. }
            | PlanNode::Agg { input, .. } => input.node_count(),
            PlanNode::NestLoop { outer, inner, .. }
            | PlanNode::MergeJoin { outer, inner, .. }
            | PlanNode::HashJoin { outer, inner, .. } => outer.node_count() + inner.node_count(),
        }
    }

    /// True if any node is a nested-loop join.
    pub fn uses_nestloop(&self) -> bool {
        match self {
            PlanNode::NestLoop { .. } => true,
            PlanNode::SeqScan { .. } | PlanNode::IndexScan { .. } | PlanNode::BitmapScan { .. } => {
                false
            }
            PlanNode::Sort { input, .. }
            | PlanNode::Material { input, .. }
            | PlanNode::Agg { input, .. } => input.uses_nestloop(),
            PlanNode::MergeJoin { outer, inner, .. } | PlanNode::HashJoin { outer, inner, .. } => {
                outer.uses_nestloop() || inner.uses_nestloop()
            }
        }
    }

    /// PostgreSQL-flavoured `EXPLAIN` rendering.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        let line = |out: &mut String, name: &str, detail: &str, rows: f64, cost: Cost| {
            let _ = writeln!(
                out,
                "{pad}{name}{detail}  (cost={:.2}..{:.2} rows={rows:.0})",
                cost.startup, cost.total
            );
        };
        match self {
            PlanNode::SeqScan {
                table, rows, cost, ..
            } => {
                line(out, "Seq Scan", &format!(" on {table}"), *rows, *cost);
            }
            PlanNode::IndexScan {
                table,
                index_name,
                index_only,
                parameterized,
                rows,
                cost,
                ..
            } => {
                let kind = if *index_only {
                    "Index Only Scan"
                } else {
                    "Index Scan"
                };
                let par = if *parameterized {
                    " (parameterized)"
                } else {
                    ""
                };
                line(
                    out,
                    kind,
                    &format!(" using {index_name} on {table}{par}"),
                    *rows,
                    *cost,
                );
            }
            PlanNode::BitmapScan {
                table,
                index_name,
                rows,
                cost,
                ..
            } => {
                line(
                    out,
                    "Bitmap Heap Scan",
                    &format!(" using {index_name} on {table}"),
                    *rows,
                    *cost,
                );
            }
            PlanNode::Sort {
                input,
                keys,
                rows,
                cost,
            } => {
                let detail = format!(
                    " key: {}",
                    keys.iter()
                        .map(|(r, c)| format!("r{r}.c{c}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                line(out, "Sort", &detail, *rows, *cost);
                input.explain_into(out, depth + 1);
            }
            PlanNode::Material { input, rows, cost } => {
                line(out, "Materialize", "", *rows, *cost);
                input.explain_into(out, depth + 1);
            }
            PlanNode::NestLoop {
                outer,
                inner,
                rows,
                cost,
                ..
            } => {
                line(out, "Nested Loop", "", *rows, *cost);
                outer.explain_into(out, depth + 1);
                inner.explain_into(out, depth + 1);
            }
            PlanNode::MergeJoin {
                outer,
                inner,
                rows,
                cost,
                ..
            } => {
                line(out, "Merge Join", "", *rows, *cost);
                outer.explain_into(out, depth + 1);
                inner.explain_into(out, depth + 1);
            }
            PlanNode::HashJoin {
                outer,
                inner,
                rows,
                cost,
                ..
            } => {
                line(out, "Hash Join", "", *rows, *cost);
                outer.explain_into(out, depth + 1);
                inner.explain_into(out, depth + 1);
            }
            PlanNode::Agg {
                input,
                kind,
                rows,
                cost,
            } => {
                let name = match kind {
                    AggKind::Sorted => "GroupAggregate",
                    AggKind::Hashed => "HashAggregate",
                    AggKind::Plain => "Aggregate",
                };
                line(out, name, "", *rows, *cost);
                input.explain_into(out, depth + 1);
            }
        }
    }
}

/// Materializes the owned plan tree for a path.
pub fn build_plan(arena: &PathArena, info: &PlannerInfo<'_>, id: PathId) -> PlanNode {
    let p = arena.get(id);
    let cost = p.cost;
    let rows = p.rows;
    match &p.kind {
        PathKind::SeqScan { rel } => PlanNode::SeqScan {
            rel: *rel,
            table: info.base[*rel as usize].table,
            rows,
            cost,
        },
        PathKind::IndexScan {
            rel,
            index,
            index_only,
            param,
        } => {
            let (name, keys) = resolve_index(info, *index);
            PlanNode::IndexScan {
                rel: *rel,
                table: info.base[*rel as usize].table,
                index_name: name,
                key_columns: keys,
                index_only: *index_only,
                parameterized: param.is_some(),
                rows,
                cost,
            }
        }
        PathKind::BitmapScan { rel, index } => {
            let (name, keys) = resolve_index(info, *index);
            PlanNode::BitmapScan {
                rel: *rel,
                table: info.base[*rel as usize].table,
                index_name: name,
                key_columns: keys,
                rows,
                cost,
            }
        }
        PathKind::Sort { input } => {
            let rels = p.rels;
            let keys = p
                .pathkeys
                .iter()
                .filter_map(|&ec| info.ec_member_in(ec, rels))
                .collect();
            PlanNode::Sort {
                input: Box::new(build_plan(arena, info, *input)),
                keys,
                rows,
                cost,
            }
        }
        PathKind::Material { input } => PlanNode::Material {
            input: Box::new(build_plan(arena, info, *input)),
            rows,
            cost,
        },
        PathKind::NestLoop { outer, inner }
        | PathKind::MergeJoin { outer, inner }
        | PathKind::HashJoin { outer, inner } => {
            let quals = join_quals(arena, info, *outer, *inner);
            let o = Box::new(build_plan(arena, info, *outer));
            let i = Box::new(build_plan(arena, info, *inner));
            match &p.kind {
                PathKind::NestLoop { .. } => PlanNode::NestLoop {
                    outer: o,
                    inner: i,
                    quals,
                    rows,
                    cost,
                },
                PathKind::MergeJoin { .. } => PlanNode::MergeJoin {
                    outer: o,
                    inner: i,
                    quals,
                    rows,
                    cost,
                },
                _ => PlanNode::HashJoin {
                    outer: o,
                    inner: i,
                    quals,
                    rows,
                    cost,
                },
            }
        }
        PathKind::Agg { input, kind } => PlanNode::Agg {
            input: Box::new(build_plan(arena, info, *input)),
            kind: *kind,
            rows,
            cost,
        },
    }
}

fn resolve_index(info: &PlannerInfo<'_>, ixref: IndexRef) -> (String, Vec<u16>) {
    match ixref {
        IndexRef::Catalog(id) => {
            let ix = info.catalog.index(id);
            (ix.name().to_string(), ix.key_columns().to_vec())
        }
        IndexRef::Config(i) => {
            let ix = &info.config.indexes()[i];
            (ix.name().to_string(), ix.key_columns().to_vec())
        }
    }
}

fn join_quals(
    arena: &PathArena,
    info: &PlannerInfo<'_>,
    outer: PathId,
    inner: PathId,
) -> Vec<JoinQual> {
    let outer_set = arena.get(outer).rels;
    let inner_set = arena.get(inner).rels;
    info.edges_between(outer_set, inner_set)
        .iter()
        .map(|e| {
            if outer_set.contains(e.left.0) {
                (e.left, e.right)
            } else {
                (e.right, e.left)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::collect_access_paths;
    use crate::addpath::{AddPathStats, PathList, PruneMode};
    use crate::joinsearch::{JoinSearch, JoinSearchOptions};
    use pinum_catalog::{Catalog, Column, ColumnType, Configuration, Table};
    use pinum_cost::CostParams;
    use pinum_query::QueryBuilder;

    #[test]
    fn build_and_explain_join_plan() {
        let mut cat = Catalog::new();
        cat.add_table(Table::new(
            "a",
            10_000,
            vec![Column::new("k", ColumnType::Int8).with_ndv(10_000)],
        ));
        cat.add_table(Table::new(
            "b",
            1_000,
            vec![Column::new("k", ColumnType::Int8).with_ndv(1_000)],
        ));
        let q = QueryBuilder::new("q", &cat)
            .table("a")
            .table("b")
            .join(("a", "k"), ("b", "k"))
            .select(("a", "k"))
            .build();
        let cfg = Configuration::empty();
        let info = PlannerInfo::new(&cat, &q, &cfg);
        let params = CostParams::default();
        let mut arena = PathArena::new();
        let mut stats = AddPathStats::default();
        let mut base = Vec::new();
        for r in 0..2u16 {
            let mut list = PathList::new();
            for p in collect_access_paths(&info, &params, r, false).paths {
                list.add_path(&mut arena, p, PruneMode::Standard, &mut stats);
            }
            base.push(list);
        }
        let opts = JoinSearchOptions {
            enable_nestloop: true,
            enable_bushy: true,
            prune_mode: PruneMode::Standard,
            subset_pruning: true,
        };
        let (top, _, _) = JoinSearch::new(&info, &params, opts).run(&mut arena, base);
        let best = top.cheapest_total(&arena).unwrap();
        let plan = build_plan(&arena, &info, best);
        assert!(plan.node_count() >= 3);
        let text = plan.explain();
        assert!(
            text.contains("Join") || text.contains("Nested Loop"),
            "{text}"
        );
        assert!(text.contains("Seq Scan"), "{text}");
        // The join must carry the equi-join qual.
        match &plan {
            PlanNode::HashJoin { quals, .. }
            | PlanNode::MergeJoin { quals, .. }
            | PlanNode::NestLoop { quals, .. } => {
                assert_eq!(quals.len(), 1);
            }
            other => panic!("unexpected root {other:?}"),
        }
    }
}
