//! Access and join paths: the DP's partial plans.
//!
//! Every path carries, besides the usual cost/rows/pathkeys:
//!
//! * its **leaf interesting-order combination** ([`Ioc`]): which interesting
//!   order each base relation's leaf access uses — the plan's *requirement*
//!   on a configuration in INUM terms;
//! * its **linear cost decomposition** `total = c0 + Σ coef_r · access_r`,
//!   where `access_r` is the build-time standalone access cost of the leaf
//!   on relation `r`. Hash/merge joins keep `coef = 1` (INUM observation 1);
//!   an unmaterialized nested-loop inner multiplies its subtree's
//!   coefficients by the outer cardinality; parameterized inner index scans
//!   fold into `c0` (the INUM approximation the paper quantifies in §VI-C).

use crate::preprocess::EcId;
use crate::relset::RelSet;
use pinum_catalog::IndexId;
use pinum_cost::Cost;
use pinum_query::{Ioc, RelIdx};

/// Identifies a path inside one [`PathArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PathId(pub u32);

/// Which index a scan uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexRef {
    /// A materialized index of the catalog.
    Catalog(IndexId),
    /// The `i`-th index of the what-if configuration.
    Config(usize),
}

/// Aggregation strategy tag (mirrors `pinum_cost::agg::AggStrategy` but kept
/// here to avoid leaking cost-model types into plan trees).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggKind {
    Sorted,
    Hashed,
    Plain,
}

/// The operator of a path node.
#[derive(Debug, Clone, PartialEq)]
pub enum PathKind {
    SeqScan {
        rel: RelIdx,
    },
    IndexScan {
        rel: RelIdx,
        index: IndexRef,
        index_only: bool,
        /// `Some(ec)` when this is a parameterized inner scan probing the
        /// join key of equivalence class `ec` (constructed only as a
        /// nested-loop inner, never enters path lists).
        param: Option<EcId>,
    },
    /// Bitmap index + heap scan: order-destroying medium-selectivity
    /// access (PostgreSQL 8.3's bitmap scans).
    BitmapScan {
        rel: RelIdx,
        index: IndexRef,
    },
    Sort {
        input: PathId,
    },
    Material {
        input: PathId,
    },
    NestLoop {
        outer: PathId,
        inner: PathId,
    },
    MergeJoin {
        outer: PathId,
        inner: PathId,
    },
    HashJoin {
        outer: PathId,
        inner: PathId,
    },
    Agg {
        input: PathId,
        kind: AggKind,
    },
}

/// Linear decomposition of a path's total cost over its leaf access costs.
///
/// Two families of terms: *standalone* access (`coefs`, multiplied by the
/// cost of scanning the relation once under the required order) and
/// *probe* access (`probe_coefs`, multiplied by the per-probe cost of a
/// parameterized index lookup — INUM's treatment of nested-loop inners,
/// whose access cost is one probe times the outer cardinality).
#[derive(Debug, Clone, PartialEq)]
pub struct LinearCost {
    /// Constant ("internal") part.
    pub c0: f64,
    /// Per-relation coefficient on the build-time leaf access cost.
    pub coefs: Vec<f64>,
    /// Per-relation coefficient on the per-probe access cost.
    pub probe_coefs: Vec<f64>,
}

impl LinearCost {
    pub fn zero(n_rels: usize) -> Self {
        Self {
            c0: 0.0,
            coefs: vec![0.0; n_rels],
            probe_coefs: vec![0.0; n_rels],
        }
    }

    /// The decomposition of a plain leaf: `1 · access_rel`.
    pub fn leaf(n_rels: usize, rel: RelIdx) -> Self {
        let mut l = Self::zero(n_rels);
        l.coefs[rel as usize] = 1.0;
        l
    }

    /// A fully-constant cost.
    pub fn constant(n_rels: usize, c0: f64) -> Self {
        let mut l = Self::zero(n_rels);
        l.c0 = c0;
        l
    }

    /// The decomposition of a parameterized probe leaf: `1 · probe_rel`
    /// plus a residual constant (the difference between the charged
    /// per-execution cost and the reference probe cost).
    pub fn probe_leaf(n_rels: usize, rel: RelIdx, residual: f64) -> Self {
        let mut l = Self::zero(n_rels);
        l.probe_coefs[rel as usize] = 1.0;
        l.c0 = residual;
        l
    }

    /// `self + other`, plus an extra constant.
    pub fn combine(&self, other: &LinearCost, extra_c0: f64) -> Self {
        self.combine_scaled(other, 1.0, extra_c0)
    }

    /// `self + scale · other + extra_c0` — the nested-loop composition where
    /// the inner subtree is re-executed `scale` times.
    pub fn combine_scaled(&self, other: &LinearCost, scale: f64, extra_c0: f64) -> Self {
        debug_assert_eq!(self.coefs.len(), other.coefs.len());
        Self {
            c0: self.c0 + scale * other.c0 + extra_c0,
            coefs: self
                .coefs
                .iter()
                .zip(&other.coefs)
                .map(|(a, b)| a + scale * b)
                .collect(),
            probe_coefs: self
                .probe_coefs
                .iter()
                .zip(&other.probe_coefs)
                .map(|(a, b)| a + scale * b)
                .collect(),
        }
    }

    /// Adds a constant.
    pub fn plus_c0(&self, extra: f64) -> Self {
        Self {
            c0: self.c0 + extra,
            coefs: self.coefs.clone(),
            probe_coefs: self.probe_coefs.clone(),
        }
    }

    /// Evaluates against per-relation standalone and per-probe access
    /// costs.
    pub fn eval(&self, access: &[f64], probes: &[f64]) -> f64 {
        debug_assert_eq!(access.len(), self.coefs.len());
        debug_assert_eq!(probes.len(), self.probe_coefs.len());
        self.c0
            + self
                .coefs
                .iter()
                .zip(access)
                .map(|(c, a)| c * a)
                .sum::<f64>()
            + self
                .probe_coefs
                .iter()
                .zip(probes)
                .map(|(c, a)| c * a)
                .sum::<f64>()
    }
}

/// A partial plan.
#[derive(Debug, Clone)]
pub struct Path {
    pub kind: PathKind,
    /// Relations joined so far.
    pub rels: RelSet,
    /// Estimated output rows.
    pub rows: f64,
    /// Startup/total cost.
    pub cost: Cost,
    /// Cost to re-execute after the first run (used when this path is a
    /// nested-loop inner). For most nodes this equals `cost`, for
    /// materialize it is the cheap tuplestore re-read.
    pub rescan: Cost,
    /// Output ordering as equivalence classes, prefix semantics.
    pub pathkeys: Vec<EcId>,
    /// Leaf interesting-order requirements (INUM's `S_plan`).
    pub leaf_ioc: Ioc,
    /// Linear decomposition of `cost.total` over leaf access costs.
    pub linear: LinearCost,
    /// Build-time standalone access cost per relation (only the entries for
    /// relations in `rels` with non-parameterized leaves are meaningful).
    pub leaf_access: Vec<f64>,
    /// Build-time reference per-probe cost per relation (parameterized
    /// leaves only).
    pub probe_access: Vec<f64>,
}

impl Path {
    /// `true` if this plan (sub)tree contains a nested-loop join — the flag
    /// INUM uses to segregate cached plans (§V-D).
    pub fn uses_nestloop(&self, arena: &PathArena) -> bool {
        match &self.kind {
            PathKind::NestLoop { .. } => true,
            PathKind::SeqScan { .. } | PathKind::IndexScan { .. } | PathKind::BitmapScan { .. } => {
                false
            }
            PathKind::Sort { input }
            | PathKind::Material { input }
            | PathKind::Agg { input, .. } => arena.get(*input).uses_nestloop(arena),
            PathKind::MergeJoin { outer, inner } | PathKind::HashJoin { outer, inner } => {
                arena.get(*outer).uses_nestloop(arena) || arena.get(*inner).uses_nestloop(arena)
            }
        }
    }

    /// True if `self`'s output ordering satisfies `required` (required keys
    /// are a prefix of the provided keys).
    pub fn provides_order(&self, required: &[EcId]) -> bool {
        required.len() <= self.pathkeys.len() && self.pathkeys[..required.len()] == *required
    }
}

/// Arena holding every path of one optimize call; paths reference children
/// by [`PathId`], so cloning a path is cheap and the DP never drops a child
/// that a surviving parent needs.
#[derive(Default)]
pub struct PathArena {
    paths: Vec<Path>,
}

impl PathArena {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add(&mut self, path: Path) -> PathId {
        let id = PathId(self.paths.len() as u32);
        self.paths.push(path);
        id
    }

    pub fn get(&self, id: PathId) -> &Path {
        &self.paths[id.0 as usize]
    }

    pub fn len(&self) -> usize {
        self.paths.len()
    }

    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Compact one-line rendering of a plan, for explain output and cache
    /// diagnostics, e.g. `HJ(MJ(ix(0),ix(1)),seq(2))`.
    pub fn describe(&self, id: PathId) -> String {
        let p = self.get(id);
        match &p.kind {
            PathKind::SeqScan { rel } => format!("seq({rel})"),
            PathKind::IndexScan {
                rel,
                index_only,
                param,
                ..
            } => {
                let tag = if *index_only { "ixo" } else { "ix" };
                if param.is_some() {
                    format!("{tag}*({rel})")
                } else {
                    format!("{tag}({rel})")
                }
            }
            PathKind::BitmapScan { rel, .. } => format!("bmp({rel})"),
            PathKind::Sort { input } => format!("sort({})", self.describe(*input)),
            PathKind::Material { input } => format!("mat({})", self.describe(*input)),
            PathKind::NestLoop { outer, inner } => {
                format!("NL({},{})", self.describe(*outer), self.describe(*inner))
            }
            PathKind::MergeJoin { outer, inner } => {
                format!("MJ({},{})", self.describe(*outer), self.describe(*inner))
            }
            PathKind::HashJoin { outer, inner } => {
                format!("HJ({},{})", self.describe(*outer), self.describe(*inner))
            }
            PathKind::Agg { input, kind } => {
                let tag = match kind {
                    AggKind::Sorted => "gagg",
                    AggKind::Hashed => "hagg",
                    AggKind::Plain => "agg",
                };
                format!("{tag}({})", self.describe(*input))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_cost_composition() {
        let leaf_a = LinearCost::leaf(2, 0);
        let leaf_b = LinearCost::leaf(2, 1);
        // Hash join: coefficients add, join work goes to c0.
        let hj = leaf_a.combine(&leaf_b, 5.0);
        assert_eq!(hj.c0, 5.0);
        assert_eq!(hj.coefs, vec![1.0, 1.0]);
        // NLJ with 10 outer rows re-executing the inner.
        let nlj = leaf_a.combine_scaled(&leaf_b, 10.0, 2.0);
        assert_eq!(nlj.coefs, vec![1.0, 10.0]);
        assert_eq!(nlj.c0, 2.0);
        // Evaluation.
        assert_eq!(nlj.eval(&[3.0, 1.0], &[0.0, 0.0]), 2.0 + 3.0 + 10.0);
    }

    #[test]
    fn probe_leaf_composition() {
        let probe = LinearCost::probe_leaf(2, 1, 0.5);
        let outer = LinearCost::leaf(2, 0);
        // NLJ over 100 outer rows: probe coefficient scales.
        let nlj = outer.combine_scaled(&probe, 100.0, 3.0);
        assert_eq!(nlj.probe_coefs, vec![0.0, 100.0]);
        assert_eq!(nlj.coefs, vec![1.0, 0.0]);
        assert!((nlj.eval(&[7.0, 0.0], &[0.0, 0.02]) - (50.0 + 3.0 + 7.0 + 2.0)).abs() < 1e-9);
    }

    #[test]
    fn constant_linear_cost() {
        let c = LinearCost::constant(3, 7.5);
        assert_eq!(c.eval(&[100.0; 3], &[100.0; 3]), 7.5);
    }

    #[test]
    fn provides_order_prefix_semantics() {
        let p = Path {
            kind: PathKind::SeqScan { rel: 0 },
            rels: RelSet::single(0),
            rows: 1.0,
            cost: Cost::ZERO,
            rescan: Cost::ZERO,
            pathkeys: vec![EcId(0), EcId(1)],
            leaf_ioc: Ioc::NONE,
            linear: LinearCost::leaf(1, 0),
            leaf_access: vec![0.0],
            probe_access: vec![0.0],
        };
        assert!(p.provides_order(&[]));
        assert!(p.provides_order(&[EcId(0)]));
        assert!(p.provides_order(&[EcId(0), EcId(1)]));
        assert!(!p.provides_order(&[EcId(1)]));
        assert!(!p.provides_order(&[EcId(0), EcId(1), EcId(2)]));
    }

    #[test]
    fn describe_renders_nested_plans() {
        let mut arena = PathArena::new();
        let mk_leaf = |rel: RelIdx| Path {
            kind: PathKind::SeqScan { rel },
            rels: RelSet::single(rel),
            rows: 1.0,
            cost: Cost::ZERO,
            rescan: Cost::ZERO,
            pathkeys: vec![],
            leaf_ioc: Ioc::NONE,
            linear: LinearCost::leaf(2, rel),
            leaf_access: vec![0.0; 2],
            probe_access: vec![0.0; 2],
        };
        let a = arena.add(mk_leaf(0));
        let b = arena.add(mk_leaf(1));
        let join = arena.add(Path {
            kind: PathKind::HashJoin { outer: a, inner: b },
            rels: RelSet::all(2),
            rows: 1.0,
            cost: Cost::ZERO,
            rescan: Cost::ZERO,
            pathkeys: vec![],
            leaf_ioc: Ioc::NONE,
            linear: LinearCost::zero(2),
            leaf_access: vec![0.0; 2],
            probe_access: vec![0.0; 2],
        });
        assert_eq!(arena.describe(join), "HJ(seq(0),seq(1))");
        assert!(!arena.get(join).uses_nestloop(&arena));
    }
}
