//! Sampling for the debug-leg equivalence asserts.
//!
//! The repo's correctness discipline is "every incremental path
//! `debug_assert`s equality with its from-scratch reference" — delta
//! pricing against a full re-pricing, the spliced inverted index against a
//! rebuild, batched collection against per-query collection. Each of those
//! references is O(workload) or O(optimizer call), so a debug run's cost
//! grows with the *square* of the workload. This module bounds that:
//! [`should_assert`] returns `true` on every k-th call, with `k` read once
//! from the `PINUM_ASSERT_SAMPLE` environment variable.
//!
//! * default `k = 1`: every assert fires (exactly the historical
//!   behaviour — unit tests and small fixtures keep full coverage);
//! * `PINUM_ASSERT_SAMPLE=64`: one in 64 checks runs its reference
//!   recomputation, keeping the debug acceptance leg's runtime bounded on
//!   experiment-sized workloads while still sweeping the whole space over
//!   a run.
//!
//! The counter is thread-local (the `parallel` feature prices across
//! threads); sampling is a per-thread stride, which is all the guarantee
//! the debug leg needs — *which* checks fire is deterministic for a
//! single-threaded run and arbitrary-but-bounded for a parallel one.
//! Release builds compile the asserts out entirely; callers gate on
//! `#[cfg(debug_assertions)]` first so release code never pays even the
//! counter bump.

use std::cell::Cell;
use std::sync::OnceLock;

/// The sampling stride: asserts fire on every k-th check. Parsed once;
/// unset, empty, unparsable, or zero values all mean 1 (assert always).
pub fn sample_every() -> u64 {
    static K: OnceLock<u64> = OnceLock::new();
    *K.get_or_init(|| {
        std::env::var("PINUM_ASSERT_SAMPLE")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .filter(|&k| k >= 1)
            .unwrap_or(1)
    })
}

/// Whether this call is one of the sampled-in checks. Call exactly once
/// per equivalence check, inside the `#[cfg(debug_assertions)]` block.
pub fn should_assert() -> bool {
    let k = sample_every();
    if k == 1 {
        return true;
    }
    thread_local! {
        static COUNTER: Cell<u64> = const { Cell::new(0) };
    }
    COUNTER.with(|c| {
        let n = c.get().wrapping_add(1);
        c.set(n);
        n % k == 0
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_to_asserting_every_check() {
        // Only meaningful when the environment does not override the
        // stride (CI and local test runs leave it unset).
        if std::env::var("PINUM_ASSERT_SAMPLE").is_err() {
            assert_eq!(sample_every(), 1);
            for _ in 0..10 {
                assert!(should_assert());
            }
        }
    }
}
