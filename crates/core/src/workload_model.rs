//! # Workload-scale pricing engine
//!
//! [`CacheCostModel`](crate::CacheCostModel) prices *one* query by walking
//! every cached plan × relation × access-path entry on every call. That is
//! fine for a handful of estimates, but the advisor's greedy loop prices
//! the **whole workload once per candidate probe**: O(workload × pool ×
//! picks) full re-pricings, each of which re-filters access-path entries
//! and re-prices nested-loop probes from scratch. This module is the
//! amortized replacement — the "simple numerical calculations" of §II
//! precomputed once per workload and then evaluated incrementally.
//!
//! ## Design
//!
//! [`WorkloadModel::build`] flattens, per query and per cached plan, each
//! `(plan, relation, order-slot)` into a dense `Slot`:
//!
//! * the applicable access paths are resolved **once** into arrays of
//!   `(cost, candidate)` arms, ascending by cost, so pricing a slot under a
//!   selection is "take the first arm whose candidate is selected (or
//!   always available)" — no per-call filtering;
//! * nested-loop **probe arms are pre-priced at the plan's loop count**
//!   (the loop count is a property of the cached plan, so
//!   `cost_index_scan` runs at build time, not on every estimate);
//! * arms behind an always-available arm are unreachable and dropped, and
//!   plans that can never become applicable (a required order no candidate
//!   covers, a probe slot with no probe-able path) are dropped entirely.
//!
//! On top of the flattened queries sits an **inverted index**
//! `candidate → affected (query, plan) pairs`, reduced to the affected
//! *query* set: adding candidate `c` to a selection can only change the
//! price of queries whose arms mention `c`.
//!
//! ## Incremental pricing — bidirectional
//!
//! [`WorkloadModel::price_full`] prices every query and records the
//! per-query costs in a [`PricedWorkload`]. A greedy probe then calls
//! [`WorkloadModel::price_delta`], which re-prices **only the affected
//! queries** with the probed candidate overlaid (no selection clone, no
//! allocation on the hot path via
//! [`WorkloadModel::price_delta_into`]) and re-sums the workload total in
//! query order — so the returned total is **bit-for-bit identical** to a
//! full re-pricing under the extended selection. A `debug_assert` path
//! proves exactly that on every delta in debug builds.
//!
//! Deltas run in **both directions**:
//! [`WorkloadModel::price_delta_removed`] prices the workload with a
//! selected candidate *masked out* (no clone, same affected-query set —
//! removal can only change queries whose arms mention the candidate), and
//! [`WorkloadModel::price_delta_swapped`] overlays an add and a drop in a
//! single pass over the merged affected sets. Removal deltas are what make
//! drop-one/add-one local search and annealing affordable: a swap probe
//! costs `O(affected(add) ∪ affected(drop))` query re-pricings instead of
//! a workload re-pricing. All three delta flavours share the same
//! `debug_assert` full-reprice equivalence path.
//!
//! ## Construction
//!
//! Per-query flattening is embarrassingly parallel: with the `parallel`
//! feature, [`WorkloadModel::build`] fans `flatten_query` across std
//! threads and then assembles the inverted index serially in query order,
//! so the resulting model is **identical** to the serial build
//! ([`WorkloadModel::build_serial`] keeps the serial path available for
//! equivalence tests).
//!
//! ## Streaming — the workload as a mutable object
//!
//! A built model is not frozen: the workload can be treated as a *stream*.
//! [`WorkloadModel::admit_query`] flattens one more `(plan cache, access
//! catalog)` pair and splices it into the dense arrays and the inverted
//! index in **O(that query's access arms)** — never O(workload).
//! [`WorkloadModel::evict_query`] retracts a query the same way (its
//! inverted-index entries are removed eagerly, so delta pricing never
//! iterates dead queries), leaving a tombstone slot so query ids stay
//! stable; [`WorkloadModel::compact`] drops the tombstones and renumbers
//! when the caller wants memory back. [`WorkloadModel::reweight_query`]
//! scales one query's contribution to every total (all queries start at
//! weight 1.0, and multiplying by 1.0 is exact, so an unweighted model
//! prices bit-identically to the pre-streaming engine).
//!
//! The same equivalence discipline as the deltas applies: every mutation
//! `debug_assert`s that the maintained inverted index equals a
//! from-scratch recomputation, and the unit/property tests check that
//! admit-then-evict round-trips to bit-identical pricing and that
//! incremental admission reproduces [`WorkloadModel::build`] exactly.
//! This is the substrate `pinum_online::OnlineAdvisor` runs on.
//!
//! The arithmetic deliberately mirrors `CacheCostModel::estimate` term for
//! term (same entry order, same addition order, same tie-breaking), so the
//! incremental advisor reproduces the naive advisor's pick sequence and
//! cost trajectory exactly — verified end-to-end by the `advisor_scale`
//! experiment and the equivalence tests.

use crate::access_costs::AccessCostCatalog;
use crate::cache::PlanCache;
use crate::candidates::Selection;
use pinum_cost::scan::cost_index_scan;
use pinum_query::RelIdx;

/// Sentinel for "always available" access arms (sequential scans and
/// materialized catalog indexes): applicable under every selection.
const ALWAYS: u32 = u32::MAX;

/// One pre-resolved access path: its (pre-priced) cost and the pool
/// candidate that must be selected for it to apply.
#[derive(Debug, Clone, Copy, PartialEq)]
struct AccessArm {
    cost: f64,
    candidate: u32,
}

/// One contributing relation slot of a flattened plan.
#[derive(Debug, Clone, PartialEq)]
struct Slot {
    /// Coefficient on the standalone access cost (0 ⇒ applicability-only).
    coef: f64,
    /// Coefficient on the per-probe access cost (0 ⇒ no probe term).
    pcoef: f64,
    /// Whether the plan requires an interesting order on this relation
    /// (if so, the slot is inapplicable when no standalone arm is live).
    required: bool,
    /// Standalone access arms, ascending by cost.
    standalone: Vec<AccessArm>,
    /// Probe arms pre-priced at this plan's loop count, ascending by cost.
    probes: Vec<AccessArm>,
}

/// One flattened cached plan: internal cost plus contributing slots in
/// relation order.
#[derive(Debug, Clone, PartialEq)]
struct FlatPlan {
    internal: f64,
    slots: Vec<Slot>,
}

/// One flattened query.
#[derive(Debug, Clone, PartialEq)]
struct QueryModel {
    plans: Vec<FlatPlan>,
}

/// A priced workload snapshot: per-query costs under one selection and
/// their sum (always accumulated in query order).
#[derive(Debug, Clone, PartialEq)]
pub struct PricedWorkload {
    pub per_query: Vec<f64>,
    pub total: f64,
}

impl PricedWorkload {
    /// Sampled (`PINUM_ASSERT_SAMPLE`) debug re-check that this state is
    /// **bit-identical** to `model.price_full(selection)` — the one
    /// equivalence rule behind every spliced-state consumer (the pricing
    /// session and the search strategies' accepted-move splices).
    /// Compiled away in release builds.
    pub fn debug_assert_bit_identical_to_full(&self, model: &WorkloadModel, selection: &Selection) {
        #[cfg(debug_assertions)]
        if crate::sampling::should_assert() {
            let full = model.price_full(selection);
            debug_assert!(
                self.total.to_bits() == full.total.to_bits()
                    && self.per_query.len() == full.per_query.len()
                    && self
                        .per_query
                        .iter()
                        .zip(&full.per_query)
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                "incrementally maintained priced state diverged from a full re-pricing: \
                 {} vs {}",
                self.total,
                full.total
            );
        }
        #[cfg(not(debug_assertions))]
        {
            let _ = (model, selection);
        }
    }
}

/// The precomputed workload pricing engine. See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadModel {
    queries: Vec<QueryModel>,
    /// Per-query workload weight (1.0 at build/admit time; 0.0 for
    /// tombstones). A query contributes `weight × price` to every total.
    weights: Vec<f64>,
    /// Liveness per query slot: evicted queries leave a tombstone so ids
    /// stay stable for callers holding them.
    live: Vec<bool>,
    /// Number of live (non-evicted) query slots.
    live_count: usize,
    /// Inverted index: candidate id → sorted query ids whose price can
    /// change when the candidate joins the selection. Only live queries
    /// appear (eviction retracts its entries eagerly).
    affected: Vec<Vec<u32>>,
    pool_size: usize,
}

impl WorkloadModel {
    /// Flattens per-query `(plan cache, access-cost catalog)` models into
    /// the dense pricing structure. `pool_size` is the candidate pool
    /// cardinality the access catalogs were collected against.
    ///
    /// With the `parallel` feature the per-query flattening fans out over
    /// std threads (each query is independent); the inverted index is
    /// always assembled serially in query order, so the built model is
    /// identical to [`Self::build_serial`]'s.
    pub fn build<'a, I>(pool_size: usize, models: I) -> Self
    where
        I: IntoIterator<Item = (&'a PlanCache, &'a AccessCostCatalog)>,
    {
        let models: Vec<_> = models.into_iter().collect();
        Self::assemble(
            pool_size,
            flatten_models(&models, cfg!(feature = "parallel")),
        )
    }

    /// [`Self::build`] forced onto the single-threaded flattening path,
    /// regardless of the `parallel` feature. The result is `==` to
    /// `build`'s — kept public so the determinism claim stays testable in
    /// feature-enabled builds.
    pub fn build_serial<'a, I>(pool_size: usize, models: I) -> Self
    where
        I: IntoIterator<Item = (&'a PlanCache, &'a AccessCostCatalog)>,
    {
        let models: Vec<_> = models.into_iter().collect();
        Self::assemble(pool_size, flatten_models(&models, false))
    }

    /// Builds the inverted candidate→query index over flattened queries
    /// (serial, query order — the deterministic part of construction).
    fn assemble(pool_size: usize, queries: Vec<QueryModel>) -> Self {
        let mut affected: Vec<Vec<u32>> = vec![Vec::new(); pool_size];
        for (qid, qm) in queries.iter().enumerate() {
            for c in touched_candidates(qm) {
                validate_candidate(c, pool_size);
                affected[c as usize].push(qid as u32);
            }
        }
        let n = queries.len();
        Self {
            queries,
            weights: vec![1.0; n],
            live: vec![true; n],
            live_count: n,
            affected,
            pool_size,
        }
    }

    /// Flattens one more `(plan cache, access catalog)` pair and splices
    /// it into the model at weight 1.0, returning its stable query id.
    /// The work is O(this query's plans and access arms) — the rest of the
    /// workload is never touched (the new id is the largest ever issued,
    /// so every inverted-index insertion is an O(1) push that keeps the
    /// lists sorted).
    pub fn admit_query(&mut self, cache: &PlanCache, access: &AccessCostCatalog) -> usize {
        self.admit_query_weighted(cache, access, 1.0)
    }

    /// [`Self::admit_query`] with an explicit workload weight (e.g. an
    /// observed execution frequency). `weight` must be finite and > 0.
    pub fn admit_query_weighted(
        &mut self,
        cache: &PlanCache,
        access: &AccessCostCatalog,
        weight: f64,
    ) -> usize {
        assert!(
            weight.is_finite() && weight > 0.0,
            "query weight must be finite and positive, got {weight}"
        );
        let qm = flatten_query(cache, access);
        let qid = self.queries.len();
        assert!(qid < u32::MAX as usize, "query id space exhausted");
        for c in touched_candidates(&qm) {
            validate_candidate(c, self.pool_size);
            self.affected[c as usize].push(qid as u32);
        }
        self.queries.push(qm);
        self.weights.push(weight);
        self.live.push(true);
        self.live_count += 1;
        self.debug_assert_index_matches_rebuild();
        qid
    }

    /// Retracts a live query: its inverted-index entries are removed
    /// (binary search per touched candidate — delta pricing never has to
    /// skip dead entries) and its flattened plans are freed. The slot
    /// itself stays as a tombstone so other query ids remain stable; a
    /// tombstone contributes exactly 0.0 to every total, which keeps
    /// query-order accumulation bit-identical to a model that never held
    /// the query. Use [`Self::compact`] to drop tombstones.
    pub fn evict_query(&mut self, qid: usize) {
        assert!(
            self.live.get(qid).copied().unwrap_or(false),
            "evicting unknown or already-evicted query {qid}"
        );
        for c in touched_candidates(&self.queries[qid]) {
            let list = &mut self.affected[c as usize];
            let pos = list
                .binary_search(&(qid as u32))
                .unwrap_or_else(|_| panic!("inverted index lost query {qid} under candidate {c}"));
            list.remove(pos);
        }
        self.queries[qid] = QueryModel { plans: Vec::new() };
        self.weights[qid] = 0.0;
        self.live[qid] = false;
        self.live_count -= 1;
        self.debug_assert_index_matches_rebuild();
    }

    /// Changes a live query's workload weight (finite, > 0). O(1): weights
    /// scale prices at evaluation time, so no stored cost goes stale.
    pub fn reweight_query(&mut self, qid: usize, weight: f64) {
        assert!(
            self.live.get(qid).copied().unwrap_or(false),
            "reweighting unknown or evicted query {qid}"
        );
        assert!(
            weight.is_finite() && weight > 0.0,
            "query weight must be finite and positive, got {weight}"
        );
        self.weights[qid] = weight;
    }

    /// Drops every tombstone slot, renumbering live queries in ascending
    /// id order and rebuilding the inverted index over the survivors.
    /// Returns the old→new id mapping (`u32::MAX` for evicted slots) so
    /// callers holding query ids can remap. Weights are preserved. The
    /// compacted model is exactly what [`Self::build`] over the surviving
    /// queries (then reweighted) would produce.
    pub fn compact(&mut self) -> Vec<u32> {
        let mut remap = vec![u32::MAX; self.queries.len()];
        let mut queries = Vec::with_capacity(self.live_count);
        let mut weights = Vec::with_capacity(self.live_count);
        for (qid, slot) in self.queries.iter_mut().enumerate() {
            if self.live[qid] {
                remap[qid] = queries.len() as u32;
                queries.push(QueryModel {
                    plans: std::mem::take(&mut slot.plans),
                });
                weights.push(self.weights[qid]);
            }
        }
        let mut rebuilt = Self::assemble(self.pool_size, queries);
        rebuilt.weights = weights;
        *self = rebuilt;
        self.debug_assert_index_matches_rebuild();
        remap
    }

    /// Recomputes the inverted index from scratch and compares — the
    /// mutation-path analogue of the deltas' full-reprice `debug_assert`.
    /// Compiled away in release builds; sampled (every k-th mutation) via
    /// `PINUM_ASSERT_SAMPLE` so long streams keep a bounded debug cost.
    fn debug_assert_index_matches_rebuild(&self) {
        #[cfg(debug_assertions)]
        {
            if !crate::sampling::should_assert() {
                return;
            }
            let mut expect: Vec<Vec<u32>> = vec![Vec::new(); self.pool_size];
            for (qid, qm) in self.queries.iter().enumerate() {
                if !self.live[qid] {
                    debug_assert!(qm.plans.is_empty(), "tombstone {qid} retains plans");
                    continue;
                }
                for c in touched_candidates(qm) {
                    expect[c as usize].push(qid as u32);
                }
            }
            debug_assert!(
                self.affected == expect,
                "incrementally maintained inverted index diverged from a from-scratch rebuild"
            );
            debug_assert_eq!(self.live_count, self.live.iter().filter(|l| **l).count());
        }
    }

    /// Total query *slots*, including tombstones — the length every
    /// [`PricedWorkload::per_query`] vector must have.
    pub fn query_count(&self) -> usize {
        self.queries.len()
    }

    /// Live (non-evicted) queries currently priced into totals.
    pub fn live_query_count(&self) -> usize {
        self.live_count
    }

    /// Whether `qid` is a live query slot.
    pub fn is_live(&self, qid: usize) -> bool {
        self.live.get(qid).copied().unwrap_or(false)
    }

    /// The query's current workload weight (0.0 for tombstones).
    pub fn weight(&self, qid: usize) -> f64 {
        self.weights[qid]
    }

    /// Number of flattened access arms (standalone + probe) in one query's
    /// model. [`Self::admit_query`]'s work is proportional to this — a
    /// measurable witness that admission is O(the query), not
    /// O(the workload).
    pub fn query_arm_count(&self, qid: usize) -> usize {
        self.queries[qid]
            .plans
            .iter()
            .flat_map(|p| &p.slots)
            .map(|s| s.standalone.len() + s.probes.len())
            .sum()
    }

    pub fn pool_size(&self) -> usize {
        self.pool_size
    }

    /// Query ids whose price can change when `candidate` is added
    /// (ascending).
    pub fn affected(&self, candidate: usize) -> &[u32] {
        &self.affected[candidate]
    }

    /// Prices one query under `selection`, with `extra` overlaid as a
    /// virtual member of the selection (no clone). `f64::INFINITY` when no
    /// cached plan is applicable (e.g. an empty cache) — matching the
    /// advisor's treatment of `CacheCostModel::estimate == None`.
    pub fn price_query(&self, query: usize, selection: &Selection, extra: Option<usize>) -> f64 {
        self.price_query_view(query, selection, extra, None)
    }

    /// [`Self::price_query`] over a *virtual* selection view: `extra` is
    /// overlaid as a member, `without` is masked out — both without
    /// cloning the selection. This is the primitive behind all three delta
    /// directions (add, drop, swap).
    pub fn price_query_view(
        &self,
        query: usize,
        selection: &Selection,
        extra: Option<usize>,
        without: Option<usize>,
    ) -> f64 {
        let mut best = f64::INFINITY;
        for plan in &self.queries[query].plans {
            if let Some(cost) = price_plan(plan, selection, extra, without) {
                if cost < best {
                    best = cost;
                }
            }
        }
        best
    }

    /// One query's *weighted* contribution to a workload total: 0.0 for
    /// tombstones, `weight × price` otherwise. Weight 1.0 multiplication
    /// is exact in IEEE 754, so an unweighted model prices bit-identically
    /// to the pre-streaming engine.
    fn contribution(
        &self,
        query: usize,
        selection: &Selection,
        extra: Option<usize>,
        without: Option<usize>,
    ) -> f64 {
        if !self.live[query] {
            return 0.0;
        }
        self.weights[query] * self.price_query_view(query, selection, extra, without)
    }

    /// Prices the entire workload under `selection`. With the `parallel`
    /// feature, per-query pricing fans out over std threads; the total is
    /// always accumulated serially in query order, so the result is
    /// deterministic and identical across both code paths. Entries are
    /// weighted contributions (tombstones contribute exactly 0.0).
    pub fn price_full(&self, selection: &Selection) -> PricedWorkload {
        let per_query = self.per_query_costs(selection);
        let total = per_query.iter().sum();
        PricedWorkload { per_query, total }
    }

    #[cfg(not(feature = "parallel"))]
    fn per_query_costs(&self, selection: &Selection) -> Vec<f64> {
        (0..self.queries.len())
            .map(|q| self.contribution(q, selection, None, None))
            .collect()
    }

    #[cfg(feature = "parallel")]
    fn per_query_costs(&self, selection: &Selection) -> Vec<f64> {
        let n = self.queries.len();
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(n.div_ceil(16).max(1));
        if threads <= 1 {
            return (0..n)
                .map(|q| self.contribution(q, selection, None, None))
                .collect();
        }
        let mut per_query = vec![0.0f64; n];
        let chunk = n.div_ceil(threads);
        std::thread::scope(|scope| {
            for (t, out) in per_query.chunks_mut(chunk).enumerate() {
                let start = t * chunk;
                scope.spawn(move || {
                    for (i, slot) in out.iter_mut().enumerate() {
                        *slot = self.contribution(start + i, selection, None, None);
                    }
                });
            }
        });
        per_query
    }

    /// The workload total if `added` joined `selection`, re-pricing only
    /// the affected queries. `state` must be the [`PricedWorkload`] of
    /// `selection` itself. Allocates a scratch vector; the greedy hot loop
    /// uses [`Self::price_delta_into`] with a reused buffer.
    pub fn price_delta(&self, state: &PricedWorkload, selection: &Selection, added: usize) -> f64 {
        let mut scratch = Vec::new();
        self.price_delta_into(state, selection, added, &mut scratch)
    }

    /// [`Self::price_delta`] with a caller-owned scratch buffer; on return
    /// `changed` holds the re-priced `(query, cost)` pairs (ascending by
    /// query). The returned total re-sums all per-query costs in query
    /// order, so it is bit-identical to `price_full(selection ∪ {added})`.
    pub fn price_delta_into(
        &self,
        state: &PricedWorkload,
        selection: &Selection,
        added: usize,
        changed: &mut Vec<(u32, f64)>,
    ) -> f64 {
        debug_assert_eq!(state.per_query.len(), self.queries.len(), "stale state");
        changed.clear();
        for &q in &self.affected[added] {
            debug_assert!(self.live[q as usize], "inverted index holds a tombstone");
            changed.push((
                q,
                self.contribution(q as usize, selection, Some(added), None),
            ));
        }
        let total = overlay_total(state, changed);
        #[cfg(debug_assertions)]
        if crate::sampling::should_assert() {
            // The whole point: delta pricing must equal full re-pricing.
            let full = self.price_full(&selection.with(added));
            debug_assert!(
                total == full.total || (total.is_infinite() && full.total.is_infinite()),
                "price_delta diverged from price_full: {total} vs {} (candidate {added})",
                full.total
            );
        }
        total
    }

    /// The workload total if `dropped` *left* `selection` — the removal
    /// mirror of [`Self::price_delta`]. `state` must be the
    /// [`PricedWorkload`] of `selection` itself, and `dropped` must be a
    /// member. Only the queries whose arms mention `dropped` can change
    /// price, so the affected set is the same inverted-index entry as for
    /// adds.
    pub fn price_delta_removed(
        &self,
        state: &PricedWorkload,
        selection: &Selection,
        dropped: usize,
    ) -> f64 {
        let mut scratch = Vec::new();
        self.price_delta_removed_into(state, selection, dropped, &mut scratch)
    }

    /// [`Self::price_delta_removed`] with a caller-owned scratch buffer.
    /// The returned total is bit-identical to
    /// `price_full(selection ∖ {dropped})` (debug-asserted).
    pub fn price_delta_removed_into(
        &self,
        state: &PricedWorkload,
        selection: &Selection,
        dropped: usize,
        changed: &mut Vec<(u32, f64)>,
    ) -> f64 {
        debug_assert_eq!(state.per_query.len(), self.queries.len(), "stale state");
        debug_assert!(
            selection.contains(dropped),
            "removing candidate {dropped} that is not selected"
        );
        changed.clear();
        for &q in &self.affected[dropped] {
            debug_assert!(self.live[q as usize], "inverted index holds a tombstone");
            changed.push((
                q,
                self.contribution(q as usize, selection, None, Some(dropped)),
            ));
        }
        let total = overlay_total(state, changed);
        #[cfg(debug_assertions)]
        if crate::sampling::should_assert() {
            let full = self.price_full(&selection.without(dropped));
            debug_assert!(
                total == full.total || (total.is_infinite() && full.total.is_infinite()),
                "price_delta_removed diverged from price_full: {total} vs {} (candidate {dropped})",
                full.total
            );
        }
        total
    }

    /// The workload total if `added` replaced `dropped` in `selection` —
    /// one drop-one/add-one swap priced as a single delta over the merged
    /// affected sets. `state` must be the [`PricedWorkload`] of
    /// `selection`; `dropped` must be a member and `added` must not be.
    pub fn price_delta_swapped(
        &self,
        state: &PricedWorkload,
        selection: &Selection,
        added: usize,
        dropped: usize,
    ) -> f64 {
        let mut scratch = Vec::new();
        self.price_delta_swapped_into(state, selection, added, dropped, &mut scratch)
    }

    /// [`Self::price_delta_swapped`] with a caller-owned scratch buffer.
    /// The returned total is bit-identical to
    /// `price_full((selection ∖ {dropped}) ∪ {added})` (debug-asserted).
    pub fn price_delta_swapped_into(
        &self,
        state: &PricedWorkload,
        selection: &Selection,
        added: usize,
        dropped: usize,
        changed: &mut Vec<(u32, f64)>,
    ) -> f64 {
        debug_assert_eq!(state.per_query.len(), self.queries.len(), "stale state");
        debug_assert!(selection.contains(dropped), "swap drops a non-member");
        debug_assert!(!selection.contains(added), "swap adds a member");
        changed.clear();
        // Merge the two sorted affected lists (ascending, deduplicated):
        // a query is re-priced once even when both candidates mention it.
        let (a, d) = (&self.affected[added], &self.affected[dropped]);
        let (mut i, mut j) = (0, 0);
        while i < a.len() || j < d.len() {
            let q = match (a.get(i), d.get(j)) {
                (Some(&x), Some(&y)) if x == y => {
                    i += 1;
                    j += 1;
                    x
                }
                (Some(&x), Some(&y)) if x < y => {
                    i += 1;
                    x
                }
                (Some(_) | None, Some(&y)) => {
                    j += 1;
                    y
                }
                (Some(&x), None) => {
                    i += 1;
                    x
                }
                (None, None) => unreachable!(),
            };
            debug_assert!(self.live[q as usize], "inverted index holds a tombstone");
            changed.push((
                q,
                self.contribution(q as usize, selection, Some(added), Some(dropped)),
            ));
        }
        let total = overlay_total(state, changed);
        #[cfg(debug_assertions)]
        if crate::sampling::should_assert() {
            let full = self.price_full(&selection.without(dropped).with(added));
            debug_assert!(
                total == full.total || (total.is_infinite() && full.total.is_infinite()),
                "price_delta_swapped diverged from price_full: {total} vs {} \
                 (+{added} -{dropped})",
                full.total
            );
        }
        total
    }
}

/// Distinct pool candidates referenced by a query's access arms,
/// ascending — its inverted-index footprint. O(this query's arms).
fn touched_candidates(qm: &QueryModel) -> Vec<u32> {
    let mut touched: Vec<u32> = qm
        .plans
        .iter()
        .flat_map(|p| &p.slots)
        .flat_map(|s| s.standalone.iter().chain(&s.probes))
        .filter(|a| a.candidate != ALWAYS)
        .map(|a| a.candidate)
        .collect();
    touched.sort_unstable();
    touched.dedup();
    touched
}

/// Constructor-level validation that a flattened access path stays inside
/// the candidate pool it was collected against — a mis-sized `pool_size`
/// fails loudly here instead of silently mispricing (or panicking with an
/// opaque index-out-of-bounds deep in delta pricing).
fn validate_candidate(candidate: u32, pool_size: usize) {
    assert!(
        (candidate as usize) < pool_size,
        "access path references candidate {candidate} but the pool holds only {pool_size} \
         candidates — the model was built/admitted against a mis-sized pool"
    );
}

/// Re-sums the workload total with `changed` overlaid onto `state`,
/// accumulating in query order (the bit-for-bit determinism contract of
/// every delta flavour). `changed` must be ascending by query id.
fn overlay_total(state: &PricedWorkload, changed: &[(u32, f64)]) -> f64 {
    let mut total = 0.0;
    let mut next = changed.iter().copied().peekable();
    for (q, &cost) in state.per_query.iter().enumerate() {
        total += match next.peek() {
            Some(&(cq, new_cost)) if cq as usize == q => {
                next.next();
                new_cost
            }
            _ => cost,
        };
    }
    total
}

/// Prices one flattened plan; `None` when inapplicable under the
/// selection view. Mirrors `CacheCostModel::estimate_filtered` term for
/// term.
fn price_plan(
    plan: &FlatPlan,
    selection: &Selection,
    extra: Option<usize>,
    without: Option<usize>,
) -> Option<f64> {
    let mut cost = plan.internal;
    for slot in &plan.slots {
        if slot.coef != 0.0 {
            let access = first_applicable(&slot.standalone, selection, extra, without)?;
            cost += slot.coef * access;
        } else if slot.required
            && first_applicable(&slot.standalone, selection, extra, without).is_none()
        {
            return None;
        }
        if slot.pcoef != 0.0 {
            let probe = first_applicable(&slot.probes, selection, extra, without)?;
            cost += slot.pcoef * probe;
        }
    }
    Some(cost)
}

/// Cheapest live arm: arms are ascending by cost, so the first applicable
/// one wins (same tie-breaking as the sorted `AccessCostCatalog` walk).
/// `extra` is a virtual member, `without` a virtual removal.
fn first_applicable(
    arms: &[AccessArm],
    selection: &Selection,
    extra: Option<usize>,
    without: Option<usize>,
) -> Option<f64> {
    arms.iter()
        .find(|a| {
            if a.candidate == ALWAYS {
                return true;
            }
            let c = a.candidate as usize;
            if without == Some(c) {
                return false;
            }
            extra == Some(c) || selection.contains(c)
        })
        .map(|a| a.cost)
}

/// Arms after the first always-available arm can never win (the walk stops
/// there at the latest); later duplicates of a candidate are dominated by
/// their first (cheapest) occurrence.
fn prune_arms(arms: &mut Vec<AccessArm>) {
    let mut seen = std::collections::HashSet::with_capacity(arms.len());
    let mut keep = 0;
    for i in 0..arms.len() {
        let arm = arms[i];
        if arm.candidate != ALWAYS && !seen.insert(arm.candidate) {
            continue;
        }
        arms[keep] = arm;
        keep += 1;
        if arm.candidate == ALWAYS {
            break;
        }
    }
    arms.truncate(keep);
}

/// Flattens every `(cache, access)` pair, optionally fanning the per-query
/// work across std threads. Each query's flattening is independent and the
/// output order is the input order, so both paths yield identical vectors.
fn flatten_models(models: &[(&PlanCache, &AccessCostCatalog)], parallel: bool) -> Vec<QueryModel> {
    let n = models.len();
    let threads = if parallel {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(n.div_ceil(8).max(1))
    } else {
        1
    };
    if threads <= 1 {
        return models.iter().map(|(c, a)| flatten_query(c, a)).collect();
    }
    let mut out: Vec<Option<QueryModel>> = vec![None; n];
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for (t, slots) in out.chunks_mut(chunk).enumerate() {
            let start = t * chunk;
            scope.spawn(move || {
                for (i, slot) in slots.iter_mut().enumerate() {
                    let (cache, access) = models[start + i];
                    *slot = Some(flatten_query(cache, access));
                }
            });
        }
    });
    out.into_iter().map(|q| q.expect("flattened")).collect()
}

fn flatten_query(cache: &PlanCache, access: &AccessCostCatalog) -> QueryModel {
    let params = access.params();
    let mut plans = Vec::with_capacity(cache.len());
    'plans: for plan in cache.plans() {
        let mut slots = Vec::new();
        for rel in 0..cache.n_rels as RelIdx {
            let required = cache.orders.column_of(plan.ioc, rel);
            let coef = plan.coefs[rel as usize];
            let pcoef = plan.probe_coefs[rel as usize];
            if coef == 0.0 && pcoef == 0.0 && required.is_none() {
                continue; // nothing to price, nothing to check
            }
            // A probe slot without a required order can never apply (§V-D:
            // parameterized inner lookups need an index order); drop the
            // plan outright instead of re-discovering that on every call.
            if pcoef != 0.0 && required.is_none() {
                continue 'plans;
            }
            let mut standalone: Vec<AccessArm> = access
                .entries(rel)
                .iter()
                .filter(|e| match required {
                    None => true,
                    Some(o) => e.order == Some(o),
                })
                .map(|e| AccessArm {
                    cost: e.cost,
                    candidate: e.candidate.map_or(ALWAYS, |c| c as u32),
                })
                .collect();
            prune_arms(&mut standalone);
            if standalone.is_empty() {
                if required.is_some() {
                    // No candidate ever covers this order: the plan is
                    // inapplicable under every selection.
                    continue 'plans;
                }
                unreachable!("sequential scan is always available");
            }
            let mut probes: Vec<AccessArm> = Vec::new();
            if pcoef != 0.0 {
                let order = required.expect("checked above");
                probes = access
                    .entries(rel)
                    .iter()
                    .filter(|e| e.order == Some(order))
                    .filter_map(|e| e.probe.map(|p| (e.candidate, p)))
                    .map(|(candidate, mut spec)| {
                        // The loop count is fixed by the plan, so the probe
                        // can be priced once, here, instead of on every
                        // estimate (exactly `AccessCostCatalog::best_probe`
                        // at `loops = pcoef`).
                        spec.loop_count = pcoef.max(1.0);
                        AccessArm {
                            cost: cost_index_scan(params, &spec).total,
                            candidate: candidate.map_or(ALWAYS, |c| c as u32),
                        }
                    })
                    .collect();
                probes.sort_by(|a, b| a.cost.partial_cmp(&b.cost).unwrap());
                prune_arms(&mut probes);
                if probes.is_empty() {
                    continue 'plans; // no probe-able path will ever exist
                }
            }
            slots.push(Slot {
                coef,
                pcoef,
                required: required.is_some(),
                standalone,
                probes,
            });
        }
        plans.push(FlatPlan {
            internal: plan.internal,
            slots,
        });
    }
    QueryModel { plans }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access_costs::collect_pinum;
    use crate::builder::{build_cache_pinum, BuilderOptions};
    use crate::candidates::CandidatePool;
    use crate::costing::CacheCostModel;
    use pinum_catalog::{Catalog, Column, ColumnType, Index, Table};
    use pinum_optimizer::Optimizer;
    use pinum_query::{Query, QueryBuilder};

    fn setup() -> (Catalog, Vec<Query>, CandidatePool) {
        let mut cat = Catalog::new();
        cat.add_table(Table::new(
            "f",
            300_000,
            vec![
                Column::new("fk", ColumnType::Int8).with_ndv(3_000),
                Column::new("v", ColumnType::Int4).with_ndv(1_000),
                Column::new("s", ColumnType::Int4).with_ndv(100),
            ],
        ));
        cat.add_table(Table::new(
            "d",
            3_000,
            vec![
                Column::new("k", ColumnType::Int8).with_ndv(3_000),
                Column::new("w", ColumnType::Int4).with_ndv(50),
            ],
        ));
        let q1 = QueryBuilder::new("q1", &cat)
            .table("f")
            .table("d")
            .join(("f", "fk"), ("d", "k"))
            .filter_range(("f", "v"), 0.0, 10.0)
            .select(("f", "s"))
            .order_by(("d", "w"))
            .build();
        let q2 = QueryBuilder::new("q2", &cat)
            .table("f")
            .filter_range(("f", "v"), 0.0, 10.0)
            .select(("f", "s"))
            .order_by(("f", "s"))
            .build();
        let f = cat.table(cat.table_id("f").unwrap()).clone();
        let d = cat.table(cat.table_id("d").unwrap()).clone();
        let pool = CandidatePool::from_indexes(vec![
            Index::hypothetical(&f, vec![0], false),
            Index::hypothetical(&f, vec![1, 0, 2], false),
            Index::hypothetical(&f, vec![2], false),
            Index::hypothetical(&d, vec![0], false),
            Index::hypothetical(&d, vec![1], false),
        ]);
        (cat, vec![q1, q2], pool)
    }

    fn build_models(
        cat: &Catalog,
        queries: &[Query],
        pool: &CandidatePool,
    ) -> Vec<(PlanCache, AccessCostCatalog)> {
        let opt = Optimizer::new(cat);
        queries
            .iter()
            .map(|q| {
                let built = build_cache_pinum(&opt, q, &BuilderOptions::default());
                let (access, _) = collect_pinum(&opt, q, pool);
                (built.cache, access)
            })
            .collect()
    }

    fn model_of(models: &[(PlanCache, AccessCostCatalog)], pool: &CandidatePool) -> WorkloadModel {
        WorkloadModel::build(pool.len(), models.iter().map(|(c, a)| (c, a)))
    }

    #[test]
    fn matches_cache_cost_model_on_every_subset() {
        let (cat, queries, pool) = setup();
        let models = build_models(&cat, &queries, &pool);
        let wm = model_of(&models, &pool);
        // Exhaustive over all 32 selections of the 5-candidate pool.
        for mask in 0u32..(1 << pool.len()) {
            let ids: Vec<usize> = (0..pool.len()).filter(|i| mask & (1 << i) != 0).collect();
            let sel = Selection::from_ids(pool.len(), &ids);
            for (q, (cache, access)) in models.iter().enumerate() {
                let reference = CacheCostModel::new(cache, access)
                    .estimate(&sel)
                    .map(|e| e.cost)
                    .unwrap_or(f64::INFINITY);
                let flat = wm.price_query(q, &sel, None);
                assert_eq!(
                    flat, reference,
                    "query {q} selection {ids:?}: flat {flat} vs reference {reference}"
                );
            }
        }
    }

    #[test]
    fn delta_equals_full_for_every_candidate() {
        let (cat, queries, pool) = setup();
        let models = build_models(&cat, &queries, &pool);
        let wm = model_of(&models, &pool);
        for mask in 0u32..(1 << pool.len()) {
            let ids: Vec<usize> = (0..pool.len()).filter(|i| mask & (1 << i) != 0).collect();
            let sel = Selection::from_ids(pool.len(), &ids);
            let state = wm.price_full(&sel);
            for cand in 0..pool.len() {
                if sel.contains(cand) {
                    continue;
                }
                let delta = wm.price_delta(&state, &sel, cand);
                let full = wm.price_full(&sel.with(cand));
                assert_eq!(delta, full.total, "selection {ids:?} + candidate {cand}");
            }
        }
    }

    #[test]
    fn affected_index_is_sound_and_minimal_enough() {
        let (cat, queries, pool) = setup();
        let models = build_models(&cat, &queries, &pool);
        let wm = model_of(&models, &pool);
        // Soundness: a query NOT in affected(c) never changes price when c
        // is added, under any base selection.
        for cand in 0..pool.len() {
            let affected = wm.affected(cand);
            for mask in 0u32..(1 << pool.len()) {
                let ids: Vec<usize> = (0..pool.len()).filter(|i| mask & (1 << i) != 0).collect();
                let sel = Selection::from_ids(pool.len(), &ids);
                for q in 0..wm.query_count() {
                    if affected.contains(&(q as u32)) {
                        continue;
                    }
                    assert_eq!(
                        wm.price_query(q, &sel, Some(cand)),
                        wm.price_query(q, &sel, None),
                        "candidate {cand} changed unaffected query {q}"
                    );
                }
            }
        }
        // q2 references only table f, so d-only candidates must not list it.
        let d_cand = 3; // Index::hypothetical(&d, vec![0]) in setup()
        assert!(
            !wm.affected(d_cand).contains(&1),
            "single-table query q2 affected by a d index"
        );
    }

    #[test]
    fn price_full_state_is_consistent() {
        let (cat, queries, pool) = setup();
        let models = build_models(&cat, &queries, &pool);
        let wm = model_of(&models, &pool);
        let sel = Selection::from_ids(pool.len(), &[0, 3]);
        let state = wm.price_full(&sel);
        assert_eq!(state.per_query.len(), 2);
        assert_eq!(state.total, state.per_query.iter().sum::<f64>());
        for (q, &c) in state.per_query.iter().enumerate() {
            assert_eq!(c, wm.price_query(q, &sel, None));
            assert!(c.is_finite());
        }
    }

    #[test]
    fn removal_delta_equals_full_for_every_member() {
        let (cat, queries, pool) = setup();
        let models = build_models(&cat, &queries, &pool);
        let wm = model_of(&models, &pool);
        for mask in 0u32..(1 << pool.len()) {
            let ids: Vec<usize> = (0..pool.len()).filter(|i| mask & (1 << i) != 0).collect();
            let sel = Selection::from_ids(pool.len(), &ids);
            let state = wm.price_full(&sel);
            for &cand in &ids {
                let delta = wm.price_delta_removed(&state, &sel, cand);
                let full = wm.price_full(&sel.without(cand));
                assert_eq!(delta, full.total, "selection {ids:?} - candidate {cand}");
            }
        }
    }

    #[test]
    fn swap_delta_equals_full_for_every_pair() {
        let (cat, queries, pool) = setup();
        let models = build_models(&cat, &queries, &pool);
        let wm = model_of(&models, &pool);
        for mask in 0u32..(1 << pool.len()) {
            let ids: Vec<usize> = (0..pool.len()).filter(|i| mask & (1 << i) != 0).collect();
            let sel = Selection::from_ids(pool.len(), &ids);
            let state = wm.price_full(&sel);
            for &dropped in &ids {
                for added in 0..pool.len() {
                    if sel.contains(added) {
                        continue;
                    }
                    let delta = wm.price_delta_swapped(&state, &sel, added, dropped);
                    let full = wm.price_full(&sel.without(dropped).with(added));
                    assert_eq!(delta, full.total, "selection {ids:?} +{added} -{dropped}");
                }
            }
        }
    }

    #[test]
    fn add_then_remove_roundtrips_to_base_cost() {
        let (cat, queries, pool) = setup();
        let models = build_models(&cat, &queries, &pool);
        let wm = model_of(&models, &pool);
        let base = Selection::from_ids(pool.len(), &[1]);
        let base_state = wm.price_full(&base);
        for cand in 0..pool.len() {
            if base.contains(cand) {
                continue;
            }
            let extended = base.with(cand);
            let ext_state = wm.price_full(&extended);
            let back = wm.price_delta_removed(&ext_state, &extended, cand);
            assert_eq!(back, base_state.total, "remove({cand}) did not round-trip");
        }
    }

    #[test]
    fn parallel_and_serial_builds_are_identical() {
        let (cat, queries, pool) = setup();
        let models = build_models(&cat, &queries, &pool);
        let built = WorkloadModel::build(pool.len(), models.iter().map(|(c, a)| (c, a)));
        let serial = WorkloadModel::build_serial(pool.len(), models.iter().map(|(c, a)| (c, a)));
        assert_eq!(built, serial, "build and build_serial diverged");
    }

    /// Every selection of the 5-candidate pool (the fixtures are tiny
    /// enough to enumerate).
    fn all_selections(pool: &CandidatePool) -> impl Iterator<Item = Selection> + '_ {
        (0u32..(1 << pool.len())).map(|mask| {
            let ids: Vec<usize> = (0..pool.len()).filter(|i| mask & (1 << i) != 0).collect();
            Selection::from_ids(pool.len(), &ids)
        })
    }

    #[test]
    fn incremental_admission_reproduces_batch_build() {
        let (cat, queries, pool) = setup();
        let models = build_models(&cat, &queries, &pool);
        let batch = model_of(&models, &pool);
        let mut streamed = WorkloadModel::build(pool.len(), std::iter::empty());
        for (i, (c, a)) in models.iter().enumerate() {
            let qid = streamed.admit_query(c, a);
            assert_eq!(qid, i);
        }
        assert_eq!(streamed, batch, "admit-by-admit diverged from batch build");
    }

    #[test]
    fn admit_then_evict_is_bit_identical_to_never_admitted() {
        let (cat, queries, pool) = setup();
        let models = build_models(&cat, &queries, &pool);
        let base = model_of(&models, &pool);
        let mut mutated = model_of(&models, &pool);
        let qid = mutated.admit_query(&models[1].0, &models[1].1);
        assert_eq!(mutated.live_query_count(), 3);
        mutated.evict_query(qid);
        assert_eq!(mutated.live_query_count(), base.live_query_count());
        for sel in all_selections(&pool) {
            let b = base.price_full(&sel);
            let m = mutated.price_full(&sel);
            assert!(
                b.total == m.total || (b.total.is_infinite() && m.total.is_infinite()),
                "totals diverged: {} vs {}",
                b.total,
                m.total
            );
            // Live prefix identical; the tombstone contributes exactly 0.
            assert_eq!(&m.per_query[..b.per_query.len()], &b.per_query[..]);
            assert_eq!(m.per_query[qid], 0.0);
        }
    }

    #[test]
    fn eviction_matches_fresh_build_over_survivors() {
        let (cat, queries, pool) = setup();
        let models = build_models(&cat, &queries, &pool);
        let mut mutated = model_of(&models, &pool);
        mutated.evict_query(0);
        let survivor = WorkloadModel::build(pool.len(), models[1..].iter().map(|(c, a)| (c, a)));
        for sel in all_selections(&pool) {
            let m = mutated.price_full(&sel);
            let s = survivor.price_full(&sel);
            assert!(
                m.total == s.total || (m.total.is_infinite() && s.total.is_infinite()),
                "evicted model diverged from fresh build: {} vs {}",
                m.total,
                s.total
            );
        }
    }

    #[test]
    fn compact_equals_fresh_build_over_survivors() {
        let (cat, queries, pool) = setup();
        let models = build_models(&cat, &queries, &pool);
        let mut mutated = model_of(&models, &pool);
        mutated.evict_query(0);
        let remap = mutated.compact();
        assert_eq!(remap, vec![u32::MAX, 0]);
        let survivor = WorkloadModel::build(pool.len(), models[1..].iter().map(|(c, a)| (c, a)));
        assert_eq!(mutated, survivor, "compact diverged from a fresh build");
    }

    #[test]
    fn reweight_scales_contributions_exactly() {
        let (cat, queries, pool) = setup();
        let models = build_models(&cat, &queries, &pool);
        let mut wm = model_of(&models, &pool);
        let sel = Selection::from_ids(pool.len(), &[0, 3]);
        let p0 = wm.price_query(0, &sel, None);
        let p1 = wm.price_query(1, &sel, None);
        wm.reweight_query(0, 2.5);
        assert_eq!(wm.weight(0), 2.5);
        let state = wm.price_full(&sel);
        assert_eq!(state.per_query[0], 2.5 * p0);
        assert_eq!(state.per_query[1], p1);
        assert_eq!(state.total, 2.5 * p0 + p1);
    }

    #[test]
    fn deltas_stay_exact_after_mutations_and_reweights() {
        let (cat, queries, pool) = setup();
        let models = build_models(&cat, &queries, &pool);
        let mut wm = model_of(&models, &pool);
        let extra = wm.admit_query(&models[0].0, &models[0].1);
        wm.evict_query(0);
        wm.reweight_query(extra, 3.0);
        wm.reweight_query(1, 0.25);
        for sel in all_selections(&pool) {
            let state = wm.price_full(&sel);
            for cand in 0..pool.len() {
                if sel.contains(cand) {
                    let delta = wm.price_delta_removed(&state, &sel, cand);
                    let full = wm.price_full(&sel.without(cand));
                    assert_eq!(delta, full.total);
                } else {
                    let delta = wm.price_delta(&state, &sel, cand);
                    let full = wm.price_full(&sel.with(cand));
                    assert_eq!(delta, full.total);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "mis-sized pool")]
    fn mis_sized_pool_fails_loudly() {
        let (cat, queries, pool) = setup();
        let models = build_models(&cat, &queries, &pool);
        // The access catalogs were collected against 5 candidates; claiming
        // a pool of 1 must fail at construction, not misprice silently.
        let _ = WorkloadModel::build(1, models.iter().map(|(c, a)| (c, a)));
    }

    #[test]
    #[should_panic(expected = "already-evicted")]
    fn double_evict_panics() {
        let (cat, queries, pool) = setup();
        let models = build_models(&cat, &queries, &pool);
        let mut wm = model_of(&models, &pool);
        wm.evict_query(1);
        wm.evict_query(1);
    }

    #[test]
    fn admit_work_is_bounded_by_query_arms() {
        let (cat, queries, pool) = setup();
        let models = build_models(&cat, &queries, &pool);
        let mut wm = WorkloadModel::build(pool.len(), std::iter::empty());
        for (c, a) in &models {
            let qid = wm.admit_query(c, a);
            assert!(
                wm.query_arm_count(qid) > 0,
                "query {qid} flattened to nothing"
            );
        }
        assert_eq!(wm.query_count(), models.len());
    }

    #[test]
    fn empty_cache_prices_to_infinity() {
        let (cat, queries, pool) = setup();
        let mut models = build_models(&cat, &queries, &pool);
        // Replace q2's cache with an empty one.
        let orders = models[1].0.orders.clone();
        models[1].0 = PlanCache::new("q2", 1, orders);
        let wm = model_of(&models, &pool);
        let sel = Selection::empty(pool.len());
        let state = wm.price_full(&sel);
        assert!(state.per_query[0].is_finite());
        assert!(state.per_query[1].is_infinite());
        assert!(state.total.is_infinite());
    }
}
