//! # Workload-scale pricing engine — SoA kernel
//!
//! [`CacheCostModel`](crate::CacheCostModel) prices *one* query by walking
//! every cached plan × relation × access-path entry on every call. The
//! advisor's greedy loop prices the **whole workload once per candidate
//! probe**, so this module precomputes the "simple numerical calculations"
//! of §II once per workload and evaluates them incrementally — and it lays
//! the precomputed arithmetic out for the hardware, not for the type
//! system.
//!
//! ## Data layout (struct-of-arrays)
//!
//! Flattening no longer materializes nested `Vec`s per plan and slot.
//! [`WorkloadModel::build`] packs every query into four flat, contiguous
//! CSR-style arrays:
//!
//! * `arm_costs: Vec<f64>` / `arm_cands: Vec<u32>` — all candidate-gated
//!   access arms of the whole workload, ascending by cost within a slot.
//!   The trailing **always-available** arm of a slot (sequential scan or a
//!   materialized index) is split out into a scalar on the slot, so the
//!   arrays contain only arms whose applicability depends on the
//!   selection;
//! * `slots: Vec<SlotMeta>` — per `(plan, relation)` slot: coefficients,
//!   the always-arm costs, and `[start, end)` extents into the arm arrays
//!   for the standalone and probe arm runs;
//! * `plans: Vec<PlanMeta>` — internal cost plus a slot extent;
//! * `qmeta: Vec<QueryMeta>` — a plan extent, the candidate-footprint
//!   prefilters (below), and the query's arm count.
//!
//! Pricing a slot is then a **branchless min-scan**: seed the accumulator
//! with the always-arm cost (`+∞` when the slot has none) and scan the
//! arm run, substituting `+∞` for arms whose candidate bit is clear in the
//! selection view. Because arms are ascending by cost and pruned below the
//! always arm, the masked minimum is bit-identical to "first applicable
//! arm wins" (ties share the same `f64` bits; arm costs are finite, so
//! `+∞` means exactly "inapplicable"). The scan reads two flat arrays and
//! one bitset word per arm — no pointer chasing, no `Option`, and the
//! loop autovectorizes; the `simd` feature swaps in an explicitly
//! 4-lane-unrolled variant with the same (reassociation-safe) min
//! semantics.
//!
//! The selection itself is snapshotted per pricing call into a `SelView`
//! — a fixed-width copy of the selection's bitset words with the delta's
//! `extra`/`without` candidate baked in as a set/cleared bit — so the hot
//! loop tests membership with one word load and no `Option` compares.
//!
//! ## Prefilters
//!
//! On top of the packed queries sit two per-query footprint structures,
//! both maintained under streaming mutation:
//!
//! * the **inverted index** `candidate → sorted live query ids` (as
//!   before): adding/dropping candidate `c` can only re-price queries
//!   whose arms mention `c`;
//! * a per-query **touched-candidate list** (sorted, in one CSR array)
//!   plus a 64-bit **bloom filter** over `candidate mod 64`.
//!   [`WorkloadModel::query_touches`] answers "can this candidate change
//!   this query?" with one AND plus (on a bloom hit) a binary search —
//!   zero pointer loads on the miss path. Scoped/online consumers use it
//!   to skip untouched queries without consulting the inverted index.
//!
//! The invariant for both: a query not in `affected(c)` (equivalently,
//! `query_touches(q, c) == false`) prices identically with and without
//! `c` in the selection, under **every** base selection.
//!
//! ## Totals — fixed-shape pairwise sum tree
//!
//! A [`PricedWorkload`] no longer stores a scalar total next to the
//! per-query costs: it maintains a **fixed-shape pairwise partial-sum
//! tree** over them (power-of-two capacity, zero-padded). The workload
//! total is the root; re-totaling after a delta that re-prices `k`
//! queries is a read-only descent costing O(k·log n)
//! ([`PricedWorkload::overlaid_total`]) instead of an O(n) re-sum, and
//! splicing an accepted move updates O(k·log n) tree nodes
//! ([`PricedWorkload::apply_changed`]).
//!
//! **Determinism contract:** the tree *shape* (not evaluation order)
//! defines the bit pattern of every total. Padding with `+0.0` is exact,
//! so totals are invariant under capacity growth, and a delta total is
//! bit-identical to a full re-pricing under the modified selection —
//! debug-asserted on a `PINUM_ASSERT_SAMPLE`d schedule, like every other
//! equivalence in this crate. The free function [`pairwise_total`] is the
//! canonical scalar form of the same shape: any code that sums per-query
//! costs by hand (naive reference engines, tests) must use it to stay
//! bit-comparable.
//!
//! ## Incremental pricing — bidirectional
//!
//! [`WorkloadModel::price_full`] prices every query;
//! [`WorkloadModel::price_delta`] / [`WorkloadModel::price_delta_removed`]
//! / [`WorkloadModel::price_delta_swapped`] re-price only the affected
//! queries under a virtual add/drop/swap and re-total through the sum
//! tree. Queries whose re-priced cost is bit-identical to the stored cost
//! are dropped from the `changed` list (exact, since the comparison is on
//! bits) — so the splice a search strategy applies afterwards is
//! proportional to what actually moved.
//!
//! ## Streaming — the workload as a mutable object
//!
//! [`WorkloadModel::admit_query`] flattens one more `(plan cache, access
//! catalog)` pair and appends it to the packed arrays in O(that query's
//! arms). [`WorkloadModel::evict_query`] retracts a query eagerly from
//! the inverted index and tombstones its metadata (its packed arm data
//! becomes unreachable and is reclaimed by [`WorkloadModel::compact`],
//! which rebuilds the arrays over the survivors — bit-identical to a
//! fresh build). [`WorkloadModel::reweight_query`] is O(1). Every
//! mutation debug-asserts (sampled) that the maintained index, footprint
//! lists, and blooms match a from-scratch recomputation.
//!
//! The arithmetic deliberately mirrors `CacheCostModel::estimate` term
//! for term (same entry order, same addition order, same tie-breaking),
//! so the incremental advisor reproduces the naive advisor's pick
//! sequence exactly; the frozen pre-SoA engine is kept in
//! [`crate::reference`] as the equivalence oracle and microbenchmark
//! baseline.

use crate::access_costs::AccessCostCatalog;
use crate::cache::PlanCache;
use crate::candidates::Selection;
use pinum_cost::scan::cost_index_scan;
use pinum_query::RelIdx;

/// Sentinel for "always available" access arms (sequential scans and
/// materialized catalog indexes): applicable under every selection.
pub(crate) const ALWAYS: u32 = u32::MAX;

/// One pre-resolved access path: its (pre-priced) cost and the pool
/// candidate that must be selected for it to apply. This is the
/// *flattening* representation — the packed kernel splits it into the
/// parallel cost/candidate arrays.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct AccessArm {
    pub(crate) cost: f64,
    pub(crate) candidate: u32,
}

/// One contributing relation slot of a flattened plan (flattening form).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Slot {
    /// Coefficient on the standalone access cost (0 ⇒ applicability-only).
    pub(crate) coef: f64,
    /// Coefficient on the per-probe access cost (0 ⇒ no probe term).
    pub(crate) pcoef: f64,
    /// Whether the plan requires an interesting order on this relation
    /// (if so, the slot is inapplicable when no standalone arm is live).
    pub(crate) required: bool,
    /// Standalone access arms, ascending by cost.
    pub(crate) standalone: Vec<AccessArm>,
    /// Probe arms pre-priced at this plan's loop count, ascending by cost.
    pub(crate) probes: Vec<AccessArm>,
}

/// One flattened cached plan: internal cost plus contributing slots in
/// relation order (flattening form).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct FlatPlan {
    pub(crate) internal: f64,
    pub(crate) slots: Vec<Slot>,
}

/// One flattened query (flattening form; packed into the SoA arrays by
/// [`WorkloadModel::push_query`], kept nested by the frozen
/// [`crate::reference`] engine).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct QueryModel {
    pub(crate) plans: Vec<FlatPlan>,
}

/// Sums `costs` with the **fixed-shape pairwise tree** this crate uses
/// for every workload total: conceptually a perfect binary tree over
/// `len.next_power_of_two()` zero-padded leaves, reduced bottom-up. This
/// is the canonical total — [`PricedWorkload::total`] is bit-identical to
/// `pairwise_total(state.per_query())` — so any hand-rolled reference
/// engine must sum through this function (not `Iterator::sum`) to stay
/// bit-comparable with the kernel.
pub fn pairwise_total(costs: &[f64]) -> f64 {
    fn node(costs: &[f64], lo: usize, span: usize) -> f64 {
        if lo >= costs.len() {
            // A fully padded subtree sums to exactly +0.0 — skipping the
            // zero additions cannot change any bit.
            return 0.0;
        }
        if span == 1 {
            return costs[lo];
        }
        let half = span / 2;
        node(costs, lo, half) + node(costs, lo + half, half)
    }
    node(costs, 0, costs.len().next_power_of_two().max(1))
}

/// Tree capacity for `len` leaves: the padding power of two.
fn tree_cap(len: usize) -> usize {
    len.next_power_of_two().max(1)
}

/// A priced workload snapshot: per-query weighted costs under one
/// selection, plus the fixed-shape pairwise sum tree over them. The tree
/// is fully determined by the costs (equality compares costs only), and
/// the root is the workload total — see the module docs for the
/// determinism contract.
#[derive(Debug, Clone)]
pub struct PricedWorkload {
    per_query: Vec<f64>,
    /// 1-based segment-tree array over `tree_cap(per_query.len())`
    /// zero-padded leaves; `tree[1]` is the total, leaf `q` lives at
    /// `tree[cap + q]`.
    tree: Vec<f64>,
}

impl PartialEq for PricedWorkload {
    fn eq(&self, other: &Self) -> bool {
        // The tree is a pure function of the costs.
        self.per_query == other.per_query
    }
}

impl PricedWorkload {
    /// Builds the snapshot (and its sum tree) from per-query costs.
    pub fn from_costs(per_query: Vec<f64>) -> Self {
        let cap = tree_cap(per_query.len());
        let mut tree = vec![0.0; 2 * cap];
        tree[cap..cap + per_query.len()].copy_from_slice(&per_query);
        for i in (1..cap).rev() {
            tree[i] = tree[2 * i] + tree[2 * i + 1];
        }
        Self { per_query, tree }
    }

    /// The workload total — the root of the sum tree.
    pub fn total(&self) -> f64 {
        self.tree[1]
    }

    /// Per-query weighted costs (tombstones hold exactly 0.0).
    pub fn per_query(&self) -> &[f64] {
        &self.per_query
    }

    /// Replaces one query's cost, updating the O(log n) tree path above
    /// its leaf.
    pub fn set_query_cost(&mut self, query: usize, cost: f64) {
        self.per_query[query] = cost;
        let cap = self.tree.len() / 2;
        let mut i = cap + query;
        self.tree[i] = cost;
        while i > 1 {
            i /= 2;
            self.tree[i] = self.tree[2 * i] + self.tree[2 * i + 1];
        }
    }

    /// Appends a newly admitted query's cost. Amortized O(log n): when
    /// the leaf row is full the tree is rebuilt at doubled capacity,
    /// which is exact (padding adds +0.0), so totals never change bits
    /// across growth.
    pub fn push_query_cost(&mut self, cost: f64) {
        let cap = self.tree.len() / 2;
        if self.per_query.len() == cap {
            self.per_query.push(cost);
            let costs = std::mem::take(&mut self.per_query);
            *self = Self::from_costs(costs);
        } else {
            let q = self.per_query.len();
            self.per_query.push(cost);
            self.set_query_cost(q, cost);
        }
    }

    /// Appends a batch of newly admitted queries' costs with at most
    /// **one** capacity rebuild. Bit-identical to pushing them one at a
    /// time: the tree is a pure function of (leaves, capacity), the
    /// final capacity is the same power of two either way, and the
    /// rebuild's zero padding adds exact +0.0.
    pub fn extend_query_costs(&mut self, costs: &[f64]) {
        let need = self.per_query.len() + costs.len();
        if need > self.tree.len() / 2 {
            self.per_query.extend_from_slice(costs);
            let all = std::mem::take(&mut self.per_query);
            *self = Self::from_costs(all);
        } else {
            for &cost in costs {
                let q = self.per_query.len();
                self.per_query.push(cost);
                self.set_query_cost(q, cost);
            }
        }
    }

    /// Splices a delta's `(query, cost)` list (ascending by query) into
    /// the snapshot — O(changed·log n). After this,
    /// [`Self::total`] equals what [`Self::overlaid_total`] returned for
    /// the same list, bit for bit.
    pub fn apply_changed(&mut self, changed: &[(u32, f64)]) {
        for &(q, cost) in changed {
            self.set_query_cost(q as usize, cost);
        }
    }

    /// The total the tree *would* have with `changed` (ascending by
    /// query, at most one entry per query) overlaid — read-only,
    /// O(changed·log n): subtrees containing no changed leaf are read
    /// straight from the tree, so the additions performed are exactly the
    /// tree-shape additions along the changed leaves' root paths.
    pub fn overlaid_total(&self, changed: &[(u32, f64)]) -> f64 {
        if changed.is_empty() {
            return self.tree[1];
        }
        self.overlaid_node(1, 0, self.tree.len() / 2, changed)
    }

    fn overlaid_node(&self, node: usize, lo: usize, span: usize, changed: &[(u32, f64)]) -> f64 {
        if changed.is_empty() {
            return self.tree[node];
        }
        if span == 1 {
            debug_assert_eq!(changed.len(), 1, "duplicate changed query {lo}");
            return changed[0].1;
        }
        let half = span / 2;
        let mid = lo + half;
        let split = changed.partition_point(|&(q, _)| (q as usize) < mid);
        let left = self.overlaid_node(2 * node, lo, half, &changed[..split]);
        let right = self.overlaid_node(2 * node + 1, mid, half, &changed[split..]);
        left + right
    }

    /// Sampled (`PINUM_ASSERT_SAMPLE`) debug re-check that this state is
    /// **bit-identical** to `model.price_full(selection)` — the one
    /// equivalence rule behind every spliced-state consumer (the pricing
    /// session and the search strategies' accepted-move splices).
    /// Compiled away in release builds.
    pub fn debug_assert_bit_identical_to_full(&self, model: &WorkloadModel, selection: &Selection) {
        #[cfg(debug_assertions)]
        if crate::sampling::should_assert() {
            let full = model.price_full(selection);
            debug_assert!(
                self.total().to_bits() == full.total().to_bits()
                    && self.per_query.len() == full.per_query.len()
                    && self
                        .per_query
                        .iter()
                        .zip(&full.per_query)
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                "incrementally maintained priced state diverged from a full re-pricing: \
                 {} vs {}",
                self.total(),
                full.total()
            );
        }
        #[cfg(not(debug_assertions))]
        {
            let _ = (model, selection);
        }
    }
}

/// One packed `(plan, relation)` slot: coefficients, the always-arm
/// scalars, and `[start, end)` extents into the shared arm arrays.
#[derive(Debug, Clone, Copy, PartialEq)]
struct SlotMeta {
    /// Coefficient on the standalone access cost (0 ⇒ applicability-only).
    coef: f64,
    /// Coefficient on the per-probe access cost (0 ⇒ no probe term).
    pcoef: f64,
    /// Cost of the slot's always-available standalone arm, or `+∞` when
    /// every standalone arm is candidate-gated. Seeds the min-scan.
    s_always: f64,
    /// Same for the probe arms.
    p_always: f64,
    /// Candidate-gated standalone arm run in the arm arrays.
    s_start: u32,
    s_end: u32,
    /// Candidate-gated probe arm run in the arm arrays.
    p_start: u32,
    p_end: u32,
    /// Whether the plan requires an interesting order on this relation
    /// (if so, the slot is inapplicable when no standalone arm is live).
    required: bool,
}

/// One packed cached plan: internal cost plus a slot extent.
#[derive(Debug, Clone, Copy, PartialEq)]
struct PlanMeta {
    internal: f64,
    slot_start: u32,
    slot_end: u32,
}

/// One packed query: a plan extent, the candidate-footprint prefilters,
/// and the flattened arm count (tombstones zero everything).
#[derive(Debug, Clone, Copy, PartialEq)]
struct QueryMeta {
    plan_start: u32,
    plan_end: u32,
    /// Sorted distinct candidates this query's arms mention, as an extent
    /// into the shared `touched` CSR array.
    touched_start: u32,
    touched_end: u32,
    /// Bloom filter over the touched candidates (bit `c mod 64`): a clear
    /// bit proves the candidate cannot re-price this query.
    bloom: u64,
    /// Flattened access arms (standalone + probe, always-arms included).
    arm_count: u32,
}

/// The packed model exploded into flat parallel vectors of primitives —
/// the serialization surface of [`WorkloadModel::to_parts`] /
/// [`WorkloadModel::from_parts`]. Each `slot_*` / `plan_*` / `query_*`
/// group is a struct-of-arrays view of the corresponding private meta
/// array, so a snapshot writer can stream every field as one contiguous
/// length-prefixed section with no pointer chasing. Derived data (the
/// inverted index and the live count) is deliberately absent:
/// `from_parts` recomputes it, which doubles as validation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WorkloadModelParts {
    /// Candidate pool cardinality (`u64` so the field width is
    /// platform-independent on the wire).
    pub pool_size: u64,
    pub arm_costs: Vec<f64>,
    pub arm_cands: Vec<u32>,
    pub slot_coef: Vec<f64>,
    pub slot_pcoef: Vec<f64>,
    pub slot_s_always: Vec<f64>,
    pub slot_p_always: Vec<f64>,
    pub slot_s_start: Vec<u32>,
    pub slot_s_end: Vec<u32>,
    pub slot_p_start: Vec<u32>,
    pub slot_p_end: Vec<u32>,
    pub slot_required: Vec<bool>,
    pub plan_internal: Vec<f64>,
    pub plan_slot_start: Vec<u32>,
    pub plan_slot_end: Vec<u32>,
    pub query_plan_start: Vec<u32>,
    pub query_plan_end: Vec<u32>,
    pub query_touched_start: Vec<u32>,
    pub query_touched_end: Vec<u32>,
    pub query_bloom: Vec<u64>,
    pub query_arm_count: Vec<u32>,
    pub touched: Vec<u32>,
    pub weights: Vec<f64>,
    pub live: Vec<bool>,
}

/// Words a [`SelView`] keeps inline before spilling to the heap: 16×64 =
/// 1024 candidates, far above every workload in the experiments.
const INLINE_WORDS: usize = 16;

/// A per-pricing-call snapshot of the selection as a fixed-width bitset,
/// with a delta's virtual add (`extra`) baked in as a set bit and its
/// virtual drop (`without`) as a cleared bit. The hot min-scan then tests
/// arm applicability with a single word load — no `Option` compares, no
/// bounds surprises (the view is always `pool_size` bits wide, zero
/// padded past the selection's own word count).
#[derive(Clone)]
struct SelView {
    nwords: usize,
    inline: [u64; INLINE_WORDS],
    spill: Vec<u64>,
}

impl SelView {
    fn new(
        pool_size: usize,
        selection: &Selection,
        extra: Option<usize>,
        without: Option<usize>,
    ) -> Self {
        let nwords = pool_size.div_ceil(64).max(1);
        let mut view = Self {
            nwords,
            inline: [0u64; INLINE_WORDS],
            spill: if nwords > INLINE_WORDS {
                vec![0u64; nwords]
            } else {
                Vec::new()
            },
        };
        let src = selection.word_slice();
        let dst = view.words_mut();
        let n = src.len().min(nwords);
        dst[..n].copy_from_slice(&src[..n]);
        if let Some(e) = extra {
            if e / 64 < nwords {
                dst[e / 64] |= 1u64 << (e % 64);
            }
        }
        if let Some(w) = without {
            if w / 64 < nwords {
                dst[w / 64] &= !(1u64 << (w % 64));
            }
        }
        view
    }

    fn words(&self) -> &[u64] {
        if self.spill.is_empty() {
            &self.inline[..self.nwords]
        } else {
            &self.spill
        }
    }

    fn words_mut(&mut self) -> &mut [u64] {
        if self.spill.is_empty() {
            &mut self.inline[..self.nwords]
        } else {
            &mut self.spill
        }
    }

    /// Sets candidate `c`'s bit — a probe's virtual add, O(1). Batch
    /// pricing shares one base view per worker and toggles probe bits in
    /// and out instead of rebuilding the snapshot per probe.
    fn set_bit(&mut self, c: usize) {
        let w = c / 64;
        if w < self.nwords {
            self.words_mut()[w] |= 1u64 << (c % 64);
        }
    }

    /// Clears candidate `c`'s bit — a probe's virtual drop, O(1).
    fn clear_bit(&mut self, c: usize) {
        let w = c / 64;
        if w < self.nwords {
            self.words_mut()[w] &= !(1u64 << (c % 64));
        }
    }
}

/// The branchless core: minimum over `init` and every arm whose candidate
/// bit is set in `words`. Arm costs are finite, so `+∞` encodes
/// "inapplicable"; arms are ascending by cost below the always arm, so
/// the masked min carries the exact bits of "first applicable arm wins".
#[cfg(not(feature = "simd"))]
#[inline]
fn min_arm(costs: &[f64], cands: &[u32], words: &[u64], init: f64) -> f64 {
    let mut m = init;
    for (&cost, &cand) in costs.iter().zip(cands) {
        let sel = (words[(cand >> 6) as usize] >> (cand & 63)) & 1;
        let x = if sel != 0 { cost } else { f64::INFINITY };
        m = if x < m { x } else { m };
    }
    m
}

/// [`min_arm`], hand-unrolled into four independent accumulator lanes so
/// the selects vectorize even when the compiler won't reassociate on its
/// own. `min` over non-NaN values is associative and commutative, so the
/// lane fold is bit-identical to the scalar scan.
#[cfg(feature = "simd")]
#[inline]
fn min_arm(costs: &[f64], cands: &[u32], words: &[u64], init: f64) -> f64 {
    let mut lanes = [f64::INFINITY; 4];
    let main = costs.len() & !3;
    for (costs4, cands4) in costs[..main]
        .chunks_exact(4)
        .zip(cands[..main].chunks_exact(4))
    {
        for k in 0..4 {
            let cand = cands4[k];
            let sel = (words[(cand >> 6) as usize] >> (cand & 63)) & 1;
            let x = if sel != 0 { costs4[k] } else { f64::INFINITY };
            lanes[k] = if x < lanes[k] { x } else { lanes[k] };
        }
    }
    let mut m = init;
    for &x in &lanes {
        m = if x < m { x } else { m };
    }
    for (&cost, &cand) in costs[main..].iter().zip(&cands[main..]) {
        let sel = (words[(cand >> 6) as usize] >> (cand & 63)) & 1;
        let x = if sel != 0 { cost } else { f64::INFINITY };
        m = if x < m { x } else { m };
    }
    m
}

/// The precomputed workload pricing engine, packed as struct-of-arrays.
/// See the module docs for the layout and invariants.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadModel {
    /// All candidate-gated arm costs, slot by slot (standalone run then
    /// probe run), query by query, ascending by cost within a run.
    arm_costs: Vec<f64>,
    /// Parallel array: the pool candidate gating each arm.
    arm_cands: Vec<u32>,
    slots: Vec<SlotMeta>,
    plans: Vec<PlanMeta>,
    qmeta: Vec<QueryMeta>,
    /// CSR array of per-query sorted distinct touched candidates.
    touched: Vec<u32>,
    /// Per-query workload weight (1.0 at build/admit time; 0.0 for
    /// tombstones). A query contributes `weight × price` to every total.
    weights: Vec<f64>,
    /// Liveness per query slot: evicted queries leave a tombstone so ids
    /// stay stable for callers holding them.
    live: Vec<bool>,
    /// Number of live (non-evicted) query slots.
    live_count: usize,
    /// Inverted index: candidate id → sorted query ids whose price can
    /// change when the candidate joins the selection. Only live queries
    /// appear (eviction retracts its entries eagerly).
    affected: Vec<Vec<u32>>,
    pool_size: usize,
}

impl WorkloadModel {
    /// Flattens per-query `(plan cache, access-cost catalog)` models into
    /// the packed pricing structure. `pool_size` is the candidate pool
    /// cardinality the access catalogs were collected against.
    ///
    /// With the `parallel` feature the per-query flattening fans out over
    /// std threads (each query is independent); packing and the inverted
    /// index are always assembled serially in query order, so the built
    /// model is identical to [`Self::build_serial`]'s.
    pub fn build<'a, I>(pool_size: usize, models: I) -> Self
    where
        I: IntoIterator<Item = (&'a PlanCache, &'a AccessCostCatalog)>,
    {
        let models: Vec<_> = models.into_iter().collect();
        Self::assemble(
            pool_size,
            flatten_models(&models, cfg!(feature = "parallel")),
        )
    }

    /// [`Self::build`] forced onto the single-threaded flattening path,
    /// regardless of the `parallel` feature. The result is `==` to
    /// `build`'s — kept public so the determinism claim stays testable in
    /// feature-enabled builds.
    pub fn build_serial<'a, I>(pool_size: usize, models: I) -> Self
    where
        I: IntoIterator<Item = (&'a PlanCache, &'a AccessCostCatalog)>,
    {
        let models: Vec<_> = models.into_iter().collect();
        Self::assemble(pool_size, flatten_models(&models, false))
    }

    /// A model holding zero queries over a pool.
    fn empty(pool_size: usize) -> Self {
        Self {
            arm_costs: Vec::new(),
            arm_cands: Vec::new(),
            slots: Vec::new(),
            plans: Vec::new(),
            qmeta: Vec::new(),
            touched: Vec::new(),
            weights: Vec::new(),
            live: Vec::new(),
            live_count: 0,
            affected: vec![Vec::new(); pool_size],
            pool_size,
        }
    }

    /// Packs flattened queries in order and indexes them (serial — the
    /// deterministic part of construction, shared by batch build,
    /// streaming admission, and compaction).
    fn assemble(pool_size: usize, queries: Vec<QueryModel>) -> Self {
        let mut out = Self::empty(pool_size);
        for qm in &queries {
            out.push_query(qm);
            out.finish_admit(1.0);
        }
        out
    }

    /// Appends one arm run to the packed arrays, splitting a trailing
    /// always-available arm out into the returned scalar (`+∞` when the
    /// run has none). Arm pruning guarantees at most one always arm, in
    /// last position.
    fn push_arms(&mut self, arms: &[AccessArm]) -> (u32, u32, f64) {
        let start = self.arm_costs.len() as u32;
        let mut always = f64::INFINITY;
        for arm in arms {
            debug_assert!(
                arm.cost.is_finite(),
                "access arm cost must be finite (∞ encodes inapplicability)"
            );
            if arm.candidate == ALWAYS {
                debug_assert!(
                    always.is_infinite(),
                    "more than one always-available arm survived pruning"
                );
                always = arm.cost;
            } else {
                self.arm_costs.push(arm.cost);
                self.arm_cands.push(arm.candidate);
            }
        }
        (start, self.arm_costs.len() as u32, always)
    }

    /// Packs one flattened query onto the end of the SoA arrays and
    /// pushes its [`QueryMeta`] (footprint list, bloom, arm count).
    /// [`Self::finish_admit`] must follow to index and weight it.
    fn push_query(&mut self, qm: &QueryModel) {
        let plan_start = self.plans.len() as u32;
        let arm_lo = self.arm_cands.len();
        let mut arm_count = 0u32;
        for plan in &qm.plans {
            let slot_start = self.slots.len() as u32;
            for slot in &plan.slots {
                arm_count += (slot.standalone.len() + slot.probes.len()) as u32;
                let (s_start, s_end, s_always) = self.push_arms(&slot.standalone);
                let (p_start, p_end, p_always) = self.push_arms(&slot.probes);
                self.slots.push(SlotMeta {
                    coef: slot.coef,
                    pcoef: slot.pcoef,
                    s_always,
                    p_always,
                    s_start,
                    s_end,
                    p_start,
                    p_end,
                    required: slot.required,
                });
            }
            self.plans.push(PlanMeta {
                internal: plan.internal,
                slot_start,
                slot_end: self.slots.len() as u32,
            });
        }
        let touched_start = self.touched.len() as u32;
        collect_touched(&self.arm_cands[arm_lo..], &mut self.touched);
        let mut bloom = 0u64;
        for &c in &self.touched[touched_start as usize..] {
            bloom |= 1u64 << (c & 63);
        }
        self.qmeta.push(QueryMeta {
            plan_start,
            plan_end: self.plans.len() as u32,
            touched_start,
            touched_end: self.touched.len() as u32,
            bloom,
            arm_count,
        });
    }

    /// Indexes and weights the most recently packed query. The new id is
    /// the largest ever issued, so every inverted-index insertion is an
    /// O(1) push that keeps the lists sorted.
    fn finish_admit(&mut self, weight: f64) {
        let qid = (self.qmeta.len() - 1) as u32;
        let qm = self.qmeta[qid as usize];
        for &c in &self.touched[qm.touched_start as usize..qm.touched_end as usize] {
            validate_candidate(c, self.pool_size);
            self.affected[c as usize].push(qid);
        }
        self.weights.push(weight);
        self.live.push(true);
        self.live_count += 1;
    }

    /// Flattens one more `(plan cache, access catalog)` pair and splices
    /// it into the model at weight 1.0, returning its stable query id.
    /// The work is O(this query's plans and access arms) — the rest of
    /// the workload is never touched.
    pub fn admit_query(&mut self, cache: &PlanCache, access: &AccessCostCatalog) -> usize {
        self.admit_query_weighted(cache, access, 1.0)
    }

    /// [`Self::admit_query`] with an explicit workload weight (e.g. an
    /// observed execution frequency). `weight` must be finite and > 0.
    pub fn admit_query_weighted(
        &mut self,
        cache: &PlanCache,
        access: &AccessCostCatalog,
        weight: f64,
    ) -> usize {
        assert!(
            weight.is_finite() && weight > 0.0,
            "query weight must be finite and positive, got {weight}"
        );
        let qid = self.qmeta.len();
        assert!(qid < u32::MAX as usize, "query id space exhausted");
        let qm = flatten_query(cache, access);
        self.push_query(&qm);
        self.finish_admit(weight);
        self.debug_assert_index_matches_rebuild();
        qid
    }

    /// Splices a batch of queries in one maintenance pass: every query is
    /// flattened and packed, the inverted index takes each newcomer's
    /// entries as the same O(1) sorted pushes the serial path does (new
    /// ids are issued in ascending order, so the lists stay sorted), and
    /// the expensive index-rebuild debug assert runs **once** for the
    /// whole batch instead of once per query. Returns the first new query
    /// id; the batch occupies `first..first + queries.len()`.
    ///
    /// Bit-identical to `queries.len()` serial
    /// [`Self::admit_query_weighted`] calls: admission never reads other
    /// queries' state, so batching changes no intermediate value.
    pub fn admit_batch(&mut self, queries: &[(&PlanCache, &AccessCostCatalog, f64)]) -> usize {
        let first = self.qmeta.len();
        assert!(
            first + queries.len() < u32::MAX as usize,
            "query id space exhausted"
        );
        for &(cache, access, weight) in queries {
            assert!(
                weight.is_finite() && weight > 0.0,
                "query weight must be finite and positive, got {weight}"
            );
            let qm = flatten_query(cache, access);
            self.push_query(&qm);
            self.finish_admit(weight);
        }
        self.debug_assert_index_matches_rebuild();
        first
    }

    /// Retracts a live query: its inverted-index entries are removed
    /// (binary search per touched candidate — delta pricing never has to
    /// skip dead entries) and its metadata is tombstoned, so its packed
    /// arm data becomes unreachable (reclaimed by [`Self::compact`]).
    /// The slot itself keeps other query ids stable; a tombstone
    /// contributes exactly 0.0 to every total, which keeps the sum tree
    /// bit-identical to a model that never held the query.
    pub fn evict_query(&mut self, qid: usize) {
        assert!(
            self.live.get(qid).copied().unwrap_or(false),
            "evicting unknown or already-evicted query {qid}"
        );
        let qm = self.qmeta[qid];
        for i in qm.touched_start..qm.touched_end {
            let c = self.touched[i as usize];
            let list = &mut self.affected[c as usize];
            let pos = list
                .binary_search(&(qid as u32))
                .unwrap_or_else(|_| panic!("inverted index lost query {qid} under candidate {c}"));
            list.remove(pos);
        }
        self.qmeta[qid] = QueryMeta {
            plan_start: 0,
            plan_end: 0,
            touched_start: 0,
            touched_end: 0,
            bloom: 0,
            arm_count: 0,
        };
        self.weights[qid] = 0.0;
        self.live[qid] = false;
        self.live_count -= 1;
        self.debug_assert_index_matches_rebuild();
    }

    /// Changes a live query's workload weight (finite, > 0). O(1): weights
    /// scale prices at evaluation time, so no stored cost goes stale.
    pub fn reweight_query(&mut self, qid: usize, weight: f64) {
        assert!(
            self.live.get(qid).copied().unwrap_or(false),
            "reweighting unknown or evicted query {qid}"
        );
        assert!(
            weight.is_finite() && weight > 0.0,
            "query weight must be finite and positive, got {weight}"
        );
        self.weights[qid] = weight;
    }

    /// Drops every tombstone slot, renumbering live queries in ascending
    /// id order and repacking the SoA arrays over the survivors (this is
    /// also what reclaims evicted queries' arm data). Returns the
    /// old→new id mapping (`u32::MAX` for evicted slots) so callers
    /// holding query ids can remap. Weights are preserved. The compacted
    /// model is exactly what [`Self::build`] over the surviving queries
    /// (then reweighted) would produce.
    pub fn compact(&mut self) -> Vec<u32> {
        let mut remap = vec![u32::MAX; self.qmeta.len()];
        let mut out = Self::empty(self.pool_size);
        for (qid, slot) in remap.iter_mut().enumerate() {
            if !self.live[qid] {
                continue;
            }
            *slot = out.qmeta.len() as u32;
            out.copy_query_from(self, qid);
            out.finish_admit(self.weights[qid]);
        }
        *self = out;
        self.debug_assert_index_matches_rebuild();
        remap
    }

    /// Re-appends one of `src`'s live queries onto this model's packed
    /// arrays, rebasing every extent. The appended bytes are identical to
    /// what [`Self::push_query`] would produce for the same query, so
    /// compaction stays bit-identical to a fresh build.
    fn copy_query_from(&mut self, src: &Self, qid: usize) {
        let qm = src.qmeta[qid];
        let plan_start = self.plans.len() as u32;
        for plan in &src.plans[qm.plan_start as usize..qm.plan_end as usize] {
            let slot_start = self.slots.len() as u32;
            for slot in &src.slots[plan.slot_start as usize..plan.slot_end as usize] {
                let s_start = self.arm_costs.len() as u32;
                self.arm_costs
                    .extend_from_slice(&src.arm_costs[slot.s_start as usize..slot.s_end as usize]);
                self.arm_cands
                    .extend_from_slice(&src.arm_cands[slot.s_start as usize..slot.s_end as usize]);
                let s_end = self.arm_costs.len() as u32;
                self.arm_costs
                    .extend_from_slice(&src.arm_costs[slot.p_start as usize..slot.p_end as usize]);
                self.arm_cands
                    .extend_from_slice(&src.arm_cands[slot.p_start as usize..slot.p_end as usize]);
                self.slots.push(SlotMeta {
                    s_start,
                    s_end,
                    p_start: s_end,
                    p_end: self.arm_costs.len() as u32,
                    ..*slot
                });
            }
            self.plans.push(PlanMeta {
                internal: plan.internal,
                slot_start,
                slot_end: self.slots.len() as u32,
            });
        }
        let touched_start = self.touched.len() as u32;
        self.touched
            .extend_from_slice(&src.touched[qm.touched_start as usize..qm.touched_end as usize]);
        self.qmeta.push(QueryMeta {
            plan_start,
            plan_end: self.plans.len() as u32,
            touched_start,
            touched_end: self.touched.len() as u32,
            bloom: qm.bloom,
            arm_count: qm.arm_count,
        });
    }

    /// Recomputes the footprint lists, blooms, and inverted index from
    /// the packed arm arrays and compares — the mutation-path analogue of
    /// the deltas' full-reprice `debug_assert`. Compiled away in release
    /// builds; sampled (every k-th mutation) via `PINUM_ASSERT_SAMPLE` so
    /// long streams keep a bounded debug cost.
    fn debug_assert_index_matches_rebuild(&self) {
        #[cfg(debug_assertions)]
        {
            if !crate::sampling::should_assert() {
                return;
            }
            let mut expect: Vec<Vec<u32>> = vec![Vec::new(); self.pool_size];
            for (qid, qm) in self.qmeta.iter().enumerate() {
                if !self.live[qid] {
                    debug_assert!(
                        qm.plan_start == qm.plan_end && qm.arm_count == 0,
                        "tombstone {qid} retains plans"
                    );
                    debug_assert!(
                        qm.touched_start == qm.touched_end && qm.bloom == 0,
                        "tombstone {qid} retains a candidate footprint"
                    );
                    continue;
                }
                let mut cands: Vec<u32> = Vec::new();
                for plan in &self.plans[qm.plan_start as usize..qm.plan_end as usize] {
                    for slot in &self.slots[plan.slot_start as usize..plan.slot_end as usize] {
                        cands.extend_from_slice(
                            &self.arm_cands[slot.s_start as usize..slot.s_end as usize],
                        );
                        cands.extend_from_slice(
                            &self.arm_cands[slot.p_start as usize..slot.p_end as usize],
                        );
                    }
                }
                cands.sort_unstable();
                cands.dedup();
                let stored = &self.touched[qm.touched_start as usize..qm.touched_end as usize];
                debug_assert!(
                    stored == cands.as_slice(),
                    "stored candidate footprint diverged for query {qid}"
                );
                let bloom = cands.iter().fold(0u64, |b, &c| b | 1u64 << (c & 63));
                debug_assert_eq!(bloom, qm.bloom, "bloom prefilter diverged for query {qid}");
                for c in cands {
                    expect[c as usize].push(qid as u32);
                }
            }
            debug_assert!(
                self.affected == expect,
                "incrementally maintained inverted index diverged from a from-scratch rebuild"
            );
            debug_assert_eq!(self.live_count, self.live.iter().filter(|l| **l).count());
        }
    }

    /// Exports the packed state as flat parallel vectors — the
    /// serialization surface for session persistence. The parts contain
    /// every owned field except the inverted index and the live count,
    /// which are derived data rebuilt by [`Self::from_parts`]; the
    /// round-trip `from_parts(to_parts())` is `==` to the original model.
    pub fn to_parts(&self) -> WorkloadModelParts {
        WorkloadModelParts {
            pool_size: self.pool_size as u64,
            arm_costs: self.arm_costs.clone(),
            arm_cands: self.arm_cands.clone(),
            slot_coef: self.slots.iter().map(|s| s.coef).collect(),
            slot_pcoef: self.slots.iter().map(|s| s.pcoef).collect(),
            slot_s_always: self.slots.iter().map(|s| s.s_always).collect(),
            slot_p_always: self.slots.iter().map(|s| s.p_always).collect(),
            slot_s_start: self.slots.iter().map(|s| s.s_start).collect(),
            slot_s_end: self.slots.iter().map(|s| s.s_end).collect(),
            slot_p_start: self.slots.iter().map(|s| s.p_start).collect(),
            slot_p_end: self.slots.iter().map(|s| s.p_end).collect(),
            slot_required: self.slots.iter().map(|s| s.required).collect(),
            plan_internal: self.plans.iter().map(|p| p.internal).collect(),
            plan_slot_start: self.plans.iter().map(|p| p.slot_start).collect(),
            plan_slot_end: self.plans.iter().map(|p| p.slot_end).collect(),
            query_plan_start: self.qmeta.iter().map(|q| q.plan_start).collect(),
            query_plan_end: self.qmeta.iter().map(|q| q.plan_end).collect(),
            query_touched_start: self.qmeta.iter().map(|q| q.touched_start).collect(),
            query_touched_end: self.qmeta.iter().map(|q| q.touched_end).collect(),
            query_bloom: self.qmeta.iter().map(|q| q.bloom).collect(),
            query_arm_count: self.qmeta.iter().map(|q| q.arm_count).collect(),
            touched: self.touched.clone(),
            weights: self.weights.clone(),
            live: self.live.clone(),
        }
    }

    /// Rebuilds a model from exported parts, validating every structural
    /// invariant the mutation paths maintain (extent bounds, per-query
    /// footprints, blooms, arm counts, tombstone emptiness, weight
    /// positivity) and recomputing the derived data (`affected`,
    /// `live_count`) from scratch — the restore-side mirror of
    /// `debug_assert_index_matches_rebuild`, but unconditional
    /// and returning a typed error instead of panicking, since parts
    /// arrive from disk.
    pub fn from_parts(parts: WorkloadModelParts) -> Result<Self, &'static str> {
        let WorkloadModelParts {
            pool_size,
            arm_costs,
            arm_cands,
            slot_coef,
            slot_pcoef,
            slot_s_always,
            slot_p_always,
            slot_s_start,
            slot_s_end,
            slot_p_start,
            slot_p_end,
            slot_required,
            plan_internal,
            plan_slot_start,
            plan_slot_end,
            query_plan_start,
            query_plan_end,
            query_touched_start,
            query_touched_end,
            query_bloom,
            query_arm_count,
            touched,
            weights,
            live,
        } = parts;
        let pool_size = usize::try_from(pool_size).map_err(|_| "pool size overflows usize")?;
        if arm_costs.len() != arm_cands.len() {
            return Err("arm cost/candidate arrays differ in length");
        }
        if arm_costs.iter().any(|c| !c.is_finite()) {
            return Err("non-finite arm cost");
        }
        if arm_cands.iter().any(|&c| c as usize >= pool_size) {
            return Err("arm candidate outside the pool");
        }
        let n_slots = slot_coef.len();
        if [
            slot_pcoef.len(),
            slot_s_always.len(),
            slot_p_always.len(),
            slot_s_start.len(),
            slot_s_end.len(),
            slot_p_start.len(),
            slot_p_end.len(),
            slot_required.len(),
        ]
        .iter()
        .any(|&l| l != n_slots)
        {
            return Err("slot arrays differ in length");
        }
        let slots: Vec<SlotMeta> = (0..n_slots)
            .map(|i| SlotMeta {
                coef: slot_coef[i],
                pcoef: slot_pcoef[i],
                s_always: slot_s_always[i],
                p_always: slot_p_always[i],
                s_start: slot_s_start[i],
                s_end: slot_s_end[i],
                p_start: slot_p_start[i],
                p_end: slot_p_end[i],
                required: slot_required[i],
            })
            .collect();
        let n_arms = arm_costs.len() as u32;
        for s in &slots {
            if s.s_start > s.s_end || s.s_end > n_arms || s.p_start > s.p_end || s.p_end > n_arms {
                return Err("slot arm extent out of bounds");
            }
        }
        let n_plans = plan_internal.len();
        if plan_slot_start.len() != n_plans || plan_slot_end.len() != n_plans {
            return Err("plan arrays differ in length");
        }
        let plans: Vec<PlanMeta> = (0..n_plans)
            .map(|i| PlanMeta {
                internal: plan_internal[i],
                slot_start: plan_slot_start[i],
                slot_end: plan_slot_end[i],
            })
            .collect();
        for p in &plans {
            if p.slot_start > p.slot_end || p.slot_end as usize > n_slots {
                return Err("plan slot extent out of bounds");
            }
        }
        let n_queries = query_plan_start.len();
        if [
            query_plan_end.len(),
            query_touched_start.len(),
            query_touched_end.len(),
            query_bloom.len(),
            query_arm_count.len(),
            weights.len(),
            live.len(),
        ]
        .iter()
        .any(|&l| l != n_queries)
        {
            return Err("query arrays differ in length");
        }
        let qmeta: Vec<QueryMeta> = (0..n_queries)
            .map(|i| QueryMeta {
                plan_start: query_plan_start[i],
                plan_end: query_plan_end[i],
                touched_start: query_touched_start[i],
                touched_end: query_touched_end[i],
                bloom: query_bloom[i],
                arm_count: query_arm_count[i],
            })
            .collect();
        if touched.iter().any(|&c| c as usize >= pool_size) {
            return Err("touched candidate outside the pool");
        }
        let mut affected: Vec<Vec<u32>> = vec![Vec::new(); pool_size];
        let mut live_count = 0usize;
        for (qid, qm) in qmeta.iter().enumerate() {
            if qm.plan_start > qm.plan_end
                || qm.plan_end as usize > n_plans
                || qm.touched_start > qm.touched_end
                || qm.touched_end as usize > touched.len()
            {
                return Err("query extent out of bounds");
            }
            if !live[qid] {
                if qm.plan_start != qm.plan_end
                    || qm.touched_start != qm.touched_end
                    || qm.bloom != 0
                    || qm.arm_count != 0
                {
                    return Err("tombstone query retains plan or footprint data");
                }
                if weights[qid] != 0.0 {
                    return Err("tombstone query retains a weight");
                }
                continue;
            }
            if !(weights[qid].is_finite() && weights[qid] > 0.0) {
                return Err("live query weight not finite and positive");
            }
            // Recompute the footprint, bloom, and arm count from the arm
            // extents — a checksum can vouch for bytes, not invariants.
            let mut cands: Vec<u32> = Vec::new();
            let mut arm_count = 0u32;
            for plan in &plans[qm.plan_start as usize..qm.plan_end as usize] {
                for slot in &slots[plan.slot_start as usize..plan.slot_end as usize] {
                    cands.extend_from_slice(&arm_cands[slot.s_start as usize..slot.s_end as usize]);
                    cands.extend_from_slice(&arm_cands[slot.p_start as usize..slot.p_end as usize]);
                    arm_count += (slot.s_end - slot.s_start) + (slot.p_end - slot.p_start);
                    arm_count += slot.s_always.is_finite() as u32;
                    arm_count += slot.p_always.is_finite() as u32;
                }
            }
            cands.sort_unstable();
            cands.dedup();
            let stored = &touched[qm.touched_start as usize..qm.touched_end as usize];
            if stored != cands.as_slice() {
                return Err("stored candidate footprint diverges from the arm data");
            }
            let bloom = cands.iter().fold(0u64, |b, &c| b | 1u64 << (c & 63));
            if bloom != qm.bloom {
                return Err("stored bloom prefilter diverges from the footprint");
            }
            if arm_count != qm.arm_count {
                return Err("stored arm count diverges from the arm extents");
            }
            for c in cands {
                affected[c as usize].push(qid as u32);
            }
            live_count += 1;
        }
        Ok(Self {
            arm_costs,
            arm_cands,
            slots,
            plans,
            qmeta,
            touched,
            weights,
            live,
            live_count,
            affected,
            pool_size,
        })
    }

    /// Total query *slots*, including tombstones — the length every
    /// [`PricedWorkload::per_query`] vector must have.
    pub fn query_count(&self) -> usize {
        self.qmeta.len()
    }

    /// Live (non-evicted) queries currently priced into totals.
    pub fn live_query_count(&self) -> usize {
        self.live_count
    }

    /// Whether `qid` is a live query slot.
    pub fn is_live(&self, qid: usize) -> bool {
        self.live.get(qid).copied().unwrap_or(false)
    }

    /// The query's current workload weight (0.0 for tombstones).
    pub fn weight(&self, qid: usize) -> f64 {
        self.weights[qid]
    }

    /// Number of flattened access arms (standalone + probe, including
    /// always-available arms) in one query's model.
    /// [`Self::admit_query`]'s work is proportional to this — a
    /// measurable witness that admission is O(the query), not
    /// O(the workload).
    pub fn query_arm_count(&self, qid: usize) -> usize {
        self.qmeta[qid].arm_count as usize
    }

    pub fn pool_size(&self) -> usize {
        self.pool_size
    }

    /// Query ids whose price can change when `candidate` is added
    /// (ascending).
    pub fn affected(&self, candidate: usize) -> &[u32] {
        &self.affected[candidate]
    }

    /// Whether `candidate` appears in `qid`'s access arms — i.e. whether
    /// it can change the query's price at all. One AND against the
    /// per-query bloom word; only a bloom hit (≤ 1/64 false-positive rate
    /// per distinct residue) pays a binary search in the footprint list.
    /// Tombstones touch nothing.
    pub fn query_touches(&self, qid: usize, candidate: usize) -> bool {
        let qm = &self.qmeta[qid];
        if qm.bloom & (1u64 << (candidate as u64 & 63)) == 0 {
            return false;
        }
        self.touched[qm.touched_start as usize..qm.touched_end as usize]
            .binary_search(&(candidate as u32))
            .is_ok()
    }

    /// Prices one query under `selection`, with `extra` overlaid as a
    /// virtual member of the selection (no clone). `f64::INFINITY` when no
    /// cached plan is applicable (e.g. an empty cache) — matching the
    /// advisor's treatment of `CacheCostModel::estimate == None`.
    pub fn price_query(&self, query: usize, selection: &Selection, extra: Option<usize>) -> f64 {
        self.price_query_view(query, selection, extra, None)
    }

    /// [`Self::price_query`] over a *virtual* selection view: `extra` is
    /// overlaid as a member, `without` is masked out — both without
    /// cloning the selection. This is the primitive behind all three delta
    /// directions (add, drop, swap).
    pub fn price_query_view(
        &self,
        query: usize,
        selection: &Selection,
        extra: Option<usize>,
        without: Option<usize>,
    ) -> f64 {
        let view = SelView::new(self.pool_size, selection, extra, without);
        self.price_query_in(query, view.words())
    }

    /// Min over the query's plans against a baked selection view. Every
    /// slot contribution is non-negative, so a plan whose running cost
    /// reaches the best seen so far can never win: the scan hands each
    /// plan the current best as a bound and the plan bails out the moment
    /// it crosses it. Only non-winning work is skipped — the minimum's
    /// value (and bits) is exactly the unbounded scan's.
    fn price_query_in(&self, query: usize, words: &[u64]) -> f64 {
        let qm = &self.qmeta[query];
        let mut best = f64::INFINITY;
        for plan in &self.plans[qm.plan_start as usize..qm.plan_end as usize] {
            if plan.internal >= best {
                continue;
            }
            let cost = self.price_plan_in(plan, words, best);
            if cost < best {
                best = cost;
            }
        }
        best
    }

    /// Prices one packed plan; `+∞` when inapplicable under the view or
    /// once the running cost reaches `bound` (slot terms only ever add,
    /// so such a plan cannot beat the bound's owner). Mirrors
    /// `CacheCostModel::estimate_filtered` term for term (same slot
    /// order, same addition order, same tie-breaking).
    fn price_plan_in(&self, plan: &PlanMeta, words: &[u64], bound: f64) -> f64 {
        let mut cost = plan.internal;
        for slot in &self.slots[plan.slot_start as usize..plan.slot_end as usize] {
            if cost >= bound {
                return f64::INFINITY;
            }
            if slot.coef != 0.0 || slot.required {
                let access = min_arm(
                    &self.arm_costs[slot.s_start as usize..slot.s_end as usize],
                    &self.arm_cands[slot.s_start as usize..slot.s_end as usize],
                    words,
                    slot.s_always,
                );
                if access == f64::INFINITY {
                    // No standalone arm is live: a priced slot has no
                    // access cost and a required order is uncovered —
                    // either way the plan is inapplicable.
                    return f64::INFINITY;
                }
                cost += slot.coef * access;
            }
            if slot.pcoef != 0.0 {
                let probe = min_arm(
                    &self.arm_costs[slot.p_start as usize..slot.p_end as usize],
                    &self.arm_cands[slot.p_start as usize..slot.p_end as usize],
                    words,
                    slot.p_always,
                );
                if probe == f64::INFINITY {
                    return f64::INFINITY;
                }
                cost += slot.pcoef * probe;
            }
        }
        cost
    }

    /// One query's *weighted* contribution to a workload total: 0.0 for
    /// tombstones, `weight × price` otherwise. Weight 1.0 multiplication
    /// is exact in IEEE 754, so an unweighted model prices bit-identically
    /// to the unweighted engine.
    fn contribution_in(&self, query: usize, words: &[u64]) -> f64 {
        if !self.live[query] {
            return 0.0;
        }
        self.weights[query] * self.price_query_in(query, words)
    }

    /// Prices the entire workload under `selection`. Per-query pricing
    /// fans out over the shared [`ProbePool`](crate::pool::ProbePool)
    /// (no per-call thread spawning); the sum tree is always assembled
    /// serially in query order, so the result is deterministic and
    /// identical across every thread count — `PINUM_THREADS=1` forces
    /// the fully serial path even with `--features parallel`. Entries
    /// are weighted contributions (tombstones contribute exactly 0.0).
    pub fn price_full(&self, selection: &Selection) -> PricedWorkload {
        PricedWorkload::from_costs(self.per_query_costs(selection))
    }

    fn per_query_costs(&self, selection: &Selection) -> Vec<f64> {
        let n = self.qmeta.len();
        let view = SelView::new(self.pool_size, selection, None, None);
        let words = view.words();
        let pool = crate::pool::ProbePool::global();
        if pool.threads() <= 1 || n < 32 {
            return (0..n).map(|q| self.contribution_in(q, words)).collect();
        }
        let mut per_query = vec![0.0f64; n];
        let out = crate::pool::SyncPtr::new(per_query.as_mut_ptr());
        pool.for_each_chunk(n, &move |_worker, range| {
            for q in range {
                // SAFETY: chunk ranges are disjoint, so each index is
                // written by exactly one worker; the Vec outlives the
                // dispatch (for_each_chunk blocks until all chunks ran).
                unsafe { *out.get().add(q) = self.contribution_in(q, words) };
            }
        });
        per_query
    }

    /// The workload total if `added` joined `selection`, re-pricing only
    /// the affected queries. `state` must be the [`PricedWorkload`] of
    /// `selection` itself. Allocates a scratch vector; the greedy hot loop
    /// uses [`Self::price_delta_into`] with a reused buffer.
    pub fn price_delta(&self, state: &PricedWorkload, selection: &Selection, added: usize) -> f64 {
        let mut scratch = Vec::new();
        self.price_delta_into(state, selection, added, &mut scratch)
    }

    /// [`Self::price_delta`] with a caller-owned scratch buffer; on return
    /// `changed` holds the `(query, cost)` pairs that actually moved
    /// (ascending by query — re-priced queries whose cost is bit-identical
    /// to `state`'s are filtered out, which is exact). The returned total
    /// descends the sum tree with `changed` overlaid, so it is
    /// bit-identical to `price_full(selection ∪ {added})`.
    pub fn price_delta_into(
        &self,
        state: &PricedWorkload,
        selection: &Selection,
        added: usize,
        changed: &mut Vec<(u32, f64)>,
    ) -> f64 {
        debug_assert_eq!(state.per_query.len(), self.qmeta.len(), "stale state");
        changed.clear();
        let view = SelView::new(self.pool_size, selection, Some(added), None);
        let words = view.words();
        for &q in &self.affected[added] {
            debug_assert!(self.live[q as usize], "inverted index holds a tombstone");
            let cost = self.contribution_in(q as usize, words);
            if cost.to_bits() != state.per_query[q as usize].to_bits() {
                changed.push((q, cost));
            }
        }
        let total = state.overlaid_total(changed);
        #[cfg(debug_assertions)]
        if crate::sampling::should_assert() {
            // The whole point: delta pricing must equal full re-pricing.
            let full = self.price_full(&selection.with(added));
            debug_assert!(
                total == full.total() || (total.is_infinite() && full.total().is_infinite()),
                "price_delta diverged from price_full: {total} vs {} (candidate {added})",
                full.total()
            );
        }
        total
    }

    /// The workload total if `dropped` *left* `selection` — the removal
    /// mirror of [`Self::price_delta`]. `state` must be the
    /// [`PricedWorkload`] of `selection` itself, and `dropped` must be a
    /// member. Only the queries whose arms mention `dropped` can change
    /// price, so the affected set is the same inverted-index entry as for
    /// adds.
    pub fn price_delta_removed(
        &self,
        state: &PricedWorkload,
        selection: &Selection,
        dropped: usize,
    ) -> f64 {
        let mut scratch = Vec::new();
        self.price_delta_removed_into(state, selection, dropped, &mut scratch)
    }

    /// [`Self::price_delta_removed`] with a caller-owned scratch buffer.
    /// The returned total is bit-identical to
    /// `price_full(selection ∖ {dropped})` (debug-asserted).
    pub fn price_delta_removed_into(
        &self,
        state: &PricedWorkload,
        selection: &Selection,
        dropped: usize,
        changed: &mut Vec<(u32, f64)>,
    ) -> f64 {
        debug_assert_eq!(state.per_query.len(), self.qmeta.len(), "stale state");
        debug_assert!(
            selection.contains(dropped),
            "removing candidate {dropped} that is not selected"
        );
        changed.clear();
        let view = SelView::new(self.pool_size, selection, None, Some(dropped));
        let words = view.words();
        for &q in &self.affected[dropped] {
            debug_assert!(self.live[q as usize], "inverted index holds a tombstone");
            let cost = self.contribution_in(q as usize, words);
            if cost.to_bits() != state.per_query[q as usize].to_bits() {
                changed.push((q, cost));
            }
        }
        let total = state.overlaid_total(changed);
        #[cfg(debug_assertions)]
        if crate::sampling::should_assert() {
            let full = self.price_full(&selection.without(dropped));
            debug_assert!(
                total == full.total() || (total.is_infinite() && full.total().is_infinite()),
                "price_delta_removed diverged from price_full: {total} vs {} (candidate {dropped})",
                full.total()
            );
        }
        total
    }

    /// The workload total if `added` replaced `dropped` in `selection` —
    /// one drop-one/add-one swap priced as a single delta over the merged
    /// affected sets. `state` must be the [`PricedWorkload`] of
    /// `selection`; `dropped` must be a member and `added` must not be.
    pub fn price_delta_swapped(
        &self,
        state: &PricedWorkload,
        selection: &Selection,
        added: usize,
        dropped: usize,
    ) -> f64 {
        let mut scratch = Vec::new();
        self.price_delta_swapped_into(state, selection, added, dropped, &mut scratch)
    }

    /// [`Self::price_delta_swapped`] with a caller-owned scratch buffer.
    /// The returned total is bit-identical to
    /// `price_full((selection ∖ {dropped}) ∪ {added})` (debug-asserted).
    pub fn price_delta_swapped_into(
        &self,
        state: &PricedWorkload,
        selection: &Selection,
        added: usize,
        dropped: usize,
        changed: &mut Vec<(u32, f64)>,
    ) -> f64 {
        debug_assert_eq!(state.per_query.len(), self.qmeta.len(), "stale state");
        debug_assert!(selection.contains(dropped), "swap drops a non-member");
        debug_assert!(!selection.contains(added), "swap adds a member");
        changed.clear();
        let view = SelView::new(self.pool_size, selection, Some(added), Some(dropped));
        let words = view.words();
        // Merge the two sorted affected lists (ascending, deduplicated):
        // a query is re-priced once even when both candidates mention it.
        let (a, d) = (&self.affected[added], &self.affected[dropped]);
        let (mut i, mut j) = (0, 0);
        while i < a.len() || j < d.len() {
            let q = match (a.get(i), d.get(j)) {
                (Some(&x), Some(&y)) if x == y => {
                    i += 1;
                    j += 1;
                    x
                }
                (Some(&x), Some(&y)) if x < y => {
                    i += 1;
                    x
                }
                (Some(_) | None, Some(&y)) => {
                    j += 1;
                    y
                }
                (Some(&x), None) => {
                    i += 1;
                    x
                }
                (None, None) => unreachable!(),
            };
            debug_assert!(self.live[q as usize], "inverted index holds a tombstone");
            let cost = self.contribution_in(q as usize, words);
            if cost.to_bits() != state.per_query[q as usize].to_bits() {
                changed.push((q, cost));
            }
        }
        let total = state.overlaid_total(changed);
        #[cfg(debug_assertions)]
        if crate::sampling::should_assert() {
            let full = self.price_full(&selection.without(dropped).with(added));
            debug_assert!(
                total == full.total() || (total.is_infinite() && full.total().is_infinite()),
                "price_delta_swapped diverged from price_full: {total} vs {} \
                 (+{added} -{dropped})",
                full.total()
            );
        }
        total
    }

    /// Prices a batch of independent probes against one `(selection,
    /// state)` snapshot, fanned out over `pool`. Each result lands at
    /// its probe's own index, so the output is deterministic regardless
    /// of thread count or chunk claiming order, and every entry holds
    /// the *same bits* as the serial [`Self::price_delta_into`] /
    /// [`Self::price_delta_removed_into`] /
    /// [`Self::price_delta_swapped_into`] call it replaces
    /// (debug-asserted, sampled).
    ///
    /// Each worker owns a reusable scratch: a clone of the shared base
    /// `SelView` bitset whose probe bits are toggled in and back out around
    /// each probe (O(1) per probe instead of re-baking the snapshot per
    /// probe), and a changed-query buffer that persists across the
    /// worker's chunks. Bloom/footprint-prefiltered no-ops touch only
    /// their (empty or tiny) inverted-index entry, so chunking keeps
    /// their cost near zero.
    ///
    /// `qmask` (sorted ascending query ids) restricts re-pricing to the
    /// masked subset of each probe's affected list — the scoped-pricing
    /// path. Masked totals overlay only the masked changed queries and
    /// are therefore comparable *ranks*, not exact workload totals;
    /// callers must re-derive accepted moves through the exact serial
    /// deltas. The sampled debug assert checks the masked changed list
    /// equals the unmasked one restricted to the mask.
    pub fn price_delta_batch(
        &self,
        state: &PricedWorkload,
        selection: &Selection,
        probes: &[Probe],
        qmask: Option<&[u32]>,
        pool: &crate::pool::ProbePool,
    ) -> Vec<ProbeDelta> {
        debug_assert_eq!(state.per_query.len(), self.qmeta.len(), "stale state");
        let mut out = vec![ProbeDelta::default(); probes.len()];
        if probes.is_empty() {
            return out;
        }
        let base = SelView::new(self.pool_size, selection, None, None);
        let mut scratch: Vec<(SelView, Vec<(u32, f64)>)> = (0..pool.threads())
            .map(|_| (base.clone(), Vec::new()))
            .collect();
        let scratch_ptr = crate::pool::SyncPtr::new(scratch.as_mut_ptr());
        let out_ptr = crate::pool::SyncPtr::new(out.as_mut_ptr());
        pool.for_each_chunk(probes.len(), &move |worker, range| {
            // SAFETY: each worker index is owned by exactly one thread
            // per dispatch and chunk ranges are disjoint, so every slot
            // is written by exactly one worker; both vectors outlive
            // the dispatch (for_each_chunk blocks until all chunks ran).
            let (view, changed) = unsafe { &mut *scratch_ptr.get().add(worker) };
            for i in range {
                let delta = self.price_one_probe(state, selection, probes[i], qmask, view, changed);
                unsafe { *out_ptr.get().add(i) = delta };
            }
        });
        out
    }

    /// One probe of a batch: toggle the probe's bits on the worker's
    /// view, re-price its (optionally masked) affected queries, restore
    /// the bits. Exactly the serial delta arithmetic — same affected
    /// iteration order, same bit-equality filter, same overlay total.
    fn price_one_probe(
        &self,
        state: &PricedWorkload,
        selection: &Selection,
        probe: Probe,
        qmask: Option<&[u32]>,
        view: &mut SelView,
        changed: &mut Vec<(u32, f64)>,
    ) -> ProbeDelta {
        changed.clear();
        match probe {
            Probe::Add { cand } => {
                debug_assert!(!selection.contains(cand), "batch adds a member");
                view.set_bit(cand);
            }
            Probe::Drop { cand } => {
                debug_assert!(selection.contains(cand), "batch drops a non-member");
                view.clear_bit(cand);
            }
            Probe::Swap { add, drop } => {
                debug_assert!(!selection.contains(add), "batch swap adds a member");
                debug_assert!(selection.contains(drop), "batch swap drops a non-member");
                view.set_bit(add);
                view.clear_bit(drop);
            }
        }
        let mut repriced = 0usize;
        {
            let words = view.words();
            let mut mask_i = 0usize;
            let mut visit = |q: u32| {
                debug_assert!(self.live[q as usize], "inverted index holds a tombstone");
                if let Some(mask) = qmask {
                    // Both the affected list and the mask are sorted
                    // ascending, so one forward cursor intersects them.
                    while mask_i < mask.len() && mask[mask_i] < q {
                        mask_i += 1;
                    }
                    if mask_i >= mask.len() || mask[mask_i] != q {
                        return;
                    }
                }
                repriced += 1;
                let cost = self.contribution_in(q as usize, words);
                if cost.to_bits() != state.per_query[q as usize].to_bits() {
                    changed.push((q, cost));
                }
            };
            match probe {
                Probe::Add { cand } | Probe::Drop { cand } => {
                    for &q in &self.affected[cand] {
                        visit(q);
                    }
                }
                Probe::Swap { add, drop } => {
                    // Same sorted-merge dedup as the serial swap delta.
                    let (a, d) = (&self.affected[add], &self.affected[drop]);
                    let (mut i, mut j) = (0, 0);
                    while i < a.len() || j < d.len() {
                        let q = match (a.get(i), d.get(j)) {
                            (Some(&x), Some(&y)) if x == y => {
                                i += 1;
                                j += 1;
                                x
                            }
                            (Some(&x), Some(&y)) if x < y => {
                                i += 1;
                                x
                            }
                            (Some(_) | None, Some(&y)) => {
                                j += 1;
                                y
                            }
                            (Some(&x), None) => {
                                i += 1;
                                x
                            }
                            (None, None) => unreachable!(),
                        };
                        visit(q);
                    }
                }
            }
        }
        match probe {
            Probe::Add { cand } => view.clear_bit(cand),
            Probe::Drop { cand } => view.set_bit(cand),
            Probe::Swap { add, drop } => {
                view.clear_bit(add);
                view.set_bit(drop);
            }
        }
        let total = state.overlaid_total(changed);
        #[cfg(debug_assertions)]
        if crate::sampling::should_assert() {
            // The batch path must compute the serial delta's bits —
            // unmasked verbatim, masked after restricting to the mask.
            let mut serial = Vec::new();
            let serial_total = match probe {
                Probe::Add { cand } => self.price_delta_into(state, selection, cand, &mut serial),
                Probe::Drop { cand } => {
                    self.price_delta_removed_into(state, selection, cand, &mut serial)
                }
                Probe::Swap { add, drop } => {
                    self.price_delta_swapped_into(state, selection, add, drop, &mut serial)
                }
            };
            match qmask {
                None => {
                    debug_assert!(
                        total.to_bits() == serial_total.to_bits(),
                        "batch delta diverged from serial: {total} vs {serial_total} ({probe:?})"
                    );
                    debug_assert!(
                        changed.len() == serial.len()
                            && changed
                                .iter()
                                .zip(&serial)
                                .all(|(a, b)| a.0 == b.0 && a.1.to_bits() == b.1.to_bits()),
                        "batch changed list diverged from serial ({probe:?})"
                    );
                }
                Some(mask) => {
                    let filtered: Vec<(u32, f64)> = serial
                        .iter()
                        .filter(|(q, _)| mask.binary_search(q).is_ok())
                        .copied()
                        .collect();
                    debug_assert!(
                        changed.len() == filtered.len()
                            && changed
                                .iter()
                                .zip(&filtered)
                                .all(|(a, b)| a.0 == b.0 && a.1.to_bits() == b.1.to_bits()),
                        "masked batch delta is not the mask-restriction of the serial delta \
                         ({probe:?})"
                    );
                }
            }
        }
        ProbeDelta {
            total,
            repriced,
            changed: changed.len(),
        }
    }
}

/// One independent probe in a [`WorkloadModel::price_delta_batch`]
/// call: the selection move whose workload total the batch prices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// Price `selection ∪ {cand}` — the greedy frontier probe.
    Add { cand: usize },
    /// Price `selection ∖ {cand}` — the drop-one neighborhood probe.
    Drop { cand: usize },
    /// Price `(selection ∖ {drop}) ∪ {add}` — one swap move.
    Swap { add: usize, drop: usize },
}

/// One probe's priced outcome from [`WorkloadModel::price_delta_batch`].
#[derive(Debug, Clone, Copy)]
pub struct ProbeDelta {
    /// The probed selection's workload total — bit-identical to the
    /// serial delta (and to `price_full`) when the batch ran unmasked;
    /// under a query mask it overlays only masked changed queries and
    /// is a comparable rank, not an exact total.
    pub total: f64,
    /// Queries actually re-priced: the probe's affected list, clipped
    /// to the query mask when one was given.
    pub repriced: usize,
    /// Re-priced queries whose cost moved (bit-inequality filter).
    pub changed: usize,
}

impl Default for ProbeDelta {
    fn default() -> Self {
        ProbeDelta {
            total: f64::INFINITY,
            repriced: 0,
            changed: 0,
        }
    }
}

/// Appends the distinct candidates in `cands` (one query's packed arm
/// candidates — always-arms are already split out) to `out`, sorted
/// ascending. Small footprints (the overwhelmingly common case) dedup by
/// insertion into the sorted tail of `out` with **no** intermediate
/// allocation; large ones fall back to sort+dedup on a scratch copy.
fn collect_touched(cands: &[u32], out: &mut Vec<u32>) {
    const SMALL: usize = 32;
    let start = out.len();
    if cands.len() <= SMALL {
        for &c in cands {
            match out[start..].binary_search(&c) {
                Ok(_) => {}
                Err(pos) => out.insert(start + pos, c),
            }
        }
    } else {
        let mut tmp = cands.to_vec();
        tmp.sort_unstable();
        tmp.dedup();
        out.extend_from_slice(&tmp);
    }
}

/// Distinct pool candidates referenced by a query's access arms,
/// ascending — its inverted-index footprint. O(this query's arms). Used
/// by the frozen [`crate::reference`] engine; the packed kernel keeps the
/// same information in its `touched` CSR array.
pub(crate) fn touched_candidates(qm: &QueryModel) -> Vec<u32> {
    let mut touched: Vec<u32> = qm
        .plans
        .iter()
        .flat_map(|p| &p.slots)
        .flat_map(|s| s.standalone.iter().chain(&s.probes))
        .filter(|a| a.candidate != ALWAYS)
        .map(|a| a.candidate)
        .collect();
    touched.sort_unstable();
    touched.dedup();
    touched
}

/// Constructor-level validation that a flattened access path stays inside
/// the candidate pool it was collected against — a mis-sized `pool_size`
/// fails loudly here instead of silently mispricing (or panicking with an
/// opaque index-out-of-bounds deep in delta pricing).
pub(crate) fn validate_candidate(candidate: u32, pool_size: usize) {
    assert!(
        (candidate as usize) < pool_size,
        "access path references candidate {candidate} but the pool holds only {pool_size} \
         candidates — the model was built/admitted against a mis-sized pool"
    );
}

/// Arms after the first always-available arm can never win (the walk stops
/// there at the latest); later duplicates of a candidate are dominated by
/// their first (cheapest) occurrence. Arm lists are tiny (a handful of
/// access paths per slot), so dedup is a linear scan over the kept prefix
/// — no hashing.
pub(crate) fn prune_arms(arms: &mut Vec<AccessArm>) {
    let mut keep = 0;
    'arms: for i in 0..arms.len() {
        let arm = arms[i];
        if arm.candidate != ALWAYS {
            for prev in &arms[..keep] {
                if prev.candidate == arm.candidate {
                    continue 'arms;
                }
            }
        }
        arms[keep] = arm;
        keep += 1;
        if arm.candidate == ALWAYS {
            break;
        }
    }
    arms.truncate(keep);
}

/// Flattens every `(cache, access)` pair, optionally fanning the per-query
/// work over the shared [`crate::pool::ProbePool`] (no per-call thread
/// spawning). Each query's flattening is independent and the output order
/// is the input order, so both paths yield identical vectors.
pub(crate) fn flatten_models(
    models: &[(&PlanCache, &AccessCostCatalog)],
    parallel: bool,
) -> Vec<QueryModel> {
    let n = models.len();
    let pool = crate::pool::ProbePool::global();
    if !parallel || pool.threads() <= 1 || n < 2 {
        return models.iter().map(|(c, a)| flatten_query(c, a)).collect();
    }
    let mut out: Vec<Option<QueryModel>> = vec![None; n];
    let slots = crate::pool::SyncPtr::new(out.as_mut_ptr());
    pool.for_each_chunk(n, &move |_worker, range| {
        for i in range {
            let (cache, access) = models[i];
            // SAFETY: chunk ranges are disjoint, so each slot is written
            // by exactly one worker; the Vec outlives the dispatch.
            unsafe { *slots.get().add(i) = Some(flatten_query(cache, access)) };
        }
    });
    out.into_iter().map(|q| q.expect("flattened")).collect()
}

pub(crate) fn flatten_query(cache: &PlanCache, access: &AccessCostCatalog) -> QueryModel {
    let params = access.params();
    let mut plans = Vec::with_capacity(cache.len());
    'plans: for plan in cache.plans() {
        let mut slots = Vec::new();
        for rel in 0..cache.n_rels as RelIdx {
            let required = cache.orders.column_of(plan.ioc, rel);
            let coef = plan.coefs[rel as usize];
            let pcoef = plan.probe_coefs[rel as usize];
            if coef == 0.0 && pcoef == 0.0 && required.is_none() {
                continue; // nothing to price, nothing to check
            }
            // A probe slot without a required order can never apply (§V-D:
            // parameterized inner lookups need an index order); drop the
            // plan outright instead of re-discovering that on every call.
            if pcoef != 0.0 && required.is_none() {
                continue 'plans;
            }
            let mut standalone: Vec<AccessArm> = access
                .entries(rel)
                .iter()
                .filter(|e| match required {
                    None => true,
                    Some(o) => e.order == Some(o),
                })
                .map(|e| AccessArm {
                    cost: e.cost,
                    candidate: e.candidate.map_or(ALWAYS, |c| c as u32),
                })
                .collect();
            prune_arms(&mut standalone);
            if standalone.is_empty() {
                if required.is_some() {
                    // No candidate ever covers this order: the plan is
                    // inapplicable under every selection.
                    continue 'plans;
                }
                unreachable!("sequential scan is always available");
            }
            let mut probes: Vec<AccessArm> = Vec::new();
            if pcoef != 0.0 {
                let order = required.expect("checked above");
                probes = access
                    .entries(rel)
                    .iter()
                    .filter(|e| e.order == Some(order))
                    .filter_map(|e| e.probe.map(|p| (e.candidate, p)))
                    .map(|(candidate, mut spec)| {
                        // The loop count is fixed by the plan, so the probe
                        // can be priced once, here, instead of on every
                        // estimate (exactly `AccessCostCatalog::best_probe`
                        // at `loops = pcoef`).
                        spec.loop_count = pcoef.max(1.0);
                        AccessArm {
                            cost: cost_index_scan(params, &spec).total,
                            candidate: candidate.map_or(ALWAYS, |c| c as u32),
                        }
                    })
                    .collect();
                probes.sort_by(|a, b| a.cost.partial_cmp(&b.cost).unwrap());
                prune_arms(&mut probes);
                if probes.is_empty() {
                    continue 'plans; // no probe-able path will ever exist
                }
            }
            slots.push(Slot {
                coef,
                pcoef,
                required: required.is_some(),
                standalone,
                probes,
            });
        }
        plans.push(FlatPlan {
            internal: plan.internal,
            slots,
        });
    }
    QueryModel { plans }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access_costs::collect_pinum;
    use crate::builder::{build_cache_pinum, BuilderOptions};
    use crate::candidates::CandidatePool;
    use crate::costing::CacheCostModel;
    use crate::pool::ProbePool;
    use pinum_catalog::{Catalog, Column, ColumnType, Index, Table};
    use pinum_optimizer::Optimizer;
    use pinum_query::{Query, QueryBuilder};

    fn setup() -> (Catalog, Vec<Query>, CandidatePool) {
        let mut cat = Catalog::new();
        cat.add_table(Table::new(
            "f",
            300_000,
            vec![
                Column::new("fk", ColumnType::Int8).with_ndv(3_000),
                Column::new("v", ColumnType::Int4).with_ndv(1_000),
                Column::new("s", ColumnType::Int4).with_ndv(100),
            ],
        ));
        cat.add_table(Table::new(
            "d",
            3_000,
            vec![
                Column::new("k", ColumnType::Int8).with_ndv(3_000),
                Column::new("w", ColumnType::Int4).with_ndv(50),
            ],
        ));
        let q1 = QueryBuilder::new("q1", &cat)
            .table("f")
            .table("d")
            .join(("f", "fk"), ("d", "k"))
            .filter_range(("f", "v"), 0.0, 10.0)
            .select(("f", "s"))
            .order_by(("d", "w"))
            .build();
        let q2 = QueryBuilder::new("q2", &cat)
            .table("f")
            .filter_range(("f", "v"), 0.0, 10.0)
            .select(("f", "s"))
            .order_by(("f", "s"))
            .build();
        let f = cat.table(cat.table_id("f").unwrap()).clone();
        let d = cat.table(cat.table_id("d").unwrap()).clone();
        let pool = CandidatePool::from_indexes(vec![
            Index::hypothetical(&f, vec![0], false),
            Index::hypothetical(&f, vec![1, 0, 2], false),
            Index::hypothetical(&f, vec![2], false),
            Index::hypothetical(&d, vec![0], false),
            Index::hypothetical(&d, vec![1], false),
        ]);
        (cat, vec![q1, q2], pool)
    }

    fn build_models(
        cat: &Catalog,
        queries: &[Query],
        pool: &CandidatePool,
    ) -> Vec<(PlanCache, AccessCostCatalog)> {
        let opt = Optimizer::new(cat);
        queries
            .iter()
            .map(|q| {
                let built = build_cache_pinum(&opt, q, &BuilderOptions::default());
                let (access, _) = collect_pinum(&opt, q, pool);
                (built.cache, access)
            })
            .collect()
    }

    fn model_of(models: &[(PlanCache, AccessCostCatalog)], pool: &CandidatePool) -> WorkloadModel {
        WorkloadModel::build(pool.len(), models.iter().map(|(c, a)| (c, a)))
    }

    #[test]
    fn matches_cache_cost_model_on_every_subset() {
        let (cat, queries, pool) = setup();
        let models = build_models(&cat, &queries, &pool);
        let wm = model_of(&models, &pool);
        // Exhaustive over all 32 selections of the 5-candidate pool.
        for mask in 0u32..(1 << pool.len()) {
            let ids: Vec<usize> = (0..pool.len()).filter(|i| mask & (1 << i) != 0).collect();
            let sel = Selection::from_ids(pool.len(), &ids);
            for (q, (cache, access)) in models.iter().enumerate() {
                let reference = CacheCostModel::new(cache, access)
                    .estimate(&sel)
                    .map(|e| e.cost)
                    .unwrap_or(f64::INFINITY);
                let flat = wm.price_query(q, &sel, None);
                assert_eq!(
                    flat, reference,
                    "query {q} selection {ids:?}: flat {flat} vs reference {reference}"
                );
            }
        }
    }

    #[test]
    fn delta_equals_full_for_every_candidate() {
        let (cat, queries, pool) = setup();
        let models = build_models(&cat, &queries, &pool);
        let wm = model_of(&models, &pool);
        for mask in 0u32..(1 << pool.len()) {
            let ids: Vec<usize> = (0..pool.len()).filter(|i| mask & (1 << i) != 0).collect();
            let sel = Selection::from_ids(pool.len(), &ids);
            let state = wm.price_full(&sel);
            for cand in 0..pool.len() {
                if sel.contains(cand) {
                    continue;
                }
                let delta = wm.price_delta(&state, &sel, cand);
                let full = wm.price_full(&sel.with(cand));
                assert_eq!(delta, full.total(), "selection {ids:?} + candidate {cand}");
            }
        }
    }

    #[test]
    fn parts_roundtrip_is_identity_even_with_tombstones() {
        let (cat, queries, pool) = setup();
        let models = build_models(&cat, &queries, &pool);
        let mut wm = model_of(&models, &pool);
        wm.reweight_query(1, 2.5);
        let back = WorkloadModel::from_parts(wm.to_parts()).expect("roundtrip");
        assert_eq!(back, wm, "parts roundtrip changed the model");
        // Tombstones must roundtrip too (empty extents, zero weight).
        wm.evict_query(0);
        let back = WorkloadModel::from_parts(wm.to_parts()).expect("tombstone roundtrip");
        assert_eq!(back, wm);
        assert_eq!(back.live_query_count(), 1);
        let sel = Selection::from_ids(pool.len(), &[0, 3]);
        assert_eq!(
            back.price_full(&sel).total().to_bits(),
            wm.price_full(&sel).total().to_bits()
        );
    }

    #[test]
    fn hostile_parts_are_rejected_not_panicked() {
        let (cat, queries, pool) = setup();
        let models = build_models(&cat, &queries, &pool);
        let wm = model_of(&models, &pool);
        let good = wm.to_parts();

        let mut p = good.clone();
        p.slot_s_end[0] = u32::MAX; // extent past the arm arrays
        assert!(WorkloadModel::from_parts(p).is_err());

        let mut p = good.clone();
        p.arm_cands[0] = pool.len() as u32; // candidate outside the pool
        assert!(WorkloadModel::from_parts(p).is_err());

        let mut p = good.clone();
        p.query_bloom[0] ^= 1; // bloom no longer matches the footprint
        assert!(WorkloadModel::from_parts(p).is_err());

        let mut p = good.clone();
        p.weights[0] = -1.0; // live query with a non-positive weight
        assert!(WorkloadModel::from_parts(p).is_err());

        let mut p = good.clone();
        p.weights.pop(); // query arrays out of sync
        assert!(WorkloadModel::from_parts(p).is_err());
    }

    #[test]
    fn affected_index_is_sound_and_minimal_enough() {
        let (cat, queries, pool) = setup();
        let models = build_models(&cat, &queries, &pool);
        let wm = model_of(&models, &pool);
        // Soundness: a query NOT in affected(c) never changes price when c
        // is added, under any base selection.
        for cand in 0..pool.len() {
            let affected = wm.affected(cand);
            for mask in 0u32..(1 << pool.len()) {
                let ids: Vec<usize> = (0..pool.len()).filter(|i| mask & (1 << i) != 0).collect();
                let sel = Selection::from_ids(pool.len(), &ids);
                for q in 0..wm.query_count() {
                    if affected.contains(&(q as u32)) {
                        continue;
                    }
                    assert_eq!(
                        wm.price_query(q, &sel, Some(cand)),
                        wm.price_query(q, &sel, None),
                        "candidate {cand} changed unaffected query {q}"
                    );
                }
            }
        }
        // q2 references only table f, so d-only candidates must not list it.
        let d_cand = 3; // Index::hypothetical(&d, vec![0]) in setup()
        assert!(
            !wm.affected(d_cand).contains(&1),
            "single-table query q2 affected by a d index"
        );
    }

    #[test]
    fn bloom_prefilter_agrees_with_inverted_index() {
        let (cat, queries, pool) = setup();
        let models = build_models(&cat, &queries, &pool);
        let mut wm = model_of(&models, &pool);
        for cand in 0..pool.len() {
            for q in 0..wm.query_count() {
                assert_eq!(
                    wm.query_touches(q, cand),
                    wm.affected(cand).contains(&(q as u32)),
                    "query_touches({q}, {cand}) disagrees with the inverted index"
                );
            }
        }
        wm.evict_query(1);
        for cand in 0..pool.len() {
            assert!(
                !wm.query_touches(1, cand),
                "tombstone touches candidate {cand}"
            );
        }
    }

    #[test]
    fn price_full_state_is_consistent() {
        let (cat, queries, pool) = setup();
        let models = build_models(&cat, &queries, &pool);
        let wm = model_of(&models, &pool);
        let sel = Selection::from_ids(pool.len(), &[0, 3]);
        let state = wm.price_full(&sel);
        assert_eq!(state.per_query().len(), 2);
        // The canonical total is the pairwise tree shape, not a left fold.
        assert_eq!(
            state.total().to_bits(),
            pairwise_total(state.per_query()).to_bits()
        );
        for (q, &c) in state.per_query().iter().enumerate() {
            assert_eq!(c, wm.price_query(q, &sel, None));
            assert!(c.is_finite());
        }
    }

    #[test]
    fn sum_tree_splices_match_rebuilds() {
        // Exercise the tree across sizes that straddle capacity doublings.
        let costs: Vec<f64> = (0..13).map(|i| (i as f64) * 1.25 + 0.1).collect();
        let mut pushed = PricedWorkload::from_costs(Vec::new());
        for (i, &c) in costs.iter().enumerate() {
            pushed.push_query_cost(c);
            let rebuilt = PricedWorkload::from_costs(costs[..=i].to_vec());
            assert_eq!(pushed.total().to_bits(), rebuilt.total().to_bits());
            assert_eq!(
                pushed.total().to_bits(),
                pairwise_total(&costs[..=i]).to_bits()
            );
        }
        // Point updates, overlaid reads, and splices all agree.
        let changed = [(2u32, 7.5f64), (9, 0.0), (12, 3.25)];
        let overlaid = pushed.overlaid_total(&changed);
        pushed.apply_changed(&changed);
        assert_eq!(overlaid.to_bits(), pushed.total().to_bits());
        let mut expect = costs.clone();
        for &(q, c) in &changed {
            expect[q as usize] = c;
        }
        let rebuilt = PricedWorkload::from_costs(expect);
        assert_eq!(pushed.total().to_bits(), rebuilt.total().to_bits());
        assert_eq!(pushed, rebuilt);
        // set_query_cost alone follows the same contract.
        pushed.set_query_cost(0, 99.0);
        assert!(pushed.total() > rebuilt.total());
    }

    #[test]
    fn removal_delta_equals_full_for_every_member() {
        let (cat, queries, pool) = setup();
        let models = build_models(&cat, &queries, &pool);
        let wm = model_of(&models, &pool);
        for mask in 0u32..(1 << pool.len()) {
            let ids: Vec<usize> = (0..pool.len()).filter(|i| mask & (1 << i) != 0).collect();
            let sel = Selection::from_ids(pool.len(), &ids);
            let state = wm.price_full(&sel);
            for &cand in &ids {
                let delta = wm.price_delta_removed(&state, &sel, cand);
                let full = wm.price_full(&sel.without(cand));
                assert_eq!(delta, full.total(), "selection {ids:?} - candidate {cand}");
            }
        }
    }

    #[test]
    fn swap_delta_equals_full_for_every_pair() {
        let (cat, queries, pool) = setup();
        let models = build_models(&cat, &queries, &pool);
        let wm = model_of(&models, &pool);
        for mask in 0u32..(1 << pool.len()) {
            let ids: Vec<usize> = (0..pool.len()).filter(|i| mask & (1 << i) != 0).collect();
            let sel = Selection::from_ids(pool.len(), &ids);
            let state = wm.price_full(&sel);
            for &dropped in &ids {
                for added in 0..pool.len() {
                    if sel.contains(added) {
                        continue;
                    }
                    let delta = wm.price_delta_swapped(&state, &sel, added, dropped);
                    let full = wm.price_full(&sel.without(dropped).with(added));
                    assert_eq!(delta, full.total(), "selection {ids:?} +{added} -{dropped}");
                }
            }
        }
    }

    #[test]
    fn add_then_remove_roundtrips_to_base_cost() {
        let (cat, queries, pool) = setup();
        let models = build_models(&cat, &queries, &pool);
        let wm = model_of(&models, &pool);
        let base = Selection::from_ids(pool.len(), &[1]);
        let base_state = wm.price_full(&base);
        for cand in 0..pool.len() {
            if base.contains(cand) {
                continue;
            }
            let extended = base.with(cand);
            let ext_state = wm.price_full(&extended);
            let back = wm.price_delta_removed(&ext_state, &extended, cand);
            assert_eq!(
                back,
                base_state.total(),
                "remove({cand}) did not round-trip"
            );
        }
    }

    #[test]
    fn parallel_and_serial_builds_are_identical() {
        let (cat, queries, pool) = setup();
        let models = build_models(&cat, &queries, &pool);
        let built = WorkloadModel::build(pool.len(), models.iter().map(|(c, a)| (c, a)));
        let serial = WorkloadModel::build_serial(pool.len(), models.iter().map(|(c, a)| (c, a)));
        assert_eq!(built, serial, "build and build_serial diverged");
    }

    /// Every selection of the 5-candidate pool (the fixtures are tiny
    /// enough to enumerate).
    fn all_selections(pool: &CandidatePool) -> impl Iterator<Item = Selection> + '_ {
        (0u32..(1 << pool.len())).map(|mask| {
            let ids: Vec<usize> = (0..pool.len()).filter(|i| mask & (1 << i) != 0).collect();
            Selection::from_ids(pool.len(), &ids)
        })
    }

    #[test]
    fn incremental_admission_reproduces_batch_build() {
        let (cat, queries, pool) = setup();
        let models = build_models(&cat, &queries, &pool);
        let batch = model_of(&models, &pool);
        let mut streamed = WorkloadModel::build(pool.len(), std::iter::empty());
        for (i, (c, a)) in models.iter().enumerate() {
            let qid = streamed.admit_query(c, a);
            assert_eq!(qid, i);
        }
        assert_eq!(streamed, batch, "admit-by-admit diverged from batch build");
    }

    #[test]
    fn admit_then_evict_is_bit_identical_to_never_admitted() {
        let (cat, queries, pool) = setup();
        let models = build_models(&cat, &queries, &pool);
        let base = model_of(&models, &pool);
        let mut mutated = model_of(&models, &pool);
        let qid = mutated.admit_query(&models[1].0, &models[1].1);
        assert_eq!(mutated.live_query_count(), 3);
        mutated.evict_query(qid);
        assert_eq!(mutated.live_query_count(), base.live_query_count());
        for sel in all_selections(&pool) {
            let b = base.price_full(&sel);
            let m = mutated.price_full(&sel);
            assert!(
                b.total() == m.total() || (b.total().is_infinite() && m.total().is_infinite()),
                "totals diverged: {} vs {}",
                b.total(),
                m.total()
            );
            // Live prefix identical; the tombstone contributes exactly 0.
            assert_eq!(&m.per_query()[..b.per_query().len()], b.per_query());
            assert_eq!(m.per_query()[qid], 0.0);
        }
    }

    #[test]
    fn eviction_matches_fresh_build_over_survivors() {
        let (cat, queries, pool) = setup();
        let models = build_models(&cat, &queries, &pool);
        let mut mutated = model_of(&models, &pool);
        mutated.evict_query(0);
        let survivor = WorkloadModel::build(pool.len(), models[1..].iter().map(|(c, a)| (c, a)));
        for sel in all_selections(&pool) {
            let m = mutated.price_full(&sel);
            let s = survivor.price_full(&sel);
            assert!(
                m.total() == s.total() || (m.total().is_infinite() && s.total().is_infinite()),
                "evicted model diverged from fresh build: {} vs {}",
                m.total(),
                s.total()
            );
        }
    }

    #[test]
    fn compact_equals_fresh_build_over_survivors() {
        let (cat, queries, pool) = setup();
        let models = build_models(&cat, &queries, &pool);
        let mut mutated = model_of(&models, &pool);
        mutated.evict_query(0);
        let remap = mutated.compact();
        assert_eq!(remap, vec![u32::MAX, 0]);
        let survivor = WorkloadModel::build(pool.len(), models[1..].iter().map(|(c, a)| (c, a)));
        assert_eq!(mutated, survivor, "compact diverged from a fresh build");
    }

    #[test]
    fn reweight_scales_contributions_exactly() {
        let (cat, queries, pool) = setup();
        let models = build_models(&cat, &queries, &pool);
        let mut wm = model_of(&models, &pool);
        let sel = Selection::from_ids(pool.len(), &[0, 3]);
        let p0 = wm.price_query(0, &sel, None);
        let p1 = wm.price_query(1, &sel, None);
        wm.reweight_query(0, 2.5);
        assert_eq!(wm.weight(0), 2.5);
        let state = wm.price_full(&sel);
        assert_eq!(state.per_query()[0], 2.5 * p0);
        assert_eq!(state.per_query()[1], p1);
        assert_eq!(state.total(), 2.5 * p0 + p1);
    }

    #[test]
    fn deltas_stay_exact_after_mutations_and_reweights() {
        let (cat, queries, pool) = setup();
        let models = build_models(&cat, &queries, &pool);
        let mut wm = model_of(&models, &pool);
        let extra = wm.admit_query(&models[0].0, &models[0].1);
        wm.evict_query(0);
        wm.reweight_query(extra, 3.0);
        wm.reweight_query(1, 0.25);
        for sel in all_selections(&pool) {
            let state = wm.price_full(&sel);
            for cand in 0..pool.len() {
                if sel.contains(cand) {
                    let delta = wm.price_delta_removed(&state, &sel, cand);
                    let full = wm.price_full(&sel.without(cand));
                    assert_eq!(delta, full.total());
                } else {
                    let delta = wm.price_delta(&state, &sel, cand);
                    let full = wm.price_full(&sel.with(cand));
                    assert_eq!(delta, full.total());
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "mis-sized pool")]
    fn mis_sized_pool_fails_loudly() {
        let (cat, queries, pool) = setup();
        let models = build_models(&cat, &queries, &pool);
        // The access catalogs were collected against 5 candidates; claiming
        // a pool of 1 must fail at construction, not misprice silently.
        let _ = WorkloadModel::build(1, models.iter().map(|(c, a)| (c, a)));
    }

    #[test]
    #[should_panic(expected = "already-evicted")]
    fn double_evict_panics() {
        let (cat, queries, pool) = setup();
        let models = build_models(&cat, &queries, &pool);
        let mut wm = model_of(&models, &pool);
        wm.evict_query(1);
        wm.evict_query(1);
    }

    #[test]
    fn admit_work_is_bounded_by_query_arms() {
        let (cat, queries, pool) = setup();
        let models = build_models(&cat, &queries, &pool);
        let mut wm = WorkloadModel::build(pool.len(), std::iter::empty());
        for (c, a) in &models {
            let qid = wm.admit_query(c, a);
            assert!(
                wm.query_arm_count(qid) > 0,
                "query {qid} flattened to nothing"
            );
        }
        assert_eq!(wm.query_count(), models.len());
    }

    #[test]
    fn empty_cache_prices_to_infinity() {
        let (cat, queries, pool) = setup();
        let mut models = build_models(&cat, &queries, &pool);
        // Replace q2's cache with an empty one.
        let orders = models[1].0.orders.clone();
        models[1].0 = PlanCache::new("q2", 1, orders);
        let wm = model_of(&models, &pool);
        let sel = Selection::empty(pool.len());
        let state = wm.price_full(&sel);
        assert!(state.per_query()[0].is_finite());
        assert!(state.per_query()[1].is_infinite());
        assert!(state.total().is_infinite());
    }

    /// Every add/drop/swap probe the fixture admits, as one batch.
    fn all_probes(selection: &Selection, pool_size: usize) -> Vec<Probe> {
        let mut probes = Vec::new();
        for c in 0..pool_size {
            if selection.contains(c) {
                probes.push(Probe::Drop { cand: c });
            } else {
                probes.push(Probe::Add { cand: c });
            }
        }
        for d in 0..pool_size {
            if !selection.contains(d) {
                continue;
            }
            for a in 0..pool_size {
                if !selection.contains(a) {
                    probes.push(Probe::Swap { add: a, drop: d });
                }
            }
        }
        probes
    }

    #[test]
    fn batch_matches_serial_deltas_for_every_thread_and_chunk() {
        let (cat, queries, pool) = setup();
        let models = build_models(&cat, &queries, &pool);
        let wm = model_of(&models, &pool);
        let selection = Selection::from_ids(pool.len(), &[1, 3]);
        let state = wm.price_full(&selection);
        let probes = all_probes(&selection, pool.len());

        // Serial reference: the three *_into paths, one probe at a time.
        let mut scratch = Vec::new();
        let expect: Vec<(u64, usize)> = probes
            .iter()
            .map(|&p| {
                let total = match p {
                    Probe::Add { cand } => {
                        wm.price_delta_into(&state, &selection, cand, &mut scratch)
                    }
                    Probe::Drop { cand } => {
                        wm.price_delta_removed_into(&state, &selection, cand, &mut scratch)
                    }
                    Probe::Swap { add, drop } => {
                        wm.price_delta_swapped_into(&state, &selection, add, drop, &mut scratch)
                    }
                };
                (total.to_bits(), scratch.len())
            })
            .collect();

        for threads in [1, 2, 3, 8] {
            for chunk in [1, 3, 16] {
                let batch_pool = ProbePool::with_chunk(threads, chunk);
                let got = wm.price_delta_batch(&state, &selection, &probes, None, &batch_pool);
                assert_eq!(got.len(), probes.len());
                for (i, (g, e)) in got.iter().zip(&expect).enumerate() {
                    assert_eq!(
                        g.total.to_bits(),
                        e.0,
                        "probe {i} total diverged (threads {threads}, chunk {chunk})"
                    );
                    assert_eq!(
                        g.changed, e.1,
                        "probe {i} changed-count diverged (threads {threads}, chunk {chunk})"
                    );
                }
            }
        }
    }

    #[test]
    fn batch_repriced_counts_match_the_affected_index() {
        let (cat, queries, pool) = setup();
        let models = build_models(&cat, &queries, &pool);
        let wm = model_of(&models, &pool);
        let selection = Selection::from_ids(pool.len(), &[0]);
        let state = wm.price_full(&selection);
        let probes: Vec<Probe> = (1..pool.len()).map(|cand| Probe::Add { cand }).collect();
        let got = wm.price_delta_batch(&state, &selection, &probes, None, ProbePool::global());
        for (p, d) in probes.iter().zip(&got) {
            let Probe::Add { cand } = *p else {
                unreachable!()
            };
            assert_eq!(d.repriced, wm.affected(cand).len());
        }
    }

    #[test]
    fn masked_batch_is_the_mask_restriction_of_the_serial_delta() {
        let (cat, queries, pool) = setup();
        let models = build_models(&cat, &queries, &pool);
        let wm = model_of(&models, &pool);
        let selection = Selection::from_ids(pool.len(), &[1]);
        let state = wm.price_full(&selection);
        let probes = all_probes(&selection, pool.len());
        let nq = wm.query_count() as u32;
        // Sweep every subset mask of the (tiny) query set, including the
        // empty and full masks.
        let masks: Vec<Vec<u32>> = (0..(1u32 << nq))
            .map(|bits| (0..nq).filter(|q| bits & (1 << q) != 0).collect())
            .collect();
        let mut scratch = Vec::new();
        for mask in &masks {
            let got =
                wm.price_delta_batch(&state, &selection, &probes, Some(mask), ProbePool::global());
            for (&p, d) in probes.iter().zip(&got) {
                match p {
                    Probe::Add { cand } => {
                        wm.price_delta_into(&state, &selection, cand, &mut scratch)
                    }
                    Probe::Drop { cand } => {
                        wm.price_delta_removed_into(&state, &selection, cand, &mut scratch)
                    }
                    Probe::Swap { add, drop } => {
                        wm.price_delta_swapped_into(&state, &selection, add, drop, &mut scratch)
                    }
                };
                let restricted: Vec<(u32, f64)> = scratch
                    .iter()
                    .filter(|(q, _)| mask.binary_search(q).is_ok())
                    .copied()
                    .collect();
                assert_eq!(d.changed, restricted.len(), "mask {mask:?} probe {p:?}");
                assert_eq!(
                    d.total.to_bits(),
                    state.overlaid_total(&restricted).to_bits(),
                    "mask {mask:?} probe {p:?}"
                );
                // The full mask is exact: identical to the unmasked delta.
                if mask.len() == nq as usize {
                    assert_eq!(d.changed, scratch.len());
                }
            }
        }
    }
}
