//! The cache-based cost model: pricing an arbitrary configuration from the
//! plan cache and the access-cost catalog, **without calling the
//! optimizer**.
//!
//! "During normal operation, query costs are derived exclusively from the
//! pre-computed information without any further optimizer invocation. The
//! derivation involves simple numerical calculations and is significantly
//! faster compared to the complex query optimization code." (§II)

use crate::access_costs::AccessCostCatalog;
use crate::cache::PlanCache;
use crate::candidates::Selection;
use pinum_query::RelIdx;

/// A cache-derived cost estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Estimated query cost under the configuration.
    pub cost: f64,
    /// Index of the winning cached plan.
    pub plan: usize,
}

/// Prices configurations for one query.
pub struct CacheCostModel<'a> {
    cache: &'a PlanCache,
    access: &'a AccessCostCatalog,
}

impl<'a> CacheCostModel<'a> {
    pub fn new(cache: &'a PlanCache, access: &'a AccessCostCatalog) -> Self {
        assert_eq!(cache.n_rels, access.relation_count(), "query mismatch");
        Self { cache, access }
    }

    pub fn cache(&self) -> &PlanCache {
        self.cache
    }

    /// The estimated cost of the query under `selection`, with the chosen
    /// plan. Returns `None` only for an empty cache.
    ///
    /// A cached plan is *applicable* when every interesting order its
    /// leaves require is covered by a selected (or always-available) index;
    /// its cost is `internal + Σ coef_r · access(r)` where `access(r)` is
    /// the cheapest covering access path for required-order slots and the
    /// cheapest unordered access otherwise.
    pub fn estimate(&self, selection: &Selection) -> Option<Estimate> {
        self.estimate_filtered(selection, |_| true)
    }

    /// Like [`Self::estimate`] but restricted to plans without nested-loop
    /// joins (INUM's conservative mode).
    pub fn estimate_without_nlj(&self, selection: &Selection) -> Option<Estimate> {
        self.estimate_filtered(selection, |p| !p.uses_nlj)
    }

    /// Shared pricing loop with a plan predicate.
    fn estimate_filtered(
        &self,
        selection: &Selection,
        keep: impl Fn(&crate::cache::CachedPlan) -> bool,
    ) -> Option<Estimate> {
        let mut best: Option<Estimate> = None;
        'plans: for (i, plan) in self.cache.plans().iter().enumerate() {
            if !keep(plan) {
                continue;
            }
            let mut cost = plan.internal;
            for rel in 0..self.cache.n_rels as RelIdx {
                let required = self.cache.orders.column_of(plan.ioc, rel);
                // Standalone access term.
                let coef = plan.coefs[rel as usize];
                if coef != 0.0 {
                    let access = match required {
                        Some(col) => match self.access.best(rel, Some(col), selection) {
                            Some(a) => a,
                            None => continue 'plans, // plan not applicable
                        },
                        None => self
                            .access
                            .best(rel, None, selection)
                            .expect("sequential scan is always available"),
                    };
                    cost += coef * access;
                } else if let Some(col) = required {
                    // No standalone term, but the requirement must still be
                    // coverable (e.g. a probe-only slot).
                    if self.access.best(rel, Some(col), selection).is_none() {
                        continue 'plans;
                    }
                }
                // Per-probe access term (parameterized NLJ inners).
                let pcoef = plan.probe_coefs[rel as usize];
                if pcoef != 0.0 {
                    let Some(col) = required else {
                        continue 'plans; // probes always require an order
                    };
                    match self.access.best_probe(rel, col, selection, pcoef) {
                        Some(p) => cost += pcoef * p,
                        None => continue 'plans,
                    }
                }
            }
            if best.is_none_or(|b| cost < b.cost) {
                best = Some(Estimate { cost, plan: i });
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access_costs::collect_pinum;
    use crate::builder::{build_cache_pinum, BuilderOptions};
    use crate::candidates::CandidatePool;
    use pinum_catalog::{Catalog, Column, ColumnType, Index, Table};
    use pinum_optimizer::Optimizer;
    use pinum_query::{Query, QueryBuilder};

    fn setup() -> (Catalog, Query, CandidatePool) {
        let mut cat = Catalog::new();
        cat.add_table(Table::new(
            "f",
            300_000,
            vec![
                Column::new("fk", ColumnType::Int8).with_ndv(3_000),
                Column::new("v", ColumnType::Int4).with_ndv(1_000),
                Column::new("s", ColumnType::Int4).with_ndv(100),
            ],
        ));
        cat.add_table(Table::new(
            "d",
            3_000,
            vec![
                Column::new("k", ColumnType::Int8).with_ndv(3_000),
                Column::new("w", ColumnType::Int4).with_ndv(50),
            ],
        ));
        let q = QueryBuilder::new("q", &cat)
            .table("f")
            .table("d")
            .join(("f", "fk"), ("d", "k"))
            .filter_range(("f", "v"), 0.0, 10.0)
            .select(("f", "s"))
            .order_by(("d", "w"))
            .build();
        let f = cat.table(cat.table_id("f").unwrap()).clone();
        let d = cat.table(cat.table_id("d").unwrap()).clone();
        let pool = CandidatePool::from_indexes(vec![
            Index::hypothetical(&f, vec![0], false), // covers fk order
            Index::hypothetical(&f, vec![1, 0, 2], false), // filter covering
            Index::hypothetical(&d, vec![0], false), // covers k order
            Index::hypothetical(&d, vec![1], false), // covers w order
        ]);
        (cat, q, pool)
    }

    #[test]
    fn more_indexes_never_increase_estimated_cost() {
        let (cat, q, pool) = setup();
        let opt = Optimizer::new(&cat);
        let built = build_cache_pinum(&opt, &q, &BuilderOptions::default());
        let (access, _) = collect_pinum(&opt, &q, &pool);
        let model = CacheCostModel::new(&built.cache, &access);

        let empty = model.estimate(&Selection::empty(pool.len())).unwrap();
        let mut prev = empty.cost;
        let mut sel = Selection::empty(pool.len());
        for i in 0..pool.len() {
            sel.insert(i);
            let est = model.estimate(&sel).unwrap();
            assert!(
                est.cost <= prev * (1.0 + 1e-9),
                "adding candidate {i} increased cost: {prev} → {}",
                est.cost
            );
            prev = est.cost;
        }
    }

    #[test]
    fn estimate_matches_optimizer_for_empty_configuration() {
        let (cat, q, pool) = setup();
        let opt = Optimizer::new(&cat);
        let built = build_cache_pinum(&opt, &q, &BuilderOptions::default());
        let (access, _) = collect_pinum(&opt, &q, &pool);
        let model = CacheCostModel::new(&built.cache, &access);
        let est = model.estimate(&Selection::empty(pool.len())).unwrap();
        let direct = opt.optimize(
            &q,
            &pinum_catalog::Configuration::empty(),
            &pinum_optimizer::OptimizerOptions::standard(),
        );
        let err = (est.cost - direct.best_cost.total).abs() / direct.best_cost.total;
        assert!(
            err < 0.05,
            "empty-config estimate off by {:.1}%: {} vs {}",
            err * 100.0,
            est.cost,
            direct.best_cost.total
        );
    }

    #[test]
    fn nlj_free_estimate_is_never_cheaper() {
        let (cat, q, pool) = setup();
        let opt = Optimizer::new(&cat);
        let built = build_cache_pinum(&opt, &q, &BuilderOptions::default());
        let (access, _) = collect_pinum(&opt, &q, &pool);
        let model = CacheCostModel::new(&built.cache, &access);
        let sel = Selection::full(pool.len());
        let all = model.estimate(&sel).unwrap();
        let mhj = model.estimate_without_nlj(&sel).unwrap();
        assert!(all.cost <= mhj.cost * (1.0 + 1e-9));
    }
}
