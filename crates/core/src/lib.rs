//! # pinum-core
//!
//! The paper's primary contribution: the **INUM plan cache** and its two
//! construction strategies.
//!
//! INUM (Papadomanolakis, Dash, Ailamaki, VLDB'07) observes that, for a
//! fixed query, the optimizer's output varies over a small set of *internal
//! plans*, one per **interesting-order combination (IOC)**; the cost of the
//! query under any *atomic configuration* is then
//!
//! ```text
//! cost(C) = min over cached plans p applicable under C of
//!           internal(p) + Σ_r coef_p(r) · access_cost(r, order_p(r), C)
//! ```
//!
//! Filling that cache is the expensive part:
//!
//! * [`builder::build_cache_inum`] is the classic strategy — **one
//!   optimizer call per IOC** (648 for TPC-H Q5), each with a what-if
//!   configuration covering that combination;
//! * [`builder::build_cache_pinum`] is the paper's contribution — **two
//!   calls** (one with nested-loop joins disabled, one with them enabled),
//!   both against a configuration covering *every* interesting order, with
//!   the optimizer's §V-D hook exporting one optimal plan per IOC.
//!
//! Access costs are collected analogously: [`access_costs::collect_pinum`]
//! prices the entire candidate pool with **one** keep-all call (§V-C),
//! [`access_costs::collect_inum`] needs one call per atomic batch of
//! candidates. At workload scale, [`collector::WorkloadCollector`] takes
//! the per-query call apart further: relations are grouped by
//! `(table, filter shape)` template and each template's arms are priced
//! **once** for the whole workload — one optimizer call per
//! template-shape instead of per query, bit-identical to the per-query
//! reference.
//!
//! On top of the per-query caches, [`workload_model::WorkloadModel`]
//! packs a whole workload's plans and access costs into a CSR-style
//! **struct-of-arrays** pricing kernel: one contiguous cost array, a
//! parallel candidate-id array, and extent tables per slot/plan/query, so
//! pricing a slot is a branchless min-scan against a bitset snapshot of
//! the selection (the `simd` feature adds an explicitly lane-unrolled
//! variant with identical bits). `price_full` prices a selection; the
//! **bidirectional** deltas — `price_delta` (add), `price_delta_removed`
//! (drop), and `price_delta_swapped` (drop-one/add-one) — re-price only
//! the queries the touched candidates can affect (per-query bloom +
//! footprint prefilters prove the rest untouched) and re-total in
//! O(changed·log n) through the fixed-shape pairwise sum tree every
//! [`workload_model::PricedWorkload`] carries. The tree shape — exposed
//! as [`workload_model::pairwise_total`] — defines the bit pattern of
//! every total, so spliced and from-scratch pricing agree bit for bit.
//! This is the substrate the advisor's pluggable search strategies run
//! on. With the `parallel` feature, both model *construction* (per-query
//! flattening) and full re-pricings fan out across std threads, with
//! output identical to the serial paths. The pre-SoA nested-layout
//! engine is frozen in [`reference::ReferenceModel`] as the equivalence
//! oracle and microbenchmark baseline.
//!
//! The model is also **streaming**: `admit_query` / `evict_query` /
//! `reweight_query` splice queries in and out of the dense arrays and
//! the inverted candidate→query index in O(that query's access arms),
//! with the same debug-assert "equals a from-scratch rebuild"
//! equivalence discipline as the deltas (plus `compact` for tombstone
//! hygiene). [`session::PricingSession`] bundles the streaming model
//! with a [`Selection`] and a *live* [`PricedWorkload`] that is spliced
//! — never rebuilt — across mutations, so long-lived consumers carry
//! exact priced state from one re-selection to the next. The
//! `pinum-online` crate's epoch/drift `OnlineAdvisor` daemon is built
//! on exactly this surface — the workload becomes a sliding window over
//! a query stream instead of a frozen batch.
//!
//! All of the incremental paths `debug_assert` equality with their
//! from-scratch references; [`sampling`] bounds the cost of those
//! checks on large workloads via `PINUM_ASSERT_SAMPLE`.

pub mod access_costs;
pub mod builder;
pub mod cache;
pub mod candidates;
pub mod collector;
pub mod costing;
pub mod pool;
pub mod reference;
pub mod sampling;
pub mod session;
pub mod workload_model;

pub use access_costs::{
    collect_inum, collect_pinum, AccessCostCatalog, CandidateAccess, CollectStats,
};
pub use builder::{
    build_cache_inum, build_cache_pinum, covering_configuration, BuildStats, BuilderOptions,
    BuiltCache,
};
pub use cache::{CachedPlan, PlanCache};
pub use candidates::{CandidatePool, Selection};
pub use collector::{build_workload_models, WorkloadCollector, WorkloadModels};
pub use costing::{CacheCostModel, Estimate};
pub use pool::ProbePool;
pub use reference::ReferenceModel;
pub use session::PricingSession;
pub use workload_model::{
    pairwise_total, PricedWorkload, Probe, ProbeDelta, WorkloadModel, WorkloadModelParts,
};
