//! Access-cost collection: pricing every candidate index for a query.
//!
//! Three collection strategies fill an [`AccessCostCatalog`]:
//!
//! * **PINUM, per query** (§V-C): the access-path collector keeps *all*
//!   index access paths, so one optimizer call against the full candidate
//!   pool prices everything — [`collect_pinum`]. This is the reference
//!   path: every other strategy is held to its output.
//! * **PINUM, batched across the workload**:
//!   [`crate::WorkloadCollector`] groups relations by
//!   `(table, filter shape)` template and spends one optimizer call per
//!   *distinct template* instead of per query, fanning the shared arms
//!   out to each member query's covering/ordering interpretation. The
//!   result is bit-identical to [`collect_pinum`] (debug-asserted on
//!   every collection, release-checked by `exp_batched_collection`) at a
//!   fraction of the calls — 200 → 33 (6.1×) on the 200-query scale
//!   workload.
//! * **Classic INUM**: "the optimizer can be queried with a single index
//!   per each table in the query and the access cost can be determined by
//!   parsing the generated plan" — [`collect_inum`] makes one call per
//!   atomic batch.

use crate::candidates::{CandidatePool, Selection};
use pinum_cost::scan::{cost_index_scan, IndexScanInput};
use pinum_cost::CostParams;
use pinum_optimizer::{AccessSource, IndexRef, Optimizer, OptimizerOptions};
use pinum_query::{Query, RelIdx};
use std::time::{Duration, Instant};

/// One priced access path of a candidate (or always-available) source.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateAccess {
    /// `Some(pool id)` for a candidate index; `None` for sources that are
    /// always available (sequential scan, materialized catalog indexes).
    pub candidate: Option<usize>,
    /// Interesting order covered (`None` = unordered access).
    pub order: Option<u16>,
    /// Standalone access cost (total).
    pub cost: f64,
    /// Probe pricing inputs for parameterized nested-loop lookups
    /// (`None` for unordered sources); re-priced per plan at its actual
    /// loop count.
    pub probe: Option<IndexScanInput>,
}

/// All access costs of one query over a candidate pool.
///
/// `PartialEq` compares entry-for-entry bit-identically — the equivalence
/// relation the batched [`crate::WorkloadCollector`] is held to against
/// this module's per-query reference collection.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessCostCatalog {
    /// Per relation: the priced access paths, ascending by cost.
    per_rel: Vec<Vec<CandidateAccess>>,
    /// Cost parameters used for probe re-pricing (copied from the
    /// optimizer at collection time).
    params: CostParams,
}

impl AccessCostCatalog {
    pub fn new(n_rels: usize) -> Self {
        Self {
            per_rel: vec![Vec::new(); n_rels],
            params: CostParams::default(),
        }
    }

    pub fn relation_count(&self) -> usize {
        self.per_rel.len()
    }

    /// Rebuilds a catalog from snapshot parts — the wire codec
    /// round-trips catalogs through this. `per_rel` must be exactly as a
    /// collector produced it (entries ascending by cost per relation); no
    /// re-sort is applied, so a decoded catalog is bit-identical to the
    /// encoded one.
    pub fn from_parts(per_rel: Vec<Vec<CandidateAccess>>, params: CostParams) -> Self {
        Self { per_rel, params }
    }

    /// Snapshot view of every relation's priced entries (encode side of
    /// [`Self::from_parts`]).
    pub fn per_rel(&self) -> &[Vec<CandidateAccess>] {
        &self.per_rel
    }

    pub fn entries(&self, rel: RelIdx) -> &[CandidateAccess] {
        &self.per_rel[rel as usize]
    }

    /// Cost parameters the probe specs were collected under (needed to
    /// re-price probes at a plan's loop count, e.g. by the workload model).
    pub fn params(&self) -> &CostParams {
        &self.params
    }

    pub(crate) fn set_params(&mut self, params: CostParams) {
        self.params = params;
    }

    pub(crate) fn push(&mut self, rel: RelIdx, entry: CandidateAccess) {
        self.per_rel[rel as usize].push(entry);
    }

    pub(crate) fn sort(&mut self) {
        for v in &mut self.per_rel {
            v.sort_by(|a, b| a.cost.partial_cmp(&b.cost).unwrap());
            // Same source can be priced by several calls (INUM batching);
            // keep the cheapest observation.
            v.dedup_by(|b, a| a.candidate == b.candidate && a.order == b.order);
        }
    }

    /// Cheapest access cost on `rel` under `selection`:
    /// `order = None` allows *any* access path (every path delivers the
    /// rows, ordered or not); `order = Some(o)` requires a selected (or
    /// always-available) path covering interesting order `o`.
    pub fn best(&self, rel: RelIdx, order: Option<u16>, selection: &Selection) -> Option<f64> {
        self.per_rel[rel as usize]
            .iter()
            .filter(|e| match order {
                None => true,
                Some(o) => e.order == Some(o),
            })
            .filter(|e| e.candidate.is_none_or(|c| selection.contains(c)))
            .map(|e| e.cost)
            .next() // entries are sorted ascending
    }

    /// Cheapest *per-probe* cost on `rel` for interesting order `order`
    /// under `selection`, priced at `loops` probes (parameterized
    /// nested-loop inner lookups).
    pub fn best_probe(
        &self,
        rel: RelIdx,
        order: u16,
        selection: &Selection,
        loops: f64,
    ) -> Option<f64> {
        self.per_rel[rel as usize]
            .iter()
            .filter(|e| e.order == Some(order))
            .filter(|e| e.candidate.is_none_or(|c| selection.contains(c)))
            .filter_map(|e| e.probe)
            .map(|mut spec| {
                spec.loop_count = loops.max(1.0);
                cost_index_scan(&self.params, &spec).total
            })
            .fold(None, |acc: Option<f64>, p| {
                Some(acc.map_or(p, |a| a.min(p)))
            })
    }
}

/// Statistics of one collection run.
#[derive(Debug, Clone, Copy, Default)]
pub struct CollectStats {
    pub optimizer_calls: usize,
    pub wall: Duration,
    pub entries: usize,
}

/// PINUM collection: **one** optimizer call with the keep-all hook against
/// the entire candidate pool.
pub fn collect_pinum(
    optimizer: &Optimizer<'_>,
    query: &Query,
    pool: &CandidatePool,
) -> (AccessCostCatalog, CollectStats) {
    let start = Instant::now();
    let selection = Selection::full(pool.len());
    let (config, ids) = pool.configuration(&selection);
    let options = OptimizerOptions {
        keep_all_access_paths: true,
        ..OptimizerOptions::standard()
    };
    let planned = optimizer.optimize(query, &config, &options);
    let mut catalog = AccessCostCatalog::new(query.relation_count());
    catalog.params = *optimizer.params();
    for e in &planned.access_costs {
        let candidate = match e.source {
            AccessSource::SeqScan => None,
            AccessSource::Index(IndexRef::Catalog(_)) => None,
            AccessSource::Index(IndexRef::Config(i)) => Some(ids[i]),
        };
        catalog.push(
            e.rel,
            CandidateAccess {
                candidate,
                order: e.order,
                cost: e.cost.total,
                probe: e.probe_spec,
            },
        );
    }
    catalog.sort();
    let entries = catalog.per_rel.iter().map(Vec::len).sum();
    (
        catalog,
        CollectStats {
            optimizer_calls: 1,
            wall: start.elapsed(),
            entries,
        },
    )
}

/// Classic INUM collection: batches with at most one candidate per table
/// per call ("a single index per each table in the query"), so the number
/// of calls is the maximum candidate count over the query's tables.
pub fn collect_inum(
    optimizer: &Optimizer<'_>,
    query: &Query,
    pool: &CandidatePool,
) -> (AccessCostCatalog, CollectStats) {
    let start = Instant::now();
    let mut catalog = AccessCostCatalog::new(query.relation_count());
    catalog.params = *optimizer.params();

    // Queue of candidate ids per relation of this query.
    let mut queues: Vec<Vec<usize>> = (0..query.relation_count())
        .map(|rel| pool.on_table(query.table_of(rel as RelIdx)).to_vec())
        .collect();
    let mut calls = 0usize;
    let options = OptimizerOptions {
        keep_all_access_paths: true,
        ..OptimizerOptions::standard()
    };

    loop {
        // Draw one candidate per relation.
        let batch: Vec<usize> = queues.iter_mut().filter_map(|q| q.pop()).collect();
        if batch.is_empty() {
            if calls == 0 {
                // No candidates at all: one call to price the base paths.
                let planned =
                    optimizer.optimize(query, &pinum_catalog::Configuration::empty(), &options);
                calls = 1;
                for e in &planned.access_costs {
                    catalog.push(
                        e.rel,
                        CandidateAccess {
                            candidate: None,
                            order: e.order,
                            cost: e.cost.total,
                            probe: e.probe_spec,
                        },
                    );
                }
            }
            break;
        }
        let selection = Selection::from_ids(pool.len(), &batch);
        let (config, ids) = pool.configuration(&selection);
        let planned = optimizer.optimize(query, &config, &options);
        calls += 1;
        for e in &planned.access_costs {
            let candidate = match e.source {
                AccessSource::SeqScan => None,
                AccessSource::Index(IndexRef::Catalog(_)) => None,
                AccessSource::Index(IndexRef::Config(i)) => Some(ids[i]),
            };
            catalog.push(
                e.rel,
                CandidateAccess {
                    candidate,
                    order: e.order,
                    cost: e.cost.total,
                    probe: e.probe_spec,
                },
            );
        }
    }
    catalog.sort();
    let entries = catalog.per_rel.iter().map(Vec::len).sum();
    (
        catalog,
        CollectStats {
            optimizer_calls: calls,
            wall: start.elapsed(),
            entries,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinum_catalog::{Catalog, Column, ColumnType, Index, Table};
    use pinum_query::QueryBuilder;

    fn setup() -> (Catalog, Query, CandidatePool) {
        let mut cat = Catalog::new();
        cat.add_table(Table::new(
            "f",
            500_000,
            vec![
                Column::new("fk", ColumnType::Int8).with_ndv(5_000),
                Column::new("v", ColumnType::Int4).with_ndv(1_000),
            ],
        ));
        cat.add_table(Table::new(
            "d",
            5_000,
            vec![
                Column::new("k", ColumnType::Int8).with_ndv(5_000),
                Column::new("w", ColumnType::Int4).with_ndv(100),
            ],
        ));
        let q = QueryBuilder::new("q", &cat)
            .table("f")
            .table("d")
            .join(("f", "fk"), ("d", "k"))
            .filter_range(("f", "v"), 0.0, 10.0)
            .select(("d", "w"))
            .build();
        let f = cat.table(cat.table_id("f").unwrap()).clone();
        let d = cat.table(cat.table_id("d").unwrap()).clone();
        let pool = CandidatePool::from_indexes(vec![
            Index::hypothetical(&f, vec![0], false),
            Index::hypothetical(&f, vec![1], false),
            Index::hypothetical(&f, vec![1, 0], false),
            Index::hypothetical(&d, vec![0], false),
            Index::hypothetical(&d, vec![0, 1], false),
        ]);
        (cat, q, pool)
    }

    #[test]
    fn pinum_prices_everything_in_one_call() {
        let (cat, q, pool) = setup();
        let opt = Optimizer::new(&cat);
        let (catalog, stats) = collect_pinum(&opt, &q, &pool);
        assert_eq!(stats.optimizer_calls, 1);
        // Every candidate appears in some entry.
        for cand in 0..pool.len() {
            assert!(
                (0..2u16).any(|rel| catalog
                    .entries(rel)
                    .iter()
                    .any(|e| e.candidate == Some(cand))),
                "candidate {cand} unpriced"
            );
        }
        // Sequential scans are always available.
        let sel = Selection::empty(pool.len());
        assert!(catalog.best(0, None, &sel).is_some());
        assert!(catalog.best(1, None, &sel).is_some());
        // Ordered access requires a covering candidate.
        assert!(catalog.best(0, Some(0), &sel).is_none());
        let with_fk = Selection::from_ids(pool.len(), &[0]);
        assert!(catalog.best(0, Some(0), &with_fk).is_some());
    }

    #[test]
    fn inum_needs_one_call_per_batch() {
        let (cat, q, pool) = setup();
        let opt = Optimizer::new(&cat);
        let (catalog_inum, stats) = collect_inum(&opt, &q, &pool);
        // f has 3 candidates, d has 2 → 3 calls.
        assert_eq!(stats.optimizer_calls, 3);
        // Collected costs agree with the one-call PINUM catalog.
        let (catalog_pinum, _) = collect_pinum(&opt, &q, &pool);
        let sel = Selection::full(pool.len());
        for rel in 0..2u16 {
            for order in [None, Some(0u16), Some(1)] {
                let a = catalog_inum.best(rel, order, &sel);
                let b = catalog_pinum.best(rel, order, &sel);
                match (a, b) {
                    (Some(x), Some(y)) => assert!(
                        (x - y).abs() / x.max(1.0) < 1e-9,
                        "rel {rel} order {order:?}: {x} vs {y}"
                    ),
                    (None, None) => {}
                    other => panic!("rel {rel} order {order:?}: mismatch {other:?}"),
                }
            }
        }
    }

    #[test]
    fn best_respects_selection() {
        let (cat, q, pool) = setup();
        let opt = Optimizer::new(&cat);
        let (catalog, _) = collect_pinum(&opt, &q, &pool);
        let none = Selection::empty(pool.len());
        let all = Selection::full(pool.len());
        let unordered_none = catalog.best(0, None, &none).unwrap();
        let unordered_all = catalog.best(0, None, &all).unwrap();
        assert!(
            unordered_all <= unordered_none,
            "more indexes can only help"
        );
    }

    #[test]
    fn empty_pool_still_prices_base_paths() {
        let (cat, q, _) = setup();
        let pool = CandidatePool::new();
        let opt = Optimizer::new(&cat);
        let (catalog, stats) = collect_inum(&opt, &q, &pool);
        assert_eq!(stats.optimizer_calls, 1);
        let sel = Selection::empty(0);
        assert!(catalog.best(0, None, &sel).is_some());
    }
}
