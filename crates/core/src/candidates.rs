//! Candidate index pools and selections over them.
//!
//! The designer works against a fixed pool of candidate (hypothetical)
//! indexes; a [`Selection`] is the subset currently materialized in a
//! what-if configuration. Keeping candidates in one arena lets access-cost
//! entries reference them stably across thousands of evaluations.

use pinum_catalog::{Configuration, Index, TableId};
use std::collections::HashMap;

/// An immutable pool of deduplicated candidate indexes.
#[derive(Debug, Clone, Default)]
pub struct CandidatePool {
    indexes: Vec<Index>,
    by_table: HashMap<TableId, Vec<usize>>,
    /// Hashed structural identity → id, so [`CandidatePool::add`] dedups in
    /// O(1) instead of scanning (and re-cloning key columns of) every
    /// existing candidate on the table.
    dedup: HashMap<CandidateKey, usize>,
}

/// Structural identity of a candidate: same table, same key columns, same
/// uniqueness ⇒ same index.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CandidateKey {
    table: TableId,
    key_columns: Box<[u16]>,
    unique: bool,
}

impl CandidateKey {
    fn of(index: &Index) -> Self {
        Self {
            table: index.table(),
            key_columns: index.key_columns().into(),
            unique: index.is_unique(),
        }
    }
}

impl CandidatePool {
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a pool from candidate indexes, dropping structural duplicates
    /// (same table, same key columns, same uniqueness).
    pub fn from_indexes(indexes: Vec<Index>) -> Self {
        let mut pool = Self::new();
        for ix in indexes {
            pool.add(ix);
        }
        pool
    }

    /// Adds a candidate unless an identical one exists; returns its id.
    pub fn add(&mut self, index: Index) -> usize {
        match self.dedup.entry(CandidateKey::of(&index)) {
            std::collections::hash_map::Entry::Occupied(e) => *e.get(),
            std::collections::hash_map::Entry::Vacant(e) => {
                let id = self.indexes.len();
                e.insert(id);
                self.by_table.entry(index.table()).or_default().push(id);
                self.indexes.push(index);
                id
            }
        }
    }

    pub fn len(&self) -> usize {
        self.indexes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.indexes.is_empty()
    }

    #[allow(clippy::should_implement_trait)] // "index" is the domain noun here
    pub fn index(&self, id: usize) -> &Index {
        &self.indexes[id]
    }

    pub fn indexes(&self) -> &[Index] {
        &self.indexes
    }

    /// Candidate ids on one table.
    pub fn on_table(&self, table: TableId) -> &[usize] {
        self.by_table.get(&table).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Builds a what-if [`Configuration`] from a selection; the i-th index
    /// of the configuration corresponds to `selection.ids()[i]`.
    pub fn configuration(&self, selection: &Selection) -> (Configuration, Vec<usize>) {
        let ids: Vec<usize> = selection.ids().collect();
        let cfg = Configuration::new(ids.iter().map(|&i| self.indexes[i].clone()).collect());
        (cfg, ids)
    }

    /// Total size in bytes of a selection.
    pub fn selection_bytes(&self, selection: &Selection) -> u64 {
        selection
            .ids()
            .map(|i| self.indexes[i].size().total_bytes())
            .sum()
    }
}

/// A subset of a [`CandidatePool`], as a growable bitset.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Selection {
    words: Vec<u64>,
}

impl Selection {
    /// The empty selection.
    pub fn empty(pool_size: usize) -> Self {
        Self {
            words: vec![0; pool_size.div_ceil(64)],
        }
    }

    /// Every candidate selected.
    pub fn full(pool_size: usize) -> Self {
        let mut s = Self::empty(pool_size);
        for i in 0..pool_size {
            s.insert(i);
        }
        s
    }

    /// A selection from explicit ids.
    pub fn from_ids(pool_size: usize, ids: &[usize]) -> Self {
        let mut s = Self::empty(pool_size);
        for &i in ids {
            s.insert(i);
        }
        s
    }

    pub fn insert(&mut self, id: usize) {
        if id / 64 >= self.words.len() {
            self.words.resize(id / 64 + 1, 0);
        }
        self.words[id / 64] |= 1 << (id % 64);
    }

    pub fn remove(&mut self, id: usize) {
        if id / 64 < self.words.len() {
            self.words[id / 64] &= !(1 << (id % 64));
        }
    }

    pub fn contains(&self, id: usize) -> bool {
        self.words
            .get(id / 64)
            .is_some_and(|w| w & (1 << (id % 64)) != 0)
    }

    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// Iterates selected ids in ascending order.
    pub fn ids(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &bits)| {
            let mut b = bits;
            std::iter::from_fn(move || {
                if b == 0 {
                    None
                } else {
                    let i = b.trailing_zeros() as usize;
                    b &= b - 1;
                    Some(w * 64 + i)
                }
            })
        })
    }

    /// Raw bitset words (little-endian bit order within a word). The
    /// pricing kernel snapshots these into a fixed-width selection view so
    /// its arm min-scan tests membership with one word load per arm.
    pub(crate) fn word_slice(&self) -> &[u64] {
        &self.words
    }

    /// The raw bitset words, for flat serialization (bit `i` of word
    /// `i / 64` ⇔ candidate `i` selected).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds a selection from raw bitset words, validating the shape:
    /// exactly `pool_size.div_ceil(64)` words and no bit at or above
    /// `pool_size`. The inverse of [`Selection::words`] — round-tripping
    /// through it is bit-identical.
    pub fn from_words(pool_size: usize, words: Vec<u64>) -> Result<Self, &'static str> {
        if words.len() != pool_size.div_ceil(64) {
            return Err("selection word count does not match pool size");
        }
        let tail_bits = pool_size % 64;
        if tail_bits != 0 {
            let last = words.last().copied().unwrap_or(0);
            if last >> tail_bits != 0 {
                return Err("selection has bits beyond the pool size");
            }
        }
        Ok(Self { words })
    }

    /// A copy with one more candidate.
    pub fn with(&self, id: usize) -> Self {
        let mut s = self.clone();
        s.insert(id);
        s
    }

    /// A copy with one candidate removed.
    pub fn without(&self, id: usize) -> Self {
        let mut s = self.clone();
        s.remove(id);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinum_catalog::{Column, ColumnType, Table};

    fn catalog() -> pinum_catalog::Catalog {
        let mut cat = pinum_catalog::Catalog::new();
        cat.add_table(Table::new(
            "t",
            100_000,
            vec![
                Column::new("a", ColumnType::Int8).with_ndv(100_000),
                Column::new("b", ColumnType::Int4).with_ndv(100),
            ],
        ));
        cat
    }

    #[test]
    fn pool_dedupes_structural_twins() {
        let cat = catalog();
        let t = cat.table(cat.table_id("t").unwrap());
        let mut pool = CandidatePool::new();
        let a = pool.add(Index::hypothetical(t, vec![0], false));
        let b = pool.add(Index::hypothetical(t, vec![0], false));
        let c = pool.add(Index::hypothetical(t, vec![0, 1], false));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.on_table(t.id()).len(), 2);
    }

    #[test]
    fn selection_bitset_semantics() {
        let mut s = Selection::empty(100);
        assert!(s.is_empty());
        s.insert(3);
        s.insert(64);
        s.insert(99);
        assert_eq!(s.len(), 3);
        assert!(s.contains(64));
        assert!(!s.contains(63));
        assert_eq!(s.ids().collect::<Vec<_>>(), vec![3, 64, 99]);
        s.remove(64);
        assert_eq!(s.len(), 2);
        let s2 = s.with(64);
        assert_eq!(s2.len(), 3);
        assert_eq!(s.len(), 2, "with() must not mutate");
        let s3 = s2.without(64);
        assert_eq!(s3.len(), 2);
        assert_eq!(s2.len(), 3, "without() must not mutate");
        assert!(!s3.contains(64));
    }

    #[test]
    fn full_and_from_ids() {
        let full = Selection::full(70);
        assert_eq!(full.len(), 70);
        let some = Selection::from_ids(70, &[0, 69]);
        assert_eq!(some.ids().collect::<Vec<_>>(), vec![0, 69]);
    }

    #[test]
    fn configuration_mapping_preserves_ids() {
        let cat = catalog();
        let t = cat.table(cat.table_id("t").unwrap());
        let mut pool = CandidatePool::new();
        pool.add(Index::hypothetical(t, vec![0], false));
        pool.add(Index::hypothetical(t, vec![1], false));
        pool.add(Index::hypothetical(t, vec![0, 1], false));
        let sel = Selection::from_ids(3, &[0, 2]);
        let (cfg, ids) = pool.configuration(&sel);
        assert_eq!(cfg.len(), 2);
        assert_eq!(ids, vec![0, 2]);
        assert!(pool.selection_bytes(&sel) > 0);
    }
}
