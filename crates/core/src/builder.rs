//! Plan-cache construction: classic INUM (one optimizer call per
//! interesting-order combination) vs PINUM (one call — two with nested-loop
//! joins — §V-D).

use crate::cache::{CachedPlan, PlanCache};
use pinum_catalog::{Catalog, Configuration, Index};
use pinum_optimizer::{Optimizer, OptimizerOptions};
use pinum_query::{InterestingOrders, Ioc, Query, RelIdx};
use std::time::{Duration, Instant};

/// Options for both builders.
#[derive(Debug, Clone, Copy)]
pub struct BuilderOptions {
    /// Cache nested-loop plans too (INUM treats them separately; disabling
    /// models the pure merge/hash cache of INUM observation 2).
    pub include_nlj: bool,
    /// For classic INUM: also make the two extreme-access-cost calls with
    /// nested loops enabled ("Typically, only two calls to the optimizer at
    /// the extreme access costs are sufficient", §V-D).
    pub nlj_extreme_calls: bool,
}

impl Default for BuilderOptions {
    fn default() -> Self {
        Self {
            include_nlj: true,
            nlj_extreme_calls: true,
        }
    }
}

/// Construction statistics — the quantities Figure 4/5 plots.
#[derive(Debug, Clone, Copy, Default)]
pub struct BuildStats {
    pub optimizer_calls: usize,
    pub wall: Duration,
    /// Combinations enumerated (`Π (orders_r + 1)`).
    pub ioc_count: u64,
    pub plans_cached: usize,
    pub unique_plan_structures: usize,
}

/// A built cache plus its statistics.
#[derive(Debug)]
pub struct BuiltCache {
    pub cache: PlanCache,
    pub stats: BuildStats,
}

/// Builds the what-if configuration covering **all** interesting orders of
/// the query: one single-column hypothetical index per interesting order —
/// what the PINUM call is "invoked with" (§V-D).
pub fn covering_configuration(catalog: &Catalog, query: &Query) -> Configuration {
    let orders = query.interesting_orders();
    let mut indexes = Vec::new();
    for rel in 0..query.relation_count() as RelIdx {
        let table = catalog.table(query.table_of(rel));
        for &col in orders.orders_of(rel) {
            indexes.push(Index::hypothetical(table, vec![col], false));
        }
    }
    Configuration::new(indexes)
}

/// Builds the atomic what-if configuration covering exactly one
/// interesting-order combination — what each classic INUM call uses.
pub fn covering_configuration_for_ioc(
    catalog: &Catalog,
    query: &Query,
    orders: &InterestingOrders,
    ioc: Ioc,
) -> Configuration {
    let mut indexes = Vec::new();
    for rel in 0..query.relation_count() as RelIdx {
        if let Some(col) = orders.column_of(ioc, rel) {
            let table = catalog.table(query.table_of(rel));
            indexes.push(Index::hypothetical(table, vec![col], false));
        }
    }
    Configuration::new(indexes)
}

/// PINUM cache construction (§V-D): one exporting call with nested loops
/// disabled plus, when NLJ plans are wanted, one exporting call with them
/// enabled — two calls regardless of how many IOCs the query has.
pub fn build_cache_pinum(
    optimizer: &Optimizer<'_>,
    query: &Query,
    opts: &BuilderOptions,
) -> BuiltCache {
    let start = Instant::now();
    let orders = query.interesting_orders();
    let mut cache = PlanCache::new(&query.name, query.relation_count(), orders.clone());
    let covering = covering_configuration(optimizer.catalog(), query);
    let mut calls = 0usize;

    // Call 1: merge/hash plans for every IOC.
    let no_nlj = OptimizerOptions {
        enable_nestloop: false,
        ..OptimizerOptions::pinum_export()
    };
    let planned = optimizer.optimize(query, &covering, &no_nlj);
    calls += 1;
    for e in planned.exported {
        cache.insert(CachedPlan::from(e));
    }

    // Call 2: nested-loop plans (low-access-cost extreme — every covering
    // index present).
    if opts.include_nlj {
        let with_nlj = OptimizerOptions::pinum_export();
        let planned = optimizer.optimize(query, &covering, &with_nlj);
        calls += 1;
        for e in planned.exported {
            cache.insert(CachedPlan::from(e));
        }
    }

    let stats = BuildStats {
        optimizer_calls: calls,
        wall: start.elapsed(),
        ioc_count: orders.combination_count(),
        plans_cached: cache.len(),
        unique_plan_structures: cache.unique_plan_structures(),
    };
    BuiltCache { cache, stats }
}

/// Classic INUM cache construction: enumerate every interesting-order
/// combination, create the covering atomic configuration, and invoke the
/// (unmodified) optimizer once per combination with nested loops disabled;
/// then two extreme-access-cost calls with nested loops enabled.
pub fn build_cache_inum(
    optimizer: &Optimizer<'_>,
    query: &Query,
    opts: &BuilderOptions,
) -> BuiltCache {
    let start = Instant::now();
    let orders = query.interesting_orders();
    let mut cache = PlanCache::new(&query.name, query.relation_count(), orders.clone());
    let mut calls = 0usize;

    let no_nlj = OptimizerOptions {
        enable_nestloop: false,
        ..OptimizerOptions::standard()
    };
    for ioc in orders.combinations() {
        let config = covering_configuration_for_ioc(optimizer.catalog(), query, &orders, ioc);
        let planned = optimizer.optimize(query, &config, &no_nlj);
        calls += 1;
        cache.insert(CachedPlan::from(planned.best_export));
    }

    if opts.include_nlj && opts.nlj_extreme_calls {
        // Low extreme: all covering indexes present (cheap access).
        let covering = covering_configuration(optimizer.catalog(), query);
        let planned = optimizer.optimize(query, &covering, &OptimizerOptions::standard());
        calls += 1;
        cache.insert(CachedPlan::from(planned.best_export));
        // High extreme: no indexes at all (expensive access).
        let planned = optimizer.optimize(
            query,
            &Configuration::empty(),
            &OptimizerOptions::standard(),
        );
        calls += 1;
        cache.insert(CachedPlan::from(planned.best_export));
    }

    let stats = BuildStats {
        optimizer_calls: calls,
        wall: start.elapsed(),
        ioc_count: orders.combination_count(),
        plans_cached: cache.len(),
        unique_plan_structures: cache.unique_plan_structures(),
    };
    BuiltCache { cache, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinum_catalog::{Column, ColumnType, Table};
    use pinum_query::QueryBuilder;

    fn setup() -> (Catalog, Query) {
        let mut cat = Catalog::new();
        cat.add_table(Table::new(
            "f",
            200_000,
            vec![
                Column::new("fk1", ColumnType::Int8).with_ndv(2_000),
                Column::new("fk2", ColumnType::Int8).with_ndv(500),
                Column::new("v", ColumnType::Int4).with_ndv(1_000),
            ],
        ));
        cat.add_table(Table::new(
            "d1",
            2_000,
            vec![
                Column::new("k", ColumnType::Int8).with_ndv(2_000),
                Column::new("a", ColumnType::Int4).with_ndv(50),
            ],
        ));
        cat.add_table(Table::new(
            "d2",
            500,
            vec![Column::new("k", ColumnType::Int8).with_ndv(500)],
        ));
        let q = QueryBuilder::new("q", &cat)
            .table("f")
            .table("d1")
            .table("d2")
            .join(("f", "fk1"), ("d1", "k"))
            .join(("f", "fk2"), ("d2", "k"))
            .filter_range(("f", "v"), 0.0, 10.0)
            .select(("d1", "a"))
            .order_by(("d1", "a"))
            .build();
        (cat, q)
    }

    #[test]
    fn pinum_uses_two_calls_inum_one_per_ioc() {
        let (cat, q) = setup();
        let opt = Optimizer::new(&cat);
        let opts = BuilderOptions::default();
        let pinum = build_cache_pinum(&opt, &q, &opts);
        let inum = build_cache_inum(&opt, &q, &opts);
        // f: fk1, fk2 → 2; d1: k, a → 2; d2: k → 1 ⇒ 3·3·2 = 18 IOCs.
        assert_eq!(pinum.stats.ioc_count, 18);
        assert_eq!(pinum.stats.optimizer_calls, 2);
        assert_eq!(inum.stats.optimizer_calls, 18 + 2);
        // Wall-clock comparison only with generous slack: 2 calls vs 20
        // should not be 3x slower even under scheduler noise (a strict
        // `<` is flaky in CI).
        assert!(
            pinum.stats.wall < inum.stats.wall * 3,
            "PINUM (2 calls, {:?}) should not be 3x slower than INUM (20 calls, {:?})",
            pinum.stats.wall,
            inum.stats.wall
        );
        assert!(!pinum.cache.is_empty());
        assert!(!inum.cache.is_empty());
    }

    #[test]
    fn covering_configuration_covers_every_order() {
        let (cat, q) = setup();
        let cfg = covering_configuration(&cat, &q);
        assert_eq!(cfg.len(), 5); // 2 + 2 + 1 interesting orders
        let orders = q.interesting_orders();
        for rel in 0..3u16 {
            for &col in orders.orders_of(rel) {
                assert!(
                    cfg.table_indexes(q.table_of(rel))
                        .any(|ix| ix.leading_column() == col),
                    "order {col} of rel {rel} uncovered"
                );
            }
        }
    }

    #[test]
    fn per_ioc_configuration_is_atomic() {
        let (cat, q) = setup();
        let orders = q.interesting_orders();
        for ioc in orders.combinations() {
            let cfg = covering_configuration_for_ioc(&cat, &q, &orders, ioc);
            assert!(cfg.is_atomic_for(&q.relations));
            assert_eq!(cfg.len() as u32, ioc.required_count());
        }
    }

    #[test]
    fn cached_plans_far_fewer_than_iocs() {
        // The paper's §IV point: most per-IOC calls return redundant plans.
        let (cat, q) = setup();
        let opt = Optimizer::new(&cat);
        let inum = build_cache_inum(&opt, &q, &BuilderOptions::default());
        assert!(
            (inum.stats.unique_plan_structures as u64) < inum.stats.ioc_count,
            "unique {} vs iocs {}",
            inum.stats.unique_plan_structures,
            inum.stats.ioc_count
        );
    }

    #[test]
    fn nlj_free_build_has_no_nlj_plans() {
        let (cat, q) = setup();
        let opt = Optimizer::new(&cat);
        let opts = BuilderOptions {
            include_nlj: false,
            nlj_extreme_calls: false,
        };
        let built = build_cache_pinum(&opt, &q, &opts);
        assert_eq!(built.stats.optimizer_calls, 1);
        let (_, nlj) = built.cache.partition_by_nlj();
        assert_eq!(nlj, 0);
    }
}

#[cfg(test)]
mod single_table_tests {
    use super::*;
    use pinum_catalog::{Column, ColumnType, Table};
    use pinum_query::QueryBuilder;

    /// Single-table queries have no joins; interesting orders come from
    /// ORDER BY alone and both builders still work.
    #[test]
    fn single_table_cache() {
        let mut cat = Catalog::new();
        cat.add_table(Table::new(
            "t",
            50_000,
            vec![
                Column::new("a", ColumnType::Int8).with_ndv(50_000),
                Column::new("b", ColumnType::Int4).with_ndv(500),
            ],
        ));
        let q = QueryBuilder::new("q1", &cat)
            .table("t")
            .filter_range(("t", "b"), 0.0, 5.0)
            .select(("t", "a"))
            .order_by(("t", "a"))
            .build();
        let opt = Optimizer::new(&cat);
        let opts = BuilderOptions::default();
        let pinum = build_cache_pinum(&opt, &q, &opts);
        let inum = build_cache_inum(&opt, &q, &opts);
        assert_eq!(pinum.stats.ioc_count, 2); // (a) and (Φ)
        assert!(!pinum.cache.is_empty());
        assert!(!inum.cache.is_empty());
        assert!(pinum.stats.optimizer_calls <= 2);
        assert_eq!(inum.stats.optimizer_calls, 2 + 2);
    }

    /// Queries without any interesting order still cache the single Φ plan.
    #[test]
    fn no_interesting_orders_yields_one_ioc() {
        let mut cat = Catalog::new();
        cat.add_table(Table::new(
            "t",
            10_000,
            vec![Column::new("a", ColumnType::Int8).with_ndv(10_000)],
        ));
        let q = QueryBuilder::new("q", &cat)
            .table("t")
            .select(("t", "a"))
            .build();
        let opt = Optimizer::new(&cat);
        let built = build_cache_pinum(&opt, &q, &BuilderOptions::default());
        assert_eq!(built.stats.ioc_count, 1);
        assert_eq!(built.cache.covered_iocs(), 1);
    }
}
