//! # Persistent probe worker pool
//!
//! The search strategies issue hundreds of independent `price_delta`
//! probes per round against a fixed selection — the textbook
//! embarrassingly-parallel shape. This module provides the std::thread
//! worker pool those probes (and full re-pricings, and model flattening)
//! fan out over: spawned **once**, reused across rounds and re-advises,
//! no per-call thread creation.
//!
//! ## Determinism contract
//!
//! The pool is a pure *execution* fan-out; it must never influence
//! *results*. Concretely:
//!
//! * work items are claimed as fixed-size chunks off an atomic counter,
//!   so which worker prices which probe is scheduling-dependent — but
//!   every output is written to a slot indexed by the item's position in
//!   the caller's input order, so the assembled output vector is
//!   **bit-identical for every thread count and chunk size** (each item's
//!   computation reads only shared immutable state);
//! * callers perform reductions (argmax/argmin over probe deltas)
//!   serially over that ordered output, never inside workers;
//! * a pool with `threads() <= 1` runs everything inline on the caller's
//!   thread — byte-for-byte the serial path, no workers woken.
//!
//! ## Scratch-buffer reuse rules
//!
//! Each participant (worker threads *and* the calling thread, which
//! always joins the fan-out as the last participant) receives a distinct
//! `worker` index in `0..threads()`. Per-worker scratch buffers (selection
//! bitset copies, changed-query lists) are therefore safe to index by
//! that id and are reused across every chunk the worker claims within one
//! dispatch; they must not outlive the dispatch or be read across workers.
//!
//! ## Re-entrancy
//!
//! Dispatched tasks may themselves reach code that wants the pool (e.g. a
//! sampled debug assert inside a batched probe re-pricing the full
//! workload). A thread-local marks every participant while it executes a
//! task; [`ProbePool::run`] from a marked thread executes inline instead
//! of dispatching, so nested pricing can never deadlock the pool.
//!
//! ## Concurrent dispatchers and panics
//!
//! The pool is `Sync` and [`ProbePool::global`] hands out a `&'static`
//! reference, so *different* threads may call [`ProbePool::run`]
//! concurrently from safe code. Whole dispatches are serialized on an
//! internal mutex: the second dispatcher blocks until the first epoch has
//! fully drained, so tasks never interleave and a caller's borrowed
//! closure/buffers are never observed by a stale epoch. Task panics are
//! contained — a panicking participant still checks out of the epoch, the
//! dispatcher always waits the barrier out before unwinding, and the
//! first panic payload is re-raised on the dispatching thread once the
//! epoch is over (so a failed debug assertion inside a batched probe
//! fails the run instead of hanging or tearing the pool).
//!
//! ## Sizing
//!
//! [`ProbePool::global`] sizes itself once per process: an explicit
//! `PINUM_THREADS` wins (with `PINUM_THREADS=1` forcing fully serial
//! execution even when the `parallel` feature is on); otherwise
//! `available_parallelism` under `--features parallel`, and 1 without the
//! feature — so default-feature builds stay exactly serial. Explicitly
//! constructed pools ([`ProbePool::new`]) honor their thread count
//! regardless of features, which is what the thread-invariance tests and
//! experiments use.
//!
//! Hosts that fan *dispatches* out across their own threads — the
//! multi-tenant server runs one dispatcher per shard, all sharing this
//! global pool — must call [`ProbePool::init_global_for_dispatchers`]
//! before the first pricing call. Each dispatch is serialized on the
//! internal mutex, but the defaulted `available_parallelism` sizing
//! assumes one dispatcher: with S shards on a C-core box the shard
//! threads themselves already occupy cores, and a C-thread pool on top
//! oversubscribes the machine (S + C - 1 runnable threads per dispatch).
//! The dispatcher-aware default divides the cores among dispatchers
//! (`max(1, cores / dispatchers)`), so a 2-shard server on a 1-core
//! machine gets a 1-thread pool and stays strictly serial per tenant. An
//! explicit `PINUM_THREADS` still overrides — the operator's word wins
//! over the heuristic. Sizing is process-wide and first-caller-wins; a
//! later call with a different dispatcher count does not resize the pool.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Default number of probes claimed per chunk grab. Small enough to load
/// balance uneven probe costs, large enough to amortize the atomic.
pub const DEFAULT_CHUNK: usize = 16;

/// The process-wide pool behind [`ProbePool::global`] /
/// [`ProbePool::init_global_for_dispatchers`]; built exactly once, by
/// whichever of the two is reached first.
static GLOBAL: OnceLock<ProbePool> = OnceLock::new();

/// The default global-pool sizing rule, as a pure function so the clamp
/// is testable without touching process state. `env` is the parsed
/// `PINUM_THREADS` override (always wins, floored at 1), `parallel` is
/// whether the `parallel` feature is compiled in, `cores` is
/// `available_parallelism`, and `dispatchers` is how many host threads
/// will dispatch into the pool concurrently. Without an override the
/// cores are divided among dispatchers and floored at 1 — so a 2-shard
/// server on a 1-core machine gets a serial pool instead of an
/// oversubscribed one, and a plain single-dispatcher process keeps the
/// historical `available_parallelism` default.
pub fn global_pool_threads(
    env: Option<usize>,
    parallel: bool,
    cores: usize,
    dispatchers: usize,
) -> usize {
    match env {
        Some(t) => t.max(1),
        None if parallel => (cores / dispatchers.max(1)).max(1),
        None => 1,
    }
}

std::thread_local! {
    /// True while this thread is executing inside a pool dispatch (worker
    /// or participating caller) — nested `run` calls go inline.
    static IN_POOL_TASK: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// A dispatched task: called once per participant with its worker index.
type Task = *const (dyn Fn(usize) + Sync);

struct State {
    /// Bumped per dispatch so sleeping workers can tell a new task from
    /// the one they just finished.
    epoch: u64,
    /// The current task, lifetime-erased. Only valid while `remaining`
    /// holds workers of the same epoch; cleared by the dispatcher after
    /// the last worker checks out.
    task: Option<Task>,
    /// Spawned workers still running the current epoch's task.
    remaining: usize,
    /// First panic payload caught from a worker this epoch; the
    /// dispatcher re-raises it after the barrier.
    panic: Option<Box<dyn std::any::Any + Send>>,
    shutdown: bool,
}

// The raw task pointer crosses threads inside the mutex; soundness is the
// dispatch protocol (see `run`): the pointee outlives every dereference
// because `run` does not return until `remaining` hits zero.
unsafe impl Send for State {}

struct Shared {
    state: Mutex<State>,
    work_cv: Condvar,
    done_cv: Condvar,
}

/// Persistent worker pool for batched delta pricing. See module docs for
/// the determinism contract.
pub struct ProbePool {
    threads: usize,
    chunk: usize,
    shared: std::sync::Arc<Shared>,
    /// Serializes whole dispatches. The pool is `Sync` and `global()`
    /// hands out `&'static` references, so two threads may call `run`
    /// concurrently from safe code; without mutual exclusion the second
    /// dispatch would overwrite `task`/`remaining` mid-epoch and a caller
    /// could return — freeing its borrowed closure and output buffers —
    /// while a worker still executes them. Held for the full duration of
    /// `run`, dispatch through barrier.
    dispatch: Mutex<()>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ProbePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProbePool")
            .field("threads", &self.threads)
            .field("chunk", &self.chunk)
            .finish()
    }
}

impl ProbePool {
    /// A pool executing with `threads` participants (the calling thread
    /// plus `threads - 1` spawned workers). `threads <= 1` spawns nothing
    /// and runs every dispatch inline.
    pub fn new(threads: usize) -> Self {
        Self::with_chunk(threads, DEFAULT_CHUNK)
    }

    /// [`Self::new`] with an explicit chunk size for
    /// [`Self::for_each_chunk`] item claiming (the thread-invariance
    /// property tests sweep this; results must not depend on it).
    pub fn with_chunk(threads: usize, chunk: usize) -> Self {
        let threads = threads.max(1);
        let shared = std::sync::Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                task: None,
                remaining: 0,
                panic: None,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let workers = (0..threads.saturating_sub(1))
            .map(|idx| {
                let shared = std::sync::Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pinum-probe-{idx}"))
                    .spawn(move || worker_loop(&shared, idx))
                    .expect("spawn probe worker")
            })
            .collect();
        Self {
            threads,
            chunk: chunk.max(1),
            shared,
            dispatch: Mutex::new(()),
            workers,
        }
    }

    /// The process-wide pool: `PINUM_THREADS` override first (=1 forces
    /// fully serial execution even with `--features parallel`), then
    /// `available_parallelism` when the `parallel` feature is on, else 1.
    /// Equivalent to [`Self::init_global_for_dispatchers`]`(1)`.
    pub fn global() -> &'static ProbePool {
        Self::init_global_for_dispatchers(1)
    }

    /// The process-wide pool, sized for a host that runs `dispatchers`
    /// concurrent dispatching threads (e.g. the multi-tenant server's
    /// shards). First caller wins: if the global pool is already built,
    /// the existing pool is returned unchanged. The default sizing is
    /// [`global_pool_threads`]; see the module-level *Sizing* docs for
    /// the oversubscription rationale.
    pub fn init_global_for_dispatchers(dispatchers: usize) -> &'static ProbePool {
        GLOBAL.get_or_init(|| {
            let env = match std::env::var("PINUM_THREADS") {
                Ok(v) => Some(
                    v.trim()
                        .parse::<usize>()
                        .unwrap_or_else(|_| {
                            panic!("PINUM_THREADS must be a positive integer: {v:?}")
                        })
                        .max(1),
                ),
                Err(_) => None,
            };
            let cores = std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1);
            ProbePool::new(global_pool_threads(
                env,
                cfg!(feature = "parallel"),
                cores,
                dispatchers,
            ))
        })
    }

    /// Number of participants a dispatch fans out over (callers may size
    /// per-worker scratch arrays by this).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Items claimed per chunk grab in [`Self::for_each_chunk`].
    pub fn chunk_size(&self) -> usize {
        self.chunk
    }

    /// Runs `f(worker)` once on every participant — `threads - 1` workers
    /// plus the calling thread (as the highest worker index). Blocks until
    /// every participant returns, which is what makes the borrowed closure
    /// sound to hand to the persistent workers. Inline (serial) when the
    /// pool is single-threaded or when called from inside a dispatch.
    ///
    /// Concurrent `run` calls from different threads are serialized on an
    /// internal mutex — the second dispatcher waits for the first epoch to
    /// fully drain. A panic in `f` (on a worker or on the caller) does not
    /// hang or tear the pool: every participant's exit is counted even on
    /// unwind, the barrier is always waited out before `run` returns or
    /// re-raises, and the first panic payload is re-raised on the calling
    /// thread once the epoch is over.
    pub fn run(&self, f: &(dyn Fn(usize) + Sync)) {
        if self.workers.is_empty() || IN_POOL_TASK.with(|c| c.get()) {
            f(0);
            return;
        }
        // Serialize whole dispatches (see the `dispatch` field docs). The
        // plain-unit mutex may be poisoned by a propagated task panic
        // unwinding through a previous `run`; there is no data to corrupt,
        // so recover the guard.
        let _dispatch = self
            .dispatch
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        // Lifetime erasure: workers only dereference the pointer between
        // dispatch and their `remaining` decrement, and we block below
        // until every decrement happened — the borrow is live throughout.
        let task: Task = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(f)
        };
        {
            let mut st = self.shared.state.lock().expect("pool mutex");
            debug_assert_eq!(st.remaining, 0, "overlapping pool dispatch");
            st.epoch += 1;
            st.task = Some(task);
            st.remaining = self.workers.len();
            st.panic = None;
            self.shared.work_cv.notify_all();
        }
        // The caller participates as the last worker index. Its panic is
        // caught so the barrier below always runs — unwinding past it
        // would free the borrowed closure and output buffers while slow
        // workers still hold pointers into them.
        IN_POOL_TASK.with(|c| c.set(true));
        let caller = std::panic::catch_unwind(AssertUnwindSafe(|| f(self.workers.len())));
        IN_POOL_TASK.with(|c| c.set(false));
        // Barrier: every worker checked out of this epoch (panicked ones
        // included — their drop guard still decrements).
        let mut st = self.shared.state.lock().expect("pool mutex");
        while st.remaining > 0 {
            st = self.shared.done_cv.wait(st).expect("pool mutex");
        }
        st.task = None;
        let worker_panic = st.panic.take();
        drop(st);
        // The epoch is fully drained; now it is safe to unwind. The
        // caller's own panic wins (it is this thread's), else the first
        // worker panic is re-raised here so a failed assertion inside a
        // batched probe surfaces instead of being swallowed.
        if let Err(payload) = caller {
            std::panic::resume_unwind(payload);
        }
        if let Some(payload) = worker_panic {
            std::panic::resume_unwind(payload);
        }
    }

    /// Fans `0..items` out as chunks of [`Self::chunk_size`] claimed off
    /// an atomic counter: `f(worker, range)` for each claimed range. The
    /// assignment of ranges to workers is scheduling-dependent; callers
    /// must write results by item index (see the determinism contract).
    pub fn for_each_chunk(&self, items: usize, f: &(dyn Fn(usize, std::ops::Range<usize>) + Sync)) {
        if items == 0 {
            return;
        }
        let chunk = self.chunk;
        let next = AtomicUsize::new(0);
        let nchunks = items.div_ceil(chunk);
        self.run(&|worker| loop {
            let c = next.fetch_add(1, Ordering::Relaxed);
            if c >= nchunks {
                break;
            }
            let start = c * chunk;
            let end = (start + chunk).min(items);
            f(worker, start..end);
        });
    }
}

impl Drop for ProbePool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool mutex");
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Shared, idx: usize) {
    let mut last_epoch = 0u64;
    loop {
        let task: Task = {
            let mut st = shared.state.lock().expect("pool mutex");
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != last_epoch {
                    last_epoch = st.epoch;
                    break st.task.expect("dispatched epoch without a task");
                }
                st = shared.work_cv.wait(st).expect("pool mutex");
            }
        };
        IN_POOL_TASK.with(|c| c.set(true));
        // Sound per the dispatch protocol: the closure outlives this call
        // because `run` blocks until our decrement below. The task is run
        // under `catch_unwind` so a panicking probe still reaches the
        // decrement — otherwise the dispatcher would wait on `remaining`
        // forever — and its payload is parked for `run` to re-raise.
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| unsafe { (*task)(idx) }));
        IN_POOL_TASK.with(|c| c.set(false));
        let mut st = shared.state.lock().expect("pool mutex");
        if let Err(payload) = result {
            st.panic.get_or_insert(payload);
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.done_cv.notify_all();
        }
    }
}

/// A raw mutable pointer that may cross into workers. Safe only because
/// every dispatch partitions the pointee by item index (disjoint writes)
/// and `run` outlives all of them. The pointer is behind an accessor so
/// closures capture the `Sync` wrapper, not the raw field (2021 edition
/// closures capture disjoint fields).
pub(crate) struct SyncPtr<T>(*mut T);

// Manual impls: the wrapper is Copy for every T (it holds a pointer, not
// a T), which the derive's `T: Copy` bound would deny.
impl<T> Clone for SyncPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for SyncPtr<T> {}

impl<T> SyncPtr<T> {
    pub(crate) fn new(ptr: *mut T) -> Self {
        SyncPtr(ptr)
    }

    pub(crate) fn get(self) -> *mut T {
        self.0
    }
}

unsafe impl<T> Send for SyncPtr<T> {}
unsafe impl<T> Sync for SyncPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn single_threaded_pool_runs_inline() {
        let pool = ProbePool::new(1);
        assert_eq!(pool.threads(), 1);
        let hits = AtomicUsize::new(0);
        pool.run(&|w| {
            assert_eq!(w, 0);
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn every_participant_runs_once_per_dispatch() {
        let pool = ProbePool::new(4);
        for _ in 0..50 {
            let mask = AtomicU64::new(0);
            pool.run(&|w| {
                let prev = mask.fetch_or(1 << w, Ordering::Relaxed);
                assert_eq!(prev & (1 << w), 0, "worker {w} ran twice");
            });
            assert_eq!(mask.load(Ordering::Relaxed), 0b1111);
        }
    }

    #[test]
    fn chunked_fanout_covers_every_item_exactly_once() {
        for threads in [1, 2, 3, 8] {
            for chunk in [1, 3, 16, 64] {
                let pool = ProbePool::with_chunk(threads, chunk);
                let n = 137;
                let mut out = vec![0u32; n];
                let ptr = SyncPtr::new(out.as_mut_ptr());
                pool.for_each_chunk(n, &|_, range| {
                    for i in range {
                        // Disjoint by construction: chunk ranges partition
                        // 0..n.
                        unsafe { *ptr.get().add(i) += i as u32 + 1 };
                    }
                });
                let expect: Vec<u32> = (0..n as u32).map(|i| i + 1).collect();
                assert_eq!(out, expect, "threads {threads} chunk {chunk}");
            }
        }
    }

    #[test]
    fn nested_dispatch_runs_inline_instead_of_deadlocking() {
        let pool = ProbePool::new(4);
        let inner_hits = AtomicUsize::new(0);
        pool.run(&|_| {
            // A nested dispatch from inside a task must not touch the
            // sleeping workers (that would deadlock the epoch protocol).
            pool.run(&|w| {
                assert_eq!(w, 0, "nested dispatch must run inline");
                inner_hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(inner_hits.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn concurrent_dispatchers_are_serialized() {
        // Two threads hammer the same pool; each fans out into its own
        // output buffer. Without dispatch serialization the epochs would
        // interleave (counter underflow, cross-buffer writes, UAF).
        let pool = ProbePool::new(4);
        std::thread::scope(|s| {
            for t in 0..2u32 {
                let pool = &pool;
                s.spawn(move || {
                    for rep in 0..100 {
                        let n = 61;
                        let mut out = vec![0u32; n];
                        let ptr = SyncPtr::new(out.as_mut_ptr());
                        pool.for_each_chunk(n, &|_, range| {
                            for i in range {
                                unsafe { *ptr.get().add(i) = i as u32 + t };
                            }
                        });
                        let expect: Vec<u32> = (0..n as u32).map(|i| i + t).collect();
                        assert_eq!(out, expect, "thread {t} rep {rep}");
                    }
                });
            }
        });
    }

    #[test]
    fn panicking_task_propagates_and_leaves_the_pool_usable() {
        let pool = ProbePool::new(4);
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(&|w| {
                if w == 1 {
                    panic!("probe assertion failed on worker {w}");
                }
            });
        }))
        .expect_err("a worker panic must re-raise on the dispatcher");
        let msg = err
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| err.downcast_ref::<&str>().copied())
            .unwrap_or("");
        assert!(
            msg.contains("probe assertion failed"),
            "payload lost: {msg}"
        );
        // Same when the *caller's* participation panics (highest index).
        let caller_idx = pool.threads() - 1;
        assert!(std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(&|w| {
                if w == caller_idx {
                    panic!("caller-side panic");
                }
            });
        }))
        .is_err());
        // The epoch drained cleanly both times: the pool still works.
        let hits = AtomicUsize::new(0);
        pool.run(&|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn global_sizing_clamps_for_dispatchers() {
        // An explicit PINUM_THREADS always wins, floored at 1.
        assert_eq!(global_pool_threads(Some(3), true, 1, 2), 3);
        assert_eq!(global_pool_threads(Some(0), true, 8, 1), 1);
        assert_eq!(global_pool_threads(Some(5), false, 8, 4), 5);
        // Defaulted sizing divides cores among dispatchers, floored at 1:
        // a 2-shard server on a 1-core box must stay serial per tenant.
        assert_eq!(global_pool_threads(None, true, 1, 2), 1);
        assert_eq!(global_pool_threads(None, true, 8, 2), 4);
        assert_eq!(global_pool_threads(None, true, 8, 16), 1);
        // A single dispatcher keeps the historical default.
        assert_eq!(global_pool_threads(None, true, 8, 1), 8);
        assert_eq!(global_pool_threads(None, true, 8, 0), 8);
        // Without the parallel feature the default is always serial.
        assert_eq!(global_pool_threads(None, false, 64, 1), 1);
    }

    #[test]
    fn pool_survives_many_reuses() {
        let pool = ProbePool::new(3);
        let total = AtomicUsize::new(0);
        for _ in 0..200 {
            pool.for_each_chunk(10, &|_, range| {
                total.fetch_add(range.len(), Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 2000);
    }
}
