//! The INUM plan cache: internal plans keyed by interesting-order
//! combination, each stored as a linear function of per-table access costs.

use pinum_optimizer::ExportedPlan;
use pinum_query::{InterestingOrders, Ioc};

/// One cached internal plan.
///
/// "INUM separates the total cost of the query into 'internal'
/// join-aggregation costs, and the 'leaf' data access costs. … In a given
/// cached plan, the internal cost remains constant, and the variations in
/// the query cost come from the variation of the data access costs." (§II)
#[derive(Debug, Clone, PartialEq)]
pub struct CachedPlan {
    /// The interesting orders the plan's leaves require (Φ slots impose no
    /// requirement).
    pub ioc: Ioc,
    /// The constant internal cost.
    pub internal: f64,
    /// Per-relation coefficient on the standalone access cost: 1 for
    /// hash/merge inputs, the outer cardinality for re-scanned nested-loop
    /// inners.
    pub coefs: Vec<f64>,
    /// Per-relation coefficient on the *per-probe* access cost (the outer
    /// cardinality for parameterized nested-loop inner index probes).
    pub probe_coefs: Vec<f64>,
    /// Whether the plan contains nested-loop joins — INUM caches these
    /// separately and they are only trustworthy near the access costs they
    /// were built at (§V-D).
    pub uses_nlj: bool,
    /// Estimated output rows.
    pub rows: f64,
    /// Compact operator summary (diagnostics and dedup).
    pub description: String,
}

impl From<ExportedPlan> for CachedPlan {
    fn from(e: ExportedPlan) -> Self {
        Self {
            ioc: e.ioc,
            internal: e.internal,
            coefs: e.coefs,
            probe_coefs: e.probe_coefs,
            uses_nlj: e.uses_nlj,
            rows: e.rows,
            description: e.description,
        }
    }
}

/// The per-query plan cache.
#[derive(Debug, Clone)]
pub struct PlanCache {
    /// Query name (diagnostics).
    pub query_name: String,
    /// Number of relations in the query (length of every `coefs`).
    pub n_rels: usize,
    /// The query's interesting orders — needed to interpret the [`Ioc`]s.
    pub orders: InterestingOrders,
    plans: Vec<CachedPlan>,
}

impl PlanCache {
    pub fn new(query_name: impl Into<String>, n_rels: usize, orders: InterestingOrders) -> Self {
        Self {
            query_name: query_name.into(),
            n_rels,
            orders,
            plans: Vec::new(),
        }
    }

    pub fn plans(&self) -> &[CachedPlan] {
        &self.plans
    }

    pub fn len(&self) -> usize {
        self.plans.len()
    }

    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// Inserts a plan, deduplicating: an existing entry with the same IOC
    /// and operator structure keeps only the cheaper internal cost; an
    /// identical or strictly worse duplicate is dropped. Returns whether
    /// the cache changed.
    pub fn insert(&mut self, plan: CachedPlan) -> bool {
        assert_eq!(plan.coefs.len(), self.n_rels, "coefficient arity mismatch");
        for existing in &mut self.plans {
            if existing.ioc == plan.ioc && existing.description == plan.description {
                if plan.internal < existing.internal {
                    *existing = plan;
                    return true;
                }
                return false;
            }
        }
        self.plans.push(plan);
        true
    }

    /// Number of *distinct* plan structures (the paper's "unique plans":
    /// 64 of 648 for TPC-H Q5, §IV).
    pub fn unique_plan_structures(&self) -> usize {
        let mut descs: Vec<&str> = self.plans.iter().map(|p| p.description.as_str()).collect();
        descs.sort_unstable();
        descs.dedup();
        descs.len()
    }

    /// Number of distinct IOCs with at least one plan.
    pub fn covered_iocs(&self) -> usize {
        let mut iocs: Vec<Ioc> = self.plans.iter().map(|p| p.ioc).collect();
        iocs.sort_unstable();
        iocs.dedup();
        iocs.len()
    }

    /// Plans usable without nested-loop joins / with them.
    pub fn partition_by_nlj(&self) -> (usize, usize) {
        let nlj = self.plans.iter().filter(|p| p.uses_nlj).count();
        (self.plans.len() - nlj, nlj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn orders() -> InterestingOrders {
        InterestingOrders::new(vec![vec![0], vec![1, 2]])
    }

    fn plan(ioc: Ioc, internal: f64, desc: &str) -> CachedPlan {
        CachedPlan {
            ioc,
            internal,
            coefs: vec![1.0, 1.0],
            probe_coefs: vec![0.0, 0.0],
            uses_nlj: false,
            rows: 10.0,
            description: desc.to_string(),
        }
    }

    #[test]
    fn insert_dedupes_same_structure() {
        let mut cache = PlanCache::new("q", 2, orders());
        let ioc = Ioc::NONE.with_order(0, 0);
        assert!(cache.insert(plan(ioc, 100.0, "HJ(ix(0),seq(1))")));
        // Identical structure, worse internal: dropped.
        assert!(!cache.insert(plan(ioc, 120.0, "HJ(ix(0),seq(1))")));
        // Identical structure, better internal: replaces.
        assert!(cache.insert(plan(ioc, 80.0, "HJ(ix(0),seq(1))")));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.plans()[0].internal, 80.0);
        // Different structure, same IOC: coexists.
        assert!(cache.insert(plan(ioc, 90.0, "MJ(ix(0),ix(1))")));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn unique_structures_and_covered_iocs() {
        let mut cache = PlanCache::new("q", 2, orders());
        let a = Ioc::NONE.with_order(0, 0);
        let b = Ioc::NONE.with_order(1, 0);
        cache.insert(plan(a, 1.0, "P1"));
        cache.insert(plan(b, 1.0, "P1"));
        cache.insert(plan(b, 1.0, "P2"));
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.unique_plan_structures(), 2);
        assert_eq!(cache.covered_iocs(), 2);
    }

    #[test]
    fn nlj_partition() {
        let mut cache = PlanCache::new("q", 2, orders());
        cache.insert(plan(Ioc::NONE, 1.0, "HJ"));
        let mut nl = plan(Ioc::NONE, 2.0, "NL");
        nl.uses_nlj = true;
        cache.insert(nl);
        assert_eq!(cache.partition_by_nlj(), (1, 1));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn wrong_arity_panics() {
        let mut cache = PlanCache::new("q", 3, orders());
        cache.insert(plan(Ioc::NONE, 1.0, "X"));
    }
}
