//! # Frozen nested-layout pricing engine
//!
//! The pre-SoA [`WorkloadModel`](crate::WorkloadModel) kernel, preserved
//! verbatim: nested `QueryModel → FlatPlan → Slot → Vec<AccessArm>`
//! vectors walked with `first_applicable`, plus the O(workload)
//! sequential overlay re-sum. It exists for two jobs:
//!
//! * **equivalence oracle** — the SoA kernel must price every query
//!   bit-identically to this engine under every selection (unit tests
//!   here; property tests in `tests/soa_kernel.rs`);
//! * **microbenchmark baseline** — `exp_price_kernel` measures
//!   `price_delta` throughput of the packed kernel against this one.
//!
//! Totals are the one deliberate difference: this engine sums
//! sequentially (a left fold in query order), while the live kernel
//! totals through the fixed-shape pairwise tree. Compare per-query
//! prices bit-for-bit; compare totals via
//! [`pairwise_total`](crate::pairwise_total) over this engine's
//! per-query vector.
//!
//! Weights and streaming mutation are out of scope: the reference prices
//! every query at weight 1.0 and is immutable once built.

use crate::access_costs::AccessCostCatalog;
use crate::cache::PlanCache;
use crate::candidates::Selection;
use crate::workload_model::{
    flatten_models, touched_candidates, validate_candidate, AccessArm, QueryModel, ALWAYS,
};

/// The nested-layout engine. See the module docs.
#[derive(Debug, Clone)]
pub struct ReferenceModel {
    queries: Vec<QueryModel>,
    /// Inverted index: candidate id → sorted query ids whose price can
    /// change when the candidate joins (or leaves) the selection.
    affected: Vec<Vec<u32>>,
    pool_size: usize,
}

impl ReferenceModel {
    /// Flattens per-query `(plan cache, access-cost catalog)` models into
    /// the nested structure — the same flattening pass the live kernel
    /// packs from, so both engines price the same arithmetic.
    pub fn build<'a, I>(pool_size: usize, models: I) -> Self
    where
        I: IntoIterator<Item = (&'a PlanCache, &'a AccessCostCatalog)>,
    {
        let models: Vec<_> = models.into_iter().collect();
        let queries = flatten_models(&models, false);
        let mut affected: Vec<Vec<u32>> = vec![Vec::new(); pool_size];
        for (qid, qm) in queries.iter().enumerate() {
            for c in touched_candidates(qm) {
                validate_candidate(c, pool_size);
                affected[c as usize].push(qid as u32);
            }
        }
        Self {
            queries,
            affected,
            pool_size,
        }
    }

    pub fn query_count(&self) -> usize {
        self.queries.len()
    }

    pub fn pool_size(&self) -> usize {
        self.pool_size
    }

    /// Query ids whose price can change when `candidate` is added
    /// (ascending).
    pub fn affected(&self, candidate: usize) -> &[u32] {
        &self.affected[candidate]
    }

    /// Prices one query under a virtual selection view (`extra` overlaid
    /// as a member, `without` masked out). `f64::INFINITY` when no cached
    /// plan is applicable.
    pub fn price_query(
        &self,
        query: usize,
        selection: &Selection,
        extra: Option<usize>,
        without: Option<usize>,
    ) -> f64 {
        let mut best = f64::INFINITY;
        for plan in &self.queries[query].plans {
            if let Some(cost) = price_plan(plan, selection, extra, without) {
                if cost < best {
                    best = cost;
                }
            }
        }
        best
    }

    /// Prices the whole workload: per-query costs plus the sequential
    /// (left-fold) total this engine historically produced.
    pub fn price_full(&self, selection: &Selection) -> (Vec<f64>, f64) {
        let per_query: Vec<f64> = (0..self.queries.len())
            .map(|q| self.price_query(q, selection, None, None))
            .collect();
        let total = per_query.iter().sum();
        (per_query, total)
    }

    /// The workload total if `added` joined `selection`, re-pricing only
    /// the affected queries and re-summing **the whole workload** in query
    /// order — the O(n)-per-delta behaviour the sum tree replaced. On
    /// return `changed` holds every re-priced `(query, cost)` pair.
    pub fn price_delta_into(
        &self,
        per_query: &[f64],
        selection: &Selection,
        added: usize,
        changed: &mut Vec<(u32, f64)>,
    ) -> f64 {
        debug_assert_eq!(per_query.len(), self.queries.len(), "stale state");
        changed.clear();
        for &q in &self.affected[added] {
            changed.push((
                q,
                self.price_query(q as usize, selection, Some(added), None),
            ));
        }
        let mut total = 0.0;
        let mut next = changed.iter().copied().peekable();
        for (q, &cost) in per_query.iter().enumerate() {
            total += match next.peek() {
                Some(&(cq, new_cost)) if cq as usize == q => {
                    next.next();
                    new_cost
                }
                _ => cost,
            };
        }
        total
    }
}

/// Prices one flattened plan; `None` when inapplicable under the
/// selection view. The frozen original of the SoA kernel's
/// `price_plan_in`.
fn price_plan(
    plan: &crate::workload_model::FlatPlan,
    selection: &Selection,
    extra: Option<usize>,
    without: Option<usize>,
) -> Option<f64> {
    let mut cost = plan.internal;
    for slot in &plan.slots {
        if slot.coef != 0.0 {
            let access = first_applicable(&slot.standalone, selection, extra, without)?;
            cost += slot.coef * access;
        } else if slot.required
            && first_applicable(&slot.standalone, selection, extra, without).is_none()
        {
            return None;
        }
        if slot.pcoef != 0.0 {
            let probe = first_applicable(&slot.probes, selection, extra, without)?;
            cost += slot.pcoef * probe;
        }
    }
    Some(cost)
}

/// Cheapest live arm: arms are ascending by cost, so the first applicable
/// one wins (same tie-breaking as the sorted `AccessCostCatalog` walk).
/// `extra` is a virtual member, `without` a virtual removal.
fn first_applicable(
    arms: &[AccessArm],
    selection: &Selection,
    extra: Option<usize>,
    without: Option<usize>,
) -> Option<f64> {
    arms.iter()
        .find(|a| {
            if a.candidate == ALWAYS {
                return true;
            }
            let c = a.candidate as usize;
            if without == Some(c) {
                return false;
            }
            extra == Some(c) || selection.contains(c)
        })
        .map(|a| a.cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access_costs::collect_pinum;
    use crate::builder::{build_cache_pinum, BuilderOptions};
    use crate::candidates::CandidatePool;
    use crate::{pairwise_total, WorkloadModel};
    use pinum_catalog::{Catalog, Column, ColumnType, Index, Table};
    use pinum_optimizer::Optimizer;
    use pinum_query::QueryBuilder;

    /// Small two-query fixture (mirrors the workload_model tests).
    fn fixture() -> (Vec<(PlanCache, AccessCostCatalog)>, CandidatePool) {
        let mut cat = Catalog::new();
        cat.add_table(Table::new(
            "f",
            300_000,
            vec![
                Column::new("fk", ColumnType::Int8).with_ndv(3_000),
                Column::new("v", ColumnType::Int4).with_ndv(1_000),
                Column::new("s", ColumnType::Int4).with_ndv(100),
            ],
        ));
        cat.add_table(Table::new(
            "d",
            3_000,
            vec![
                Column::new("k", ColumnType::Int8).with_ndv(3_000),
                Column::new("w", ColumnType::Int4).with_ndv(50),
            ],
        ));
        let q1 = QueryBuilder::new("q1", &cat)
            .table("f")
            .table("d")
            .join(("f", "fk"), ("d", "k"))
            .filter_range(("f", "v"), 0.0, 10.0)
            .select(("f", "s"))
            .order_by(("d", "w"))
            .build();
        let q2 = QueryBuilder::new("q2", &cat)
            .table("f")
            .filter_range(("f", "v"), 0.0, 10.0)
            .select(("f", "s"))
            .order_by(("f", "s"))
            .build();
        let f = cat.table(cat.table_id("f").unwrap()).clone();
        let d = cat.table(cat.table_id("d").unwrap()).clone();
        let pool = CandidatePool::from_indexes(vec![
            Index::hypothetical(&f, vec![0], false),
            Index::hypothetical(&f, vec![1, 0, 2], false),
            Index::hypothetical(&f, vec![2], false),
            Index::hypothetical(&d, vec![0], false),
            Index::hypothetical(&d, vec![1], false),
        ]);
        let opt = Optimizer::new(&cat);
        let models = [q1, q2]
            .iter()
            .map(|q| {
                let built = build_cache_pinum(&opt, q, &BuilderOptions::default());
                let (access, _) = collect_pinum(&opt, q, &pool);
                (built.cache, access)
            })
            .collect();
        (models, pool)
    }

    #[test]
    fn soa_kernel_prices_bit_identically_to_reference() {
        let (models, pool) = fixture();
        let soa = WorkloadModel::build(pool.len(), models.iter().map(|(c, a)| (c, a)));
        let reference = ReferenceModel::build(pool.len(), models.iter().map(|(c, a)| (c, a)));
        assert_eq!(soa.query_count(), reference.query_count());
        // Exhaustive over all 32 selections, all queries, all three view
        // shapes (plain, +extra, -without).
        for mask in 0u32..(1 << pool.len()) {
            let ids: Vec<usize> = (0..pool.len()).filter(|i| mask & (1 << i) != 0).collect();
            let sel = Selection::from_ids(pool.len(), &ids);
            for q in 0..soa.query_count() {
                let a = soa.price_query_view(q, &sel, None, None);
                let b = reference.price_query(q, &sel, None, None);
                assert_eq!(a.to_bits(), b.to_bits(), "query {q} selection {ids:?}");
                for cand in 0..pool.len() {
                    let a = soa.price_query_view(q, &sel, Some(cand), None);
                    let b = reference.price_query(q, &sel, Some(cand), None);
                    assert_eq!(a.to_bits(), b.to_bits(), "+{cand} query {q} sel {ids:?}");
                    let a = soa.price_query_view(q, &sel, None, Some(cand));
                    let b = reference.price_query(q, &sel, None, Some(cand));
                    assert_eq!(a.to_bits(), b.to_bits(), "-{cand} query {q} sel {ids:?}");
                }
            }
            // Totals compare through the canonical pairwise shape.
            let full = soa.price_full(&sel);
            let (ref_costs, _) = reference.price_full(&sel);
            assert_eq!(full.per_query(), ref_costs.as_slice());
            assert_eq!(full.total().to_bits(), pairwise_total(&ref_costs).to_bits());
        }
    }

    #[test]
    fn reference_delta_matches_its_own_full_repricing() {
        let (models, pool) = fixture();
        let reference = ReferenceModel::build(pool.len(), models.iter().map(|(c, a)| (c, a)));
        let mut scratch = Vec::new();
        for mask in 0u32..(1 << pool.len()) {
            let ids: Vec<usize> = (0..pool.len()).filter(|i| mask & (1 << i) != 0).collect();
            let sel = Selection::from_ids(pool.len(), &ids);
            let (per_query, _) = reference.price_full(&sel);
            for cand in 0..pool.len() {
                if sel.contains(cand) {
                    continue;
                }
                let delta = reference.price_delta_into(&per_query, &sel, cand, &mut scratch);
                let (_, full) = reference.price_full(&sel.with(cand));
                assert_eq!(delta, full, "selection {ids:?} + {cand}");
            }
        }
    }
}
