//! # Persistent pricing sessions
//!
//! The paper's economics — one keep-all optimizer call makes pricing any
//! configuration a "simple numerical calculation" — only pay off online if
//! the priced state is *kept*. Before this module, every consumer of the
//! streaming [`WorkloadModel`] owned its pricing ad hoc: the online daemon
//! re-priced its whole window from scratch at every re-advise (monitor
//! reset + search seed), throwing away per-query costs that every mutation
//! since the last re-advise had left 99 % intact.
//!
//! A [`PricingSession`] inverts that ownership. It bundles the three
//! pieces of online pricing state — the streaming [`WorkloadModel`], the
//! current [`Selection`], and a live [`PricedWorkload`] — behind one
//! invariant:
//!
//! > `state` is **bit-for-bit identical** to
//! > `model.price_full(&selection)` after every public method returns.
//!
//! and maintains it by *splicing*, never rebuilding:
//!
//! * [`PricingSession::admit_query_weighted`] splices the newcomer into
//!   the model (O(its access arms)), prices **only the newcomer** under
//!   the current selection, and appends its contribution as a new leaf of
//!   the state's pairwise sum tree — appending (and the occasional exact
//!   zero-padded capacity doubling) never changes the bits of the total;
//! * [`PricingSession::evict_query`] zeroes the tombstone's leaf, which
//!   re-totals the O(log n) tree path above it — no re-pricing, no
//!   O(window) re-sum;
//! * [`PricingSession::reweight_query`] re-prices **one** query and
//!   updates its leaf the same way;
//! * [`PricingSession::compact`] drops tombstone entries alongside the
//!   model's slots and rebuilds the tree over the survivors (live order
//!   is preserved, so the total is the fresh build's total);
//! * [`PricingSession::install`] adopts a search result's final selection
//!   *and its final priced state* — produced move-by-move from the same
//!   delta splices ([`WorkloadModel::price_delta_into`] and friends are
//!   each debug-asserted equal to a full re-pricing) — so a re-advise
//!   whose search found nothing new performs **zero** full re-pricings
//!   end to end.
//!
//! [`PricingSession::full_repricings`] counts every `price_full` the
//! session (or a search it fed) did perform; the `exp_scoped_readvise`
//! acceptance experiment gates that counter at 0 across steady-state
//! re-advises. The session's own invariant is `debug_assert`ed against a
//! fresh `price_full` after every mutation, sampled by
//! [`crate::sampling::should_assert`] (`PINUM_ASSERT_SAMPLE`).

use crate::access_costs::AccessCostCatalog;
use crate::cache::PlanCache;
use crate::candidates::Selection;
use crate::workload_model::{PricedWorkload, WorkloadModel};

/// Persistent pricing state carried across re-advises. See module docs.
#[derive(Debug, Clone)]
pub struct PricingSession {
    model: WorkloadModel,
    selection: Selection,
    /// Live priced state of `selection` over `model` — the invariant is
    /// that this equals `model.price_full(&selection)` bit for bit.
    state: PricedWorkload,
    /// Full workload re-pricings performed since the session started
    /// (by the session itself or reported by searches it fed).
    full_repricings: usize,
}

impl PricingSession {
    /// An empty session over a candidate pool: empty model, empty
    /// selection, zero-cost priced state.
    pub fn new(pool_size: usize) -> Self {
        let model = WorkloadModel::build(pool_size, std::iter::empty());
        let selection = Selection::empty(pool_size);
        let state = model.price_full(&selection);
        Self {
            model,
            selection,
            state,
            full_repricings: 0,
        }
    }

    /// Wraps an existing model + selection, pricing the state once (this
    /// is the session's only unavoidable full re-pricing — everything
    /// after construction is spliced).
    pub fn from_parts(model: WorkloadModel, selection: Selection) -> Self {
        let state = model.price_full(&selection);
        Self {
            model,
            selection,
            state,
            full_repricings: 1,
        }
    }

    /// Reconstructs a session bit-exactly from exported state — the
    /// warm-restart path. Unlike [`Self::from_parts`], nothing is
    /// re-priced: the sum tree is rebuilt from the exported per-query
    /// costs ([`PricedWorkload::from_costs`] is a pure function of them,
    /// so the total's bits are exactly the exported session's), and
    /// `full_repricings` resumes at its exported value. The invariant
    /// `state == model.price_full(&selection)` is the *caller's* claim
    /// about the costs; it is debug-asserted (sampled) like every other
    /// splice, and a restored session that lies here fails the same
    /// assert every subsequent mutation would.
    pub fn restore(
        model: WorkloadModel,
        selection: Selection,
        per_query: Vec<f64>,
        full_repricings: usize,
    ) -> Result<Self, &'static str> {
        if per_query.len() != model.query_count() {
            return Err("per-query cost vector sized for a different model");
        }
        if selection.words().len() != model.pool_size().div_ceil(64) {
            return Err("selection sized for a different pool");
        }
        let state = PricedWorkload::from_costs(per_query);
        let session = Self {
            model,
            selection,
            state,
            full_repricings,
        };
        session.debug_assert_state_matches_full();
        Ok(session)
    }

    pub fn model(&self) -> &WorkloadModel {
        &self.model
    }

    pub fn selection(&self) -> &Selection {
        &self.selection
    }

    /// The live priced state (exact `price_full` of the current
    /// selection, maintained by splicing).
    pub fn state(&self) -> &PricedWorkload {
        &self.state
    }

    /// The exact priced cost of the current selection over the live
    /// workload — read straight from the spliced state, no re-pricing.
    pub fn total(&self) -> f64 {
        self.state.total()
    }

    /// Full workload re-pricings since the session started.
    pub fn full_repricings(&self) -> usize {
        self.full_repricings
    }

    /// One query's weighted contribution under the current selection
    /// (0.0 for tombstones) — the splice unit of every maintenance path.
    fn contribution(&self, qid: usize) -> f64 {
        if !self.model.is_live(qid) {
            return 0.0;
        }
        self.model.weight(qid) * self.model.price_query(qid, &self.selection, None)
    }

    /// Splices one arriving query in at weight 1.0. O(its access arms)
    /// model work + one single-query pricing; returns its stable id.
    pub fn admit_query(&mut self, cache: &PlanCache, access: &AccessCostCatalog) -> usize {
        self.admit_query_weighted(cache, access, 1.0)
    }

    /// [`Self::admit_query`] with an explicit workload weight.
    pub fn admit_query_weighted(
        &mut self,
        cache: &PlanCache,
        access: &AccessCostCatalog,
        weight: f64,
    ) -> usize {
        let qid = self.model.admit_query_weighted(cache, access, weight);
        let contribution = self.contribution(qid);
        debug_assert_eq!(self.state.per_query().len(), qid);
        self.state.push_query_cost(contribution);
        self.debug_assert_state_matches_full();
        qid
    }

    /// Splices a batch of arriving `(cache, access, weight)` queries:
    /// one model maintenance pass ([`WorkloadModel::admit_batch`]), one
    /// single-query pricing per newcomer, and one sum-tree extension
    /// ([`PricedWorkload::extend_query_costs`] — at most one capacity
    /// rebuild). Returns the first new query id; the batch occupies
    /// `first..first + queries.len()`.
    ///
    /// Bit-identical to `queries.len()` serial
    /// [`Self::admit_query_weighted`] calls: pricing a newcomer reads
    /// only its own packed arms, so later batch members' presence cannot
    /// change its bits, and the tree extension is exact.
    pub fn admit_batch(&mut self, queries: &[(&PlanCache, &AccessCostCatalog, f64)]) -> usize {
        let first = self.model.admit_batch(queries);
        debug_assert_eq!(self.state.per_query().len(), first);
        let costs: Vec<f64> = (first..first + queries.len())
            .map(|qid| self.contribution(qid))
            .collect();
        self.state.extend_query_costs(&costs);
        self.debug_assert_state_matches_full();
        first
    }

    /// Retracts a live query: its priced contribution drops to exactly
    /// 0.0 (what a tombstone prices to), re-totaling only the tree path
    /// above its leaf — O(log n) float additions, no re-pricing.
    pub fn evict_query(&mut self, qid: usize) {
        self.model.evict_query(qid);
        self.state.set_query_cost(qid, 0.0);
        self.debug_assert_state_matches_full();
    }

    /// Changes one live query's weight, re-pricing only that query.
    pub fn reweight_query(&mut self, qid: usize, weight: f64) {
        self.model.reweight_query(qid, weight);
        let contribution = self.contribution(qid);
        self.state.set_query_cost(qid, contribution);
        self.debug_assert_state_matches_full();
    }

    /// Applies a batch of weight changes — each changed query is
    /// re-priced once and spliced into the sum tree. The batched mirror
    /// of [`Self::reweight_query`] for window-sized updates (e.g. a
    /// decay round): O(batch) single-query pricings plus O(batch·log n)
    /// tree updates. (The tree makes per-element maintenance cheap
    /// enough that batching no longer changes the complexity; the entry
    /// point stays for callers that hold a batch anyway.)
    pub fn reweight_queries(&mut self, updates: impl IntoIterator<Item = (usize, f64)>) {
        for (qid, weight) in updates {
            self.model.reweight_query(qid, weight);
            let contribution = self.contribution(qid);
            self.state.set_query_cost(qid, contribution);
        }
        self.debug_assert_state_matches_full();
    }

    /// Drops tombstone slots from the model *and* the priced state,
    /// returning the old→new id mapping (`u32::MAX` for dead slots).
    /// Live entries keep their relative order; the sum tree is rebuilt
    /// over the survivors, so the total is bit-identical to the fresh
    /// build's (tree shape is a function of the live count alone).
    pub fn compact(&mut self) -> Vec<u32> {
        let remap = self.model.compact();
        let mut per_query = vec![0.0; self.model.query_count()];
        for (old, &new) in remap.iter().enumerate() {
            if new != u32::MAX {
                per_query[new as usize] = self.state.per_query()[old];
            }
        }
        self.state = PricedWorkload::from_costs(per_query);
        self.debug_assert_state_matches_full();
        remap
    }

    /// Adopts a search outcome: the new selection plus, when the search
    /// tracked it, its exact final priced state (`searched_fulls` is the
    /// number of full re-pricings the search reported spending). Without
    /// a final state the session must re-price once — counted.
    pub fn install(
        &mut self,
        selection: Selection,
        state: Option<PricedWorkload>,
        searched_fulls: usize,
    ) {
        self.full_repricings += searched_fulls;
        self.selection = selection;
        match state {
            Some(state) => {
                debug_assert_eq!(
                    state.per_query().len(),
                    self.model.query_count(),
                    "installed state sized for a different model"
                );
                self.state = state;
                self.debug_assert_state_matches_full();
            }
            None => self.refresh(),
        }
    }

    /// Recomputes the priced state from scratch (counted as a full
    /// re-pricing). The escape hatch for callers without spliced state.
    pub fn refresh(&mut self) {
        self.state = self.model.price_full(&self.selection);
        self.full_repricings += 1;
    }

    /// The session invariant, sampled via `PINUM_ASSERT_SAMPLE`:
    /// `state == model.price_full(&selection)` bit for bit.
    fn debug_assert_state_matches_full(&self) {
        self.state
            .debug_assert_bit_identical_to_full(&self.model, &self.selection);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access_costs::collect_pinum;
    use crate::builder::{build_cache_pinum, BuilderOptions};
    use crate::candidates::CandidatePool;
    use pinum_catalog::{Catalog, Column, ColumnType, Index, Table};
    use pinum_optimizer::Optimizer;
    use pinum_query::{Query, QueryBuilder};

    fn setup() -> (Catalog, Vec<Query>, CandidatePool) {
        let mut cat = Catalog::new();
        cat.add_table(Table::new(
            "f",
            300_000,
            vec![
                Column::new("fk", ColumnType::Int8).with_ndv(3_000),
                Column::new("v", ColumnType::Int4).with_ndv(1_000),
                Column::new("s", ColumnType::Int4).with_ndv(100),
            ],
        ));
        cat.add_table(Table::new(
            "d",
            3_000,
            vec![
                Column::new("k", ColumnType::Int8).with_ndv(3_000),
                Column::new("w", ColumnType::Int4).with_ndv(50),
            ],
        ));
        let q1 = QueryBuilder::new("q1", &cat)
            .table("f")
            .table("d")
            .join(("f", "fk"), ("d", "k"))
            .filter_range(("f", "v"), 0.0, 10.0)
            .select(("f", "s"))
            .order_by(("d", "w"))
            .build();
        let q2 = QueryBuilder::new("q2", &cat)
            .table("f")
            .filter_range(("f", "v"), 0.0, 10.0)
            .select(("f", "s"))
            .order_by(("f", "s"))
            .build();
        let f = cat.table(cat.table_id("f").unwrap()).clone();
        let d = cat.table(cat.table_id("d").unwrap()).clone();
        let pool = CandidatePool::from_indexes(vec![
            Index::hypothetical(&f, vec![0], false),
            Index::hypothetical(&f, vec![1, 0, 2], false),
            Index::hypothetical(&f, vec![2], false),
            Index::hypothetical(&d, vec![0], false),
            Index::hypothetical(&d, vec![1], false),
        ]);
        (cat, vec![q1, q2], pool)
    }

    fn build_models(
        cat: &Catalog,
        queries: &[Query],
        pool: &CandidatePool,
    ) -> Vec<(PlanCache, AccessCostCatalog)> {
        let opt = Optimizer::new(cat);
        queries
            .iter()
            .map(|q| {
                let built = build_cache_pinum(&opt, q, &BuilderOptions::default());
                let (access, _) = collect_pinum(&opt, q, pool);
                (built.cache, access)
            })
            .collect()
    }

    /// The session's spliced state vs a fresh build + price_full over the
    /// same live queries and weights.
    fn assert_matches_fresh(
        session: &PricingSession,
        models: &[(PlanCache, AccessCostCatalog)],
        live: &[(usize, f64)], // (model index, weight) in admission order
        pool_size: usize,
    ) {
        let mut fresh = WorkloadModel::build(
            pool_size,
            live.iter().map(|&(i, _)| (&models[i].0, &models[i].1)),
        );
        for (slot, &(_, w)) in live.iter().enumerate() {
            if w != 1.0 {
                fresh.reweight_query(slot, w);
            }
        }
        let full = fresh.price_full(session.selection());
        assert_eq!(
            full.total().to_bits(),
            session.total().to_bits(),
            "session total diverged from fresh build"
        );
    }

    #[test]
    fn splices_stay_bit_identical_to_fresh_pricing() {
        let (cat, queries, pool) = setup();
        let models = build_models(&cat, &queries, &pool);
        let mut session = PricingSession::new(pool.len());
        assert_eq!(session.full_repricings(), 0);

        let q0 = session.admit_query(&models[0].0, &models[0].1);
        let q1 = session.admit_query_weighted(&models[1].0, &models[1].1, 2.5);
        assert_matches_fresh(&session, &models, &[(0, 1.0), (1, 2.5)], pool.len());

        session.install(Selection::from_ids(pool.len(), &[0, 3]), None, 0);
        assert_eq!(
            session.full_repricings(),
            1,
            "install without state re-prices"
        );
        assert_matches_fresh(&session, &models, &[(0, 1.0), (1, 2.5)], pool.len());

        session.reweight_query(q1, 0.75);
        assert_matches_fresh(&session, &models, &[(0, 1.0), (1, 0.75)], pool.len());

        session.evict_query(q0);
        let remap = session.compact();
        assert_eq!(remap, vec![u32::MAX, 0]);
        assert_matches_fresh(&session, &models, &[(1, 0.75)], pool.len());
        assert_eq!(session.full_repricings(), 1, "splices never re-price fully");
    }

    #[test]
    fn install_with_exact_state_skips_the_repricing() {
        let (cat, queries, pool) = setup();
        let models = build_models(&cat, &queries, &pool);
        let mut session = PricingSession::new(pool.len());
        session.admit_query(&models[0].0, &models[0].1);
        session.admit_query(&models[1].0, &models[1].1);
        let selection = Selection::from_ids(pool.len(), &[1]);
        let exact = session.model().price_full(&selection);
        session.install(selection.clone(), Some(exact.clone()), 0);
        assert_eq!(session.full_repricings(), 0);
        assert_eq!(session.total().to_bits(), exact.total().to_bits());
        assert_eq!(session.selection(), &selection);
    }

    #[test]
    fn batched_reweight_equals_one_by_one() {
        let (cat, queries, pool) = setup();
        let models = build_models(&cat, &queries, &pool);
        let mut one_by_one = PricingSession::new(pool.len());
        let mut batched = PricingSession::new(pool.len());
        for session in [&mut one_by_one, &mut batched] {
            session.admit_query(&models[0].0, &models[0].1);
            session.admit_query(&models[1].0, &models[1].1);
            session.install(Selection::from_ids(pool.len(), &[0, 3]), None, 0);
        }
        one_by_one.reweight_query(0, 0.5);
        one_by_one.reweight_query(1, 3.0);
        batched.reweight_queries([(0, 0.5), (1, 3.0)]);
        assert_eq!(one_by_one.total().to_bits(), batched.total().to_bits());
        assert_eq!(one_by_one.state().per_query(), batched.state().per_query());
    }

    #[test]
    fn restore_is_bit_exact_and_counts_no_repricing() {
        let (cat, queries, pool) = setup();
        let models = build_models(&cat, &queries, &pool);
        let mut session = PricingSession::new(pool.len());
        session.admit_query(&models[0].0, &models[0].1);
        session.admit_query_weighted(&models[1].0, &models[1].1, 2.5);
        session.install(Selection::from_ids(pool.len(), &[0, 3]), None, 0);

        let model = crate::workload_model::WorkloadModel::from_parts(session.model().to_parts())
            .expect("model parts roundtrip");
        let selection = Selection::from_words(pool.len(), session.selection().words().to_vec())
            .expect("selection roundtrip");
        let per_query = session.state().per_query().to_vec();
        let restored =
            PricingSession::restore(model, selection, per_query, session.full_repricings())
                .expect("restore");
        assert_eq!(
            restored.total().to_bits(),
            session.total().to_bits(),
            "restored total diverged"
        );
        assert_eq!(restored.state().per_query(), session.state().per_query());
        assert_eq!(restored.full_repricings(), session.full_repricings());
        assert_eq!(restored.selection(), session.selection());
    }

    #[test]
    fn restore_rejects_mismatched_shapes() {
        let session = PricingSession::new(70);
        let model = crate::workload_model::WorkloadModel::from_parts(session.model().to_parts())
            .expect("parts");
        assert!(PricingSession::restore(
            model.clone(),
            Selection::empty(70),
            vec![0.0], // one cost, zero queries
            0,
        )
        .is_err());
        assert!(PricingSession::restore(
            model,
            Selection::empty(5), // wrong pool width
            Vec::new(),
            0,
        )
        .is_err());
    }

    #[test]
    fn empty_session_prices_to_zero() {
        let session = PricingSession::new(4);
        assert_eq!(session.total(), 0.0);
        assert_eq!(session.state().per_query().len(), 0);
        assert!(session.selection().is_empty());
    }
}
