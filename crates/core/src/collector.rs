//! # Workload-level batched PINUM collection
//!
//! [`collect_pinum`](crate::access_costs::collect_pinum) prices a query's
//! entire candidate pool with one keep-all optimizer call — but building a
//! workload model still made one such call *per query*, re-deriving access
//! paths for the same tables hundreds of times. On the 200-query scale
//! workload, the 200 calls collapse onto a few dozen distinct
//! **templates**: a relation's access-arm costs are a function of its
//! `(table, filter shape)` signature alone
//! ([`pinum_query::RelTemplate`]), not of the query around it.
//!
//! [`WorkloadCollector`] exploits that. Queries are grouped by template:
//! the first relation to present a template triggers **one**
//! `Optimizer::price_template` call against the pool's candidates on that
//! table, producing arms priced in *both* covering variants and keyed by
//! leading column; every subsequent member relation reuses the cached
//! group and pays zero optimizer calls. Fan-out applies the member's own
//! interpretation —
//!
//! * covering test: `index.covers_columns(member referenced columns)`
//!   selects the heap or index-only variant of each arm;
//! * ordering: an arm covers an interesting order iff its leading column
//!   is one of the member relation's interesting orders;
//! * probes stay *inputs* ([`pinum_cost::scan::IndexScanInput`] at loop
//!   count 1), so per-plan loop counts are re-priced exactly as on the
//!   per-query path —
//!
//! and pushes entries in the per-query collector's order (sequential
//! scan, then catalog indexes, then candidates ascending by pool id;
//! plain before bitmap), so after the same stable sort the reconstructed
//! [`AccessCostCatalog`] is **bit-identical** to what `collect_pinum`
//! returns. Debug builds assert exactly that on every `collect` call
//! (sampled to every k-th query via `PINUM_ASSERT_SAMPLE` — see
//! [`crate::sampling`] — so debug acceptance runs stay bounded);
//! `exp_batched_collection` re-checks it in release mode and gates the
//! call reduction (≥3× on the 200q×400c workload) plus an identical
//! advisor pick sequence.
//!
//! With the `parallel` feature, [`WorkloadCollector::prime`] prices the
//! distinct missing templates of a whole workload across std threads
//! (each template call is independent and deterministic); fan-out is
//! always serial per query, so the produced catalogs are identical to the
//! serial path's.

use crate::access_costs::{AccessCostCatalog, CandidateAccess, CollectStats};
use crate::builder::{build_cache_pinum, BuilderOptions};
use crate::cache::PlanCache;
use crate::candidates::CandidatePool;
use pinum_catalog::Configuration;
use pinum_optimizer::{AccessSource, IndexRef, Optimizer, TemplateArm};
use pinum_query::{Query, RelIdx, RelTemplate, TemplateKey};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// One cached template group: the shared arms plus the resolution of
/// configuration positions back to pool candidate ids.
#[derive(Debug, Clone)]
struct TemplateGroup {
    arms: Vec<TemplateArm>,
    /// Config position → pool id (the candidates on the template's table,
    /// ascending by pool id — the order `Selection::full` would hand the
    /// per-query collector).
    pool_ids: Vec<usize>,
}

/// The workload-level batched collector. See the module docs.
#[derive(Debug, Default)]
pub struct WorkloadCollector {
    groups: HashMap<TemplateKey, TemplateGroup>,
    /// Structural fingerprint of the candidate pool the groups were
    /// collected against; a collector is valid for exactly one pool
    /// (guarded loudly — same-length pools with different indexes must
    /// not reuse each other's arms).
    pool_fingerprint: Option<u64>,
    optimizer_calls: usize,
    template_hits: usize,
}

/// Structural identity of a pool: every index's table, key columns and
/// uniqueness, in pool order. Two pools with the same fingerprint price
/// identically, so cached template arms transfer.
fn pool_fingerprint(pool: &CandidatePool) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    pool.len().hash(&mut h);
    for index in pool.indexes() {
        index.table().hash(&mut h);
        index.key_columns().hash(&mut h);
        index.is_unique().hash(&mut h);
    }
    h.finish()
}

impl WorkloadCollector {
    /// An empty collector; the template cache fills on demand.
    pub fn new() -> Self {
        Self::default()
    }

    /// Distinct templates priced so far (= optimizer calls spent).
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Cumulative optimizer calls across all `collect`/`prime` calls.
    pub fn optimizer_calls(&self) -> usize {
        self.optimizer_calls
    }

    /// Cumulative relation collections served from the template cache
    /// without an optimizer call.
    pub fn template_hits(&self) -> usize {
        self.template_hits
    }

    fn guard_pool(&mut self, pool: &CandidatePool) {
        let fingerprint = pool_fingerprint(pool);
        match self.pool_fingerprint {
            None => self.pool_fingerprint = Some(fingerprint),
            Some(f) => assert_eq!(
                f, fingerprint,
                "WorkloadCollector reused across candidate pools — cached template arms \
                 reference candidates of the pool they were collected against"
            ),
        }
    }

    /// Prices one template group with a single optimizer call.
    fn price_group(
        optimizer: &Optimizer<'_>,
        pool: &CandidatePool,
        template: &RelTemplate,
    ) -> TemplateGroup {
        let pool_ids = pool.on_table(template.table).to_vec();
        let config = Configuration::new(pool_ids.iter().map(|&i| pool.index(i).clone()).collect());
        TemplateGroup {
            arms: optimizer.price_template(template, &config),
            pool_ids,
        }
    }

    /// Collects one query's access costs, sharing template groups with
    /// every query collected before (and after) it. Returns the catalog
    /// plus the stats of *this* call — `optimizer_calls` is the number of
    /// templates this query was first to present (0 on a full cache hit).
    ///
    /// The result is bit-identical to
    /// [`collect_pinum`](crate::access_costs::collect_pinum) over the
    /// same `(optimizer, query, pool)` — debug-asserted here on every
    /// call, and re-checked in release mode by the
    /// `exp_batched_collection` acceptance experiment.
    pub fn collect(
        &mut self,
        optimizer: &Optimizer<'_>,
        query: &Query,
        pool: &CandidatePool,
    ) -> (AccessCostCatalog, CollectStats) {
        let start = Instant::now();
        self.guard_pool(pool);
        let mut calls = 0usize;
        let mut catalog = AccessCostCatalog::new(query.relation_count());
        catalog.set_params(*optimizer.params());
        let orders = query.interesting_orders();
        for rel in 0..query.relation_count() as RelIdx {
            let template = RelTemplate::of(query, rel);
            let group = match self.groups.entry(template.key()) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    self.template_hits += 1;
                    e.into_mut()
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    calls += 1;
                    v.insert(Self::price_group(optimizer, pool, &template))
                }
            };
            fan_out(
                &mut catalog,
                rel,
                group,
                optimizer,
                pool,
                &query.referenced_columns(rel),
                orders.orders_of(rel),
            );
        }
        catalog.sort();
        self.optimizer_calls += calls;

        #[cfg(debug_assertions)]
        if crate::sampling::should_assert() {
            // The whole point: batched collection must reproduce the
            // per-query reference path bit for bit (sampled — every k-th
            // collected query — via `PINUM_ASSERT_SAMPLE`).
            let (reference, _) = crate::access_costs::collect_pinum(optimizer, query, pool);
            debug_assert!(
                catalog == reference,
                "batched collection diverged from per-query collect_pinum for {}",
                query.name
            );
        }

        let entries = (0..query.relation_count() as RelIdx)
            .map(|rel| catalog.entries(rel).len())
            .sum();
        (
            catalog,
            CollectStats {
                optimizer_calls: calls,
                wall: start.elapsed(),
                entries,
            },
        )
    }

    /// Prices every template of `queries` not yet in the cache, returning
    /// the number of optimizer calls spent. With the `parallel` feature
    /// the missing groups are priced across std threads (each template
    /// call is independent); insertion order is the serial first-encounter
    /// order either way, and the cached groups are identical.
    pub fn prime(
        &mut self,
        optimizer: &Optimizer<'_>,
        queries: &[Query],
        pool: &CandidatePool,
    ) -> usize {
        self.prime_templates(optimizer, &workload_templates(queries), pool)
    }

    /// [`Self::prime`] over an already-deduplicated template list (see
    /// [`workload_templates`]) — callers that enumerate the workload's
    /// templates for their own bookkeeping pass them in instead of paying
    /// the enumeration twice.
    pub fn prime_templates(
        &mut self,
        optimizer: &Optimizer<'_>,
        templates: &[(TemplateKey, RelTemplate)],
        pool: &CandidatePool,
    ) -> usize {
        self.guard_pool(pool);
        let missing: Vec<&(TemplateKey, RelTemplate)> = templates
            .iter()
            .filter(|(key, _)| !self.groups.contains_key(key))
            .collect();
        let groups = price_groups(optimizer, pool, &missing, cfg!(feature = "parallel"));
        let calls = groups.len();
        for ((key, _), group) in missing.into_iter().zip(groups) {
            self.groups.insert(key.clone(), group);
        }
        self.optimizer_calls += calls;
        calls
    }

    /// Collects the whole workload: [`Self::prime`] (parallel group
    /// pricing under the `parallel` feature) followed by per-query
    /// fan-out. The aggregate stats count one optimizer call per template
    /// priced — the headline "one call per template-shape instead of per
    /// query".
    pub fn collect_workload(
        &mut self,
        optimizer: &Optimizer<'_>,
        queries: &[Query],
        pool: &CandidatePool,
    ) -> (Vec<AccessCostCatalog>, CollectStats) {
        let start = Instant::now();
        let calls = self.prime(optimizer, queries, pool);
        let catalogs: Vec<AccessCostCatalog> = queries
            .iter()
            .map(|q| self.collect(optimizer, q, pool).0)
            .collect();
        let entries = catalogs
            .iter()
            .map(|c| {
                (0..c.relation_count() as RelIdx)
                    .map(|rel| c.entries(rel).len())
                    .sum::<usize>()
            })
            .sum();
        (
            catalogs,
            CollectStats {
                optimizer_calls: calls,
                wall: start.elapsed(),
                entries,
            },
        )
    }
}

/// The distinct templates of a workload, deduplicated in first-encounter
/// order. Pure bookkeeping — no optimizer calls.
pub fn workload_templates(queries: &[Query]) -> Vec<(TemplateKey, RelTemplate)> {
    let mut seen: std::collections::HashSet<TemplateKey> = std::collections::HashSet::new();
    let mut templates = Vec::new();
    for query in queries {
        for rel in 0..query.relation_count() as RelIdx {
            let template = RelTemplate::of(query, rel);
            let key = template.key();
            if seen.insert(key.clone()) {
                templates.push((key, template));
            }
        }
    }
    templates
}

/// Prices `templates` in order; fans across std threads when `parallel`.
fn price_groups(
    optimizer: &Optimizer<'_>,
    pool: &CandidatePool,
    templates: &[&(TemplateKey, RelTemplate)],
    parallel: bool,
) -> Vec<TemplateGroup> {
    let n = templates.len();
    let threads = if parallel {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(n.div_ceil(4).max(1))
    } else {
        1
    };
    if threads <= 1 {
        return templates
            .iter()
            .map(|(_, t)| WorkloadCollector::price_group(optimizer, pool, t))
            .collect();
    }
    let mut out: Vec<Option<TemplateGroup>> = vec![None; n];
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for (t, slots) in out.chunks_mut(chunk).enumerate() {
            let start = t * chunk;
            scope.spawn(move || {
                for (i, slot) in slots.iter_mut().enumerate() {
                    let (_, template) = &templates[start + i];
                    *slot = Some(WorkloadCollector::price_group(optimizer, pool, template));
                }
            });
        }
    });
    out.into_iter().map(|g| g.expect("priced")).collect()
}

/// Fans one cached template group out to a member relation, pushing
/// entries in the per-query collector's order.
fn fan_out(
    catalog: &mut AccessCostCatalog,
    rel: RelIdx,
    group: &TemplateGroup,
    optimizer: &Optimizer<'_>,
    pool: &CandidatePool,
    referenced: &[u16],
    rel_orders: &[u16],
) {
    for arm in &group.arms {
        let (candidate, index) = match &arm.source {
            AccessSource::SeqScan => {
                catalog.push(
                    rel,
                    CandidateAccess {
                        candidate: None,
                        order: None,
                        cost: arm.cost_heap.total,
                        probe: None,
                    },
                );
                continue;
            }
            AccessSource::Index(IndexRef::Catalog(id)) => (None, optimizer.catalog().index(*id)),
            AccessSource::Index(IndexRef::Config(i)) => {
                let pool_id = group.pool_ids[*i];
                (Some(pool_id), pool.index(pool_id))
            }
        };
        // The member's interpretation of the shared arm: covering decides
        // the variant, the leading column maps onto interesting orders.
        let index_only = index.covers_columns(referenced);
        let leading = arm.leading.expect("index arm has a leading column");
        let order = rel_orders.contains(&leading).then_some(leading);
        catalog.push(
            rel,
            CandidateAccess {
                candidate,
                order,
                cost: if index_only {
                    arm.cost_cover.total
                } else {
                    arm.cost_heap.total
                },
                probe: order.and(if index_only {
                    arm.probe_cover
                } else {
                    arm.probe_heap
                }),
            },
        );
        if let Some(bitmap) = arm.bitmap.filter(|_| !index_only) {
            catalog.push(
                rel,
                CandidateAccess {
                    candidate,
                    order: None,
                    cost: bitmap.total,
                    probe: None,
                },
            );
        }
    }
}

/// Per-query `(plan cache, access catalog)` models for a whole workload,
/// with access collection shared through a [`WorkloadCollector`].
#[derive(Debug)]
pub struct WorkloadModels {
    pub models: Vec<(PlanCache, AccessCostCatalog)>,
    /// Optimizer calls spent building plan caches (2 per query, PINUM).
    pub cache_calls: usize,
    /// Optimizer calls spent on access collection — one per distinct
    /// template instead of one per query.
    pub collect_calls: usize,
    /// Distinct templates the workload collapsed onto.
    pub template_groups: usize,
    pub wall: Duration,
}

/// Builds the per-query models the [`crate::WorkloadModel`] flattens:
/// the construction path behind `pinum_advisor::advise` and the scale
/// experiments.
///
/// Access collection is batched through a [`WorkloadCollector`] whenever
/// that actually saves optimizer calls — i.e. when the workload's
/// relations collapse onto fewer templates than it has queries (counted
/// up front for free). Small, diverse workloads whose per-relation
/// template count exceeds the query count (e.g. the paper's 10-query
/// benchmark: 16 templates) keep the classic one-keep-all-call-per-query
/// path, which is strictly fewer calls there. Both paths produce
/// bit-identical catalogs.
pub fn build_workload_models(
    optimizer: &Optimizer<'_>,
    queries: &[Query],
    pool: &CandidatePool,
    opts: &BuilderOptions,
) -> WorkloadModels {
    let start = Instant::now();
    let templates = workload_templates(queries);
    let template_groups = templates.len();
    let (catalogs, collect_calls) = if template_groups < queries.len() {
        let mut collector = WorkloadCollector::new();
        let calls = collector.prime_templates(optimizer, &templates, pool);
        let catalogs: Vec<AccessCostCatalog> = queries
            .iter()
            .map(|q| collector.collect(optimizer, q, pool).0)
            .collect();
        (catalogs, calls)
    } else {
        let mut calls = 0usize;
        let catalogs = queries
            .iter()
            .map(|q| {
                let (access, stats) = crate::access_costs::collect_pinum(optimizer, q, pool);
                calls += stats.optimizer_calls;
                access
            })
            .collect();
        (catalogs, calls)
    };
    let mut cache_calls = 0usize;
    let models = queries
        .iter()
        .zip(catalogs)
        .map(|(q, access)| {
            let built = build_cache_pinum(optimizer, q, opts);
            cache_calls += built.stats.optimizer_calls;
            (built.cache, access)
        })
        .collect();
    WorkloadModels {
        models,
        cache_calls,
        collect_calls,
        template_groups,
        wall: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access_costs::collect_pinum;
    use pinum_catalog::{Catalog, Column, ColumnType, Index, Table};
    use pinum_query::QueryBuilder;

    /// Two tables, three queries — q1 and q3 share both templates (same
    /// tables, same filters) despite different joins/projections/orders;
    /// q2 brings a fresh fact template (different filter bound).
    fn setup() -> (Catalog, Vec<Query>, CandidatePool) {
        let mut cat = Catalog::new();
        cat.add_table(Table::new(
            "f",
            500_000,
            vec![
                Column::new("fk", ColumnType::Int8).with_ndv(5_000),
                Column::new("v", ColumnType::Int4).with_ndv(1_000),
                Column::new("s", ColumnType::Int4).with_ndv(100),
            ],
        ));
        cat.add_table(Table::new(
            "d",
            5_000,
            vec![
                Column::new("k", ColumnType::Int8).with_ndv(5_000),
                Column::new("w", ColumnType::Int4).with_ndv(100),
            ],
        ));
        let q1 = QueryBuilder::new("q1", &cat)
            .table("f")
            .table("d")
            .join(("f", "fk"), ("d", "k"))
            .filter_range(("f", "v"), 0.0, 10.0)
            .select(("d", "w"))
            .build();
        let q2 = QueryBuilder::new("q2", &cat)
            .table("f")
            .table("d")
            .join(("f", "fk"), ("d", "k"))
            .filter_range(("f", "v"), 0.0, 25.0)
            .select(("f", "s"))
            .order_by(("d", "w"))
            .build();
        let q3 = QueryBuilder::new("q3", &cat)
            .table("f")
            .table("d")
            .join(("f", "fk"), ("d", "k"))
            .filter_range(("f", "v"), 0.0, 10.0)
            .select(("f", "s"))
            .order_by(("f", "s"))
            .build();
        let f = cat.table(cat.table_id("f").unwrap()).clone();
        let d = cat.table(cat.table_id("d").unwrap()).clone();
        let pool = CandidatePool::from_indexes(vec![
            Index::hypothetical(&f, vec![0], false),
            Index::hypothetical(&f, vec![1], false),
            Index::hypothetical(&f, vec![1, 0, 2], false),
            Index::hypothetical(&d, vec![0], false),
            Index::hypothetical(&d, vec![0, 1], false),
        ]);
        (cat, vec![q1, q2, q3], pool)
    }

    #[test]
    fn batched_equals_per_query_bit_identically() {
        let (cat, queries, pool) = setup();
        let opt = Optimizer::new(&cat);
        let mut collector = WorkloadCollector::new();
        for q in &queries {
            let (batched, _) = collector.collect(&opt, q, &pool);
            let (reference, _) = collect_pinum(&opt, q, &pool);
            assert_eq!(batched, reference, "{} diverged", q.name);
        }
    }

    #[test]
    fn shared_templates_need_no_further_calls() {
        let (cat, queries, pool) = setup();
        let opt = Optimizer::new(&cat);
        let mut collector = WorkloadCollector::new();
        let (_, s1) = collector.collect(&opt, &queries[0], &pool);
        assert_eq!(s1.optimizer_calls, 2, "q1 presents both templates");
        let (_, s2) = collector.collect(&opt, &queries[1], &pool);
        assert_eq!(s2.optimizer_calls, 1, "q2 shares d, brings a new f filter");
        let (_, s3) = collector.collect(&opt, &queries[2], &pool);
        assert_eq!(s3.optimizer_calls, 0, "q3 is a full template hit");
        assert_eq!(collector.group_count(), 3);
        assert_eq!(collector.optimizer_calls(), 3);
        assert_eq!(collector.template_hits(), 3); // q2's d + q3's f and d
    }

    #[test]
    fn collect_workload_primes_then_fans_out() {
        let (cat, queries, pool) = setup();
        let opt = Optimizer::new(&cat);
        let mut collector = WorkloadCollector::new();
        let (catalogs, stats) = collector.collect_workload(&opt, &queries, &pool);
        assert_eq!(catalogs.len(), queries.len());
        assert_eq!(stats.optimizer_calls, 3, "one call per distinct template");
        for (q, batched) in queries.iter().zip(&catalogs) {
            let (reference, _) = collect_pinum(&opt, q, &pool);
            assert_eq!(batched, &reference, "{} diverged", q.name);
        }
        // A second pass over the same workload is free.
        let (_, again) = collector.collect_workload(&opt, &queries, &pool);
        assert_eq!(again.optimizer_calls, 0);
    }

    #[test]
    fn build_workload_models_matches_per_query_construction() {
        let (cat, mut queries, pool) = setup();
        // A fourth query repeating q3's shape tips the workload into
        // batching territory (3 templates < 4 queries).
        queries.push(queries[2].clone());
        let opt = Optimizer::new(&cat);
        let built = build_workload_models(&opt, &queries, &pool, &BuilderOptions::default());
        assert_eq!(built.models.len(), queries.len());
        assert_eq!(built.collect_calls, 3, "batched: one call per template");
        assert_eq!(built.template_groups, 3);
        assert!(built.cache_calls >= 2 * queries.len());
        for (q, (_, access)) in queries.iter().zip(&built.models) {
            let (reference, _) = collect_pinum(&opt, q, &pool);
            assert_eq!(access, &reference, "{} diverged", q.name);
        }
    }

    #[test]
    fn build_workload_models_keeps_per_query_path_when_batching_cannot_win() {
        let (cat, queries, pool) = setup();
        let opt = Optimizer::new(&cat);
        // q1 + q2 present 3 distinct templates over 2 queries: batching
        // would *cost* calls, so the classic path must be kept.
        let subset = &queries[..2];
        let built = build_workload_models(&opt, subset, &pool, &BuilderOptions::default());
        assert_eq!(built.collect_calls, 2, "one keep-all call per query");
        assert_eq!(built.template_groups, 3);
        for (q, (_, access)) in subset.iter().zip(&built.models) {
            let (reference, _) = collect_pinum(&opt, q, &pool);
            assert_eq!(access, &reference, "{} diverged", q.name);
        }
    }

    #[test]
    #[should_panic(expected = "reused across candidate pools")]
    fn cross_pool_reuse_fails_loudly() {
        let (cat, queries, pool) = setup();
        let opt = Optimizer::new(&cat);
        let mut collector = WorkloadCollector::new();
        let _ = collector.collect(&opt, &queries[0], &pool);
        let smaller = CandidatePool::from_indexes(pool.indexes()[..2].to_vec());
        let _ = collector.collect(&opt, &queries[1], &smaller);
    }

    #[test]
    #[should_panic(expected = "reused across candidate pools")]
    fn same_length_different_pool_also_fails_loudly() {
        let (cat, queries, pool) = setup();
        let opt = Optimizer::new(&cat);
        let mut collector = WorkloadCollector::new();
        let _ = collector.collect(&opt, &queries[0], &pool);
        // Same cardinality, different last index: cached arms must not
        // transfer (they price the old pool's candidates).
        let f = cat.table(cat.table_id("f").unwrap()).clone();
        let mut indexes = pool.indexes().to_vec();
        indexes[4] = Index::hypothetical(&f, vec![2], false);
        let twin = CandidatePool::from_indexes(indexes);
        assert_eq!(twin.len(), pool.len());
        let _ = collector.collect(&opt, &queries[1], &twin);
    }
}
