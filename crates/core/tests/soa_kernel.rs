//! Property tests for the SoA pricing kernel: randomized workloads put
//! through randomized mutation sequences (admit / evict / reweight /
//! compact / add-delta / drop-delta), asserting after **every** step that
//! the incrementally-spliced [`PricedWorkload`] is bit-identical to a
//! from-scratch `price_full`, that the bloom/footprint prefilter never
//! lets a delta change a query it cannot touch, and that the frozen
//! nested [`ReferenceModel`] prices every query to the same bits.

use pinum_catalog::{Catalog, Column, ColumnType, Index, Table};
use pinum_core::access_costs::{collect_pinum, AccessCostCatalog};
use pinum_core::builder::{build_cache_pinum, BuilderOptions};
use pinum_core::{
    pairwise_total, CandidatePool, PlanCache, PricedWorkload, ReferenceModel, Selection,
    WorkloadModel,
};
use pinum_optimizer::Optimizer;
use pinum_query::QueryBuilder;
use proptest::prelude::*;

/// A randomized two-table star: the fact/dimension sizes and each query's
/// filter width vary per case, so arm costs, plan shapes, and min-scan
/// winners all differ across samples.
fn random_workload(
    fact_rows: u64,
    dim_rows: u64,
    widths: &[u32],
) -> (CandidatePool, Vec<(PlanCache, AccessCostCatalog)>) {
    let mut cat = Catalog::new();
    cat.add_table(Table::new(
        "f",
        fact_rows,
        vec![
            Column::new("fk", ColumnType::Int8).with_ndv(dim_rows),
            Column::new("v", ColumnType::Int4).with_ndv(1_000),
            Column::new("s", ColumnType::Int4).with_ndv(100),
        ],
    ));
    cat.add_table(Table::new(
        "d",
        dim_rows,
        vec![
            Column::new("k", ColumnType::Int8)
                .with_ndv(dim_rows)
                .with_correlation(1.0),
            Column::new("w", ColumnType::Int4).with_ndv(50),
        ],
    ));
    let queries: Vec<_> = widths
        .iter()
        .enumerate()
        .map(|(i, &w)| {
            let lo = (i as f64) * 3.0;
            let builder = QueryBuilder::new(format!("q{i}"), &cat)
                .table("f")
                .filter_range(("f", "v"), lo, lo + 10.0 * w as f64)
                .select(("f", "s"));
            // Alternate join/no-join and ordering so the per-query plan
            // caches have genuinely different shapes and arm counts.
            if i % 2 == 0 {
                builder
                    .table("d")
                    .join(("f", "fk"), ("d", "k"))
                    .order_by(("d", "w"))
                    .build()
            } else {
                builder.order_by(("f", "s")).build()
            }
        })
        .collect();
    let f = cat.table(cat.table_id("f").unwrap()).clone();
    let d = cat.table(cat.table_id("d").unwrap()).clone();
    let pool = CandidatePool::from_indexes(vec![
        Index::hypothetical(&f, vec![0], false),
        Index::hypothetical(&f, vec![1, 0, 2], false),
        Index::hypothetical(&f, vec![2], false),
        Index::hypothetical(&f, vec![1], false),
        Index::hypothetical(&d, vec![0], false),
        Index::hypothetical(&d, vec![1], false),
        Index::hypothetical(&d, vec![1, 0], false),
    ]);
    let opt = Optimizer::new(&cat);
    let models = queries
        .iter()
        .map(|q| {
            let built = build_cache_pinum(&opt, q, &BuilderOptions::default());
            let (access, _) = collect_pinum(&opt, q, &pool);
            (built.cache, access)
        })
        .collect();
    (pool, models)
}

/// Bit-identity of the spliced state against a from-scratch repricing of
/// the *current* model — the invariant every mutation must preserve.
fn assert_state_is_fresh(
    model: &WorkloadModel,
    selection: &Selection,
    state: &PricedWorkload,
    step: usize,
) {
    let fresh = model.price_full(selection);
    assert_eq!(
        state.total().to_bits(),
        fresh.total().to_bits(),
        "step {}: spliced total diverged from price_full ({} vs {})",
        step,
        state.total(),
        fresh.total()
    );
    for (q, (a, b)) in state.per_query().iter().zip(fresh.per_query()).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "step {}: query {} spliced cost diverged ({} vs {})",
            step,
            q,
            a,
            b
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Admit / evict / reweight / compact / add / drop sequences keep the
    /// incrementally-maintained state bit-identical to from-scratch
    /// pricing at every step.
    #[test]
    fn mutation_sequences_stay_bit_identical_to_fresh_pricing(
        fact_rows in 60_000u64..400_000,
        dim_rows in 600u64..20_000,
        widths in prop::collection::vec(1u32..20, 6),
        ops in prop::collection::vec(0u32..6, 24),
        picks in prop::collection::vec(0u32..64, 24),
    ) {
        let (pool, models) = random_workload(fact_rows, dim_rows, &widths);
        // Start with half the workload admitted; the rest arrives via the
        // admit op below.
        let seed_count = models.len() / 2;
        let mut model = WorkloadModel::build(
            pool.len(),
            models.iter().take(seed_count).map(|(c, a)| (c, a)),
        );
        let mut pending = models.iter().skip(seed_count);
        let mut selection = Selection::empty(pool.len());
        let mut state = model.price_full(&selection);

        for (step, (&op, &pick)) in ops.iter().zip(&picks).enumerate() {
            match op {
                // Admit the next pending query and splice its price in.
                0 => {
                    if let Some((cache, access)) = pending.next() {
                        let w = 1.0 + (pick % 4) as f64;
                        let qid = model.admit_query_weighted(cache, access, w);
                        state.push_query_cost(w * model.price_query(qid, &selection, None));
                    }
                }
                // Evict a live query; its slot prices to exactly 0.
                1 => {
                    let live: Vec<usize> =
                        (0..model.query_count()).filter(|&q| model.is_live(q)).collect();
                    if live.len() > 1 {
                        let qid = live[pick as usize % live.len()];
                        model.evict_query(qid);
                        state.set_query_cost(qid, 0.0);
                    }
                }
                // Reweight a live query and re-splice its scaled price.
                2 => {
                    let live: Vec<usize> =
                        (0..model.query_count()).filter(|&q| model.is_live(q)).collect();
                    if !live.is_empty() {
                        let qid = live[pick as usize % live.len()];
                        let w = 0.5 + (pick % 8) as f64;
                        model.reweight_query(qid, w);
                        state.set_query_cost(qid, w * model.price_query(qid, &selection, None));
                    }
                }
                // Compact: rebuild the dense state from the survivors'
                // unchanged costs via the remap — no repricing allowed.
                3 => {
                    let remap = model.compact();
                    let mut survivors = vec![0.0; model.query_count()];
                    for (old, &new) in remap.iter().enumerate() {
                        if new != u32::MAX {
                            survivors[new as usize] = state.per_query()[old];
                        }
                    }
                    state = PricedWorkload::from_costs(survivors);
                }
                // Grow the selection through an add delta.
                4 => {
                    let outside: Vec<usize> =
                        (0..pool.len()).filter(|&c| !selection.contains(c)).collect();
                    if !outside.is_empty() {
                        let cand = outside[pick as usize % outside.len()];
                        let mut scratch = Vec::new();
                        let total =
                            model.price_delta_into(&state, &selection, cand, &mut scratch);
                        state.apply_changed(&scratch);
                        prop_assert_eq!(state.total().to_bits(), total.to_bits());
                        selection.insert(cand);
                    }
                }
                // Shrink it through a removal delta.
                _ => {
                    let inside: Vec<usize> = selection.ids().collect();
                    if !inside.is_empty() {
                        let cand = inside[pick as usize % inside.len()];
                        let mut scratch = Vec::new();
                        let total = model.price_delta_removed_into(
                            &state, &selection, cand, &mut scratch,
                        );
                        state.apply_changed(&scratch);
                        prop_assert_eq!(state.total().to_bits(), total.to_bits());
                        selection = selection.without(cand);
                    }
                }
            }
            assert_state_is_fresh(&model, &selection, &state, step);
        }
    }

    /// The bloom/footprint prefilter is sound: a delta's changed list only
    /// ever names queries whose arms mention the candidate, and every
    /// query the prefilter skips prices to exactly the same bits with the
    /// candidate present.
    #[test]
    fn prefilter_skipped_queries_never_change_cost(
        fact_rows in 60_000u64..400_000,
        dim_rows in 600u64..20_000,
        widths in prop::collection::vec(1u32..20, 5),
        masks in prop::collection::vec(0u64..128, 4),
    ) {
        let (pool, models) = random_workload(fact_rows, dim_rows, &widths);
        let model = WorkloadModel::build(pool.len(), models.iter().map(|(c, a)| (c, a)));
        let mut scratch = Vec::new();
        for mask in masks {
            let ids: Vec<usize> = (0..pool.len()).filter(|i| mask & (1 << i) != 0).collect();
            let selection = Selection::from_ids(pool.len(), &ids);
            let state = model.price_full(&selection);
            for cand in 0..pool.len() {
                if selection.contains(cand) {
                    continue;
                }
                model.price_delta_into(&state, &selection, cand, &mut scratch);
                for &(q, _) in &scratch {
                    prop_assert!(
                        model.query_touches(q as usize, cand),
                        "delta for candidate {} changed untouched query {}",
                        cand,
                        q
                    );
                }
                let extended = selection.with(cand);
                for q in 0..model.query_count() {
                    if model.query_touches(q, cand) {
                        continue;
                    }
                    let before = model.price_query(q, &selection, None);
                    let after = model.price_query(q, &extended, None);
                    prop_assert_eq!(
                        before.to_bits(),
                        after.to_bits(),
                        "prefilter-skipped query {} moved under candidate {}",
                        q,
                        cand
                    );
                }
            }
        }
    }

    /// The frozen nested reference engine prices every query to the same
    /// bits as the SoA kernel, and the kernel's tree total is exactly the
    /// canonical pairwise shape over its per-query costs.
    #[test]
    fn reference_model_agrees_on_random_workloads(
        fact_rows in 60_000u64..400_000,
        dim_rows in 600u64..20_000,
        widths in prop::collection::vec(1u32..20, 4),
        masks in prop::collection::vec(0u64..128, 6),
    ) {
        let (pool, models) = random_workload(fact_rows, dim_rows, &widths);
        let model = WorkloadModel::build(pool.len(), models.iter().map(|(c, a)| (c, a)));
        let reference = ReferenceModel::build(pool.len(), models.iter().map(|(c, a)| (c, a)));
        for mask in masks {
            let ids: Vec<usize> = (0..pool.len()).filter(|i| mask & (1 << i) != 0).collect();
            let selection = Selection::from_ids(pool.len(), &ids);
            let state = model.price_full(&selection);
            let (ref_costs, _) = reference.price_full(&selection);
            for (q, (a, b)) in state.per_query().iter().zip(&ref_costs).enumerate() {
                prop_assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "query {} diverged between kernels ({} vs {})",
                    q,
                    a,
                    b
                );
            }
            prop_assert_eq!(
                state.total().to_bits(),
                pairwise_total(state.per_query()).to_bits()
            );
        }
    }
}
