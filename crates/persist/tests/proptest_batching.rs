//! Property tests for the batched admission pipeline: any chunking of a
//! random admission stream through the batch entry points must be
//! bit-identical — per-spec results, final state fingerprint, journal
//! sequence — to one-at-a-time admission, and must replay identically
//! after a restart. The group-commit optimization is allowed to change
//! how many fsyncs happen, never what state they protect.

mod common;

use common::{fingerprint, fixture, opts, Fixture, ScratchDir};
use pinum_online::{AdmissionSpec, OnlineAdvisor};
use pinum_persist::{GroupCommitPolicy, PersistentAdvisor};
use proptest::prelude::*;
use std::sync::OnceLock;

/// The fixture costs real optimizer calls; price it once per process.
fn fx() -> &'static Fixture {
    static FX: OnceLock<Fixture> = OnceLock::new();
    FX.get_or_init(|| fixture(3, 10))
}

/// One sampled admission, derived deterministically from a word.
#[derive(Debug, Clone, Copy)]
struct AdmitSample {
    weight: f64,
    attributed: bool,
    deferred: bool,
}

fn materialize(raw: &[u64]) -> Vec<AdmitSample> {
    raw.iter()
        .map(|&x| AdmitSample {
            weight: 0.25 + (x % 1000) as f64 / 250.0,
            attributed: x & (1 << 40) != 0,
            deferred: x & (1 << 41) != 0,
        })
        .collect()
}

/// The spec for stream position `i` (fixture models cycle).
fn spec_at(fx: &Fixture, i: usize, s: AdmitSample) -> AdmissionSpec<'_> {
    let slot = i % fx.models.len();
    let (cache, access) = &fx.models[slot];
    let mut spec = AdmissionSpec::new(cache, access)
        .weight(s.weight)
        .deferred(s.deferred);
    if s.attributed {
        spec = spec.templates(&fx.templates[slot]);
    }
    spec
}

/// Splits `n` stream positions into chunk lengths 1..=5 driven by the
/// sampled words, so every case exercises a different batching.
fn chunk_lens(n: usize, raw: &[u64]) -> Vec<usize> {
    let mut lens = Vec::new();
    let mut left = n;
    let mut k = 0usize;
    while left > 0 {
        let take = ((raw[k % raw.len()] >> 7) as usize % 5 + 1).min(left);
        lens.push(take);
        left -= take;
        k += 1;
    }
    lens
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random admission streams chunked into arbitrary batch sizes give
    /// bit-identical per-spec results and final state to N serial
    /// `apply` calls — deferred and inline specs mixed freely.
    #[test]
    fn apply_batch_chunks_are_bit_identical_to_serial_apply(
        raw in prop::collection::vec(0u64..u64::MAX, 10..=24),
        chunks in prop::collection::vec(0u64..u64::MAX, 4),
    ) {
        let fx = fx();
        let samples = materialize(&raw);

        let mut serial = OnlineAdvisor::new(fx.pool.clone(), opts(12, 5));
        let serial_adm: Vec<_> = samples
            .iter()
            .enumerate()
            .map(|(i, &s)| serial.apply(spec_at(fx, i, s)))
            .collect();

        let mut batched = OnlineAdvisor::new(fx.pool.clone(), opts(12, 5));
        let mut batched_adm = Vec::new();
        let mut base = 0usize;
        for len in chunk_lens(samples.len(), &chunks) {
            let specs: Vec<_> = (base..base + len)
                .map(|i| spec_at(fx, i, samples[i]))
                .collect();
            batched_adm.extend(batched.apply_batch(&specs));
            base += len;
        }

        prop_assert_eq!(fingerprint(&serial), fingerprint(&batched));
        prop_assert_eq!(serial_adm.len(), batched_adm.len());
        for (i, (s, b)) in serial_adm.iter().zip(&batched_adm).enumerate() {
            prop_assert_eq!(s.qid, b.qid, "qid diverged at {}", i);
            prop_assert_eq!(s.ordinal, b.ordinal, "ordinal diverged at {}", i);
            prop_assert_eq!(s.evicted, b.evicted, "evicted diverged at {}", i);
            prop_assert_eq!(s.pending, b.pending, "pending trigger diverged at {}", i);
            prop_assert_eq!(
                s.readvise.is_some(),
                b.readvise.is_some(),
                "inline re-advise presence diverged at {}", i
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The durable pipeline: arbitrary chunkings through
    /// [`PersistentAdvisor::apply_batch`] (with a small group-commit
    /// policy, so chunks split across several commits) land on the same
    /// state as the serial gated admission loop the server used before
    /// coalescing, journal exactly one record per admission regardless
    /// of chunking, and replay bit-identically after a restart.
    #[test]
    fn durable_chunkings_agree_with_serial_gated_and_replay(
        raw in prop::collection::vec(0u64..u64::MAX, 8..=16),
        chunks in prop::collection::vec(0u64..u64::MAX, 4),
    ) {
        let fx = fx();
        let samples = materialize(&raw);
        let policy = GroupCommitPolicy { max_records: 3, max_bytes: 1 << 20 };

        // Serial gated reference: deferred spec, then the pending
        // trigger executes immediately — one admission per journal
        // record plus a record per executed re-advise.
        let scratch_serial = ScratchDir::new("batch-serial");
        let mut serial =
            PersistentAdvisor::create(&scratch_serial.0, fx.pool.clone(), opts(12, 5), 0)
                .expect("create serial");
        for (i, &s) in samples.iter().enumerate() {
            let adm = serial
                .apply(spec_at(fx, i, s).deferred(true))
                .expect("serial apply");
            if let Some(t) = adm.pending {
                serial.readvise_triggered(t).expect("serial readvise");
            }
        }
        let want = fingerprint(serial.advisor());

        let scratch = ScratchDir::new("batch-chunked");
        let mut batched =
            PersistentAdvisor::create(&scratch.0, fx.pool.clone(), opts(12, 5), 0)
                .expect("create batched");
        let mut base = 0usize;
        for len in chunk_lens(samples.len(), &chunks) {
            let specs: Vec<_> = (base..base + len)
                .map(|i| spec_at(fx, i, samples[i]).deferred(true))
                .collect();
            batched
                .apply_batch(&specs, policy, |_| ())
                .expect("batched apply");
            base += len;
        }
        prop_assert_eq!(fingerprint(batched.advisor()), want.clone());
        // One Admit record per admission, whatever the chunking. (The
        // serial run's log is longer: it also journals its re-advises.)
        prop_assert_eq!(batched.log_seq(), 1 + samples.len() as u64);
        let stats = batched.persist_stats();
        prop_assert_eq!(stats.appends, samples.len() as u64 + 1);
        prop_assert!(stats.max_batch_records <= policy.max_records as u64);
        drop(batched);

        let (restored, report) = PersistentAdvisor::open(&scratch.0, 0).expect("restore");
        prop_assert_eq!(report.log_discarded_bytes, 0);
        prop_assert_eq!(fingerprint(restored.advisor()), want.clone());
    }
}
