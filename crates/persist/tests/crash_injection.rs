//! Crash injection: every way a predecessor process can die mid-write
//! must leave a directory the next process either recovers from
//! bit-identically (reporting what it discarded) or rejects with a typed
//! error — mirroring the protocol crate's recoverable-vs-fatal split.
//! Never a panic.

mod common;

use common::{fingerprint, fixture, opts, Fixture, ScratchDir};
use pinum_online::{AdmissionSpec, OnlineAdvisor};
use pinum_persist::{GroupCommitPolicy, PersistError, PersistentAdvisor, LOG_FILE};
use std::path::Path;

/// One stream position's spec: the fixture's weight and templates.
fn spec_at(fx: &Fixture, i: usize) -> AdmissionSpec<'_> {
    let (cache, access) = &fx.models[i];
    AdmissionSpec::new(cache, access)
        .weight(fx.weights[i])
        .templates(&fx.templates[i])
}

/// Drives admissions `range` — plus a deterministic sprinkle of
/// reweights — through the journaled advisor.
fn drive_durable(advisor: &mut PersistentAdvisor, fx: &Fixture, range: std::ops::Range<usize>) {
    for i in range {
        advisor.apply(spec_at(fx, i)).expect("apply");
        if i % 4 == 3 {
            advisor
                .reweight(i, fx.weights[i] * 1.5, false)
                .expect("reweight");
        }
    }
}

/// The identical stream through a plain in-memory advisor.
fn drive_volatile(advisor: &mut OnlineAdvisor, fx: &Fixture, range: std::ops::Range<usize>) {
    for i in range {
        advisor.apply(spec_at(fx, i));
        if i % 4 == 3 {
            advisor.reweight(i, fx.weights[i] * 1.5, false);
        }
    }
}

fn flip_byte(path: &Path, offset_from_end: usize) {
    let mut bytes = std::fs::read(path).expect("read file");
    let len = bytes.len();
    assert!(offset_from_end < len);
    bytes[len - 1 - offset_from_end] ^= 0xFF;
    std::fs::write(path, bytes).expect("write file");
}

fn truncate_by(path: &Path, bytes: u64) {
    let len = std::fs::metadata(path).expect("stat").len();
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(path)
        .expect("open");
    f.set_len(len - bytes).expect("truncate");
}

fn newest_snapshot(dir: &Path) -> std::path::PathBuf {
    let mut snaps: Vec<_> = std::fs::read_dir(dir)
        .expect("read dir")
        .map(|e| e.expect("entry").path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("snap-") && n.ends_with(".bin"))
        })
        .collect();
    snaps.sort();
    snaps.pop().expect("at least one snapshot")
}

#[test]
fn torn_log_tail_is_truncated_and_reported() {
    let fx = fixture(2, 10);
    let scratch = ScratchDir::new("torn-tail");
    let n = fx.models.len();

    let mut durable =
        PersistentAdvisor::create(&scratch.0, fx.pool.clone(), opts(12, 5), 0).expect("create");
    drive_durable(&mut durable, &fx, 0..n);
    let full_log_seq = durable.log_seq();
    drop(durable);

    // Tear the final record: strip a few bytes, as a crash mid-append
    // would. The final admission lands on seq `full_log_seq`; recovery
    // must keep everything before it and report the discarded bytes.
    truncate_by(&scratch.0.join(LOG_FILE), 5);
    let (restored, report) = PersistentAdvisor::open(&scratch.0, 0).expect("open");
    assert!(
        report.log_discarded_bytes > 0,
        "torn bytes must be reported"
    );
    assert_eq!(report.snapshot_seq, None, "no snapshot was ever cut");
    assert_eq!(restored.log_seq(), full_log_seq - 1);

    // Bit-identical to a session that simply never saw the torn record.
    // The stream's last position (i = 19) admits and then reweights, so
    // the torn final record is that reweight: the prefix baseline is the
    // whole stream minus it.
    let mut prefix = OnlineAdvisor::new(fx.pool.clone(), opts(12, 5));
    drive_volatile(&mut prefix, &fx, 0..n - 1);
    prefix.apply(spec_at(&fx, n - 1));
    assert_eq!(fingerprint(restored.advisor()), fingerprint(&prefix));
}

#[test]
fn corrupt_final_snapshot_falls_back_to_its_predecessor() {
    let fx = fixture(2, 10);
    let scratch = ScratchDir::new("bad-snap");
    let n = fx.models.len();

    let mut durable =
        PersistentAdvisor::create(&scratch.0, fx.pool.clone(), opts(12, 5), 4).expect("create");
    drive_durable(&mut durable, &fx, 0..n);
    assert!(
        durable.last_snapshot_seq().is_some(),
        "snapshot_every=4 over {n} admissions must have cut snapshots"
    );
    drop(durable);

    // Corrupt the newest snapshot's payload; the kept predecessor must
    // take over, with a longer log replay making up the difference.
    flip_byte(&newest_snapshot(&scratch.0), 20);
    let (restored, report) = PersistentAdvisor::open(&scratch.0, 4).expect("open");
    assert_eq!(report.snapshots_discarded, 1);
    assert!(
        report.replayed > 0,
        "the fallback snapshot is older, so some log tail must replay"
    );

    let mut baseline = OnlineAdvisor::new(fx.pool.clone(), opts(12, 5));
    drive_volatile(&mut baseline, &fx, 0..n);
    assert_eq!(fingerprint(restored.advisor()), fingerprint(&baseline));
}

#[test]
fn torn_snapshot_write_and_torn_log_tail_together_still_recover() {
    let fx = fixture(2, 10);
    let scratch = ScratchDir::new("double-fault");
    let n = fx.models.len();

    let mut durable =
        PersistentAdvisor::create(&scratch.0, fx.pool.clone(), opts(12, 5), 4).expect("create");
    drive_durable(&mut durable, &fx, 0..n);
    drop(durable);

    // A crash that interrupted the final snapshot AND tore the log tail:
    // truncate the newest snapshot (a torn rename-source write) and
    // clip the log's last record.
    truncate_by(&newest_snapshot(&scratch.0), 40);
    truncate_by(&scratch.0.join(LOG_FILE), 3);
    let (restored, report) = PersistentAdvisor::open(&scratch.0, 4).expect("open");
    assert_eq!(report.snapshots_discarded, 1);
    assert!(report.log_discarded_bytes > 0);

    let mut prefix = OnlineAdvisor::new(fx.pool.clone(), opts(12, 5));
    drive_volatile(&mut prefix, &fx, 0..n - 1);
    prefix.apply(spec_at(&fx, n - 1));
    assert_eq!(fingerprint(restored.advisor()), fingerprint(&prefix));

    // And the survivor keeps journaling: re-apply the lost reweight (the
    // torn final record) and land exactly on the uninterrupted run.
    let mut restored = restored;
    restored
        .reweight(n - 1, fx.weights[n - 1] * 1.5, false)
        .expect("reweight");
    let mut baseline = OnlineAdvisor::new(fx.pool.clone(), opts(12, 5));
    drive_volatile(&mut baseline, &fx, 0..n);
    assert_eq!(fingerprint(restored.advisor()), fingerprint(&baseline));
}

#[test]
fn mid_log_corruption_before_the_snapshot_cut_is_a_typed_error() {
    let fx = fixture(2, 10);
    let scratch = ScratchDir::new("mid-log");
    let n = fx.models.len();

    let mut durable =
        PersistentAdvisor::create(&scratch.0, fx.pool.clone(), opts(12, 5), 4).expect("create");
    drive_durable(&mut durable, &fx, 0..n);
    durable.snapshot_now().expect("snapshot at the very end");
    drop(durable);

    // Corrupt the log deep before the snapshot cut (inside the large
    // `Create` record). The reader must truncate from the first bad
    // record, leaving an intact log that ends before the snapshot —
    // appending there would create an untrustworthy sequence gap, so
    // recovery refuses with a typed error instead of panicking or
    // silently rewriting history.
    let log = scratch.0.join(LOG_FILE);
    flip_byte(
        &log,
        std::fs::metadata(&log).expect("stat").len() as usize - 100,
    );
    match PersistentAdvisor::open(&scratch.0, 4) {
        Err(PersistError::State(msg)) => {
            assert!(msg.contains("snapshot cut"), "unexpected message: {msg}")
        }
        Err(other) => panic!("expected a typed state error, got {other:?}"),
        Ok(_) => panic!("recovery must refuse a log corrupted before the snapshot cut"),
    }
}

#[test]
fn torn_group_committed_batch_tail_replays_the_longest_valid_prefix() {
    // Small on purpose: the sweep below runs one full recovery per byte
    // of the group-committed batch's span.
    let fx = fixture(1, 4);
    let scratch = ScratchDir::new("torn-batch");
    let n = fx.models.len();

    let mut durable =
        PersistentAdvisor::create(&scratch.0, fx.pool.clone(), opts(8, 4), 0).expect("create");
    let specs: Vec<AdmissionSpec<'_>> = (0..n).map(|i| spec_at(&fx, i)).collect();
    durable
        .apply_batch(&specs, GroupCommitPolicy::default(), |_| ())
        .expect("apply batch");
    assert_eq!(durable.log_seq(), 1 + n as u64);
    drop(durable);

    // Expected advisor state after each possible surviving prefix.
    let baselines: Vec<_> = (0..=n)
        .map(|k| {
            let mut adv = OnlineAdvisor::new(fx.pool.clone(), opts(8, 4));
            for i in 0..k {
                adv.apply(spec_at(&fx, i));
            }
            fingerprint(&adv)
        })
        .collect();

    // Frame boundaries from the on-disk layout: an 8-byte header, then
    // per record `[len u32][payload][checksum u64]`. `boundaries[m]` is
    // the byte just past record m+1; `boundaries[0]` ends `Create`.
    let log = scratch.0.join(LOG_FILE);
    let bytes = std::fs::read(&log).expect("read log");
    let mut boundaries = Vec::new();
    let mut off = 8usize;
    while off < bytes.len() {
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
        off += 4 + len + 8;
        boundaries.push(off);
    }
    assert_eq!(off, bytes.len(), "log parses cleanly frame by frame");
    assert_eq!(
        boundaries.len(),
        1 + n,
        "Create plus one frame per admission"
    );

    // The batch went down in one buffered write; a crash can cut it at
    // ANY byte. Every cut must recover the longest valid record prefix,
    // report exactly the torn remainder, and land bit-identical to a
    // serial run that stopped at the same prefix — never panic.
    for cut in boundaries[0]..=bytes.len() {
        std::fs::write(&log, &bytes[..cut]).expect("rewrite truncated log");
        let (restored, report) = PersistentAdvisor::open(&scratch.0, 0).expect("open at torn cut");
        let valid_records = boundaries.iter().filter(|&&b| b <= cut).count();
        let admits = valid_records - 1; // minus the Create record
        assert_eq!(
            restored.log_seq(),
            valid_records as u64,
            "cut at byte {cut}"
        );
        assert_eq!(
            report.log_discarded_bytes,
            (cut - boundaries[valid_records - 1]) as u64,
            "cut at byte {cut}"
        );
        assert_eq!(
            fingerprint(restored.advisor()),
            baselines[admits],
            "cut at byte {cut} diverged from the {admits}-admission prefix"
        );
    }
}

#[test]
fn snapshot_failures_propagate_instead_of_being_swallowed() {
    let fx = fixture(1, 4);
    let scratch = ScratchDir::new("snap-error");
    let dir = scratch.0.join("tenant");

    let mut durable =
        PersistentAdvisor::create(&dir, fx.pool.clone(), opts(8, 4), 0).expect("create");
    drive_durable(&mut durable, &fx, 0..2);
    assert!(durable.snapshot_now().expect("healthy snapshot").is_some());

    // Pull the tenant directory out from under the advisor. Every step
    // of the snapshot write — temp file, rename, and the directory fsync
    // that makes the rename itself durable — must now surface as a typed
    // I/O error. The directory fsync in particular used to be swallowed;
    // this pins the choice that it propagates like the rest.
    std::fs::remove_dir_all(&dir).expect("remove tenant dir");
    assert!(matches!(durable.snapshot_now(), Err(PersistError::Io(_))));
}

#[test]
fn open_or_create_round_trips_and_missing_dirs_are_io_errors() {
    let fx = fixture(2, 4);
    let scratch = ScratchDir::new("open-or-create");
    let missing = scratch.0.join("never-created");
    assert!(matches!(
        PersistentAdvisor::open(&missing, 0),
        Err(PersistError::Io(_))
    ));

    let dir = scratch.0.join("tenant");
    let (mut advisor, report) =
        PersistentAdvisor::open_or_create(&dir, fx.pool.clone(), opts(8, 4), 0).expect("create");
    assert_eq!(report, pinum_persist::RecoveryReport::default());
    drive_durable(&mut advisor, &fx, 0..4);
    let before = fingerprint(advisor.advisor());
    drop(advisor);

    let (reopened, report) =
        PersistentAdvisor::open_or_create(&dir, fx.pool.clone(), opts(8, 4), 0).expect("reopen");
    assert_eq!(report.replayed, 5, "4 admissions + 1 reweight");
    assert_eq!(fingerprint(reopened.advisor()), before);
}
