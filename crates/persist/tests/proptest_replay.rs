//! Property tests for the two contracts PR 9 rests on:
//!
//! 1. the unified [`AdmissionSpec`] path is bit-identical to the
//!    deprecated per-variant entry points it replaced, over *random*
//!    mutation sequences (the online crate's unit test covers one fixed
//!    interleaving; this covers the space);
//! 2. snapshot → restore → replay at **every** prefix point of a random
//!    mutation sequence lands bit-identically on the uninterrupted
//!    session — the warm-restart determinism contract, with the
//!    snapshot cut placed adversarially instead of every K admissions.

mod common;

use common::{fingerprint, fixture, opts, Fixture, ScratchDir};
use pinum_online::{AdmissionSpec, OnlineAdvisor, SharePolicy};
use pinum_persist::PersistentAdvisor;
use proptest::prelude::*;
use std::sync::OnceLock;

/// The fixture costs real optimizer calls; price it once per process.
fn fx() -> &'static Fixture {
    static FX: OnceLock<Fixture> = OnceLock::new();
    FX.get_or_init(|| fixture(3, 10))
}

/// One materialized mutation, derived deterministically from a sampled
/// word so every driver sees the identical sequence.
#[derive(Debug, Clone)]
enum Op {
    Admit {
        weight: f64,
        attributed: bool,
        with_shares: bool,
        deferred: bool,
    },
    Reweight {
        pick: u64,
        weight: f64,
        deferred: bool,
    },
    Evict {
        pick: u64,
    },
    Compact,
    Policy(SharePolicy),
    Readvise,
}

fn positive_weight(x: u64) -> f64 {
    0.25 + (x % 1000) as f64 / 250.0
}

/// `allow_shares` is off for the legacy comparison: the deprecated
/// methods never exposed explicit shares, so there is nothing to match.
fn materialize(raw: &[u64], allow_shares: bool) -> Vec<Op> {
    raw.iter()
        .map(|&x| match x % 10 {
            0..=4 => Op::Admit {
                weight: positive_weight(x >> 4),
                attributed: x & (1 << 40) != 0,
                with_shares: allow_shares && x & (1 << 41) != 0,
                deferred: x & (1 << 42) != 0,
            },
            5 | 6 => Op::Reweight {
                pick: x >> 4,
                weight: positive_weight(x >> 14),
                deferred: x & (1 << 40) != 0,
            },
            7 => Op::Evict { pick: x >> 4 },
            8 => match (x >> 4) % 4 {
                0 => Op::Compact,
                1 => Op::Policy(SharePolicy::Split),
                2 => Op::Policy(SharePolicy::Full),
                _ => Op::Policy(SharePolicy::AccessShare),
            },
            _ => Op::Readvise,
        })
        .collect()
}

/// Deterministic per-template shares for an attributed admission.
fn shares_for(fx: &Fixture, i: usize) -> Vec<f64> {
    fx.templates[i]
        .iter()
        .enumerate()
        .map(|(k, _)| 1.0 / (k + 1) as f64)
        .collect()
}

/// Applies `op` through the spec API on a plain advisor. Returns the new
/// admission count.
fn apply_spec(advisor: &mut OnlineAdvisor, fx: &Fixture, admits: usize, op: &Op) -> usize {
    match op {
        Op::Admit {
            weight,
            attributed,
            with_shares,
            deferred,
        } => {
            let i = admits % fx.models.len();
            let (cache, access) = &fx.models[i];
            let shares = shares_for(fx, i);
            let mut spec = AdmissionSpec::new(cache, access)
                .weight(*weight)
                .deferred(*deferred);
            if *attributed {
                spec = spec.templates(&fx.templates[i]);
                if *with_shares {
                    spec = spec.shares(&shares);
                }
            }
            let adm = advisor.apply(spec);
            if let Some(t) = adm.pending {
                advisor.readvise_triggered(t);
            }
            admits + 1
        }
        Op::Reweight {
            pick,
            weight,
            deferred,
        } if admits > 0 => {
            let outcome = advisor.reweight((*pick % admits as u64) as usize, *weight, *deferred);
            if let Some(t) = outcome.pending {
                advisor.readvise_triggered(t);
            }
            admits
        }
        Op::Evict { pick } if admits > 0 => {
            advisor.evict_admission((*pick % admits as u64) as usize);
            admits
        }
        Op::Compact => {
            advisor.compact();
            admits
        }
        Op::Policy(policy) => {
            advisor.set_share_policy(*policy);
            admits
        }
        Op::Readvise => {
            advisor.readvise();
            admits
        }
        // Reweight/evict with nothing admitted yet: no-ops by construction
        // (the ordinal space is empty; the legacy methods would panic).
        _ => admits,
    }
}

/// The same op through the deprecated pre-spec methods.
#[allow(deprecated)]
fn apply_legacy(advisor: &mut OnlineAdvisor, fx: &Fixture, admits: usize, op: &Op) -> usize {
    match op {
        Op::Admit {
            weight,
            attributed,
            deferred,
            ..
        } => {
            let i = admits % fx.models.len();
            let (cache, access) = &fx.models[i];
            match (*attributed, *deferred) {
                (_, true) => {
                    // The only deferred legacy entry point is the
                    // attributed one; it covers the unattributed sample
                    // too (empty template list).
                    let templates: &[_] = if *attributed { &fx.templates[i] } else { &[] };
                    let (_, trigger) =
                        advisor.admit_attributed_deferred(cache, access, *weight, templates);
                    if let Some(t) = trigger {
                        advisor.readvise_triggered(t);
                    }
                }
                (true, false) => {
                    advisor.admit_attributed(cache, access, *weight, &fx.templates[i]);
                }
                (false, false) => {
                    advisor.admit_weighted(cache, access, *weight);
                }
            }
            admits + 1
        }
        Op::Reweight {
            pick,
            weight,
            deferred,
        } if admits > 0 => {
            let ordinal = (*pick % admits as u64) as usize;
            if *deferred {
                let (_, trigger) = advisor.reweight_admission_deferred(ordinal, *weight);
                if let Some(t) = trigger {
                    advisor.readvise_triggered(t);
                }
            } else {
                advisor.reweight_admission(ordinal, *weight);
            }
            admits
        }
        // Everything below predates the redesign and has one spelling.
        other => apply_spec(advisor, fx, admits, other),
    }
}

/// `op` journaled through the persistent wrapper.
fn apply_durable(advisor: &mut PersistentAdvisor, fx: &Fixture, admits: usize, op: &Op) -> usize {
    match op {
        Op::Admit {
            weight,
            attributed,
            with_shares,
            deferred,
        } => {
            let i = admits % fx.models.len();
            let (cache, access) = &fx.models[i];
            let shares = shares_for(fx, i);
            let mut spec = AdmissionSpec::new(cache, access)
                .weight(*weight)
                .deferred(*deferred);
            if *attributed {
                spec = spec.templates(&fx.templates[i]);
                if *with_shares {
                    spec = spec.shares(&shares);
                }
            }
            let adm = advisor.apply(spec).expect("journaled apply");
            if let Some(t) = adm.pending {
                advisor.readvise_triggered(t).expect("journaled readvise");
            }
            admits + 1
        }
        Op::Reweight {
            pick,
            weight,
            deferred,
        } if admits > 0 => {
            let ordinal = (*pick % admits as u64) as usize;
            let outcome = advisor
                .reweight(ordinal, *weight, *deferred)
                .expect("journaled reweight");
            if let Some(t) = outcome.pending {
                advisor.readvise_triggered(t).expect("journaled readvise");
            }
            admits
        }
        Op::Evict { pick } if admits > 0 => {
            advisor
                .evict_admission((*pick % admits as u64) as usize)
                .expect("journaled evict");
            admits
        }
        Op::Compact => {
            advisor.compact().expect("journaled compact");
            admits
        }
        Op::Policy(policy) => {
            advisor.set_share_policy(*policy).expect("journaled policy");
            admits
        }
        Op::Readvise => {
            advisor.readvise().expect("journaled readvise");
            admits
        }
        _ => admits,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random mutation sequences through the spec API and through the
    /// deprecated entry points, compared bit for bit at the end.
    #[test]
    fn spec_api_is_bit_identical_to_legacy_methods(
        raw in prop::collection::vec(0u64..u64::MAX, 12..=20),
    ) {
        let fx = fx();
        let ops = materialize(&raw, false);
        let mut legacy = OnlineAdvisor::new(fx.pool.clone(), opts(12, 5));
        let mut spec = OnlineAdvisor::new(fx.pool.clone(), opts(12, 5));
        let (mut admits_l, mut admits_s) = (0, 0);
        for op in &ops {
            admits_l = apply_legacy(&mut legacy, fx, admits_l, op);
            admits_s = apply_spec(&mut spec, fx, admits_s, op);
        }
        prop_assert_eq!(fingerprint(&legacy), fingerprint(&spec));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// For a random mutation sequence, place the snapshot cut at every
    /// prefix point in turn: restore-plus-replay must land exactly on
    /// the uninterrupted session each time, with zero full re-pricings
    /// spent on the restore itself.
    #[test]
    fn restore_at_every_prefix_equals_the_uninterrupted_session(
        raw in prop::collection::vec(0u64..u64::MAX, 8..=12),
    ) {
        let fx = fx();
        let ops = materialize(&raw, true);

        let mut baseline = OnlineAdvisor::new(fx.pool.clone(), opts(12, 5));
        let mut admits = 0;
        for op in &ops {
            admits = apply_spec(&mut baseline, fx, admits, op);
        }
        let want = fingerprint(&baseline);

        for cut in 0..=ops.len() {
            let scratch = ScratchDir::new(&format!("prefix-{cut}"));
            let mut durable =
                PersistentAdvisor::create(&scratch.0, fx.pool.clone(), opts(12, 5), 0)
                    .expect("create");
            let mut admits = 0;
            for (i, op) in ops.iter().enumerate() {
                if i == cut {
                    durable.snapshot_now().expect("snapshot at the cut");
                }
                admits = apply_durable(&mut durable, fx, admits, op);
            }
            if cut == ops.len() {
                durable.snapshot_now().expect("snapshot at the end");
            }
            let full_repricings_before = durable.advisor().stats().full_repricings;
            drop(durable);

            let (restored, report) =
                PersistentAdvisor::open(&scratch.0, 0).expect("restore");
            prop_assert!(report.snapshot_seq.is_some(), "cut {cut} must restore from its snapshot");
            prop_assert_eq!(report.log_discarded_bytes, 0);
            prop_assert_eq!(fingerprint(restored.advisor()), want.clone(), "cut {}", cut);
            // The restore adopts serialized per-query costs; replaying the
            // tail re-derives everything else. No full re-pricing beyond
            // what the uninterrupted session itself spent.
            prop_assert_eq!(
                restored.advisor().stats().full_repricings,
                full_repricings_before
            );
        }
    }
}
