//! Shared fixture for the persistence integration tests: a small
//! drifting workload priced once, plus helpers to drive an advisor and
//! fingerprint its complete observable state.

use pinum_advisor::candidates::generate_candidates;
use pinum_core::access_costs::{collect_pinum, AccessCostCatalog};
use pinum_core::builder::{build_cache_pinum, BuilderOptions};
use pinum_core::{CandidatePool, PlanCache};
use pinum_online::{query_templates, OnlineAdvisor, OnlineAdvisorOptions};
use pinum_optimizer::Optimizer;
use pinum_query::TemplateKey;
use pinum_workload::drift::{DriftProfile, DriftStream};
use pinum_workload::star::StarSchema;

pub const BUDGET: u64 = 1 << 30;

pub struct Fixture {
    pub pool: CandidatePool,
    // Read by the crash-injection binary only; each test binary compiles
    // its own copy of this module.
    #[allow(dead_code)]
    pub weights: Vec<f64>,
    pub templates: Vec<Vec<TemplateKey>>,
    pub models: Vec<(PlanCache, AccessCostCatalog)>,
}

/// One optimizer pass over a small drifting stream — everything an
/// admission needs, priced up front so tests only exercise the advisor.
pub fn fixture(phases: usize, phase_length: usize) -> Fixture {
    let schema = StarSchema::generate(42, 0.001);
    let profile = DriftProfile {
        phases,
        phase_length,
        edge_window: 3,
        churn: 0.05,
        growth_per_phase: 1.0,
    };
    let stream: Vec<_> = DriftStream::new(&schema, 9, profile).collect();
    let queries: Vec<_> = stream.into_iter().map(|d| (d.query, d.weight)).collect();
    let only: Vec<_> = queries.iter().map(|(q, _)| q.clone()).collect();
    let pool = generate_candidates(&schema.catalog, &only);
    let optimizer = Optimizer::new(&schema.catalog);
    let models = only
        .iter()
        .map(|q| {
            let built = build_cache_pinum(&optimizer, q, &BuilderOptions::default());
            let (access, _) = collect_pinum(&optimizer, q, &pool);
            (built.cache, access)
        })
        .collect();
    Fixture {
        pool,
        weights: queries.iter().map(|(_, w)| *w).collect(),
        templates: queries.iter().map(|(q, _)| query_templates(q)).collect(),
        models,
    }
}

pub fn opts(window: usize, epoch: usize) -> OnlineAdvisorOptions {
    OnlineAdvisorOptions {
        window_capacity: window,
        epoch_length: epoch,
        ..OnlineAdvisorOptions::defaults(BUDGET)
    }
}

/// Every bit the determinism contract covers: selection words via ids,
/// priced-cost bits (total and per query), and the counters.
pub fn fingerprint(advisor: &OnlineAdvisor) -> (Vec<usize>, u64, Vec<u64>, Vec<u64>) {
    let stats = advisor.stats();
    (
        advisor.selection().ids().collect(),
        advisor.current_cost().to_bits(),
        advisor
            .to_parts()
            .per_query
            .iter()
            .map(|c| c.to_bits())
            .collect(),
        vec![
            stats.admits as u64,
            stats.evictions as u64,
            stats.reweights as u64,
            stats.readvises as u64,
            stats.epoch_readvises as u64,
            stats.drift_readvises as u64,
            stats.forced_readvises as u64,
            stats.scoped_readvises as u64,
            stats.full_repricings as u64,
            stats.compactions as u64,
        ],
    )
}

/// Self-cleaning scratch directory (no external tempfile dependency).
pub struct ScratchDir(pub std::path::PathBuf);

impl ScratchDir {
    pub fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "pinum-persist-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Self(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}
