//! The append-only mutation log.
//!
//! Every state-changing call a [`crate::PersistentAdvisor`] accepts is
//! written here *before* it is applied, as one self-checking record:
//!
//! ```text
//! file   := magic:u32 version:u32 record*
//! record := len:u32 payload checksum:u64      (checksum = FNV-1a 64 of payload)
//! payload:= seq:u64 tag:u8 body
//! ```
//!
//! Replaying the records in order through the same advisor code paths
//! reproduces the daemon **bit-identically** — the advisor is
//! deterministic, so the log only needs to capture its *inputs*. That is
//! also why epoch- and drift-triggered re-advises that execute inline
//! never appear in the log: they are consequences of the recorded
//! admissions, and replay re-derives them. Deferred triggers *do* get a
//! [`LogRecord::Readvise`] record at the moment the caller actually
//! executes them, because the budget gate that defers them lives outside
//! the advisor and is free to reorder across admissions.
//!
//! A torn tail (the record being written when the process died) is
//! detected by the length/checksum pair and *truncated*: recovery keeps
//! every record before it and reports the discarded byte count. A
//! corrupt record mid-file poisons everything after it — the reader
//! cannot resynchronize reliably — so the tail from the first bad record
//! onward is discarded the same way.

use pinum_core::access_costs::AccessCostCatalog;
use pinum_core::cache::PlanCache;
use pinum_core::CandidatePool;
use pinum_online::attribution::SharePolicy;
use pinum_online::{OnlineAdvisorOptions, ReadviseTrigger};
use pinum_protocol::wire::{put_bool, put_f64, put_u32, put_u64, put_u8, put_vec, Cursor};
use pinum_protocol::{WireAccessCatalog, WireError, WireIndex, WirePlanCache, WireTemplate};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

use crate::codec::{self, fnv1a};
use crate::convert::{
    access_from_wire, access_to_wire, cache_from_wire, cache_to_wire, pool_from_wire, pool_to_wire,
    template_from_wire, template_to_wire,
};
use crate::PersistError;

/// Log file magic: `PLOG`.
pub const LOG_MAGIC: u32 = 0x504C_4F47;
/// Bumped on every incompatible layout change.
pub const LOG_VERSION: u32 = 1;
/// Per-record payload cap, checked before allocating (a log record is at
/// most one admission's artifacts — far below this).
pub const MAX_RECORD_LEN: usize = 64 * 1024 * 1024;

/// One logged mutation, in domain terms.
#[derive(Debug, Clone)]
pub enum LogRecord {
    /// The tenant's birth certificate: candidate pool + advisor options.
    /// Always the first record (seq 1); never appears again.
    Create {
        pool: CandidatePool,
        opts: OnlineAdvisorOptions,
    },
    /// One admission — the full [`pinum_online::AdmissionSpec`] payload.
    Admit {
        cache: PlanCache,
        access: AccessCostCatalog,
        weight: f64,
        templates: Vec<TemplateKeyOwned>,
        shares: Option<Vec<f64>>,
        deferred: bool,
    },
    /// One reweight event against a stable admission ordinal.
    Reweight {
        ordinal: u64,
        weight: f64,
        deferred: bool,
    },
    /// One explicit eviction.
    Evict { ordinal: u64 },
    /// A re-advise executed *by the caller*: a forced round, or a
    /// deferred epoch/drift trigger the budget gate released.
    Readvise { trigger: ReadviseTrigger },
    /// An explicit compaction (re-advise-time auto-compactions are
    /// consequences and are not logged).
    Compact,
    /// A share-policy change.
    SetSharePolicy { policy: SharePolicy },
}

/// Alias kept for readability in [`LogRecord::Admit`].
pub type TemplateKeyOwned = pinum_query::TemplateKey;

const TAG_CREATE: u8 = 1;
const TAG_ADMIT: u8 = 2;
const TAG_REWEIGHT: u8 = 3;
const TAG_EVICT: u8 = 4;
const TAG_READVISE: u8 = 5;
const TAG_COMPACT: u8 = 6;
const TAG_SET_SHARE_POLICY: u8 = 7;

fn encode_trigger(out: &mut Vec<u8>, t: ReadviseTrigger) {
    put_u8(
        out,
        match t {
            ReadviseTrigger::Epoch => 0,
            ReadviseTrigger::Drift => 1,
            ReadviseTrigger::Forced => 2,
        },
    );
}

fn decode_trigger(c: &mut Cursor<'_>) -> Result<ReadviseTrigger, WireError> {
    Ok(match c.u8()? {
        0 => ReadviseTrigger::Epoch,
        1 => ReadviseTrigger::Drift,
        2 => ReadviseTrigger::Forced,
        _ => return Err(WireError::Malformed("unknown readvise trigger tag")),
    })
}

fn encode_record(out: &mut Vec<u8>, seq: u64, record: &LogRecord) {
    put_u64(out, seq);
    match record {
        LogRecord::Create { pool, opts } => {
            put_u8(out, TAG_CREATE);
            put_vec(out, &pool_to_wire(pool), |o, ix| ix.encode(o));
            codec::encode_options(out, opts);
        }
        LogRecord::Admit {
            cache,
            access,
            weight,
            templates,
            shares,
            deferred,
        } => {
            put_u8(out, TAG_ADMIT);
            put_f64(out, *weight);
            put_bool(out, *deferred);
            codec::put_shares(out, shares);
            cache_to_wire(cache).encode(out);
            access_to_wire(access).encode(out);
            put_vec(out, templates, |o, t| template_to_wire(t).encode(o));
        }
        LogRecord::Reweight {
            ordinal,
            weight,
            deferred,
        } => {
            put_u8(out, TAG_REWEIGHT);
            put_u64(out, *ordinal);
            put_f64(out, *weight);
            put_bool(out, *deferred);
        }
        LogRecord::Evict { ordinal } => {
            put_u8(out, TAG_EVICT);
            put_u64(out, *ordinal);
        }
        LogRecord::Readvise { trigger } => {
            put_u8(out, TAG_READVISE);
            encode_trigger(out, *trigger);
        }
        LogRecord::Compact => put_u8(out, TAG_COMPACT),
        LogRecord::SetSharePolicy { policy } => {
            put_u8(out, TAG_SET_SHARE_POLICY);
            codec::encode_share_policy(out, *policy);
        }
    }
}

/// `pool_len` scopes candidate-id validation for admission payloads; it
/// is `None` only until the `Create` record has been decoded.
fn decode_record(
    c: &mut Cursor<'_>,
    pool_len: Option<usize>,
) -> Result<(u64, LogRecord), PersistError> {
    let seq = c.u64()?;
    let tag = c.u8()?;
    let record = match tag {
        TAG_CREATE => {
            let pool = pool_from_wire(&c.vec(4, WireIndex::decode)?)?;
            let opts = codec::decode_options(c)?;
            LogRecord::Create { pool, opts }
        }
        TAG_ADMIT => {
            let pool_len =
                pool_len.ok_or(PersistError::State("admission before the create record"))?;
            let weight = c.f64()?;
            let deferred = c.bool()?;
            let shares = codec::shares(c)?;
            let cache = cache_from_wire(&WirePlanCache::decode(c)?)?;
            let access = access_from_wire(&WireAccessCatalog::decode(c)?, pool_len)?;
            let templates = c
                .vec(4, WireTemplate::decode)?
                .iter()
                .map(template_from_wire)
                .collect();
            LogRecord::Admit {
                cache,
                access,
                weight,
                templates,
                shares,
                deferred,
            }
        }
        TAG_REWEIGHT => LogRecord::Reweight {
            ordinal: c.u64()?,
            weight: c.f64()?,
            deferred: c.bool()?,
        },
        TAG_EVICT => LogRecord::Evict { ordinal: c.u64()? },
        TAG_READVISE => LogRecord::Readvise {
            trigger: decode_trigger(c)?,
        },
        TAG_COMPACT => LogRecord::Compact,
        TAG_SET_SHARE_POLICY => LogRecord::SetSharePolicy {
            policy: codec::decode_share_policy(c)?,
        },
        _ => return Err(WireError::Malformed("unknown log record tag").into()),
    };
    if !c.exhausted() {
        return Err(WireError::Malformed("log record has trailing bytes").into());
    }
    Ok((seq, record))
}

/// Caps on how many records one group commit may fold into a single
/// fsync. A batch that exceeds either cap is split into multiple
/// write+fsync chunks; every chunk still holds at least one record, so
/// an oversized single record passes through rather than wedging.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupCommitPolicy {
    /// Most records folded into one fsync.
    pub max_records: usize,
    /// Most framed bytes (length + payload + checksum) per fsync.
    pub max_bytes: usize,
}

impl Default for GroupCommitPolicy {
    fn default() -> Self {
        Self {
            max_records: 64,
            max_bytes: 8 * 1024 * 1024,
        }
    }
}

impl GroupCommitPolicy {
    /// Normalized caps — zero means "no batching", i.e. one record per
    /// fsync, never "reject everything".
    fn caps(&self) -> (usize, usize) {
        (self.max_records.max(1), self.max_bytes.max(1))
    }
}

/// Durability-side counters for one log writer's lifetime. Group commit
/// is a *count*-based win — fewer fsyncs than appends — so the counters
/// are what the acceptance gate and the wire-level stats report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PersistStats {
    /// Records appended (singly or inside batches).
    pub appends: u64,
    /// `fdatasync` calls issued, including the header sync at create.
    pub fsyncs: u64,
    /// Group-committed chunks written (each cost exactly one fsync).
    pub batches: u64,
    /// Largest record count folded into one fsync.
    pub max_batch_records: u64,
}

/// Append handle over the tenant's `events.log`.
pub struct LogWriter {
    file: File,
    stats: PersistStats,
}

impl LogWriter {
    /// Creates a fresh log (truncating any existing file) and writes the
    /// header.
    pub fn create(path: &Path) -> Result<Self, PersistError> {
        let mut file = File::create(path)?;
        let mut header = Vec::with_capacity(8);
        put_u32(&mut header, LOG_MAGIC);
        put_u32(&mut header, LOG_VERSION);
        file.write_all(&header)?;
        file.sync_data()?;
        Ok(Self {
            file,
            stats: PersistStats {
                fsyncs: 1,
                ..PersistStats::default()
            },
        })
    }

    /// Reopens an existing log for appending. `valid_len` is the byte
    /// length of the intact prefix as reported by [`read_log`]; anything
    /// beyond it (a torn tail) is truncated away first so new records
    /// never land after garbage.
    pub fn reopen(path: &Path, valid_len: u64) -> Result<Self, PersistError> {
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(valid_len)?;
        let mut file = OpenOptions::new().append(true).open(path)?;
        file.flush()?;
        Ok(Self {
            file,
            stats: PersistStats::default(),
        })
    }

    /// Counters accumulated since this writer was created or reopened.
    pub fn stats(&self) -> PersistStats {
        self.stats
    }

    /// Appends one record durably (length + payload + checksum, then
    /// `fdatasync`): when this returns, a crash at any later point
    /// replays the record.
    pub fn append(&mut self, seq: u64, record: &LogRecord) -> Result<(), PersistError> {
        let mut payload = Vec::new();
        encode_record(&mut payload, seq, record);
        let mut framed = Vec::with_capacity(payload.len() + 12);
        put_u32(&mut framed, payload.len() as u32);
        framed.extend_from_slice(&payload);
        put_u64(&mut framed, fnv1a(&payload));
        self.file.write_all(&framed)?;
        self.file.sync_data()?;
        self.stats.appends += 1;
        self.stats.fsyncs += 1;
        Ok(())
    }

    /// Group commit: encodes every record into one contiguous buffer and
    /// makes them durable with **one** write and **one** `fdatasync`,
    /// splitting only where `policy` caps are exceeded. Records take
    /// consecutive sequence numbers starting at `first_seq`.
    ///
    /// The durability contract is the same as N [`Self::append`] calls
    /// observed only at chunk granularity: when this returns, every
    /// record is durable; if the process dies mid-write, recovery keeps
    /// the longest valid record *prefix* of the chunk (each record still
    /// carries its own length + checksum frame, so a torn tail tears
    /// between records, never across the reader's framing).
    pub fn append_batch(
        &mut self,
        first_seq: u64,
        records: &[LogRecord],
        policy: GroupCommitPolicy,
    ) -> Result<(), PersistError> {
        let (max_records, max_bytes) = policy.caps();
        let mut buf = Vec::new();
        let mut in_chunk = 0usize;
        for (i, record) in records.iter().enumerate() {
            let payload_start = buf.len();
            put_u32(&mut buf, 0); // frame length, patched below
            encode_record(&mut buf, first_seq + i as u64, record);
            let payload_len = buf.len() - payload_start - 4;
            buf[payload_start..payload_start + 4]
                .copy_from_slice(&(payload_len as u32).to_le_bytes());
            let sum = fnv1a(&buf[payload_start + 4..]);
            put_u64(&mut buf, sum);
            in_chunk += 1;
            let more = i + 1 < records.len();
            if !more || in_chunk >= max_records || buf.len() >= max_bytes {
                self.file.write_all(&buf)?;
                self.file.sync_data()?;
                self.stats.appends += in_chunk as u64;
                self.stats.fsyncs += 1;
                self.stats.batches += 1;
                self.stats.max_batch_records = self.stats.max_batch_records.max(in_chunk as u64);
                buf.clear();
                in_chunk = 0;
            }
        }
        Ok(())
    }
}

/// Everything [`read_log`] recovered.
pub struct RecoveredLog {
    /// The intact records, in order. Sequence numbers are checked to be
    /// contiguous starting at 1.
    pub records: Vec<(u64, LogRecord)>,
    /// Byte length of the intact prefix (header + whole records).
    pub valid_len: u64,
    /// Bytes discarded behind the first torn or corrupt record.
    pub discarded_bytes: u64,
}

/// Reads a log file, stopping cleanly at the first torn or corrupt
/// record. Structural corruption *of the tail* is expected after a
/// crash and is reported, not an error; a bad header or a non-contiguous
/// sequence is real corruption and fails the whole recovery.
pub fn read_log(path: &Path) -> Result<RecoveredLog, PersistError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < 8 {
        return Err(PersistError::State("log file shorter than its header"));
    }
    {
        let mut c = Cursor::new(&bytes[..8]);
        if c.u32()? != LOG_MAGIC {
            return Err(PersistError::State("log file has the wrong magic"));
        }
        if c.u32()? != LOG_VERSION {
            return Err(PersistError::State("log file has an unsupported version"));
        }
    }
    let mut records = Vec::new();
    let mut pool_len = None;
    let mut offset = 8usize;
    let mut next_seq = 1u64;
    loop {
        let rest = &bytes[offset..];
        if rest.is_empty() {
            break;
        }
        // Frame: len u32 + payload + checksum u64. Anything that does
        // not parse from here on is a torn tail.
        let Some(framed) = try_frame(rest) else { break };
        let Ok((seq, record)) = decode_record(&mut Cursor::new(framed), pool_len) else {
            break;
        };
        if seq != next_seq {
            return Err(PersistError::State("log sequence numbers not contiguous"));
        }
        if let LogRecord::Create { pool, .. } = &record {
            if pool_len.is_some() {
                return Err(PersistError::State("duplicate create record in log"));
            }
            pool_len = Some(pool.len());
        }
        next_seq += 1;
        records.push((seq, record));
        offset += 12 + framed.len();
    }
    Ok(RecoveredLog {
        records,
        valid_len: offset as u64,
        discarded_bytes: (bytes.len() - offset) as u64,
    })
}

/// Extracts one whole checksum-verified record payload from the head of
/// `rest`, or `None` if the bytes do not contain one (torn tail).
fn try_frame(rest: &[u8]) -> Option<&[u8]> {
    if rest.len() < 12 {
        return None;
    }
    let len = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
    if len > MAX_RECORD_LEN || rest.len() < 12 + len {
        return None;
    }
    let payload = &rest[4..4 + len];
    let stored = u64::from_le_bytes(rest[4 + len..12 + len].try_into().unwrap());
    (fnv1a(payload) == stored).then_some(payload)
}
