//! Versioned binary snapshots of the full daemon state.
//!
//! ```text
//! file    := magic:u32 version:u32 payload_len:u64 payload checksum:u64
//! payload := log_seq:u64 pool options advisor-parts
//! ```
//!
//! A snapshot is a *cut* through the mutation log: `log_seq` names the
//! last log record already folded into the serialized state, so recovery
//! loads the snapshot and replays only the records after it. Snapshots
//! are written to `snap-<log_seq>.bin` via a temp file + atomic rename
//! (a torn write leaves the previous snapshot untouched), and the two
//! newest files are kept so a corrupt final snapshot falls back to its
//! predecessor — with a longer replay, never with data loss.
//!
//! The payload length is capped and checked **before** allocating, and
//! the trailing FNV-1a 64 checksum is verified before any decoding, so a
//! truncated, padded, or bit-flipped file is rejected with a typed error.

use pinum_core::CandidatePool;
use pinum_online::{OnlineAdvisorOptions, OnlineAdvisorParts};
use pinum_protocol::wire::{put_u32, put_u64, put_vec, Cursor};
use pinum_protocol::{WireError, WireIndex};
use std::fs::{self, File};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use crate::codec::{self, fnv1a};
use crate::convert::{pool_from_wire, pool_to_wire};
use crate::PersistError;

/// Snapshot file magic: `PSNP`.
pub const SNAPSHOT_MAGIC: u32 = 0x5053_4E50;
/// Bumped on every incompatible layout change.
pub const SNAPSHOT_VERSION: u32 = 1;
/// Payload cap, checked against the actual file size before allocating.
pub const MAX_SNAPSHOT_LEN: usize = 256 * 1024 * 1024;
/// How many snapshot generations to keep on disk.
pub const SNAPSHOTS_KEPT: usize = 2;

/// One decoded snapshot: everything needed to rebuild the daemon plus
/// the log position it was cut at.
pub struct Snapshot {
    /// Sequence number of the last log record folded into `parts`.
    pub log_seq: u64,
    pub pool: CandidatePool,
    pub opts: OnlineAdvisorOptions,
    pub parts: OnlineAdvisorParts,
}

fn snapshot_path(dir: &Path, log_seq: u64) -> PathBuf {
    // Zero-padded so lexicographic order equals numeric order.
    dir.join(format!("snap-{log_seq:020}.bin"))
}

/// Writes one snapshot durably and prunes old generations down to
/// [`SNAPSHOTS_KEPT`]. Returns the final path.
pub fn write_snapshot(
    dir: &Path,
    log_seq: u64,
    pool: &CandidatePool,
    opts: &OnlineAdvisorOptions,
    parts: &OnlineAdvisorParts,
) -> Result<PathBuf, PersistError> {
    let mut payload = Vec::new();
    put_u64(&mut payload, log_seq);
    put_vec(&mut payload, &pool_to_wire(pool), |o, ix| ix.encode(o));
    codec::encode_options(&mut payload, opts);
    codec::encode_advisor_parts(&mut payload, parts);

    let mut file_bytes = Vec::with_capacity(payload.len() + 24);
    put_u32(&mut file_bytes, SNAPSHOT_MAGIC);
    put_u32(&mut file_bytes, SNAPSHOT_VERSION);
    put_u64(&mut file_bytes, payload.len() as u64);
    file_bytes.extend_from_slice(&payload);
    put_u64(&mut file_bytes, fnv1a(&payload));

    let path = snapshot_path(dir, log_seq);
    let tmp = path.with_extension("bin.tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&file_bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, &path)?;
    // Make the rename itself durable. A failure here means the snapshot
    // may silently vanish on power loss (the data blocks are synced but
    // the directory entry is not), so it propagates like any other
    // persistence error instead of being swallowed — the caller still
    // holds the log, which replays past the missing snapshot.
    let d = File::open(dir)?;
    d.sync_all()?;
    prune(dir)?;
    Ok(path)
}

/// Deletes all but the newest [`SNAPSHOTS_KEPT`] snapshot files (and any
/// stale temp files from interrupted writes).
fn prune(dir: &Path) -> Result<(), PersistError> {
    let mut snaps = list_snapshots(dir)?;
    while snaps.len() > SNAPSHOTS_KEPT {
        let (_, oldest) = snaps.remove(0);
        let _ = fs::remove_file(oldest);
    }
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.extension().is_some_and(|e| e == "tmp") {
            let _ = fs::remove_file(path);
        }
    }
    Ok(())
}

/// All snapshot files in the directory, oldest first.
pub fn list_snapshots(dir: &Path) -> Result<Vec<(u64, PathBuf)>, PersistError> {
    let mut snaps = Vec::new();
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if let Some(seq) = name
            .strip_prefix("snap-")
            .and_then(|r| r.strip_suffix(".bin"))
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            snaps.push((seq, path));
        }
    }
    snaps.sort_by_key(|&(seq, _)| seq);
    Ok(snaps)
}

/// Reads and fully validates one snapshot file.
pub fn read_snapshot(path: &Path) -> Result<Snapshot, PersistError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let mut c = Cursor::new(&bytes);
    if c.u32()? != SNAPSHOT_MAGIC {
        return Err(PersistError::State("snapshot has the wrong magic"));
    }
    if c.u32()? != SNAPSHOT_VERSION {
        return Err(PersistError::State("snapshot has an unsupported version"));
    }
    let payload_len = c.u64()? as usize;
    if payload_len > MAX_SNAPSHOT_LEN || payload_len + 24 != bytes.len() {
        return Err(PersistError::State("snapshot length does not match file"));
    }
    let payload = &bytes[16..16 + payload_len];
    let stored = u64::from_le_bytes(bytes[16 + payload_len..].try_into().unwrap());
    if fnv1a(payload) != stored {
        return Err(PersistError::State("snapshot checksum mismatch"));
    }
    let mut c = Cursor::new(payload);
    let log_seq = c.u64()?;
    let pool = pool_from_wire(&c.vec(4, WireIndex::decode)?)?;
    let opts = codec::decode_options(&mut c)?;
    let parts = codec::decode_advisor_parts(&mut c)?;
    if !c.exhausted() {
        return Err(WireError::Malformed("snapshot has trailing bytes").into());
    }
    Ok(Snapshot {
        log_seq,
        pool,
        opts,
        parts,
    })
}

/// Loads the newest snapshot that validates, newest-first. Returns the
/// snapshot (if any survived) and how many newer files were discarded as
/// corrupt.
pub fn load_latest(dir: &Path) -> Result<(Option<Snapshot>, usize), PersistError> {
    let mut discarded = 0usize;
    for (_, path) in list_snapshots(dir)?.into_iter().rev() {
        match read_snapshot(&path) {
            Ok(snap) => return Ok((Some(snap), discarded)),
            Err(_) => discarded += 1,
        }
    }
    Ok((None, discarded))
}
