//! # pinum-persist: durable advisor state
//!
//! The online daemon's value is the state it accumulates: a streaming
//! [`pinum_core::WorkloadModel`] whose priced totals are *spliced, never
//! rebuilt*, across thousands of admissions. Losing that state to a
//! restart means re-paying every optimizer call the paper's one-call
//! construction saved. This crate makes the state survive:
//!
//! - [`snapshot`] — a versioned binary image of the complete daemon
//!   (model SoA arrays, selection bitset, spliced per-query costs,
//!   attribution books, ordinal bookkeeping, counters), framed like the
//!   wire protocol: magic, format version, length checked against a cap
//!   *before* allocation, FNV-1a 64 checksum verified before decoding.
//! - [`log`] — an append-only record of every mutation the daemon
//!   accepted ([`pinum_online::AdmissionSpec`] payloads, reweights,
//!   evictions, executed deferred triggers, policy changes), fsynced
//!   record by record.
//! - [`PersistentAdvisor`] — the write-ahead pairing of the two: log
//!   first, apply second, snapshot every K admissions. Recovery loads
//!   the newest snapshot that validates (falling back to its
//!   predecessor if the final write was torn) and replays the log tail
//!   through the very same [`pinum_online::OnlineAdvisor::apply`] entry
//!   point the live daemon used.
//!
//! The contract is the repo-wide determinism discipline extended across
//! process death: a restored daemon is **bit-identical** to one that
//! never stopped — same selection words, same priced-cost bits, same
//! counters, same future decisions — and the restore itself performs
//! **zero** full re-pricings, because
//! [`pinum_core::PricingSession::restore`] adopts the serialized
//! per-query costs and re-derives the pairwise total tree as the pure
//! function of them that it is. `exp_warm_restart` gates this end to
//! end: kill mid-stream, restore, finish the stream, compare every bit
//! against an uninterrupted baseline.
//!
//! [`convert`] (re-exported to `pinum-server`) hosts the validated
//! wire ↔ domain conversions both the TCP daemon and the on-disk
//! formats share.

pub mod codec;
pub mod convert;
pub mod log;
pub mod snapshot;

use pinum_online::{
    Admission, AdmissionSpec, OnlineAdvisor, OnlineAdvisorOptions, ReadviseReport, ReadviseTrigger,
    ReweightOutcome, SharePolicy,
};
use pinum_protocol::WireError;
use std::fs;
use std::path::{Path, PathBuf};

use crate::convert::ConvertError;
use crate::log::{read_log, LogRecord, LogWriter};
use crate::snapshot::{load_latest, write_snapshot};
use pinum_core::CandidatePool;

pub use crate::log::{GroupCommitPolicy, PersistStats};

/// Anything that can go wrong persisting or recovering advisor state.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem trouble.
    Io(std::io::Error),
    /// Structurally malformed bytes (shares the protocol's error type).
    Wire(WireError),
    /// Structurally valid bytes that violate a domain invariant.
    Convert(ConvertError),
    /// A cross-file or cross-array consistency violation.
    State(&'static str),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "persistence I/O error: {e}"),
            Self::Wire(e) => write!(f, "malformed persisted bytes: {e}"),
            Self::Convert(e) => write!(f, "invalid persisted payload: {e}"),
            Self::State(msg) => write!(f, "inconsistent persisted state: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<WireError> for PersistError {
    fn from(e: WireError) -> Self {
        Self::Wire(e)
    }
}

impl From<ConvertError> for PersistError {
    fn from(e: ConvertError) -> Self {
        Self::Convert(e)
    }
}

impl From<&'static str> for PersistError {
    fn from(msg: &'static str) -> Self {
        Self::State(msg)
    }
}

/// What recovery found and did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Log position of the snapshot the daemon was rebuilt from
    /// (`None` ⇒ rebuilt from the log alone, starting at `Create`).
    pub snapshot_seq: Option<u64>,
    /// Newer snapshot files that failed validation and were skipped.
    pub snapshots_discarded: usize,
    /// Log records replayed on top of the snapshot.
    pub replayed: usize,
    /// Bytes discarded behind the first torn or corrupt log record.
    pub log_discarded_bytes: u64,
}

struct Store {
    dir: PathBuf,
    writer: LogWriter,
    /// Sequence number of the last record written (or replayed).
    seq: u64,
    /// Admissions between automatic snapshots (0 = only on request).
    snapshot_every: usize,
    admits_since_snapshot: usize,
    last_snapshot_seq: Option<u64>,
}

/// A write-ahead persistent wrapper around [`OnlineAdvisor`].
///
/// Every mutation is appended to the log *before* it touches the
/// advisor, so a crash between the two replays the mutation on restart
/// rather than losing it. Read accessors pass through via
/// [`Self::advisor`]; mutations **must** go through this wrapper (there
/// is deliberately no `advisor_mut`).
///
/// Construct with [`Self::volatile`] (no disk, zero overhead — the
/// server's default), [`Self::create`] (fresh durable tenant), or
/// [`Self::open`] (recover an existing one).
pub struct PersistentAdvisor {
    advisor: OnlineAdvisor,
    store: Option<Store>,
}

/// The log file name inside a tenant's persistence directory.
pub const LOG_FILE: &str = "events.log";

fn validate_opts(opts: &OnlineAdvisorOptions) -> Result<(), PersistError> {
    if opts.window_capacity < 1
        || opts.epoch_length < 1
        || !(opts.drift_threshold >= 0.0 && opts.drift_threshold.is_finite())
        || !(opts.attribution_threshold >= 0.0 && opts.attribution_threshold.is_finite())
        || !(opts.decay > 0.0 && opts.decay <= 1.0)
    {
        return Err(PersistError::State("invalid advisor options"));
    }
    Ok(())
}

impl PersistentAdvisor {
    /// A purely in-memory advisor — identical behaviour, no disk I/O.
    pub fn volatile(pool: CandidatePool, opts: OnlineAdvisorOptions) -> Self {
        Self {
            advisor: OnlineAdvisor::new(pool, opts),
            store: None,
        }
    }

    /// Creates a fresh durable tenant in `dir` (created if missing; any
    /// existing log there is truncated). The `Create` record — pool +
    /// options — is on disk when this returns.
    pub fn create(
        dir: &Path,
        pool: CandidatePool,
        opts: OnlineAdvisorOptions,
        snapshot_every: usize,
    ) -> Result<Self, PersistError> {
        validate_opts(&opts)?;
        fs::create_dir_all(dir)?;
        let mut writer = LogWriter::create(&dir.join(LOG_FILE))?;
        writer.append(
            1,
            &LogRecord::Create {
                pool: pool.clone(),
                opts,
            },
        )?;
        Ok(Self {
            advisor: OnlineAdvisor::new(pool, opts),
            store: Some(Store {
                dir: dir.to_path_buf(),
                writer,
                seq: 1,
                snapshot_every,
                admits_since_snapshot: 0,
                last_snapshot_seq: None,
            }),
        })
    }

    /// Recovers a durable tenant from `dir`: newest valid snapshot (a
    /// corrupt final snapshot falls back to its predecessor) plus the
    /// log tail after it, replayed through the same `apply` path the
    /// live daemon used. A torn log tail is truncated and reported —
    /// recovery never panics on a crashed predecessor's leftovers.
    pub fn open(dir: &Path, snapshot_every: usize) -> Result<(Self, RecoveryReport), PersistError> {
        let log_path = dir.join(LOG_FILE);
        let recovered = read_log(&log_path)?;
        let (snap, snapshots_discarded) = load_latest(dir)?;
        let (mut advisor, base_seq, snapshot_seq, last_snapshot_seq) = match snap {
            Some(s) => {
                validate_opts(&s.opts)?;
                let seq = s.log_seq;
                (
                    OnlineAdvisor::from_parts(s.pool, s.opts, s.parts)?,
                    seq,
                    Some(seq),
                    Some(seq),
                )
            }
            None => {
                let Some((_, LogRecord::Create { pool, opts })) = recovered.records.first() else {
                    return Err(PersistError::State(
                        "no valid snapshot and no create record to recover from",
                    ));
                };
                validate_opts(opts)?;
                (OnlineAdvisor::new(pool.clone(), *opts), 1, None, None)
            }
        };
        // The writer appends and fsyncs before applying, and snapshots
        // cut at the last applied record — so an intact log can only end
        // *at or after* the newest snapshot's cut. Ending before it
        // means the log was damaged mid-file (the reader truncates from
        // the first bad record); appending past the snapshot would then
        // leave a sequence gap no future recovery could trust.
        let last_log_seq = recovered.records.last().map_or(0, |&(s, _)| s);
        if last_log_seq < base_seq {
            return Err(PersistError::State(
                "log is corrupt before the snapshot cut",
            ));
        }
        let mut replayed = 0usize;
        let mut seq = base_seq;
        for (record_seq, record) in &recovered.records {
            if *record_seq <= base_seq {
                continue;
            }
            if *record_seq != seq + 1 {
                return Err(PersistError::State("log tail does not continue snapshot"));
            }
            replay(&mut advisor, record)?;
            seq = *record_seq;
            replayed += 1;
        }
        let writer = LogWriter::reopen(&log_path, recovered.valid_len)?;
        let report = RecoveryReport {
            snapshot_seq,
            snapshots_discarded,
            replayed,
            log_discarded_bytes: recovered.discarded_bytes,
        };
        Ok((
            Self {
                advisor,
                store: Some(Store {
                    dir: dir.to_path_buf(),
                    writer,
                    seq,
                    snapshot_every,
                    admits_since_snapshot: 0,
                    last_snapshot_seq,
                }),
            },
            report,
        ))
    }

    /// [`Self::open`] when `dir` holds a log, [`Self::create`]
    /// otherwise.
    pub fn open_or_create(
        dir: &Path,
        pool: CandidatePool,
        opts: OnlineAdvisorOptions,
        snapshot_every: usize,
    ) -> Result<(Self, RecoveryReport), PersistError> {
        if dir.join(LOG_FILE).exists() {
            Self::open(dir, snapshot_every)
        } else {
            Ok((
                Self::create(dir, pool, opts, snapshot_every)?,
                RecoveryReport::default(),
            ))
        }
    }

    /// Read-only view of the wrapped daemon.
    pub fn advisor(&self) -> &OnlineAdvisor {
        &self.advisor
    }

    /// Whether mutations are being journaled to disk.
    pub fn is_durable(&self) -> bool {
        self.store.is_some()
    }

    /// Sequence number of the last logged mutation (0 when volatile).
    pub fn log_seq(&self) -> u64 {
        self.store.as_ref().map_or(0, |s| s.seq)
    }

    /// Log position of the newest snapshot written or recovered from.
    pub fn last_snapshot_seq(&self) -> Option<u64> {
        self.store.as_ref().and_then(|s| s.last_snapshot_seq)
    }

    fn append(&mut self, record: &LogRecord) -> Result<(), PersistError> {
        if let Some(store) = &mut self.store {
            store.writer.append(store.seq + 1, record)?;
            store.seq += 1;
        }
        Ok(())
    }

    /// Journals and applies one admission. On the durable path the spec
    /// payload is on disk before the splice runs (write-ahead), and
    /// every `snapshot_every` admissions a snapshot is cut afterwards.
    pub fn apply(&mut self, spec: AdmissionSpec<'_>) -> Result<Admission, PersistError> {
        self.append(&LogRecord::Admit {
            cache: spec.cache.clone(),
            access: spec.access.clone(),
            weight: spec.weight,
            templates: spec.templates.to_vec(),
            shares: spec.shares.map(<[f64]>::to_vec),
            deferred: spec.deferred,
        })?;
        let admission = self.advisor.apply(spec);
        let snapshot_due = self.store.as_mut().is_some_and(|store| {
            store.admits_since_snapshot += 1;
            store.snapshot_every > 0 && store.admits_since_snapshot >= store.snapshot_every
        });
        if snapshot_due {
            self.snapshot_now()?;
        }
        Ok(admission)
    }

    /// Journals and applies a batch of admissions with group-committed
    /// durability: all N specs are encoded as ordinary `Admit` records
    /// and made durable by [`LogWriter::append_batch`] — one buffered
    /// write and **one** fsync per `policy` chunk — *before* any of them
    /// touches the advisor. A crash after the fsync replays the whole
    /// batch (redo semantics: the recovered state equals the
    /// uninterrupted run); a crash mid-write tears between records, so
    /// recovery keeps a valid record prefix and the un-fsynced rest was
    /// never applied.
    ///
    /// Execution goes through
    /// [`OnlineAdvisor::apply_batch_gated`]: triggered re-advises run
    /// inline under a guard from `acquire` (the server's budget permit).
    /// Because they execute at their exact trigger positions, the batch
    /// journals plain inline admissions (`deferred: false`) and no
    /// `Readvise` records — replay re-derives every round, exactly like
    /// the inline serial path. Snapshot accounting advances once per
    /// batch.
    pub fn apply_batch<G>(
        &mut self,
        specs: &[AdmissionSpec<'_>],
        policy: GroupCommitPolicy,
        acquire: impl FnMut(ReadviseTrigger) -> G,
    ) -> Result<Vec<Admission>, PersistError> {
        if let Some(store) = &mut self.store {
            let records: Vec<LogRecord> = specs
                .iter()
                .map(|spec| LogRecord::Admit {
                    cache: spec.cache.clone(),
                    access: spec.access.clone(),
                    weight: spec.weight,
                    templates: spec.templates.to_vec(),
                    shares: spec.shares.map(<[f64]>::to_vec),
                    deferred: false,
                })
                .collect();
            store.writer.append_batch(store.seq + 1, &records, policy)?;
            store.seq += specs.len() as u64;
        }
        let admissions = self.advisor.apply_batch_gated(specs, acquire);
        let snapshot_due = self.store.as_mut().is_some_and(|store| {
            store.admits_since_snapshot += specs.len();
            store.snapshot_every > 0 && store.admits_since_snapshot >= store.snapshot_every
        });
        if snapshot_due {
            self.snapshot_now()?;
        }
        Ok(admissions)
    }

    /// Durability counters of the underlying log writer (appends,
    /// fsyncs, group-commit batches, largest batch), accumulated since
    /// this process created or reopened the log. Zeroes when volatile.
    /// Snapshot-file fsyncs are not counted — these are write-ahead-log
    /// counters, the denominator of the fsyncs-per-admission gate.
    pub fn persist_stats(&self) -> PersistStats {
        self.store
            .as_ref()
            .map_or_else(PersistStats::default, |s| s.writer.stats())
    }

    /// Journals and applies one reweight event.
    pub fn reweight(
        &mut self,
        admission: usize,
        weight: f64,
        deferred: bool,
    ) -> Result<ReweightOutcome, PersistError> {
        self.append(&LogRecord::Reweight {
            ordinal: admission as u64,
            weight,
            deferred,
        })?;
        Ok(self.advisor.reweight(admission, weight, deferred))
    }

    /// Journals and applies one explicit eviction.
    pub fn evict_admission(&mut self, admission: usize) -> Result<bool, PersistError> {
        self.append(&LogRecord::Evict {
            ordinal: admission as u64,
        })?;
        Ok(self.advisor.evict_admission(admission))
    }

    /// Journals and executes a forced re-advise.
    pub fn readvise(&mut self) -> Result<ReadviseReport, PersistError> {
        self.readvise_triggered(ReadviseTrigger::Forced)
    }

    /// Journals and executes a re-advise under `trigger` — the deferred
    /// counterpart of the inline rounds [`Self::apply`] runs itself.
    /// Inline rounds are deterministic consequences of the admission
    /// stream and are never journaled; this one is, because *when* the
    /// caller releases a deferred trigger is outside the advisor's
    /// control.
    pub fn readvise_triggered(
        &mut self,
        trigger: ReadviseTrigger,
    ) -> Result<ReadviseReport, PersistError> {
        self.append(&LogRecord::Readvise { trigger })?;
        Ok(self.advisor.readvise_triggered(trigger))
    }

    /// Journals and applies an explicit compaction.
    pub fn compact(&mut self) -> Result<(), PersistError> {
        self.append(&LogRecord::Compact)?;
        self.advisor.compact();
        Ok(())
    }

    /// Journals and applies a share-policy change.
    pub fn set_share_policy(&mut self, policy: SharePolicy) -> Result<(), PersistError> {
        self.append(&LogRecord::SetSharePolicy { policy })?;
        self.advisor.set_share_policy(policy);
        Ok(())
    }

    /// Cuts a snapshot right now. Returns the log position it covers,
    /// or `None` when the advisor is volatile.
    pub fn snapshot_now(&mut self) -> Result<Option<u64>, PersistError> {
        let Some(store) = &mut self.store else {
            return Ok(None);
        };
        write_snapshot(
            &store.dir,
            store.seq,
            self.advisor.pool(),
            self.advisor.options(),
            &self.advisor.to_parts(),
        )?;
        store.admits_since_snapshot = 0;
        store.last_snapshot_seq = Some(store.seq);
        Ok(Some(store.seq))
    }
}

/// Replays one recovered record through the same advisor entry points
/// the live daemon used. Pending triggers returned by deferred specs are
/// dropped here: their *execution* shows up as its own
/// [`LogRecord::Readvise`] record at the position the caller actually
/// released it.
fn replay(advisor: &mut OnlineAdvisor, record: &LogRecord) -> Result<(), PersistError> {
    match record {
        LogRecord::Create { .. } => {
            return Err(PersistError::State("duplicate create record in log"))
        }
        LogRecord::Admit {
            cache,
            access,
            weight,
            templates,
            shares,
            deferred,
        } => {
            let mut spec = AdmissionSpec::new(cache, access)
                .weight(*weight)
                .templates(templates)
                .deferred(*deferred);
            if let Some(shares) = shares {
                spec = spec.shares(shares);
            }
            advisor.apply(spec);
        }
        LogRecord::Reweight {
            ordinal,
            weight,
            deferred,
        } => {
            advisor.reweight(*ordinal as usize, *weight, *deferred);
        }
        LogRecord::Evict { ordinal } => {
            advisor.evict_admission(*ordinal as usize);
        }
        LogRecord::Readvise { trigger } => {
            advisor.readvise_triggered(*trigger);
        }
        LogRecord::Compact => advisor.compact(),
        LogRecord::SetSharePolicy { policy } => advisor.set_share_policy(*policy),
    }
    Ok(())
}
