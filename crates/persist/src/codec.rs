//! Binary codecs for the advisor's exported state.
//!
//! Everything rides on the `pinum-protocol` wire primitives (fixed-width
//! little-endian fields, length-prefixed sequences with pre-allocation
//! caps), so snapshots and log records inherit the protocol's hostile
//! input discipline: every length is bounded by the remaining bytes
//! before a single element is allocated, and every malformed byte
//! surfaces as a typed [`WireError`] — never a panic.
//!
//! The codecs here are *structural*: they reproduce the exported parts
//! arrays bit-for-bit (floats travel as raw IEEE-754 bits). Cross-array
//! semantic invariants are re-validated by the domain `from_parts`
//! constructors on restore, so a snapshot that decodes cleanly can still
//! be rejected — as a typed error — if its arrays do not describe a
//! consistent daemon.

use pinum_advisor::search::StrategyKind;
use pinum_core::WorkloadModelParts;
use pinum_online::attribution::SharePolicy;
use pinum_online::{DriftAttributionParts, OnlineAdvisorOptions, OnlineAdvisorParts, OnlineStats};
use pinum_protocol::wire::{
    put_bool, put_f64, put_option, put_u32, put_u64, put_u8, put_vec, Cursor,
};
use pinum_protocol::{WireError, WireTemplate};
use std::time::Duration;

use crate::convert::{template_from_wire, template_to_wire};

// --- Tiny helpers over the protocol primitives. ---

fn put_f64s(out: &mut Vec<u8>, v: &[f64]) {
    put_vec(out, v, |o, &x| put_f64(o, x));
}

fn put_u32s(out: &mut Vec<u8>, v: &[u32]) {
    put_vec(out, v, |o, &x| put_u32(o, x));
}

fn put_u64s(out: &mut Vec<u8>, v: &[u64]) {
    put_vec(out, v, |o, &x| put_u64(o, x));
}

fn put_bools(out: &mut Vec<u8>, v: &[bool]) {
    put_vec(out, v, |o, &x| put_bool(o, x));
}

fn f64s(c: &mut Cursor<'_>) -> Result<Vec<f64>, WireError> {
    c.vec(8, |c| c.f64())
}

fn u32s(c: &mut Cursor<'_>) -> Result<Vec<u32>, WireError> {
    c.vec(4, |c| c.u32())
}

fn u64s(c: &mut Cursor<'_>) -> Result<Vec<u64>, WireError> {
    c.vec(8, |c| c.u64())
}

fn bools(c: &mut Cursor<'_>) -> Result<Vec<bool>, WireError> {
    c.vec(1, |c| c.bool())
}

fn duration(c: &mut Cursor<'_>) -> Result<Duration, WireError> {
    Ok(Duration::from_nanos(c.u64()?))
}

fn put_duration(out: &mut Vec<u8>, d: Duration) {
    // Saturating: 2^64 ns ≈ 584 years of wall clock.
    put_u64(out, u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
}

// --- Advisor options (superset of the wire's WireOptions: snapshots
// must round-trip *every* strategy, including the annealer the TCP
// protocol deliberately does not expose). ---

pub fn encode_options(out: &mut Vec<u8>, o: &OnlineAdvisorOptions) {
    put_u64(out, o.window_capacity as u64);
    put_u64(out, o.epoch_length as u64);
    put_f64(out, o.drift_threshold);
    put_f64(out, o.decay);
    match o.strategy {
        StrategyKind::LazyGreedy => put_u8(out, 0),
        StrategyKind::EagerGreedy => put_u8(out, 1),
        StrategyKind::SwapHillClimb => put_u8(out, 2),
        StrategyKind::Anneal { seed } => {
            put_u8(out, 3);
            put_u64(out, seed);
        }
    }
    put_u64(out, o.budget_bytes);
    put_bool(out, o.benefit_per_byte);
    put_bool(out, o.warm_start);
    put_bool(out, o.scoped_readvise);
    put_f64(out, o.attribution_threshold);
}

pub fn decode_options(c: &mut Cursor<'_>) -> Result<OnlineAdvisorOptions, WireError> {
    let window_capacity = c.u64()? as usize;
    let epoch_length = c.u64()? as usize;
    let drift_threshold = c.f64()?;
    let decay = c.f64()?;
    let strategy = match c.u8()? {
        0 => StrategyKind::LazyGreedy,
        1 => StrategyKind::EagerGreedy,
        2 => StrategyKind::SwapHillClimb,
        3 => StrategyKind::Anneal { seed: c.u64()? },
        _ => return Err(WireError::Malformed("unknown strategy tag")),
    };
    Ok(OnlineAdvisorOptions {
        window_capacity,
        epoch_length,
        drift_threshold,
        decay,
        strategy,
        budget_bytes: c.u64()?,
        benefit_per_byte: c.bool()?,
        warm_start: c.bool()?,
        scoped_readvise: c.bool()?,
        attribution_threshold: c.f64()?,
    })
}

// --- Share policies. ---

pub fn encode_share_policy(out: &mut Vec<u8>, p: SharePolicy) {
    put_u8(
        out,
        match p {
            SharePolicy::Split => 0,
            SharePolicy::Full => 1,
            SharePolicy::AccessShare => 2,
        },
    );
}

pub fn decode_share_policy(c: &mut Cursor<'_>) -> Result<SharePolicy, WireError> {
    Ok(match c.u8()? {
        0 => SharePolicy::Split,
        1 => SharePolicy::Full,
        2 => SharePolicy::AccessShare,
        _ => return Err(WireError::Malformed("unknown share policy tag")),
    })
}

// --- The streaming model's SoA arrays, serialized flat. ---

pub fn encode_model_parts(out: &mut Vec<u8>, p: &WorkloadModelParts) {
    put_u64(out, p.pool_size);
    put_f64s(out, &p.arm_costs);
    put_u32s(out, &p.arm_cands);
    put_f64s(out, &p.slot_coef);
    put_f64s(out, &p.slot_pcoef);
    put_f64s(out, &p.slot_s_always);
    put_f64s(out, &p.slot_p_always);
    put_u32s(out, &p.slot_s_start);
    put_u32s(out, &p.slot_s_end);
    put_u32s(out, &p.slot_p_start);
    put_u32s(out, &p.slot_p_end);
    put_bools(out, &p.slot_required);
    put_f64s(out, &p.plan_internal);
    put_u32s(out, &p.plan_slot_start);
    put_u32s(out, &p.plan_slot_end);
    put_u32s(out, &p.query_plan_start);
    put_u32s(out, &p.query_plan_end);
    put_u32s(out, &p.query_touched_start);
    put_u32s(out, &p.query_touched_end);
    put_u64s(out, &p.query_bloom);
    put_u32s(out, &p.query_arm_count);
    put_u32s(out, &p.touched);
    put_f64s(out, &p.weights);
    put_bools(out, &p.live);
}

pub fn decode_model_parts(c: &mut Cursor<'_>) -> Result<WorkloadModelParts, WireError> {
    Ok(WorkloadModelParts {
        pool_size: c.u64()?,
        arm_costs: f64s(c)?,
        arm_cands: u32s(c)?,
        slot_coef: f64s(c)?,
        slot_pcoef: f64s(c)?,
        slot_s_always: f64s(c)?,
        slot_p_always: f64s(c)?,
        slot_s_start: u32s(c)?,
        slot_s_end: u32s(c)?,
        slot_p_start: u32s(c)?,
        slot_p_end: u32s(c)?,
        slot_required: bools(c)?,
        plan_internal: f64s(c)?,
        plan_slot_start: u32s(c)?,
        plan_slot_end: u32s(c)?,
        query_plan_start: u32s(c)?,
        query_plan_end: u32s(c)?,
        query_touched_start: u32s(c)?,
        query_touched_end: u32s(c)?,
        query_bloom: u64s(c)?,
        query_arm_count: u32s(c)?,
        touched: u32s(c)?,
        weights: f64s(c)?,
        live: bools(c)?,
    })
}

// --- Attribution books (templates travel in dense id order). ---

pub fn encode_attribution_parts(out: &mut Vec<u8>, p: &DriftAttributionParts) {
    put_vec(out, &p.templates, |o, t| template_to_wire(t).encode(o));
    put_vec(out, &p.per_query, |o, ids| put_u32s(o, ids));
    put_vec(out, &p.per_query_share, |o, sh| put_f64s(o, sh));
    put_vec(out, &p.status, |o, &s| put_u8(o, s));
    put_f64s(out, &p.baseline);
    put_bool(out, p.baseline_captured);
    encode_share_policy(out, p.share_policy);
    encode_share_policy(out, p.baseline_policy);
}

pub fn decode_attribution_parts(c: &mut Cursor<'_>) -> Result<DriftAttributionParts, WireError> {
    Ok(DriftAttributionParts {
        templates: c
            .vec(4, WireTemplate::decode)?
            .iter()
            .map(template_from_wire)
            .collect(),
        per_query: c.vec(4, u32s)?,
        per_query_share: c.vec(4, f64s)?,
        status: c.vec(1, |c| c.u8())?,
        baseline: f64s(c)?,
        baseline_captured: c.bool()?,
        share_policy: decode_share_policy(c)?,
        baseline_policy: decode_share_policy(c)?,
    })
}

// --- Lifetime counters (wall clocks as nanoseconds). ---

pub fn encode_stats(out: &mut Vec<u8>, s: &OnlineStats) {
    put_u64(out, s.admits as u64);
    put_u64(out, s.evictions as u64);
    put_u64(out, s.reweights as u64);
    put_u64(out, s.reweight_misses as u64);
    put_u64(out, s.readvises as u64);
    put_u64(out, s.epoch_readvises as u64);
    put_u64(out, s.drift_readvises as u64);
    put_u64(out, s.forced_readvises as u64);
    put_u64(out, s.scoped_readvises as u64);
    put_u64(out, s.full_rebuilds as u64);
    put_u64(out, s.full_repricings as u64);
    put_u64(out, s.compactions as u64);
    put_u64(out, s.admit_arms_total as u64);
    put_u64(out, s.admit_arms_max as u64);
    put_u64(out, s.collect_calls as u64);
    put_u64(out, s.collect_template_hits as u64);
    put_duration(out, s.model_admit_wall);
    put_duration(out, s.readvise_wall);
    put_duration(out, s.last_readvise_wall);
}

pub fn decode_stats(c: &mut Cursor<'_>) -> Result<OnlineStats, WireError> {
    Ok(OnlineStats {
        admits: c.u64()? as usize,
        evictions: c.u64()? as usize,
        reweights: c.u64()? as usize,
        reweight_misses: c.u64()? as usize,
        readvises: c.u64()? as usize,
        epoch_readvises: c.u64()? as usize,
        drift_readvises: c.u64()? as usize,
        forced_readvises: c.u64()? as usize,
        scoped_readvises: c.u64()? as usize,
        full_rebuilds: c.u64()? as usize,
        full_repricings: c.u64()? as usize,
        compactions: c.u64()? as usize,
        admit_arms_total: c.u64()? as usize,
        admit_arms_max: c.u64()? as usize,
        collect_calls: c.u64()? as usize,
        collect_template_hits: c.u64()? as usize,
        model_admit_wall: duration(c)?,
        readvise_wall: duration(c)?,
        last_readvise_wall: duration(c)?,
    })
}

// --- The full daemon export. ---

pub fn encode_advisor_parts(out: &mut Vec<u8>, p: &OnlineAdvisorParts) {
    encode_model_parts(out, &p.model);
    put_u64s(out, &p.selection_words);
    put_f64s(out, &p.per_query);
    put_u64(out, p.full_repricings as u64);
    encode_attribution_parts(out, &p.attribution);
    put_u32s(out, &p.window);
    put_u64(out, p.admission_base as u64);
    put_u32s(out, &p.admission_qid);
    put_u32s(out, &p.qid_ordinal);
    put_f64(out, p.baseline_mean);
    put_u64(out, p.admits_since_advise as u64);
    encode_stats(out, &p.stats);
}

pub fn decode_advisor_parts(c: &mut Cursor<'_>) -> Result<OnlineAdvisorParts, WireError> {
    Ok(OnlineAdvisorParts {
        model: decode_model_parts(c)?,
        selection_words: u64s(c)?,
        per_query: f64s(c)?,
        full_repricings: c.u64()? as usize,
        attribution: decode_attribution_parts(c)?,
        window: u32s(c)?,
        admission_base: c.u64()? as usize,
        admission_qid: u32s(c)?,
        qid_ordinal: u32s(c)?,
        baseline_mean: c.f64()?,
        admits_since_advise: c.u64()? as usize,
        stats: decode_stats(c)?,
    })
}

/// Optional f64 slice (admission share overrides).
pub fn put_shares(out: &mut Vec<u8>, shares: &Option<Vec<f64>>) {
    put_option(out, shares, |o, v| put_f64s(o, v));
}

/// Counterpart of [`put_shares`].
pub fn shares(c: &mut Cursor<'_>) -> Result<Option<Vec<f64>>, WireError> {
    c.option(f64s)
}

/// FNV-1a 64 over a byte slice — the integrity check every snapshot and
/// log record carries (the TCP protocol trusts its transport; files do
/// not get that luxury).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_roundtrip_all_strategies() {
        for strategy in [
            StrategyKind::LazyGreedy,
            StrategyKind::EagerGreedy,
            StrategyKind::SwapHillClimb,
            StrategyKind::Anneal { seed: 0xDEAD_BEEF },
        ] {
            let opts = OnlineAdvisorOptions {
                strategy,
                decay: 0.75,
                ..OnlineAdvisorOptions::defaults(1 << 28)
            };
            let mut buf = Vec::new();
            encode_options(&mut buf, &opts);
            let mut c = Cursor::new(&buf);
            let back = decode_options(&mut c).unwrap();
            assert!(c.exhausted());
            assert_eq!(back.strategy, opts.strategy);
            assert_eq!(back.window_capacity, opts.window_capacity);
            assert_eq!(back.decay.to_bits(), opts.decay.to_bits());
        }
    }

    #[test]
    fn stats_roundtrip_preserves_wall_clocks() {
        let stats = OnlineStats {
            admits: 17,
            readvises: 3,
            model_admit_wall: Duration::from_nanos(123_456_789),
            last_readvise_wall: Duration::from_micros(42),
            ..OnlineStats::default()
        };
        let mut buf = Vec::new();
        encode_stats(&mut buf, &stats);
        let back = decode_stats(&mut Cursor::new(&buf)).unwrap();
        assert_eq!(back.admits, 17);
        assert_eq!(back.readvises, 3);
        assert_eq!(back.model_admit_wall, stats.model_admit_wall);
        assert_eq!(back.last_readvise_wall, stats.last_readvise_wall);
    }

    #[test]
    fn fnv_is_the_reference_function() {
        // Reference vectors for FNV-1a 64.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn truncated_parts_are_typed_errors() {
        let parts = WorkloadModelParts {
            pool_size: 4,
            arm_costs: vec![1.0, 2.0],
            arm_cands: vec![0, 1],
            ..WorkloadModelParts::default()
        };
        let mut buf = Vec::new();
        encode_model_parts(&mut buf, &parts);
        for cut in [1, buf.len() / 2, buf.len() - 1] {
            assert!(decode_model_parts(&mut Cursor::new(&buf[..cut])).is_err());
        }
        let back = decode_model_parts(&mut Cursor::new(&buf)).unwrap();
        assert_eq!(back, parts);
    }
}
