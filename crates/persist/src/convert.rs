//! Lossless wire ↔ domain conversions.
//!
//! `pinum-protocol` is dependency-free, so its wire structs are flat
//! primitive mirrors; this module is where they meet the real types.
//! Encoding is infallible and field-exact. Decoding **validates before
//! constructing**: the domain constructors assert their invariants
//! (`PlanCache::insert` checks coefficient arity, `InterestingOrders::new`
//! checks bounds, `OnlineAdvisor::new` checks option ranges), and a
//! malformed frame must produce a typed error reply — never a daemon
//! panic — so every invariant is re-checked here and surfaced as
//! [`ConvertError`].

use pinum_advisor::search::StrategyKind;
use pinum_catalog::{Index, IndexId, IndexKind, IndexSize, TableId};
use pinum_core::access_costs::{AccessCostCatalog, CandidateAccess};
use pinum_core::cache::{CachedPlan, PlanCache};
use pinum_core::CandidatePool;
use pinum_cost::scan::IndexScanInput;
use pinum_cost::CostParams;
use pinum_online::{OnlineAdvisorOptions, OnlineStats, ReadviseReport, ReadviseTrigger};
use pinum_protocol::{
    WireAccess, WireAccessCatalog, WireCostParams, WireIndex, WireOptions, WirePlan, WirePlanCache,
    WireProbe, WireReadviseReport, WireStats, WireTemplate,
};
use pinum_query::{InterestingOrders, Ioc, TemplateKey, MAX_ORDERS_PER_REL, MAX_RELATIONS};

/// A structurally valid frame whose payload violates a domain invariant
/// (the wire layer cannot know them). Reported to the client as a
/// `Malformed` error reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConvertError(pub &'static str);

impl std::fmt::Display for ConvertError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid payload: {}", self.0)
    }
}

impl std::error::Error for ConvertError {}

type Result<T> = std::result::Result<T, ConvertError>;

// --- Indexes / candidate pools. ---

pub fn index_to_wire(ix: &Index) -> WireIndex {
    WireIndex {
        id: ix.id().0,
        table: ix.table().0,
        key_columns: ix.key_columns().to_vec(),
        unique: ix.is_unique(),
        kind: match ix.kind() {
            IndexKind::Materialized => 0,
            IndexKind::Hypothetical => 1,
        },
        leaf_pages: ix.size().leaf_pages,
        internal_pages: ix.size().internal_pages,
        height: ix.size().height,
        correlation: ix.correlation(),
        rows: ix.rows(),
        name: ix.name().to_string(),
    }
}

pub fn index_from_wire(w: &WireIndex) -> Result<Index> {
    if w.key_columns.is_empty() {
        return Err(ConvertError("index without key columns"));
    }
    let kind = match w.kind {
        0 => IndexKind::Materialized,
        1 => IndexKind::Hypothetical,
        _ => return Err(ConvertError("unknown index kind")),
    };
    Ok(Index::from_parts(
        IndexId(w.id),
        TableId(w.table),
        w.key_columns.clone(),
        w.unique,
        kind,
        IndexSize {
            leaf_pages: w.leaf_pages,
            internal_pages: w.internal_pages,
            height: w.height,
        },
        w.correlation,
        w.rows,
        w.name.clone(),
    ))
}

pub fn pool_to_wire(pool: &CandidatePool) -> Vec<WireIndex> {
    pool.indexes().iter().map(index_to_wire).collect()
}

pub fn pool_from_wire(wire: &[WireIndex]) -> Result<CandidatePool> {
    let indexes = wire.iter().map(index_from_wire).collect::<Result<_>>()?;
    Ok(CandidatePool::from_indexes(indexes))
}

// --- Cost params / probe specs. ---

pub fn params_to_wire(p: &CostParams) -> WireCostParams {
    WireCostParams {
        seq_page_cost: p.seq_page_cost,
        random_page_cost: p.random_page_cost,
        cpu_tuple_cost: p.cpu_tuple_cost,
        cpu_index_tuple_cost: p.cpu_index_tuple_cost,
        cpu_operator_cost: p.cpu_operator_cost,
        effective_cache_pages: p.effective_cache_pages,
        work_mem_kb: p.work_mem_kb,
    }
}

pub fn params_from_wire(w: &WireCostParams) -> CostParams {
    CostParams {
        seq_page_cost: w.seq_page_cost,
        random_page_cost: w.random_page_cost,
        cpu_tuple_cost: w.cpu_tuple_cost,
        cpu_index_tuple_cost: w.cpu_index_tuple_cost,
        cpu_operator_cost: w.cpu_operator_cost,
        effective_cache_pages: w.effective_cache_pages,
        work_mem_kb: w.work_mem_kb,
    }
}

pub fn probe_to_wire(p: &IndexScanInput) -> WireProbe {
    WireProbe {
        index_leaf_pages: p.index_leaf_pages,
        index_height: p.index_height,
        index_rows: p.index_rows,
        heap_pages: p.heap_pages,
        heap_rows: p.heap_rows,
        index_selectivity: p.index_selectivity,
        correlation: p.correlation,
        filter_ops: p.filter_ops,
        index_only: p.index_only,
        loop_count: p.loop_count,
    }
}

pub fn probe_from_wire(w: &WireProbe) -> IndexScanInput {
    IndexScanInput {
        index_leaf_pages: w.index_leaf_pages,
        index_height: w.index_height,
        index_rows: w.index_rows,
        heap_pages: w.heap_pages,
        heap_rows: w.heap_rows,
        index_selectivity: w.index_selectivity,
        correlation: w.correlation,
        filter_ops: w.filter_ops,
        index_only: w.index_only,
        loop_count: w.loop_count,
    }
}

// --- Access catalogs. ---

pub fn access_to_wire(catalog: &AccessCostCatalog) -> WireAccessCatalog {
    WireAccessCatalog {
        per_rel: catalog
            .per_rel()
            .iter()
            .map(|rel| {
                rel.iter()
                    .map(|e| WireAccess {
                        candidate: e.candidate.map(|c| c as u32),
                        order: e.order,
                        cost: e.cost,
                        probe: e.probe.as_ref().map(probe_to_wire),
                    })
                    .collect()
            })
            .collect(),
        params: params_to_wire(catalog.params()),
    }
}

/// `pool_len` bounds the candidate ids a catalog may reference — an
/// out-of-pool id would index out of bounds deep inside pricing.
pub fn access_from_wire(w: &WireAccessCatalog, pool_len: usize) -> Result<AccessCostCatalog> {
    let per_rel = w
        .per_rel
        .iter()
        .map(|rel| {
            rel.iter()
                .map(|e| {
                    if let Some(c) = e.candidate {
                        if c as usize >= pool_len {
                            return Err(ConvertError(
                                "access entry references candidate outside the pool",
                            ));
                        }
                    }
                    Ok(CandidateAccess {
                        candidate: e.candidate.map(|c| c as usize),
                        order: e.order,
                        cost: e.cost,
                        probe: e.probe.as_ref().map(probe_from_wire),
                    })
                })
                .collect::<Result<Vec<_>>>()
        })
        .collect::<Result<Vec<_>>>()?;
    Ok(AccessCostCatalog::from_parts(
        per_rel,
        params_from_wire(&w.params),
    ))
}

// --- Plan caches. ---

pub fn cache_to_wire(cache: &PlanCache) -> WirePlanCache {
    WirePlanCache {
        query_name: cache.query_name.clone(),
        n_rels: cache.n_rels as u32,
        orders: (0..cache.orders.relation_count())
            .map(|rel| cache.orders.orders_of(rel as u16).to_vec())
            .collect(),
        plans: cache
            .plans()
            .iter()
            .map(|p| WirePlan {
                ioc: p.ioc.raw(),
                internal: p.internal,
                coefs: p.coefs.clone(),
                probe_coefs: p.probe_coefs.clone(),
                uses_nlj: p.uses_nlj,
                rows: p.rows,
                description: p.description.clone(),
            })
            .collect(),
    }
}

pub fn cache_from_wire(w: &WirePlanCache) -> Result<PlanCache> {
    let n_rels = w.n_rels as usize;
    if w.orders.len() != n_rels || n_rels > MAX_RELATIONS {
        return Err(ConvertError(
            "interesting orders do not match relation count",
        ));
    }
    for cols in &w.orders {
        if cols.len() > MAX_ORDERS_PER_REL || cols.windows(2).any(|p| p[0] >= p[1]) {
            return Err(ConvertError("interesting orders not sorted and bounded"));
        }
    }
    let orders = InterestingOrders::new(w.orders.clone());
    let mut cache = PlanCache::new(w.query_name.clone(), n_rels, orders);
    for p in &w.plans {
        if p.coefs.len() != n_rels || p.probe_coefs.len() != n_rels {
            return Err(ConvertError("plan coefficient arity mismatch"));
        }
        cache.insert(CachedPlan {
            ioc: Ioc::from_raw(p.ioc),
            internal: p.internal,
            coefs: p.coefs.clone(),
            probe_coefs: p.probe_coefs.clone(),
            uses_nlj: p.uses_nlj,
            rows: p.rows,
            description: p.description.clone(),
        });
    }
    Ok(cache)
}

// --- Templates. ---

pub fn template_to_wire(t: &TemplateKey) -> WireTemplate {
    WireTemplate {
        table: t.table().0,
        filters: t.filters().to_vec(),
    }
}

pub fn template_from_wire(w: &WireTemplate) -> TemplateKey {
    TemplateKey::from_parts(TableId(w.table), w.filters.clone())
}

// --- Advisor options. ---

pub fn options_to_wire(o: &OnlineAdvisorOptions) -> Result<WireOptions> {
    let strategy = match o.strategy {
        StrategyKind::LazyGreedy => 0,
        StrategyKind::EagerGreedy => 1,
        StrategyKind::SwapHillClimb => 2,
        _ => return Err(ConvertError("strategy not exposed over the wire")),
    };
    Ok(WireOptions {
        window_capacity: o.window_capacity as u64,
        epoch_length: o.epoch_length as u64,
        drift_threshold: o.drift_threshold,
        decay: o.decay,
        strategy,
        budget_bytes: o.budget_bytes,
        benefit_per_byte: o.benefit_per_byte,
        warm_start: o.warm_start,
        scoped_readvise: o.scoped_readvise,
        attribution_threshold: o.attribution_threshold,
    })
}

pub fn options_from_wire(w: &WireOptions) -> Result<OnlineAdvisorOptions> {
    let strategy = match w.strategy {
        0 => StrategyKind::LazyGreedy,
        1 => StrategyKind::EagerGreedy,
        2 => StrategyKind::SwapHillClimb,
        _ => return Err(ConvertError("unknown strategy tag")),
    };
    if w.window_capacity < 1 || w.epoch_length < 1 {
        return Err(ConvertError("window and epoch must be at least 1"));
    }
    if !(w.drift_threshold.is_finite() && w.drift_threshold >= 0.0) {
        return Err(ConvertError(
            "drift threshold must be finite and non-negative",
        ));
    }
    if !(w.attribution_threshold.is_finite() && w.attribution_threshold >= 0.0) {
        return Err(ConvertError(
            "attribution threshold must be finite and non-negative",
        ));
    }
    if !(w.decay > 0.0 && w.decay <= 1.0) {
        return Err(ConvertError("decay must be in (0, 1]"));
    }
    Ok(OnlineAdvisorOptions {
        window_capacity: w.window_capacity as usize,
        epoch_length: w.epoch_length as usize,
        drift_threshold: w.drift_threshold,
        decay: w.decay,
        strategy,
        budget_bytes: w.budget_bytes,
        benefit_per_byte: w.benefit_per_byte,
        warm_start: w.warm_start,
        scoped_readvise: w.scoped_readvise,
        attribution_threshold: w.attribution_threshold,
    })
}

// --- Reports / stats (daemon → client only). ---

pub fn report_to_wire(r: &ReadviseReport) -> WireReadviseReport {
    WireReadviseReport {
        trigger: match r.trigger {
            ReadviseTrigger::Epoch => 0,
            ReadviseTrigger::Drift => 1,
            ReadviseTrigger::Forced => 2,
        },
        wall_seconds: r.wall.as_secs_f64(),
        cost_before: r.cost_before,
        cost_after: r.cost_after,
        picks: r.picks as u64,
        evaluations: r.evaluations as u64,
        queries_repriced: r.queries_repriced as u64,
        full_repricings: r.full_repricings as u64,
        scoped: r.scoped,
        scope_candidates: r.scope_candidates as u64,
    }
}

pub fn stats_to_wire(s: &OnlineStats) -> WireStats {
    WireStats {
        admits: s.admits as u64,
        evictions: s.evictions as u64,
        reweights: s.reweights as u64,
        reweight_misses: s.reweight_misses as u64,
        readvises: s.readvises as u64,
        epoch_readvises: s.epoch_readvises as u64,
        drift_readvises: s.drift_readvises as u64,
        forced_readvises: s.forced_readvises as u64,
        scoped_readvises: s.scoped_readvises as u64,
        full_rebuilds: s.full_rebuilds as u64,
        full_repricings: s.full_repricings as u64,
        compactions: s.compactions as u64,
        admit_arms_total: s.admit_arms_total as u64,
        admit_arms_max: s.admit_arms_max as u64,
        model_admit_wall_seconds: s.model_admit_wall.as_secs_f64(),
        readvise_wall_seconds: s.readvise_wall.as_secs_f64(),
        last_readvise_wall_seconds: s.last_readvise_wall.as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinum_catalog::{Catalog, Column, ColumnType, Table};

    fn sample_index() -> Index {
        let mut schema = Catalog::new();
        let tid = schema.add_table(Table::new(
            "t",
            100_000,
            vec![
                Column::new("a", ColumnType::Int8).with_ndv(100_000),
                Column::new("b", ColumnType::Int4).with_ndv(50),
            ],
        ));
        let t = schema.table(tid);
        let mut ix = Index::hypothetical(t, vec![0, 1], true);
        ix = Index::from_parts(
            IndexId(7),
            ix.table(),
            ix.key_columns().to_vec(),
            ix.is_unique(),
            ix.kind(),
            ix.size(),
            ix.correlation(),
            ix.rows(),
            ix.name().to_string(),
        );
        ix
    }

    #[test]
    fn index_roundtrip_is_field_exact() {
        let ix = sample_index();
        let back = index_from_wire(&index_to_wire(&ix)).unwrap();
        assert_eq!(back.id(), ix.id());
        assert_eq!(back.table(), ix.table());
        assert_eq!(back.key_columns(), ix.key_columns());
        assert_eq!(back.is_unique(), ix.is_unique());
        assert_eq!(back.kind(), ix.kind());
        assert_eq!(back.size(), ix.size());
        assert_eq!(back.correlation().to_bits(), ix.correlation().to_bits());
        assert_eq!(back.rows(), ix.rows());
        assert_eq!(back.name(), ix.name());
    }

    #[test]
    fn invalid_payloads_become_errors_not_panics() {
        let mut w = index_to_wire(&sample_index());
        w.kind = 9;
        assert!(index_from_wire(&w).is_err());
        w.kind = 0;
        w.key_columns.clear();
        assert!(index_from_wire(&w).is_err());

        let mut o = options_to_wire(&OnlineAdvisorOptions::defaults(1 << 30)).unwrap();
        o.decay = 0.0;
        assert!(options_from_wire(&o).is_err());
        o.decay = 1.0;
        o.strategy = 200;
        assert!(options_from_wire(&o).is_err());

        let bad_cache = WirePlanCache {
            query_name: "q".into(),
            n_rels: 2,
            orders: vec![vec![0]], // arity mismatch
            plans: Vec::new(),
        };
        assert!(cache_from_wire(&bad_cache).is_err());

        let bad_access = WireAccessCatalog {
            per_rel: vec![vec![WireAccess {
                candidate: Some(10),
                order: None,
                cost: 1.0,
                probe: None,
            }]],
            params: params_to_wire(&CostParams::default()),
        };
        assert!(access_from_wire(&bad_access, 5).is_err());
    }

    #[test]
    fn options_roundtrip() {
        let opts = OnlineAdvisorOptions {
            strategy: StrategyKind::SwapHillClimb,
            decay: 0.9,
            ..OnlineAdvisorOptions::defaults(123456)
        };
        let back = options_from_wire(&options_to_wire(&opts).unwrap()).unwrap();
        assert_eq!(back.window_capacity, opts.window_capacity);
        assert_eq!(back.epoch_length, opts.epoch_length);
        assert_eq!(back.strategy, StrategyKind::SwapHillClimb);
        assert_eq!(back.decay.to_bits(), opts.decay.to_bits());
        assert_eq!(back.budget_bytes, opts.budget_bytes);
    }
}
