//! Criterion bench for §V-C: pricing the whole candidate pool with one
//! keep-all call (PINUM) vs one call per atomic batch (INUM).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pinum_advisor::candidates::generate_candidates;
use pinum_bench::paper_workload;
use pinum_core::access_costs::{collect_inum, collect_pinum};
use pinum_optimizer::Optimizer;

fn bench_access_costs(c: &mut Criterion) {
    let pw = paper_workload(1.0);
    let opt = Optimizer::new(&pw.schema.catalog);
    let pool = generate_candidates(&pw.schema.catalog, &pw.workload.queries);
    let mut group = c.benchmark_group("access_costs");
    group.sample_size(10);
    for (i, q) in pw.workload.queries.iter().enumerate() {
        if ![0, 4, 9].contains(&i) {
            continue;
        }
        group.bench_with_input(BenchmarkId::new("inum", &q.name), q, |b, q| {
            b.iter(|| collect_inum(&opt, q, &pool))
        });
        group.bench_with_input(BenchmarkId::new("pinum", &q.name), q, |b, q| {
            b.iter(|| collect_pinum(&opt, q, &pool))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_access_costs);
criterion_main!(benches);
