//! Criterion bench of the pluggable search strategies over one pre-built
//! workload model (model construction excluded — the comparison is purely
//! the search policy): eager greedy vs lazy greedy vs swap hill climbing
//! vs annealing, plus serial vs feature-selected model construction.

use criterion::{criterion_group, criterion_main, Criterion};
use pinum_advisor::greedy::GreedyOptions;
use pinum_advisor::search::{Anneal, EagerGreedy, LazyGreedy, SearchStrategy, SwapHillClimb};
use pinum_bench::experiments::advisor_scale::build_scale_fixture;
use pinum_core::WorkloadModel;

fn bench_search_strategies(c: &mut Criterion) {
    // Same reduced shape as the advisor_scale bench so runs stay quick.
    let (_schema, _workload, pool, models) = build_scale_fixture(0.05, 60, 200);
    let model = WorkloadModel::build(pool.len(), models.iter().map(|(c, a)| (c, a)));
    let gopts = GreedyOptions {
        budget_bytes: 256 * 1024 * 1024,
        benefit_per_byte: false,
    };
    let mut group = c.benchmark_group("search_strategies");
    group.sample_size(10);
    group.bench_function("eager_greedy", |b| {
        b.iter(|| EagerGreedy.search(&pool, &model, &gopts))
    });
    group.bench_function("lazy_greedy", |b| {
        b.iter(|| LazyGreedy.search(&pool, &model, &gopts))
    });
    group.bench_function("swap_hill_climb", |b| {
        b.iter(|| SwapHillClimb::default().search(&pool, &model, &gopts))
    });
    group.bench_function("anneal", |b| {
        b.iter(|| Anneal::with_seed(0xC0FFEE).search(&pool, &model, &gopts))
    });
    group.bench_function("model_build", |b| {
        b.iter(|| WorkloadModel::build(pool.len(), models.iter().map(|(c, a)| (c, a))))
    });
    group.bench_function("model_build_serial", |b| {
        b.iter(|| WorkloadModel::build_serial(pool.len(), models.iter().map(|(c, a)| (c, a))))
    });
    group.finish();
}

criterion_group!(benches, bench_search_strategies);
criterion_main!(benches);
