//! Criterion bench of the bare optimizer across join widths (the substrate
//! every INUM/PINUM number is denominated in).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pinum_bench::paper_workload;
use pinum_catalog::Configuration;
use pinum_core::builder::covering_configuration;
use pinum_optimizer::{Optimizer, OptimizerOptions};

fn bench_optimize(c: &mut Criterion) {
    let pw = paper_workload(1.0);
    let opt = Optimizer::new(&pw.schema.catalog);
    let mut group = c.benchmark_group("optimize");
    for (i, q) in pw.workload.queries.iter().enumerate() {
        if ![0, 4, 9].contains(&i) {
            continue;
        }
        let empty = Configuration::empty();
        group.bench_with_input(
            BenchmarkId::new("standard_no_indexes", &q.name),
            q,
            |b, q| b.iter(|| opt.optimize(q, &empty, &OptimizerOptions::standard())),
        );
        let covering = covering_configuration(&pw.schema.catalog, q);
        group.bench_with_input(BenchmarkId::new("standard_covering", &q.name), q, |b, q| {
            b.iter(|| opt.optimize(q, &covering, &OptimizerOptions::standard()))
        });
        group.bench_with_input(BenchmarkId::new("pinum_export", &q.name), q, |b, q| {
            b.iter(|| opt.optimize(q, &covering, &OptimizerOptions::pinum_export()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_optimize);
criterion_main!(benches);
