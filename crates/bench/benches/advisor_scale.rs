//! Criterion bench of the workload-scale greedy engines: naive full
//! repricing vs the incremental `WorkloadModel` delta engine, over the
//! same pre-built per-query caches (model construction is excluded — the
//! comparison is purely the search).

use criterion::{criterion_group, criterion_main, Criterion};
use pinum_advisor::greedy::{greedy_select_model, GreedyOptions};
use pinum_bench::experiments::advisor_scale::{build_scale_fixture, naive_greedy};
use pinum_core::WorkloadModel;

fn bench_advisor_scale(c: &mut Criterion) {
    // Reduced from the experiment's 200×400 so the naive side stays
    // bench-able; the shape (many queries, shared fact candidates) is the
    // same.
    let (_schema, _workload, pool, models) = build_scale_fixture(0.05, 60, 200);
    let budget = 256 * 1024 * 1024u64;
    let gopts = GreedyOptions {
        budget_bytes: budget,
        benefit_per_byte: false,
    };
    let mut group = c.benchmark_group("advisor_scale");
    group.sample_size(10);
    group.bench_function("naive_full_repricing", |b| {
        b.iter(|| naive_greedy(&pool, &models, &gopts))
    });
    group.bench_function("incremental_with_build", |b| {
        b.iter(|| {
            let model = WorkloadModel::build(pool.len(), models.iter().map(|(c, a)| (c, a)));
            greedy_select_model(&pool, &gopts, &model)
        })
    });
    let model = WorkloadModel::build(pool.len(), models.iter().map(|(c, a)| (c, a)));
    group.bench_function("incremental_search_only", |b| {
        b.iter(|| greedy_select_model(&pool, &gopts, &model))
    });
    group.finish();
}

criterion_group!(benches, bench_advisor_scale);
criterion_main!(benches);
