//! Criterion bench for Figure 4/5's core claim: the INUM plan cache is
//! built one optimizer call per IOC; PINUM needs two calls total.
//!
//! Uses a reduced statistics scale so each iteration is quick; the ratio —
//! not the absolute time — is the figure's message.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pinum_bench::paper_workload;
use pinum_core::builder::{build_cache_inum, build_cache_pinum, BuilderOptions};
use pinum_optimizer::Optimizer;

fn bench_cache_construction(c: &mut Criterion) {
    let pw = paper_workload(1.0);
    let opt = Optimizer::new(&pw.schema.catalog);
    let opts = BuilderOptions::default();
    let mut group = c.benchmark_group("cache_construction");
    group.sample_size(10);
    for (i, q) in pw.workload.queries.iter().enumerate() {
        // One narrow, one medium, one wide query keeps the bench fast.
        if ![0, 4, 9].contains(&i) {
            continue;
        }
        group.bench_with_input(BenchmarkId::new("inum", &q.name), q, |b, q| {
            b.iter(|| build_cache_inum(&opt, q, &opts))
        });
        group.bench_with_input(BenchmarkId::new("pinum", &q.name), q, |b, q| {
            b.iter(|| build_cache_pinum(&opt, q, &opts))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cache_construction);
criterion_main!(benches);
