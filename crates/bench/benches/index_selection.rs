//! Criterion bench of the end-to-end advisor (§V-E) at a reduced scale.

use criterion::{criterion_group, criterion_main, Criterion};
use pinum_advisor::tool::{advise, AdvisorOptions, CostOracle};
use pinum_workload::star::{StarSchema, StarWorkload};

fn bench_advisor(c: &mut Criterion) {
    let schema = StarSchema::generate(42, 0.05);
    let workload = StarWorkload::generate(&schema, 7, 5);
    let mut group = c.benchmark_group("index_selection");
    group.sample_size(10);
    for (name, oracle) in [
        ("pinum", CostOracle::PinumCache),
        ("inum", CostOracle::InumCache),
    ] {
        let opts = AdvisorOptions {
            budget_bytes: 256 * 1024 * 1024,
            oracle,
            ..AdvisorOptions::paper_defaults()
        };
        group.bench_function(name, |b| {
            b.iter(|| advise(&schema.catalog, &workload.queries, &opts))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_advisor);
criterion_main!(benches);
