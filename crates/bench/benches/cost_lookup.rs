//! Criterion bench for INUM's raison d'être (§II): a cache lookup must be
//! orders of magnitude cheaper than an optimizer call, so "four to five
//! orders of magnitude more configurations [can] be evaluated".

use criterion::{criterion_group, criterion_main, Criterion};
use pinum_advisor::candidates::generate_candidates;
use pinum_bench::paper_workload;
use pinum_core::access_costs::collect_pinum;
use pinum_core::builder::{build_cache_pinum, BuilderOptions};
use pinum_core::{CacheCostModel, Selection};
use pinum_optimizer::{Optimizer, OptimizerOptions};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn bench_cost_lookup(c: &mut Criterion) {
    let pw = paper_workload(1.0);
    let opt = Optimizer::new(&pw.schema.catalog);
    let pool = generate_candidates(&pw.schema.catalog, &pw.workload.queries);
    let q = &pw.workload.queries[4];
    let built = build_cache_pinum(&opt, q, &BuilderOptions::default());
    let (access, _) = collect_pinum(&opt, q, &pool);
    let model = CacheCostModel::new(&built.cache, &access);
    let mut rng = StdRng::seed_from_u64(7);
    let per_rel: Vec<Vec<usize>> = (0..q.relation_count() as u16)
        .map(|rel| pool.on_table(q.table_of(rel)).to_vec())
        .collect();
    let selections: Vec<Selection> = (0..64)
        .map(|_| {
            let ids: Vec<usize> = per_rel
                .iter()
                .filter_map(|c| c.choose(&mut rng).copied())
                .collect();
            Selection::from_ids(pool.len(), &ids)
        })
        .collect();

    let mut group = c.benchmark_group("cost_lookup");
    group.bench_function("cache_estimate", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % selections.len();
            model.estimate(&selections[i])
        })
    });
    group.sample_size(20);
    group.bench_function("optimizer_call", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % selections.len();
            let (config, _) = pool.configuration(&selections[i]);
            opt.optimize(q, &config, &OptimizerOptions::standard())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_cost_lookup);
criterion_main!(benches);
