//! Minimal plain-text table rendering for experiment output.

/// A fixed-column text table with right-aligned numeric cells.
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders with a separator line under the header.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                // Left-align the first column, right-align the rest.
                if i == 0 {
                    line.push_str(&format!("{:<w$}", cells[i], w = widths[i]));
                } else {
                    line.push_str(&format!("{:>w$}", cells[i], w = widths[i]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a duration in adaptive units.
pub fn fmt_duration(d: std::time::Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.1}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(vec!["q", "calls", "time"]);
        t.row(vec!["Q1", "648", "1.2ms"]);
        t.row(vec!["Q10", "2", "900µs"]);
        let s = t.render();
        assert!(s.contains("Q1"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn wrong_arity_panics() {
        let mut t = TextTable::new(vec!["a"]);
        t.row(vec!["x", "y"]);
    }

    #[test]
    fn duration_units() {
        use std::time::Duration;
        assert_eq!(fmt_duration(Duration::from_micros(500)), "500µs");
        assert_eq!(fmt_duration(Duration::from_micros(1_500)), "1.5ms");
        assert_eq!(fmt_duration(Duration::from_millis(2_500)), "2.50s");
    }
}
