//! Minimal machine-readable JSON emission for experiments (no serde in
//! the offline build environment).
//!
//! Every experiment that participates in CI acceptance prints one line
//! `JSON <name>: {...}` to stdout — greppable by scripts — and, when the
//! `PINUM_JSON_DIR` environment variable is set, also writes the object to
//! `<dir>/<name>.json`.

use std::fmt::Write as _;

/// An append-only JSON object builder. Keys are emitted in insertion
/// order; values are pre-rendered JSON fragments.
#[derive(Debug, Default)]
pub struct JsonObject {
    fields: Vec<(String, String)>,
}

impl JsonObject {
    pub fn new() -> Self {
        Self::default()
    }

    /// A string field (escapes quotes and backslashes; experiment names
    /// and labels need nothing fancier).
    pub fn str(mut self, key: &str, value: &str) -> Self {
        let escaped = value.replace('\\', "\\\\").replace('"', "\\\"");
        self.fields
            .push((key.to_string(), format!("\"{escaped}\"")));
        self
    }

    /// An integer field.
    pub fn int(mut self, key: &str, value: u64) -> Self {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// A float field; non-finite values become `null` (JSON has no
    /// Infinity/NaN).
    pub fn num(mut self, key: &str, value: f64) -> Self {
        let rendered = if value.is_finite() {
            format!("{value}")
        } else {
            "null".to_string()
        };
        self.fields.push((key.to_string(), rendered));
        self
    }

    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// A nested pre-rendered JSON value (object or array).
    pub fn raw(mut self, key: &str, json: String) -> Self {
        self.fields.push((key.to_string(), json));
        self
    }

    pub fn render(&self) -> String {
        let mut out = String::from("{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{k}\":{v}");
        }
        out.push('}');
        out
    }
}

/// Renders a JSON array from pre-rendered element fragments.
pub fn json_array(elements: impl IntoIterator<Item = String>) -> String {
    let mut out = String::from("[");
    for (i, e) in elements.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&e);
    }
    out.push(']');
    out
}

/// Prints the `JSON <name>: {...}` line and mirrors it to
/// `$PINUM_JSON_DIR/<name>.json` when that variable is set.
pub fn emit(name: &str, object: &JsonObject) {
    let rendered = object.render();
    println!("JSON {name}: {rendered}");
    if let Ok(dir) = std::env::var("PINUM_JSON_DIR") {
        if !dir.is_empty() {
            let path = std::path::Path::new(&dir).join(format!("{name}.json"));
            if let Err(e) = std::fs::write(&path, &rendered) {
                eprintln!("warning: could not write {}: {e}", path.display());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_valid_shapes() {
        let obj = JsonObject::new()
            .str("name", "a \"quoted\" label")
            .int("count", 42)
            .num("cost", 1.5)
            .num("inf", f64::INFINITY)
            .bool("ok", true)
            .raw("nested", json_array(vec!["1".into(), "2".into()]));
        assert_eq!(
            obj.render(),
            "{\"name\":\"a \\\"quoted\\\" label\",\"count\":42,\"cost\":1.5,\
             \"inf\":null,\"ok\":true,\"nested\":[1,2]}"
        );
    }

    #[test]
    fn empty_object_and_array() {
        assert_eq!(JsonObject::new().render(), "{}");
        assert_eq!(json_array(Vec::<String>::new()), "[]");
    }
}
