//! Minimal machine-readable JSON emission for experiments (no serde in
//! the offline build environment).
//!
//! Every experiment that participates in CI acceptance prints one line
//! `JSON <name>: {...}` to stdout — greppable by scripts — and, when the
//! `PINUM_JSON_DIR` environment variable is set, also writes the object to
//! `<dir>/<name>.json`.

use std::fmt::Write as _;

/// An append-only JSON object builder. Keys are emitted in insertion
/// order; values are pre-rendered JSON fragments.
#[derive(Debug, Default)]
pub struct JsonObject {
    fields: Vec<(String, String)>,
}

impl JsonObject {
    pub fn new() -> Self {
        Self::default()
    }

    /// A string field (escapes quotes and backslashes; experiment names
    /// and labels need nothing fancier).
    pub fn str(mut self, key: &str, value: &str) -> Self {
        let escaped = value.replace('\\', "\\\\").replace('"', "\\\"");
        self.fields
            .push((key.to_string(), format!("\"{escaped}\"")));
        self
    }

    /// An integer field.
    pub fn int(mut self, key: &str, value: u64) -> Self {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// A float field; non-finite values become `null` (JSON has no
    /// Infinity/NaN).
    pub fn num(mut self, key: &str, value: f64) -> Self {
        let rendered = if value.is_finite() {
            format!("{value}")
        } else {
            "null".to_string()
        };
        self.fields.push((key.to_string(), rendered));
        self
    }

    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// A nested pre-rendered JSON value (object or array).
    pub fn raw(mut self, key: &str, json: String) -> Self {
        self.fields.push((key.to_string(), json));
        self
    }

    pub fn render(&self) -> String {
        let mut out = String::from("{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{k}\":{v}");
        }
        out.push('}');
        out
    }
}

/// Renders a JSON array from pre-rendered element fragments.
pub fn json_array(elements: impl IntoIterator<Item = String>) -> String {
    let mut out = String::from("[");
    for (i, e) in elements.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&e);
    }
    out.push(']');
    out
}

/// Prints the `JSON <name>: {...}` line and mirrors it to
/// `$PINUM_JSON_DIR/<name>.json` when that variable is set.
pub fn emit(name: &str, object: &JsonObject) {
    let rendered = object.render();
    println!("JSON {name}: {rendered}");
    if let Ok(dir) = std::env::var("PINUM_JSON_DIR") {
        if !dir.is_empty() {
            let path = std::path::Path::new(&dir).join(format!("{name}.json"));
            if let Err(e) = std::fs::write(&path, &rendered) {
                eprintln!("warning: could not write {}: {e}", path.display());
            }
        }
    }
}

/// A parsed JSON value — the read half of this module, used by the
/// `exp_trend` regression harness to diff experiment output against the
/// committed baseline (still no serde in the offline build environment).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses one JSON document (recursive descent; full value grammar,
    /// which is more than the emitter ever produces).
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing content at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Dotted-path lookup; numeric segments index into arrays
    /// (`"strategies.1.probes"`).
    pub fn path(&self, path: &str) -> Option<&JsonValue> {
        let mut cur = self;
        for seg in path.split('.') {
            cur = match cur {
                JsonValue::Obj(_) => cur.get(seg)?,
                JsonValue::Arr(items) => items.get(seg.parse::<usize>().ok()?)?,
                _ => return None,
            };
        }
        Some(cur)
    }

    /// Numeric view: numbers as-is, booleans as 0/1 (lets the trend
    /// harness gate on `identical`-style flags).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            JsonValue::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.hex4()?;
                            let ch = if (0xD800..=0xDBFF).contains(&code) {
                                // High surrogate: a valid JSON document
                                // must pair it with a following \uDCxx low
                                // surrogate encoding one astral-plane char.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    if (0xDC00..=0xDFFF).contains(&low) {
                                        let combined =
                                            0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                        char::from_u32(combined).unwrap_or('\u{fffd}')
                                    } else {
                                        return Err(format!(
                                            "unpaired surrogate \\u{code:04x} before byte {}",
                                            self.pos
                                        ));
                                    }
                                } else {
                                    return Err(format!(
                                        "unpaired surrogate \\u{code:04x} at byte {}",
                                        self.pos
                                    ));
                                }
                            } else {
                                char::from_u32(code).unwrap_or('\u{fffd}')
                            };
                            out.push(ch);
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // byte boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let ch = s.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    /// Reads the four hex digits of a `\u` escape (the `\u` itself
    /// already consumed).
    fn hex4(&mut self) -> Result<u32, String> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or("truncated \\u escape")?;
        let code = u32::from_str_radix(std::str::from_utf8(hex).map_err(|e| e.to_string())?, 16)
            .map_err(|e| e.to_string())?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(JsonValue::Num)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_valid_shapes() {
        let obj = JsonObject::new()
            .str("name", "a \"quoted\" label")
            .int("count", 42)
            .num("cost", 1.5)
            .num("inf", f64::INFINITY)
            .bool("ok", true)
            .raw("nested", json_array(vec!["1".into(), "2".into()]));
        assert_eq!(
            obj.render(),
            "{\"name\":\"a \\\"quoted\\\" label\",\"count\":42,\"cost\":1.5,\
             \"inf\":null,\"ok\":true,\"nested\":[1,2]}"
        );
    }

    #[test]
    fn empty_object_and_array() {
        assert_eq!(JsonObject::new().render(), "{}");
        assert_eq!(json_array(Vec::<String>::new()), "[]");
    }

    #[test]
    fn parser_round_trips_emitted_objects() {
        let rendered = JsonObject::new()
            .str("name", "a \"quoted\" label")
            .int("count", 42)
            .num("cost", 1.5)
            .num("inf", f64::INFINITY)
            .bool("ok", true)
            .raw("nested", json_array(vec!["1".into(), "2.5".into()]))
            .render();
        let v = JsonValue::parse(&rendered).expect("parse");
        assert_eq!(v.get("name").unwrap().as_str(), Some("a \"quoted\" label"));
        assert_eq!(v.get("count").unwrap().as_f64(), Some(42.0));
        assert_eq!(v.get("cost").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("inf"), Some(&JsonValue::Null));
        assert_eq!(v.get("ok").unwrap().as_f64(), Some(1.0));
        assert_eq!(v.path("nested.1").unwrap().as_f64(), Some(2.5));
    }

    #[test]
    fn parser_handles_nesting_whitespace_and_escapes() {
        let text = r#"
            { "a" : [ { "b\n" : -1.25e2 }, null, false ],
              "metrics": [ {"file":"x","key":"k.0"} ] }
        "#;
        let v = JsonValue::parse(text).expect("parse");
        assert_eq!(v.path("a.0.b\n").unwrap().as_f64(), Some(-125.0));
        assert_eq!(v.path("a.1"), Some(&JsonValue::Null));
        assert_eq!(v.path("a.2").unwrap().as_f64(), Some(0.0));
        assert_eq!(v.path("metrics.0.file").unwrap().as_str(), Some("x"));
        assert_eq!(v.path("missing"), None);
        assert_eq!(v.path("a.7"), None);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("{} trailing").is_err());
        assert!(JsonValue::parse("{\"a\" 1}").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
    }

    #[test]
    fn parser_decodes_unicode_escapes_and_surrogate_pairs() {
        let v = JsonValue::parse("\"\\u00e9\\ud83d\\ude00\\u0041\"").expect("parse escaped");
        assert_eq!(v.as_str(), Some("é😀A"));
        // Raw (unescaped) multibyte UTF-8 passes through untouched.
        let raw = JsonValue::parse("\"é😀\"").expect("parse raw");
        assert_eq!(raw.as_str(), Some("é😀"));
        // Lone surrogates are invalid JSON, not silently replaced.
        assert!(JsonValue::parse(r#""\ud83d""#).is_err());
        assert!(JsonValue::parse(r#""\ud83dx""#).is_err());
        assert!(JsonValue::parse(r#""\ud83dA""#).is_err());
    }
}
