//! # pinum-bench
//!
//! The experiment harness: one binary per table/figure of the paper (see
//! DESIGN.md's per-experiment index and EXPERIMENTS.md for results), plus
//! shared fixtures and a plain-text table renderer.
//!
//! | Binary | Paper artefact |
//! |--------|----------------|
//! | `exp_redundancy` | §IV in-text numbers (TPC-H Q5: 648 IOCs, ~64 unique plans; star workload totals) |
//! | `exp_whatif_accuracy` | §VI-B what-if index accuracy (50 random index sets) |
//! | `exp_cost_accuracy` | §VI-C cost-model accuracy (1000 random atomic configurations per query) |
//! | `exp_cache_construction` | Figure 4/5: INUM vs PINUM cache construction and access-cost collection times |
//! | `exp_index_selection` | Figure 6/7: index selection under a 5 GB budget |
//! | `exp_pruning_ablation` | §V-D pruning on/off ablation |
//! | `exp_nlj_ablation` | §V-D nested-loop handling ablation |
//! | `exp_greedy_quality` | §V-E greedy vs exhaustive ablation |
//! | `exp_engine_validation` | cost-model validation against the mini engine |
//! | `exp_advisor_scale` | workload-scale advisor: incremental `WorkloadModel` greedy vs naive full repricing (200 queries) |
//! | `exp_price_kernel` | pricing-kernel microbench: SoA delta kernel vs the frozen nested reference engine (200×400) |
//! | `exp_search_strategies` | pluggable search strategies (eager/lazy greedy, swap hill climb, anneal) over one shared model |
//! | `exp_online_drift` | online tuning under workload drift: the `pinum_online` daemon vs periodic full rebuild-and-reselect |
//! | `exp_multi_tenant` | multi-tenant `pinum-server` over loopback TCP: per-tenant wire determinism, budget aging bounds, shard throughput |
//! | `exp_trend` | cross-commit trend gate: diffs `PINUM_JSON_DIR` output against the committed baseline (`baselines/trend.json`) |
//! | `exp_all` | runs everything in sequence |
//!
//! Experiments that participate in CI acceptance also print a machine-
//! readable `JSON <name>: {...}` line (see [`json`]) and mirror it to
//! `$PINUM_JSON_DIR/<name>.json` when that variable is set.

pub mod experiments;
pub mod fixtures;
pub mod json;
pub mod table;
pub mod trend;

pub use fixtures::{paper_workload, PaperWorkload};
pub use table::TextTable;
