//! Cross-commit trend tracking: diff the current run's `PINUM_JSON_DIR`
//! experiment output against a **committed baseline**
//! (`crates/bench/baselines/trend.json`) and fail on regressions.
//!
//! Every CI run already asserts hard acceptance gates inside each
//! experiment; this harness adds the *relative* dimension — a change
//! that still clears the hard gate but doubles the probe count or
//! halves the speedup fails here. The baseline file lists metrics as
//!
//! ```json
//! { "metrics": [
//!   { "file": "advisor_scale", "key": "incremental_probes",
//!     "kind": "max", "baseline": 1867, "tolerance_pct": 10 } ] }
//! ```
//!
//! * `kind: "max"` — regression when `current > baseline × (1 + tol)`
//!   (lower is better: probe counts, cost ratios);
//! * `kind: "min"` — regression when `current < baseline × (1 − tol)`
//!   (higher is better: speedups, `identical` flags);
//! * `kind: "near"` — both bounds (counts that should not move at all).
//!
//! `key` is a dotted path into the experiment's JSON object; numeric
//! segments index arrays (`strategies.1.probes`). When an optimization
//! intentionally shifts a metric, update the baseline in the same PR —
//! the diff then documents the shift.

use crate::json::JsonValue;
use crate::table::TextTable;
use std::collections::HashMap;
use std::path::Path;

/// Direction of one tracked metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrendKind {
    /// Lower is better; fail when current exceeds baseline + tolerance.
    Max,
    /// Higher is better; fail when current undercuts baseline − tolerance.
    Min,
    /// Fail on movement past the tolerance in either direction.
    Near,
}

/// One tracked metric from the baseline file.
#[derive(Debug, Clone)]
pub struct MetricSpec {
    /// Experiment JSON file stem (`<dir>/<file>.json`).
    pub file: String,
    /// Dotted path into the object.
    pub key: String,
    pub kind: TrendKind,
    pub baseline: f64,
    pub tolerance_pct: f64,
}

/// One evaluated metric.
#[derive(Debug, Clone)]
pub struct MetricOutcome {
    pub spec: MetricSpec,
    /// `None` when the file or key was missing/non-numeric (a failure).
    pub current: Option<f64>,
    pub ok: bool,
    /// Human-readable bound, e.g. `≤ 2053.7`.
    pub bound: String,
}

/// Parses the committed baseline file.
pub fn load_baseline(path: &Path) -> Result<Vec<MetricSpec>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))?;
    let doc = JsonValue::parse(&text)
        .map_err(|e| format!("baseline {} is not valid JSON: {e}", path.display()))?;
    let metrics = doc
        .get("metrics")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| format!("baseline {} lacks a \"metrics\" array", path.display()))?;
    metrics
        .iter()
        .enumerate()
        .map(|(i, m)| {
            let field = |k: &str| m.get(k).ok_or_else(|| format!("metric #{i} lacks \"{k}\""));
            let kind = match field("kind")?.as_str() {
                Some("max") => TrendKind::Max,
                Some("min") => TrendKind::Min,
                Some("near") => TrendKind::Near,
                other => return Err(format!("metric #{i}: bad kind {other:?}")),
            };
            Ok(MetricSpec {
                file: field("file")?
                    .as_str()
                    .ok_or_else(|| format!("metric #{i}: \"file\" not a string"))?
                    .to_string(),
                key: field("key")?
                    .as_str()
                    .ok_or_else(|| format!("metric #{i}: \"key\" not a string"))?
                    .to_string(),
                kind,
                baseline: field("baseline")?
                    .as_f64()
                    .ok_or_else(|| format!("metric #{i}: \"baseline\" not numeric"))?,
                tolerance_pct: field("tolerance_pct")?
                    .as_f64()
                    .ok_or_else(|| format!("metric #{i}: \"tolerance_pct\" not numeric"))?,
            })
        })
        .collect()
}

/// Inclusive bounds a current value must satisfy.
fn bounds(spec: &MetricSpec) -> (Option<f64>, Option<f64>) {
    let tol = spec.tolerance_pct / 100.0;
    let hi = spec.baseline + spec.baseline.abs() * tol;
    let lo = spec.baseline - spec.baseline.abs() * tol;
    match spec.kind {
        TrendKind::Max => (None, Some(hi)),
        TrendKind::Min => (Some(lo), None),
        TrendKind::Near => (Some(lo), Some(hi)),
    }
}

/// Evaluates every metric against the JSON files in `dir`.
pub fn evaluate(dir: &Path, specs: &[MetricSpec]) -> Vec<MetricOutcome> {
    let mut cache: HashMap<String, Option<JsonValue>> = HashMap::new();
    specs
        .iter()
        .map(|spec| {
            let doc = cache
                .entry(spec.file.clone())
                .or_insert_with(|| {
                    let path = dir.join(format!("{}.json", spec.file));
                    std::fs::read_to_string(&path)
                        .ok()
                        .and_then(|t| JsonValue::parse(&t).ok())
                })
                .as_ref();
            let current = doc
                .and_then(|d| d.path(&spec.key))
                .and_then(JsonValue::as_f64);
            let (lo, hi) = bounds(spec);
            let ok =
                current.is_some_and(|c| lo.is_none_or(|l| c >= l) && hi.is_none_or(|h| c <= h));
            let bound = match (lo, hi) {
                (None, Some(h)) => format!("<= {h:.4}"),
                (Some(l), None) => format!(">= {l:.4}"),
                (Some(l), Some(h)) => format!("[{l:.4}, {h:.4}]"),
                (None, None) => unreachable!("every kind has a bound"),
            };
            MetricOutcome {
                spec: spec.clone(),
                current,
                ok,
                bound,
            }
        })
        .collect()
}

/// Renders the outcome table; returns whether every metric passed.
pub fn report(outcomes: &[MetricOutcome]) -> (String, bool) {
    let mut table = TextTable::new(vec![
        "experiment",
        "metric",
        "baseline",
        "current",
        "allowed",
        "status",
    ]);
    let mut all_ok = true;
    for o in outcomes {
        all_ok &= o.ok;
        table.row(vec![
            o.spec.file.clone(),
            o.spec.key.clone(),
            format!("{:.4}", o.spec.baseline),
            o.current
                .map(|c| format!("{c:.4}"))
                .unwrap_or_else(|| "MISSING".to_string()),
            o.bound.clone(),
            if o.ok { "ok" } else { "REGRESSED" }.to_string(),
        ]);
    }
    (table.render(), all_ok)
}

/// Rewrites the baseline file with every metric's *current* value from
/// the experiment JSON in `dir`, preserving each metric's kind and
/// tolerance and the file-level comment. This is `exp_trend
/// --write-baseline` — the supported way to move the baseline when a
/// change shifts a metric intentionally, replacing hand-editing.
///
/// Fails (without touching the file) when any tracked metric is missing
/// from `dir`: a partial experiment run must not silently shrink the
/// baseline's coverage.
pub fn write_baseline(dir: &Path, path: &Path) -> Result<String, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))?;
    let doc = JsonValue::parse(&text)
        .map_err(|e| format!("baseline {} is not valid JSON: {e}", path.display()))?;
    let comment = doc
        .get("comment")
        .and_then(JsonValue::as_str)
        .unwrap_or_default()
        .to_string();
    let specs = load_baseline(path)?;
    let outcomes = evaluate(dir, &specs);
    let missing: Vec<String> = outcomes
        .iter()
        .filter(|o| o.current.is_none())
        .map(|o| format!("{}:{}", o.spec.file, o.spec.key))
        .collect();
    if !missing.is_empty() {
        return Err(format!(
            "refusing to write baseline: {} tracked metric(s) missing from {}: {}",
            missing.len(),
            dir.display(),
            missing.join(", ")
        ));
    }

    let escape = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let mut out = String::from("{\n");
    if !comment.is_empty() {
        out.push_str(&format!("  \"comment\": \"{}\",\n", escape(&comment)));
    }
    out.push_str("  \"metrics\": [\n");
    let mut moved = 0usize;
    for (i, o) in outcomes.iter().enumerate() {
        let kind = match o.spec.kind {
            TrendKind::Max => "max",
            TrendKind::Min => "min",
            TrendKind::Near => "near",
        };
        let current = o.current.expect("missing metrics rejected above");
        if current != o.spec.baseline {
            moved += 1;
        }
        out.push_str(&format!(
            "    {{ \"file\": \"{}\", \"key\": \"{}\", \"kind\": \"{kind}\", \
             \"baseline\": {}, \"tolerance_pct\": {} }}{}\n",
            escape(&o.spec.file),
            escape(&o.spec.key),
            render_number(current),
            render_number(o.spec.tolerance_pct),
            if i + 1 < outcomes.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, &out)
        .map_err(|e| format!("cannot write baseline {}: {e}", path.display()))?;
    Ok(format!(
        "wrote {} metrics ({moved} moved) to {}",
        outcomes.len(),
        path.display()
    ))
}

/// Integers stay integers; everything else is rounded to four decimals
/// (matching the report's precision) with trailing zeros trimmed.
fn render_number(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        let s = format!("{v:.4}");
        s.trim_end_matches('0').trim_end_matches('.').to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(kind: TrendKind, baseline: f64, tol: f64) -> MetricSpec {
        MetricSpec {
            file: "f".into(),
            key: "k".into(),
            kind,
            baseline,
            tolerance_pct: tol,
        }
    }

    fn check(spec: &MetricSpec, current: f64) -> bool {
        let (lo, hi) = bounds(spec);
        lo.is_none_or(|l| current >= l) && hi.is_none_or(|h| current <= h)
    }

    #[test]
    fn bound_semantics() {
        let max = spec(TrendKind::Max, 100.0, 10.0);
        assert!(check(&max, 100.0));
        assert!(check(&max, 110.0));
        assert!(check(&max, 5.0), "improvements always pass a max bound");
        assert!(!check(&max, 110.1));

        let min = spec(TrendKind::Min, 10.0, 50.0);
        assert!(check(&min, 10.0));
        assert!(check(&min, 5.0));
        assert!(check(&min, 1e9), "improvements always pass a min bound");
        assert!(!check(&min, 4.9));

        let near = spec(TrendKind::Near, 8.0, 0.0);
        assert!(check(&near, 8.0));
        assert!(!check(&near, 8.1));
        assert!(!check(&near, 7.9));
    }

    #[test]
    fn evaluate_against_real_files() {
        let dir = std::env::temp_dir().join(format!("pinum_trend_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("exp.json"),
            r#"{"probes": 90, "nested": {"ratio": 1.5}}"#,
        )
        .unwrap();
        let specs = vec![
            MetricSpec {
                file: "exp".into(),
                key: "probes".into(),
                kind: TrendKind::Max,
                baseline: 100.0,
                tolerance_pct: 0.0,
            },
            MetricSpec {
                file: "exp".into(),
                key: "nested.ratio".into(),
                kind: TrendKind::Max,
                baseline: 1.0,
                tolerance_pct: 10.0,
            },
            MetricSpec {
                file: "exp".into(),
                key: "absent".into(),
                kind: TrendKind::Min,
                baseline: 1.0,
                tolerance_pct: 0.0,
            },
        ];
        let outcomes = evaluate(&dir, &specs);
        assert!(outcomes[0].ok);
        assert!(!outcomes[1].ok, "1.5 over a 1.1 cap must regress");
        assert!(!outcomes[2].ok, "missing keys must fail, not pass silently");
        let (_, all_ok) = report(&outcomes);
        assert!(!all_ok);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_baseline_refreshes_values_and_preserves_shape() {
        let dir = std::env::temp_dir().join(format!("pinum_trend_wb_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("exp.json"),
            r#"{"probes": 120, "speedup": 9.12341}"#,
        )
        .unwrap();
        let baseline = dir.join("trend.json");
        std::fs::write(
            &baseline,
            r#"{ "comment": "keep me",
                 "metrics": [
                   { "file": "exp", "key": "probes", "kind": "max", "baseline": 100, "tolerance_pct": 10 },
                   { "file": "exp", "key": "speedup", "kind": "min", "baseline": 7.5, "tolerance_pct": 50 } ] }"#,
        )
        .unwrap();

        let summary = write_baseline(&dir, &baseline).expect("write must succeed");
        assert!(summary.contains("2 metrics"), "{summary}");

        // The rewritten file parses, keeps kinds/tolerances/comment, and
        // carries the current values as the new baselines.
        let text = std::fs::read_to_string(&baseline).unwrap();
        assert!(text.contains("keep me"));
        let specs = load_baseline(&baseline).unwrap();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].baseline, 120.0);
        assert_eq!(specs[0].kind, TrendKind::Max);
        assert_eq!(specs[0].tolerance_pct, 10.0);
        assert_eq!(specs[1].baseline, 9.1234, "rounded to report precision");
        assert_eq!(specs[1].kind, TrendKind::Min);

        // A missing metric refuses to write (and leaves the file alone).
        std::fs::write(
            &baseline,
            r#"{ "metrics": [
                   { "file": "exp", "key": "absent", "kind": "max", "baseline": 1, "tolerance_pct": 0 } ] }"#,
        )
        .unwrap();
        let before = std::fs::read_to_string(&baseline).unwrap();
        assert!(write_baseline(&dir, &baseline).is_err());
        assert_eq!(std::fs::read_to_string(&baseline).unwrap(), before);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn committed_baseline_parses() {
        // Guard the actual checked-in file against syntax rot.
        let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("baselines/trend.json");
        let specs = load_baseline(&path).expect("committed baseline must parse");
        assert!(specs.len() >= 8, "baseline lost its metrics");
        assert!(specs
            .iter()
            .any(|s| s.file == "online_drift" && s.key == "full_rebuilds"));
    }
}
