//! A2 — ablation of the nested-loop-join handling (§V-D).
//!
//! "The nested-loop joins are attractive at low access costs, but become
//! expensive as the access cost of the table grows. … Typically, only two
//! calls to the optimizer at the extreme access costs are sufficient to
//! achieve reasonable accuracy."
//!
//! We measure the cache's cost error with (a) NLJ plans cached from the
//! extreme calls (the paper's design) and (b) no NLJ plans at all
//! (merge/hash only), over random atomic configurations.

use crate::paper_workload;
use crate::table::TextTable;
use pinum_advisor::candidates::generate_candidates;
use pinum_core::access_costs::collect_pinum;
use pinum_core::builder::{build_cache_pinum, BuilderOptions};
use pinum_core::{CacheCostModel, Selection};
use pinum_optimizer::{Optimizer, OptimizerOptions};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

pub fn run(scale: f64) {
    const CONFIGS: usize = 200;
    println!("A2: nested-loop plan caching ablation — {CONFIGS} random configurations per query\n");
    let pw = paper_workload(scale);
    let opt = Optimizer::new(&pw.schema.catalog);
    let pool = generate_candidates(&pw.schema.catalog, &pw.workload.queries);
    let mut rng = StdRng::seed_from_u64(0x1417);

    let mut table = TextTable::new(vec![
        "query",
        "NLJ plans cached",
        "err with NLJ",
        "err without NLJ",
    ]);
    for q in &pw.workload.queries {
        let built = build_cache_pinum(&opt, q, &BuilderOptions::default());
        let (access, _) = collect_pinum(&opt, q, &pool);
        let model = CacheCostModel::new(&built.cache, &access);
        let (_, nlj_count) = built.cache.partition_by_nlj();

        let per_rel: Vec<Vec<usize>> = (0..q.relation_count() as u16)
            .map(|rel| pool.on_table(q.table_of(rel)).to_vec())
            .collect();
        let mut err_with = 0.0;
        let mut err_without = 0.0;
        for _ in 0..CONFIGS {
            let mut ids = Vec::new();
            for cands in &per_rel {
                if cands.is_empty() || rng.gen_bool(0.35) {
                    continue;
                }
                ids.push(*cands.choose(&mut rng).unwrap());
            }
            let sel = Selection::from_ids(pool.len(), &ids);
            let (config, _) = pool.configuration(&sel);
            let direct = opt
                .optimize(q, &config, &OptimizerOptions::standard())
                .best_cost
                .total;
            let with = model.estimate(&sel).unwrap().cost;
            let without = model.estimate_without_nlj(&sel).unwrap().cost;
            err_with += (with - direct).abs() / direct;
            err_without += (without - direct).abs() / direct;
        }
        table.row(vec![
            q.name.clone(),
            nlj_count.to_string(),
            format!("{:.2}%", err_with / CONFIGS as f64 * 100.0),
            format!("{:.2}%", err_without / CONFIGS as f64 * 100.0),
        ]);
    }
    println!("{}", table.render());
    println!("(the paper's star schema favours nested loops; dropping the NLJ plans degrades accuracy)\n");
}
