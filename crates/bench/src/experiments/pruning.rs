//! A1 — ablation of the §V-D subset-cost pruning.
//!
//! "This pruning process reduces the search space of the join planner,
//! while preserving all useful plans." We run the PINUM exporting call
//! with the sweep enabled and disabled and compare planning time, retained
//! path counts, and (must be identical) the winning plan cost.

use crate::paper_workload;
use crate::table::{fmt_duration, TextTable};
use pinum_core::builder::covering_configuration;
use pinum_optimizer::{Optimizer, OptimizerOptions};

pub fn run(scale: f64) {
    println!("A1: §V-D subset-cost pruning ablation\n");
    let pw = paper_workload(scale);
    let opt = Optimizer::new(&pw.schema.catalog);
    let mut table = TextTable::new(vec![
        "query",
        "pruned time",
        "unpruned time",
        "pruned paths",
        "unpruned paths",
        "exported (pruned)",
        "exported (unpruned)",
    ]);
    for q in &pw.workload.queries {
        let covering = covering_configuration(&pw.schema.catalog, q);
        let with = OptimizerOptions::pinum_export();
        let without = OptimizerOptions {
            pinum_subset_pruning: false,
            ..OptimizerOptions::pinum_export()
        };
        let a = opt.optimize(q, &covering, &with);
        let b = opt.optimize(q, &covering, &without);
        assert!(
            (a.best_cost.total - b.best_cost.total).abs() / a.best_cost.total < 1e-9,
            "{}: pruning changed the winner",
            q.name
        );
        table.row(vec![
            q.name.clone(),
            fmt_duration(a.stats.elapsed),
            fmt_duration(b.stats.elapsed),
            a.stats.arena_size.to_string(),
            b.stats.arena_size.to_string(),
            a.exported.len().to_string(),
            b.exported.len().to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "(identical winning plans in both modes — the pruning only removes unhelpful IOC plans)\n"
    );
}
