//! E4 — Figure 4/5: cache construction and access-cost collection times.
//!
//! "PINUM is typically at least one order of magnitude faster than INUM
//! for cache construction, and 5 times faster for finding the index access
//! costs. PINUM takes a few tens of milliseconds to build the cache for
//! each query, compared to a few seconds required by INUM."

use crate::paper_workload;
use crate::table::{fmt_duration, TextTable};
use pinum_advisor::candidates::generate_candidates;
use pinum_core::access_costs::{collect_inum, collect_pinum};
use pinum_core::builder::{build_cache_inum, build_cache_pinum, BuilderOptions};
use pinum_optimizer::Optimizer;

/// Per-query measurements, returned for tests and EXPERIMENTS.md.
pub struct ConstructionRow {
    pub name: String,
    pub tables: usize,
    pub iocs: u64,
    pub cache_speedup: f64,
    pub access_speedup: f64,
}

pub fn run(scale: f64) -> Vec<ConstructionRow> {
    let pw = paper_workload(scale);
    let opt = Optimizer::new(&pw.schema.catalog);
    let pool = generate_candidates(&pw.schema.catalog, &pw.workload.queries);
    println!(
        "E4: cache construction times (paper Fig. 4/5) — {} candidate indexes\n",
        pool.len()
    );

    let mut table = TextTable::new(vec![
        "query",
        "tables",
        "IOCs",
        "INUM calls",
        "INUM cache",
        "PINUM cache",
        "speedup",
        "INUM access",
        "PINUM access",
        "speedup ",
    ]);
    let opts = BuilderOptions::default();
    let mut rows = Vec::new();
    for q in &pw.workload.queries {
        let inum = build_cache_inum(&opt, q, &opts);
        let pinum = build_cache_pinum(&opt, q, &opts);
        let (_, acc_inum) = collect_inum(&opt, q, &pool);
        let (_, acc_pinum) = collect_pinum(&opt, q, &pool);
        let cache_speedup = inum.stats.wall.as_secs_f64() / pinum.stats.wall.as_secs_f64();
        let access_speedup = acc_inum.wall.as_secs_f64() / acc_pinum.wall.as_secs_f64();
        table.row(vec![
            q.name.clone(),
            q.relation_count().to_string(),
            inum.stats.ioc_count.to_string(),
            inum.stats.optimizer_calls.to_string(),
            fmt_duration(inum.stats.wall),
            fmt_duration(pinum.stats.wall),
            format!("{cache_speedup:.1}x"),
            fmt_duration(acc_inum.wall),
            fmt_duration(acc_pinum.wall),
            format!("{access_speedup:.1}x"),
        ]);
        rows.push(ConstructionRow {
            name: q.name.clone(),
            tables: q.relation_count(),
            iocs: inum.stats.ioc_count,
            cache_speedup,
            access_speedup,
        });
    }
    println!("{}", table.render());
    let geo = |v: Vec<f64>| (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp();
    println!(
        "geometric-mean speedup: cache {:.1}x, access-cost collection {:.1}x",
        geo(rows.iter().map(|r| r.cache_speedup).collect()),
        geo(rows.iter().map(|r| r.access_speedup).collect())
    );
    println!("paper: cache ≥10x (up to 100x for >3-way joins), access-cost collection ≈5x\n");
    rows
}
