//! V1 — cost-model validation against the mini execution engine.
//!
//! The paper's execution times come from a live PostgreSQL; our stand-in
//! executes the planned queries over synthetic data at a small scale and
//! checks (a) plan result-equivalence across configurations and (b) that
//! cardinality estimates track actual row counts on uniform data.

use crate::table::TextTable;
use pinum_catalog::Configuration;
use pinum_core::builder::covering_configuration;
use pinum_engine::{execute, Database};
use pinum_optimizer::{Optimizer, OptimizerOptions};
use pinum_workload::star::{StarSchema, StarWorkload};

pub fn run(_scale: f64) {
    const ENGINE_SCALE: f64 = 0.0004; // ≈ 18k fact rows: execution stays fast
    println!("V1: engine validation at scale {ENGINE_SCALE}\n");
    let schema = StarSchema::generate(42, ENGINE_SCALE);
    let workload = StarWorkload::generate(&schema, 7, 10);
    let opt = Optimizer::new(&schema.catalog);
    let db = Database::generate(&schema.catalog, 99);

    let mut table = TextTable::new(vec![
        "query",
        "est rows",
        "actual rows",
        "ratio",
        "plans agree",
    ]);
    for q in workload.queries.iter().take(6) {
        let plain = opt.optimize(q, &Configuration::empty(), &OptimizerOptions::standard());
        let covered = opt.optimize(
            q,
            &covering_configuration(&schema.catalog, q),
            &OptimizerOptions::standard(),
        );
        let out_a = execute(&schema.catalog, q, &db, &plain.plan);
        let out_b = execute(&schema.catalog, q, &db, &covered.plan);
        let mut pa = out_a.project(&schema.catalog, q);
        let mut pb = out_b.project(&schema.catalog, q);
        pa.sort_unstable();
        pb.sort_unstable();
        let agree = pa == pb;
        let est = plain.best_rows;
        let actual = out_a.rows.len().max(1) as f64;
        table.row(vec![
            q.name.clone(),
            format!("{est:.0}"),
            format!("{:.0}", out_a.rows.len()),
            format!("{:.2}", est / actual),
            if agree {
                "yes".into()
            } else {
                "NO".to_string()
            },
        ]);
        assert!(agree, "{}: plans disagree on results", q.name);
    }
    println!("{}", table.render());
    println!("(identical results under different configurations; estimates track uniform-data actuals)\n");
}
