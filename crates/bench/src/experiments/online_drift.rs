//! A6 — online tuning under workload drift: the `pinum_online` daemon vs
//! periodic full rebuild-and-reselect.
//!
//! A drifting query stream (template-mix shifts, table growth, churn —
//! `pinum_workload::drift`) is replayed through [`OnlineAdvisor`]: every
//! arriving query is spliced into the streaming `WorkloadModel`, the
//! window slides, and re-advising fires on epochs and detected drift,
//! warm-starting the search from the previous selection. At the *same*
//! re-advise points a baseline rebuilds the model from scratch over the
//! identical window and searches cold — the offline practice the online
//! subsystem replaces.
//!
//! Acceptance gates (asserted here and re-checked from the JSON in CI):
//!
//! * **quality** — steady-state (past the first phase) priced cost of the
//!   online selection within 1 % of the periodic full-rebuild baseline;
//! * **no rebuilds** — the online path performs zero from-scratch model
//!   builds after start-up (`OnlineStats::full_rebuilds == 0`);
//! * **O(query) admission** — the splice work per admitted query is a
//!   property of the query, not the window: total splice arms are
//!   bit-identical across two window sizes (the hard, deterministic
//!   gate); the wall-time ratio is reported alongside but not gated, so
//!   scheduler noise on shared CI runners cannot flake the build.

use crate::fixtures::SCHEMA_SEED;
use crate::json::{emit, json_array, JsonObject};
use crate::table::{fmt_duration, TextTable};
use pinum_advisor::candidates::generate_candidates;
use pinum_advisor::greedy::GreedyOptions;
use pinum_advisor::search::StrategyKind;
use pinum_core::access_costs::{collect_pinum, AccessCostCatalog};
use pinum_core::builder::{build_cache_pinum, BuilderOptions};
use pinum_core::{CandidatePool, PlanCache, WorkloadModel};
use pinum_online::{AdmissionSpec, OnlineAdvisor, OnlineAdvisorOptions, ReadviseTrigger};
use pinum_optimizer::Optimizer;
use pinum_workload::drift::{DriftProfile, DriftStream, DriftedQuery};
use pinum_workload::star::StarSchema;
use std::time::{Duration, Instant};

/// Stream shape: 4 phases × 60 queries.
pub const PHASES: usize = 4;
pub const PHASE_LENGTH: usize = 60;

/// Sliding-window capacity of the online advisor (and the baseline's
/// rebuild scope), plus the alternate size for the O(query) witness.
pub const WINDOW: usize = 60;
pub const ALT_WINDOW: usize = 120;

/// Admissions per epoch.
pub const EPOCH: usize = 30;

/// Early re-advise when the window mean regresses 15 % over baseline.
pub const DRIFT_THRESHOLD: f64 = 0.15;

/// Candidate pool cap (pool generated over the whole stream).
pub const CANDIDATE_CAP: usize = 300;

/// Drift stream seed.
pub const DRIFT_SEED: u64 = 0xD81F;

/// One compared re-advise point.
pub struct DriftPoint {
    /// Stream index (0-based admission count at the trigger).
    pub index: usize,
    pub trigger: ReadviseTrigger,
    /// Exact priced cost of the online selection over its live window.
    pub online_cost: f64,
    /// Cold full-rebuild-and-reselect cost over the identical window.
    pub rebuild_cost: f64,
    pub online_wall: Duration,
    pub rebuild_wall: Duration,
    pub online_evaluations: usize,
    pub rebuild_evaluations: usize,
}

pub struct OnlineDriftOutcome {
    pub queries: usize,
    pub candidates: usize,
    pub points: Vec<DriftPoint>,
    pub steady_max_ratio: f64,
    pub full_rebuilds: usize,
    pub admit_arms_identical: bool,
    pub admit_wall_ratio: f64,
}

fn trigger_name(t: ReadviseTrigger) -> &'static str {
    match t {
        ReadviseTrigger::Epoch => "epoch",
        ReadviseTrigger::Drift => "drift",
        ReadviseTrigger::Forced => "forced",
    }
}

/// Replays the stream through one online advisor; returns the advisor's
/// final state plus per-admission records `(readvise report?, wall)`.
struct OnlinePass {
    advisor: OnlineAdvisor,
    /// (stream index, report) for every re-advise that fired.
    readvises: Vec<(usize, pinum_online::ReadviseReport)>,
    admit_wall_total: Duration,
}

fn run_online(
    pool: &CandidatePool,
    models: &[(PlanCache, AccessCostCatalog)],
    stream: &[DriftedQuery],
    window: usize,
    budget: u64,
) -> OnlinePass {
    let mut advisor = OnlineAdvisor::new(
        pool.clone(),
        OnlineAdvisorOptions {
            window_capacity: window,
            epoch_length: EPOCH,
            drift_threshold: DRIFT_THRESHOLD,
            decay: 1.0,
            strategy: StrategyKind::SwapHillClimb,
            budget_bytes: budget,
            benefit_per_byte: false,
            warm_start: true,
            // This experiment's admissions carry no templates, so scoping
            // could never kick in anyway; keep it off explicitly so the
            // baseline comparison stays the unscoped reference.
            scoped_readvise: false,
            attribution_threshold: 0.1,
        },
    );
    let mut readvises = Vec::new();
    let mut admit_wall_total = Duration::ZERO;
    for (i, ((cache, access), dq)) in models.iter().zip(stream).enumerate() {
        let admission = advisor.apply(AdmissionSpec::new(cache, access).weight(dq.weight));
        admit_wall_total += admission.model_wall;
        if let Some(report) = admission.readvise {
            readvises.push((i, report));
        }
    }
    OnlinePass {
        advisor,
        readvises,
        admit_wall_total,
    }
}

pub fn run(scale: f64) -> OnlineDriftOutcome {
    println!(
        "A6: online tuning under drift — {PHASES} phases × {PHASE_LENGTH} queries, \
         window {WINDOW} (alt {ALT_WINDOW}), epoch {EPOCH}, drift threshold {DRIFT_THRESHOLD}, \
         schema seed {SCHEMA_SEED:#x}, drift seed {DRIFT_SEED:#x}\n"
    );
    let build_start = Instant::now();
    let schema = StarSchema::generate(SCHEMA_SEED, scale);
    let profile = DriftProfile {
        phases: PHASES,
        phase_length: PHASE_LENGTH,
        edge_window: 4,
        churn: 0.05,
        growth_per_phase: 1.3,
    };
    let stream: Vec<DriftedQuery> = DriftStream::new(&schema, DRIFT_SEED, profile).collect();
    let queries: Vec<_> = stream.iter().map(|d| d.query.clone()).collect();
    let full_pool = generate_candidates(&schema.catalog, &queries);
    let pool = if full_pool.len() > CANDIDATE_CAP {
        CandidatePool::from_indexes(full_pool.indexes()[..CANDIDATE_CAP].to_vec())
    } else {
        full_pool
    };
    let optimizer = Optimizer::new(&schema.catalog);
    let models: Vec<(PlanCache, AccessCostCatalog)> = queries
        .iter()
        .map(|q| {
            let built = build_cache_pinum(&optimizer, q, &BuilderOptions::default());
            let (access, _) = collect_pinum(&optimizer, q, &pool);
            (built.cache, access)
        })
        .collect();
    println!(
        "built {} per-query PINUM models over {} candidates in {}",
        models.len(),
        pool.len(),
        fmt_duration(build_start.elapsed())
    );

    let budget = (5.0 * 1024.0 * 1024.0 * 1024.0 * scale) as u64;

    // --- Online pass at the reference window. ---
    let pass = run_online(&pool, &models, &stream, WINDOW, budget);

    // --- Periodic full-rebuild baseline at the same re-advise points. ---
    let gopts = GreedyOptions {
        budget_bytes: budget,
        benefit_per_byte: false,
    };
    let mut points = Vec::new();
    for (index, report) in &pass.readvises {
        let lo = (index + 1).saturating_sub(WINDOW);
        let rebuild_start = Instant::now();
        let mut model =
            WorkloadModel::build(pool.len(), models[lo..=*index].iter().map(|(c, a)| (c, a)));
        for (offset, dq) in stream[lo..=*index].iter().enumerate() {
            if dq.weight != 1.0 {
                model.reweight_query(offset, dq.weight);
            }
        }
        let cold = StrategyKind::SwapHillClimb
            .build()
            .search(&pool, &model, &gopts);
        let rebuild_wall = rebuild_start.elapsed();
        let rebuild_cost = model.price_full(&cold.selection).total();
        points.push(DriftPoint {
            index: *index,
            trigger: report.trigger,
            online_cost: report.cost_after,
            rebuild_cost,
            online_wall: report.wall,
            rebuild_wall,
            online_evaluations: report.evaluations,
            rebuild_evaluations: cold.evaluations,
        });
    }

    // --- O(query) admission witness: replay at a doubled window. ---
    let alt = run_online(&pool, &models, &stream, ALT_WINDOW, budget);
    let arms_ref = pass.advisor.stats().admit_arms_total;
    let arms_alt = alt.advisor.stats().admit_arms_total;
    let admit_arms_identical = arms_ref == arms_alt;
    let admit_wall_ratio =
        alt.admit_wall_total.as_secs_f64() / pass.admit_wall_total.as_secs_f64().max(1e-9);

    // --- Report. ---
    let mut table = TextTable::new(vec![
        "stream idx",
        "trigger",
        "online cost",
        "rebuild cost",
        "ratio",
        "online wall",
        "rebuild wall",
        "probes on/cold",
    ]);
    for p in &points {
        table.row(vec![
            p.index.to_string(),
            trigger_name(p.trigger).to_string(),
            format!("{:.0}", p.online_cost),
            format!("{:.0}", p.rebuild_cost),
            format!("{:.4}", p.online_cost / p.rebuild_cost),
            fmt_duration(p.online_wall),
            fmt_duration(p.rebuild_wall),
            format!("{}/{}", p.online_evaluations, p.rebuild_evaluations),
        ]);
    }
    println!("{}", table.render());
    let stats = pass.advisor.stats();
    let mean_admit_micros = pass.admit_wall_total.as_secs_f64() * 1e6 / stats.admits.max(1) as f64;
    println!(
        "re-advises: {} ({} epoch, {} drift); full rebuilds: {}; \
         mean admit splice: {mean_admit_micros:.1} µs; admit wall ratio at 2× window: \
         {admit_wall_ratio:.2}; splice arms identical across windows: {admit_arms_identical}\n",
        stats.readvises, stats.epoch_readvises, stats.drift_readvises, stats.full_rebuilds,
    );

    let steady_max_ratio = points
        .iter()
        .filter(|p| p.index >= PHASE_LENGTH)
        .map(|p| p.online_cost / p.rebuild_cost)
        .fold(0.0f64, f64::max);
    let steady_points = points.iter().filter(|p| p.index >= PHASE_LENGTH).count();
    println!(
        "steady-state (past phase 0) worst online/rebuild cost ratio: {steady_max_ratio:.4} \
         over {steady_points} points (acceptance: ≤ 1.01)\n"
    );

    emit(
        "online_drift",
        &JsonObject::new()
            .int("queries", models.len() as u64)
            .int("candidates", pool.len() as u64)
            .num("scale", scale)
            .int("budget_bytes", budget)
            .int("window", WINDOW as u64)
            .int("alt_window", ALT_WINDOW as u64)
            .int("epoch", EPOCH as u64)
            .num("drift_threshold", DRIFT_THRESHOLD)
            .int("readvises", stats.readvises as u64)
            .int("epoch_readvises", stats.epoch_readvises as u64)
            .int("drift_readvises", stats.drift_readvises as u64)
            .int("full_rebuilds", stats.full_rebuilds as u64)
            .int("admit_arms_total", arms_ref as u64)
            .int("admit_arms_alt_window", arms_alt as u64)
            .bool("admit_arms_identical", admit_arms_identical)
            .int("admit_arms_max", stats.admit_arms_max as u64)
            .num("mean_admit_micros", mean_admit_micros)
            .num("admit_wall_ratio", admit_wall_ratio)
            .num("readvise_wall_seconds", stats.readvise_wall.as_secs_f64())
            .num(
                "last_readvise_wall_seconds",
                stats.last_readvise_wall.as_secs_f64(),
            )
            .num("steady_max_ratio", steady_max_ratio)
            .int("steady_points", steady_points as u64)
            .raw(
                "points",
                json_array(points.iter().map(|p| {
                    JsonObject::new()
                        .int("index", p.index as u64)
                        .str("trigger", trigger_name(p.trigger))
                        .num("online_cost", p.online_cost)
                        .num("rebuild_cost", p.rebuild_cost)
                        .num("ratio", p.online_cost / p.rebuild_cost)
                        .num("online_wall_seconds", p.online_wall.as_secs_f64())
                        .num("rebuild_wall_seconds", p.rebuild_wall.as_secs_f64())
                        .int("online_evaluations", p.online_evaluations as u64)
                        .int("rebuild_evaluations", p.rebuild_evaluations as u64)
                        .render()
                })),
            ),
    );

    // --- Acceptance gates. ---
    assert!(
        steady_points >= 3,
        "too few steady-state re-advise points ({steady_points}) to gate on"
    );
    assert!(
        steady_max_ratio <= 1.01,
        "online advisor steady-state cost drifted {steady_max_ratio:.4}× from the \
         full-rebuild baseline (acceptance: ≤ 1.01)"
    );
    assert_eq!(
        stats.full_rebuilds, 0,
        "online advisor performed full model rebuilds"
    );
    assert!(
        admit_arms_identical,
        "admission splice work changed with the window size — it must be O(query)"
    );
    // The wall-clock ratio is reported (and tracked by exp_trend's wide
    // tolerances) but deliberately not hard-gated: the deterministic
    // splice-arms identity above already proves admission work is
    // O(query), and microsecond-scale timing sums flake on shared CI
    // runners. Surface gross anomalies in the log instead.
    if admit_wall_ratio > 2.0 {
        println!(
            "note: admission wall ratio {admit_wall_ratio:.2} at 2× window — timing noise, \
             since splice work counts are bit-identical"
        );
    }

    OnlineDriftOutcome {
        queries: models.len(),
        candidates: pool.len(),
        points,
        steady_max_ratio,
        full_rebuilds: stats.full_rebuilds,
        admit_arms_identical,
        admit_wall_ratio,
    }
}
