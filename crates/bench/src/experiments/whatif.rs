//! E2 — §VI-B what-if index accuracy.
//!
//! "Initially, we use the query optimizer to compute the cost of a query
//! when the indexes are explicitly implemented in the database. Then, we
//! evaluate the cost of the same query by simulating the presence of the
//! same indexes using what-if indexes … We repeat the same experiment 50
//! times for different sets of indexes. … the error in the cost estimation
//! was on average 0.33% and the highest observed error was 1.05%."
//!
//! The error source is structural: what-if sizing counts leaf pages only,
//! materialized sizing also counts the internal B-tree pages (§V-A).

use crate::paper_workload;
use crate::table::TextTable;
use pinum_catalog::{Configuration, Index};
use pinum_optimizer::{Optimizer, OptimizerOptions};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

pub fn run(scale: f64) {
    const TRIALS: usize = 50;
    let seed = 0xACC0;
    println!(
        "E2: what-if index accuracy (paper §VI-B) — {TRIALS} random index sets, seed {seed:#x}\n"
    );

    let pw = paper_workload(scale);
    let catalog = &pw.schema.catalog;
    let opt = Optimizer::new(catalog);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut errors = Vec::new();

    for trial in 0..TRIALS {
        let q = pw.workload.queries[trial % pw.workload.queries.len()].clone();
        // A random atomic index set over the query's tables.
        let mut whatif = Vec::new();
        let mut materialized = Vec::new();
        for rel in 0..q.relation_count() as u16 {
            if rng.gen_bool(0.3) {
                continue; // leave some tables unindexed
            }
            let table = catalog.table(q.table_of(rel));
            let referenced = q.referenced_columns(rel);
            let ncols = rng.gen_range(1..=referenced.len().min(3));
            let mut cols = referenced.clone();
            cols.shuffle(&mut rng);
            cols.truncate(ncols);
            whatif.push(Index::hypothetical(table, cols.clone(), false));
            materialized.push(Index::materialized(table, cols, false));
        }
        if whatif.is_empty() {
            continue;
        }
        let c_whatif = opt
            .optimize(
                &q,
                &Configuration::new(whatif),
                &OptimizerOptions::standard(),
            )
            .best_cost
            .total;
        let c_real = opt
            .optimize(
                &q,
                &Configuration::new(materialized),
                &OptimizerOptions::standard(),
            )
            .best_cost
            .total;
        let err = (c_whatif - c_real).abs() / c_real;
        errors.push(err);
    }

    let avg = errors.iter().sum::<f64>() / errors.len() as f64;
    let max = errors.iter().cloned().fold(0.0, f64::max);
    let mut table = TextTable::new(vec!["metric", "this repro", "paper"]);
    table.row(vec![
        "average error".to_string(),
        format!("{:.2}%", avg * 100.0),
        "0.33%".into(),
    ]);
    table.row(vec![
        "maximum error".to_string(),
        format!("{:.2}%", max * 100.0),
        "1.05%".into(),
    ]);
    table.row(vec![
        "index sets".to_string(),
        errors.len().to_string(),
        TRIALS.to_string(),
    ]);
    println!("{}", table.render());
    println!(
        "(what-if sizes ignore internal B-tree pages; the residual error is that page-count gap)\n"
    );
}
