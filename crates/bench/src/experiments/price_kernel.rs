//! Pricing-kernel microbenchmark: the SoA delta kernel vs the frozen
//! nested reference engine on the 200-query × 400-candidate scale
//! workload.
//!
//! The tentpole claim of the SoA restructuring is that a delta probe is
//! no longer O(workload): the inverted index and bloom/footprint
//! prefilter bound the work to the queries whose arms mention the
//! candidate, the branchless min-scan prices each of those from two
//! contiguous arrays, and the pairwise sum tree turns the total update
//! into O(changed · log n) splices instead of an O(n) re-sum. This
//! experiment replays an identical schedule of `price_delta` probes
//! through both engines, verifies they price every query to the same
//! bits, and reports the throughput ratio (acceptance: ≥ 3×).

use crate::experiments::advisor_scale::{build_scale_fixture, CANDIDATE_CAP, QUERIES};
use crate::json::{emit, JsonObject};
use crate::table::{fmt_duration, TextTable};
use pinum_core::{pairwise_total, ReferenceModel, Selection, WorkloadModel};
use std::time::{Duration, Instant};

/// Probe schedule: every candidate outside the base selection, from a
/// selection of evenly spaced members — a mid-search snapshot, the state
/// every advisor strategy probes from.
const SELECTED_EVERY: usize = 50;

pub struct KernelOutcome {
    pub queries: usize,
    pub candidates: usize,
    pub probes_per_pass: usize,
    pub reference_wall: Duration,
    pub kernel_wall: Duration,
    pub reference_passes: usize,
    pub kernel_passes: usize,
    pub speedup: f64,
    pub affected_fraction: f64,
    pub changed_fraction: f64,
}

/// Times `passes` full probe sweeps, returning the wall plus a checksum
/// that keeps the optimizer from discarding the priced totals.
fn sweep<F: FnMut() -> f64>(passes: usize, mut pass: F) -> (Duration, f64) {
    let start = Instant::now();
    let mut checksum = 0.0;
    for _ in 0..passes {
        checksum += pass();
    }
    (start.elapsed(), checksum)
}

pub fn run(scale: f64) -> KernelOutcome {
    println!(
        "K1: pricing-kernel microbench — {QUERIES} queries, candidate cap {CANDIDATE_CAP}, \
         SoA delta kernel vs nested reference engine\n"
    );
    let build_start = Instant::now();
    let (_schema, _workload, pool, models) = build_scale_fixture(scale, QUERIES, CANDIDATE_CAP);
    let model = WorkloadModel::build(pool.len(), models.iter().map(|(c, a)| (c, a)));
    let reference = ReferenceModel::build(pool.len(), models.iter().map(|(c, a)| (c, a)));
    println!(
        "built both engines over {} queries × {} candidates in {}",
        model.query_count(),
        pool.len(),
        fmt_duration(build_start.elapsed())
    );

    let selection = Selection::from_ids(
        pool.len(),
        &(0..pool.len()).step_by(SELECTED_EVERY).collect::<Vec<_>>(),
    );
    let state = model.price_full(&selection);
    let (ref_costs, _) = reference.price_full(&selection);

    // Equivalence first: the kernel must price every query to the same
    // bits as the frozen nested engine before its speed means anything.
    for (q, (a, b)) in state.per_query().iter().zip(&ref_costs).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "query {q} diverged between engines ({a} vs {b})"
        );
    }
    assert_eq!(
        state.total().to_bits(),
        pairwise_total(&ref_costs).to_bits(),
        "sum tree total is not the canonical pairwise shape"
    );

    let probes: Vec<usize> = (0..pool.len())
        .filter(|&c| !selection.contains(c))
        .collect();

    // Prefilter bookkeeping: how much of the workload a probe touches at
    // all (inverted index) and how much of that actually changes cost
    // (changed-list filtering).
    let mut scratch = Vec::new();
    let mut affected_total = 0usize;
    let mut changed_total = 0usize;
    for &c in &probes {
        model.price_delta_into(&state, &selection, c, &mut scratch);
        affected_total += model.affected(c).len();
        changed_total += scratch.len();
    }
    let affected_fraction =
        affected_total as f64 / (probes.len() * model.query_count()).max(1) as f64;
    let changed_fraction = changed_total as f64 / affected_total.max(1) as f64;

    // Calibrate pass counts so each timed section runs long enough to be
    // stable on a single core, then sweep the identical probe schedule
    // through both engines.
    let (ref_once, _) = sweep(1, || {
        let mut total = 0.0;
        for &c in &probes {
            total += reference.price_delta_into(&ref_costs, &selection, c, &mut scratch);
        }
        total
    });
    let reference_passes = (0.3 / ref_once.as_secs_f64().max(1e-6)).ceil().max(1.0) as usize;
    let (reference_wall, ref_check) = sweep(reference_passes, || {
        let mut total = 0.0;
        for &c in &probes {
            total += reference.price_delta_into(&ref_costs, &selection, c, &mut scratch);
        }
        total
    });

    let (kernel_once, _) = sweep(1, || {
        let mut total = 0.0;
        for &c in &probes {
            total += model.price_delta_into(&state, &selection, c, &mut scratch);
        }
        total
    });
    let kernel_passes = (0.3 / kernel_once.as_secs_f64().max(1e-6)).ceil().max(1.0) as usize;
    let (kernel_wall, kernel_check) = sweep(kernel_passes, || {
        let mut total = 0.0;
        for &c in &probes {
            total += model.price_delta_into(&state, &selection, c, &mut scratch);
        }
        total
    });
    assert!(
        ref_check.is_finite() == kernel_check.is_finite(),
        "engines disagree on workload priceability"
    );

    let ref_throughput = (reference_passes * probes.len()) as f64 / reference_wall.as_secs_f64();
    let kernel_throughput = (kernel_passes * probes.len()) as f64 / kernel_wall.as_secs_f64();
    let speedup = kernel_throughput / ref_throughput.max(1e-9);

    let mut table = TextTable::new(vec!["engine", "probes/s", "passes", "wall", "per-probe"]);
    table.row(vec![
        "nested reference".to_string(),
        format!("{ref_throughput:.0}"),
        reference_passes.to_string(),
        fmt_duration(reference_wall),
        fmt_duration(reference_wall / (reference_passes * probes.len()) as u32),
    ]);
    table.row(vec![
        "SoA delta kernel".to_string(),
        format!("{kernel_throughput:.0}"),
        kernel_passes.to_string(),
        fmt_duration(kernel_wall),
        fmt_duration(kernel_wall / (kernel_passes * probes.len()) as u32),
    ]);
    println!("{}", table.render());
    println!(
        "probe touches {:.1}% of the workload ({:.1}% of touched queries change cost); \
         delta throughput {speedup:.1}x the nested engine (acceptance: ≥3x)\n",
        affected_fraction * 100.0,
        changed_fraction * 100.0,
    );

    emit(
        "price_kernel",
        &JsonObject::new()
            .int("queries", model.query_count() as u64)
            .int("candidates", pool.len() as u64)
            .num("scale", scale)
            .int("probes_per_pass", probes.len() as u64)
            .num("reference_probes_per_second", ref_throughput)
            .num("kernel_probes_per_second", kernel_throughput)
            .num("speedup", speedup)
            .num("affected_fraction", affected_fraction)
            .num("changed_fraction", changed_fraction),
    );

    KernelOutcome {
        queries: model.query_count(),
        candidates: pool.len(),
        probes_per_pass: probes.len(),
        reference_wall,
        kernel_wall,
        reference_passes,
        kernel_passes,
        speedup,
        affected_fraction,
        changed_fraction,
    }
}
