//! A7 — persistent pricing sessions + template-scoped re-advising on a
//! reweight-heavy drift stream.
//!
//! The tentpole claims of the session refactor, gated in release mode:
//!
//! * **zero full re-pricings in steady state** — the online daemon's
//!   re-advises are warm-started from the session's spliced
//!   [`PricedWorkload`](pinum_core::PricedWorkload) and apply picks as
//!   delta splices, so once past the first phase no re-advise performs a
//!   single `price_full` ([`ReadviseReport::full_repricings`] sums to 0);
//! * **scoped quality within 1 %** — when drift fires and per-template
//!   attribution localizes it, the search probes only candidates that can
//!   affect the regressed templates; the final selection's priced cost
//!   stays within 1 % of a full-scope twin replaying the identical event
//!   stream;
//! * **measured probe reduction** — the scoped pass spends measurably
//!   fewer search evaluations than the full-scope pass (tracked in the
//!   trend baseline as `scoped_probe_fraction`).
//!
//! The stream interleaves in-place [`DriftEvent::Reweight`] events (the
//! same query getting hotter — `pinum_workload::drift::DriftEventStream`)
//! with the phased admissions, closing the ROADMAP item on feeding
//! reweight drift through the online advisor. Both passes replay the
//! *identical* event sequence; the only difference is
//! `OnlineAdvisorOptions::scoped_readvise`.

use crate::fixtures::SCHEMA_SEED;
use crate::json::{emit, json_array, JsonObject};
use crate::table::{fmt_duration, TextTable};
use pinum_advisor::candidates::generate_candidates;
use pinum_advisor::search::StrategyKind;
use pinum_core::access_costs::{collect_pinum, AccessCostCatalog};
use pinum_core::builder::{build_cache_pinum, BuilderOptions};
use pinum_core::{CandidatePool, PlanCache};
use pinum_online::{
    query_templates, AdmissionSpec, OnlineAdvisor, OnlineAdvisorOptions, ReadviseReport,
    ReadviseTrigger,
};
use pinum_optimizer::Optimizer;
use pinum_query::TemplateKey;
use pinum_workload::drift::{DriftEvent, DriftEventStream, DriftProfile, ReweightProfile};
use pinum_workload::star::StarSchema;
use std::time::Instant;

/// Stream shape: 4 phases × 60 admissions, plus ~25 % reweight events.
pub const PHASES: usize = 4;
pub const PHASE_LENGTH: usize = 60;

/// Sliding-window capacity of the online advisor.
pub const WINDOW: usize = 60;

/// Admissions per epoch.
pub const EPOCH: usize = 30;

/// Early re-advise when the window mean regresses 15 % over baseline.
pub const DRIFT_THRESHOLD: f64 = 0.15;

/// Per-template regression that marks a template regressed for scoping.
pub const ATTRIBUTION_THRESHOLD: f64 = 0.1;

/// Candidate pool cap (pool generated over the whole stream).
pub const CANDIDATE_CAP: usize = 300;

/// Drift stream seed.
pub const DRIFT_SEED: u64 = 0x5C0D;

/// Reweight drift riding on the stream.
pub const REWEIGHTS: ReweightProfile = ReweightProfile {
    rate: 0.25,
    factor: 1.4,
    lookback: 30,
};

/// One pass's aggregate outcome.
pub struct Pass {
    /// (admissions at trigger time, report) per re-advise, stream order.
    pub reports: Vec<(usize, ReadviseReport)>,
    /// Forced final re-advise (full scope in both passes).
    pub final_report: ReadviseReport,
    /// Exact priced cost of the final selection over the final window.
    pub final_cost: f64,
    pub stats: pinum_online::OnlineStats,
}

impl Pass {
    /// Search evaluations across every re-advise (incl. the final one).
    pub fn total_evaluations(&self) -> usize {
        self.reports
            .iter()
            .map(|(_, r)| r.evaluations)
            .sum::<usize>()
            + self.final_report.evaluations
    }

    /// Full re-pricings across steady-state re-advises (past phase 0).
    pub fn steady_full_repricings(&self) -> usize {
        self.reports
            .iter()
            .filter(|(admitted, _)| *admitted >= PHASE_LENGTH)
            .map(|(_, r)| r.full_repricings)
            .sum()
    }
}

pub struct ScopedReadviseOutcome {
    pub queries: usize,
    pub candidates: usize,
    pub events: usize,
    pub scoped: Pass,
    pub full: Pass,
    pub quality_ratio: f64,
    pub scoped_probe_fraction: f64,
}

fn trigger_name(t: ReadviseTrigger) -> &'static str {
    match t {
        ReadviseTrigger::Epoch => "epoch",
        ReadviseTrigger::Drift => "drift",
        ReadviseTrigger::Forced => "forced",
    }
}

#[allow(clippy::type_complexity)]
fn run_pass(
    pool: &CandidatePool,
    models: &[(PlanCache, AccessCostCatalog)],
    weights: &[f64],
    templates: &[Vec<TemplateKey>],
    events: &[DriftEvent],
    budget: u64,
    scoped: bool,
) -> Pass {
    let mut advisor = OnlineAdvisor::new(
        pool.clone(),
        OnlineAdvisorOptions {
            window_capacity: WINDOW,
            epoch_length: EPOCH,
            drift_threshold: DRIFT_THRESHOLD,
            decay: 1.0,
            strategy: StrategyKind::SwapHillClimb,
            budget_bytes: budget,
            benefit_per_byte: false,
            warm_start: true,
            scoped_readvise: scoped,
            attribution_threshold: ATTRIBUTION_THRESHOLD,
        },
    );
    let mut reports = Vec::new();
    let mut admitted = 0usize;
    for event in events {
        let readvise = match event {
            DriftEvent::Admit(_) => {
                let (cache, access) = &models[admitted];
                let adm = advisor.apply(
                    AdmissionSpec::new(cache, access)
                        .weight(weights[admitted])
                        .templates(&templates[admitted]),
                );
                admitted += 1;
                adm.readvise
            }
            DriftEvent::Reweight { admission, weight } => {
                advisor.reweight(*admission, *weight, false).readvise
            }
        };
        if let Some(report) = readvise {
            reports.push((admitted, report));
        }
    }
    // Flush with a forced (full-scope in both passes) final round so the
    // quality comparison sees each pass's settled selection.
    let final_report = advisor.readvise();
    Pass {
        reports,
        final_report,
        final_cost: advisor.current_cost(),
        stats: advisor.stats().clone(),
    }
}

pub fn run(scale: f64) -> ScopedReadviseOutcome {
    println!(
        "A7: persistent sessions + scoped re-advising — {PHASES} phases × {PHASE_LENGTH} \
         admissions, reweight rate {:.2} ×{:.2}, window {WINDOW}, epoch {EPOCH}, drift \
         threshold {DRIFT_THRESHOLD}, attribution threshold {ATTRIBUTION_THRESHOLD}, schema \
         seed {SCHEMA_SEED:#x}, drift seed {DRIFT_SEED:#x}\n",
        REWEIGHTS.rate, REWEIGHTS.factor
    );
    let build_start = Instant::now();
    let schema = StarSchema::generate(SCHEMA_SEED, scale);
    let profile = DriftProfile {
        phases: PHASES,
        phase_length: PHASE_LENGTH,
        edge_window: 4,
        churn: 0.05,
        growth_per_phase: 1.3,
    };
    let events: Vec<DriftEvent> =
        DriftEventStream::new(&schema, DRIFT_SEED, profile, REWEIGHTS).collect();
    let queries: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            DriftEvent::Admit(dq) => Some(dq.query.clone()),
            DriftEvent::Reweight { .. } => None,
        })
        .collect();
    let weights: Vec<f64> = events
        .iter()
        .filter_map(|e| match e {
            DriftEvent::Admit(dq) => Some(dq.weight),
            DriftEvent::Reweight { .. } => None,
        })
        .collect();
    let reweight_events = events.len() - queries.len();
    let full_pool = generate_candidates(&schema.catalog, &queries);
    let pool = if full_pool.len() > CANDIDATE_CAP {
        CandidatePool::from_indexes(full_pool.indexes()[..CANDIDATE_CAP].to_vec())
    } else {
        full_pool
    };
    let optimizer = Optimizer::new(&schema.catalog);
    let models: Vec<(PlanCache, AccessCostCatalog)> = queries
        .iter()
        .map(|q| {
            let built = build_cache_pinum(&optimizer, q, &BuilderOptions::default());
            let (access, _) = collect_pinum(&optimizer, q, &pool);
            (built.cache, access)
        })
        .collect();
    let templates: Vec<Vec<TemplateKey>> = queries.iter().map(query_templates).collect();
    println!(
        "built {} per-query PINUM models over {} candidates in {} \
         ({reweight_events} reweight events ride the stream)",
        models.len(),
        pool.len(),
        fmt_duration(build_start.elapsed())
    );

    let budget = (5.0 * 1024.0 * 1024.0 * 1024.0 * scale) as u64;
    let scoped = run_pass(&pool, &models, &weights, &templates, &events, budget, true);
    let full = run_pass(&pool, &models, &weights, &templates, &events, budget, false);

    // --- Report. ---
    let mut table = TextTable::new(vec![
        "pass",
        "re-advises",
        "drift",
        "scoped",
        "probes",
        "steady full reprices",
        "final cost",
        "last re-advise",
        "re-advise wall",
    ]);
    for (name, pass) in [("scoped", &scoped), ("full-scope", &full)] {
        table.row(vec![
            name.to_string(),
            (pass.reports.len() + 1).to_string(),
            pass.stats.drift_readvises.to_string(),
            pass.stats.scoped_readvises.to_string(),
            pass.total_evaluations().to_string(),
            pass.steady_full_repricings().to_string(),
            format!("{:.0}", pass.final_cost),
            fmt_duration(pass.stats.last_readvise_wall),
            fmt_duration(pass.stats.readvise_wall),
        ]);
    }
    println!("{}", table.render());

    let mut detail = TextTable::new(vec![
        "admitted",
        "trigger",
        "scope",
        "probes",
        "full reprices",
        "cost after",
    ]);
    for (admitted, r) in scoped
        .reports
        .iter()
        .map(|(a, r)| (*a, r))
        .chain(std::iter::once((queries.len(), &scoped.final_report)))
    {
        detail.row(vec![
            admitted.to_string(),
            trigger_name(r.trigger).to_string(),
            if r.scoped {
                format!("{}/{}", r.scope_candidates, pool.len())
            } else {
                "all".to_string()
            },
            r.evaluations.to_string(),
            r.full_repricings.to_string(),
            format!("{:.0}", r.cost_after),
        ]);
    }
    println!("scoped pass re-advises:\n{}", detail.render());

    let quality_ratio = scoped.final_cost / full.final_cost;
    let scoped_probe_fraction =
        scoped.total_evaluations() as f64 / full.total_evaluations().max(1) as f64;
    println!(
        "quality ratio scoped/full {quality_ratio:.4} (acceptance: ≤ 1.01); probe fraction \
         {scoped_probe_fraction:.4} (acceptance: < 1); steady-state full re-pricings: {} \
         (acceptance: 0); reweights applied {} (missed {})\n",
        scoped.steady_full_repricings(),
        scoped.stats.reweights,
        scoped.stats.reweight_misses,
    );

    emit(
        "scoped_readvise",
        &JsonObject::new()
            .int("queries", models.len() as u64)
            .int("candidates", pool.len() as u64)
            .int("events", events.len() as u64)
            .int("reweight_events", reweight_events as u64)
            .num("scale", scale)
            .int("budget_bytes", budget)
            .int("window", WINDOW as u64)
            .int("epoch", EPOCH as u64)
            .num("drift_threshold", DRIFT_THRESHOLD)
            .num("attribution_threshold", ATTRIBUTION_THRESHOLD)
            .int("readvises", (scoped.reports.len() + 1) as u64)
            .int("drift_readvises", scoped.stats.drift_readvises as u64)
            .int("scoped_readvises", scoped.stats.scoped_readvises as u64)
            .int("reweights", scoped.stats.reweights as u64)
            .int("reweight_misses", scoped.stats.reweight_misses as u64)
            .int("full_rebuilds", scoped.stats.full_rebuilds as u64)
            .int(
                "full_repricings_steady_state",
                scoped.steady_full_repricings() as u64,
            )
            .int("full_repricings_total", scoped.stats.full_repricings as u64)
            .int("scoped_probes", scoped.total_evaluations() as u64)
            .int("full_scope_probes", full.total_evaluations() as u64)
            .num("scoped_probe_fraction", scoped_probe_fraction)
            .num("quality_ratio", quality_ratio)
            .num("scoped_final_cost", scoped.final_cost)
            .num("full_final_cost", full.final_cost)
            .num(
                "last_readvise_wall_seconds",
                scoped.stats.last_readvise_wall.as_secs_f64(),
            )
            .num(
                "readvise_wall_seconds",
                scoped.stats.readvise_wall.as_secs_f64(),
            )
            .raw(
                "points",
                json_array(scoped.reports.iter().map(|(admitted, r)| {
                    JsonObject::new()
                        .int("admitted", *admitted as u64)
                        .str("trigger", trigger_name(r.trigger))
                        .bool("scoped", r.scoped)
                        .int("scope_candidates", r.scope_candidates as u64)
                        .int("evaluations", r.evaluations as u64)
                        .int("full_repricings", r.full_repricings as u64)
                        .num("cost_after", r.cost_after)
                        .num("wall_seconds", r.wall.as_secs_f64())
                        .render()
                })),
            ),
    );

    // --- Acceptance gates. ---
    assert_eq!(
        scoped.stats.full_rebuilds + full.stats.full_rebuilds,
        0,
        "online path performed full model rebuilds"
    );
    assert_eq!(
        scoped.steady_full_repricings(),
        0,
        "steady-state re-advises performed full re-pricings — the session state \
         was not carried"
    );
    assert!(
        scoped.stats.reweights > 0,
        "the reweight-heavy stream applied no reweight events"
    );
    assert!(
        scoped.stats.scoped_readvises > 0,
        "attribution never scoped a drift re-advise"
    );
    assert!(
        quality_ratio <= 1.01,
        "scoped re-advising lost more than 1% quality: ratio {quality_ratio:.4}"
    );
    assert!(
        scoped_probe_fraction < 1.0,
        "scoping saved no probes: fraction {scoped_probe_fraction:.4}"
    );

    ScopedReadviseOutcome {
        queries: models.len(),
        candidates: pool.len(),
        events: events.len(),
        scoped,
        full,
        quality_ratio,
        scoped_probe_fraction,
    }
}
