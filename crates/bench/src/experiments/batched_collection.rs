//! A7 — workload-level batched PINUM collection: one optimizer call per
//! template-shape instead of one per query.
//!
//! Building the workload model used to spend one keep-all `collect_pinum`
//! call per query — 200 calls on the scale workload, re-deriving access
//! paths for the same tables over and over. The [`WorkloadCollector`]
//! groups relations by `(table, filter shape)` template and prices each
//! template's access arms once, fanning the shared arms out to every
//! member query.
//!
//! Acceptance gates (asserted here and re-checked from the JSON in CI):
//!
//! * **exactness** — every batched [`AccessCostCatalog`] is bit-identical
//!   to the per-query `collect_pinum` reference (hard-asserted here even
//!   in release builds, where the collector's own `debug_assert` is
//!   compiled out);
//! * **call reduction** — ≥3× fewer optimizer calls than the per-query
//!   path on the 200-query × 400-candidate workload;
//! * **advisor equivalence** — the greedy advisor run on the batched
//!   models produces a bit-identical pick sequence, cost trajectory and
//!   byte total.

use crate::experiments::advisor_scale::{CANDIDATE_CAP, QUERIES};
use crate::fixtures::{SCHEMA_SEED, WORKLOAD_SEED};
use crate::json::{emit, JsonObject};
use crate::table::{fmt_duration, TextTable};
use pinum_advisor::candidates::generate_candidates;
use pinum_advisor::greedy::{greedy_select_model, GreedyOptions};
use pinum_core::access_costs::{collect_pinum, AccessCostCatalog};
use pinum_core::builder::{build_cache_pinum, BuilderOptions};
use pinum_core::{CandidatePool, PlanCache, WorkloadCollector, WorkloadModel};
use pinum_optimizer::Optimizer;
use pinum_workload::star::{StarSchema, StarWorkload};
use pinum_workload::templates::summarize_templates;
use std::time::{Duration, Instant};

pub struct BatchedOutcome {
    pub queries: usize,
    pub candidates: usize,
    pub per_query_calls: usize,
    pub batched_calls: usize,
    pub call_reduction: f64,
    pub per_query_wall: Duration,
    pub batched_wall: Duration,
    pub catalogs_identical: bool,
    pub picks_identical: bool,
}

pub fn run(scale: f64) -> BatchedOutcome {
    println!(
        "A7: batched collection — {QUERIES} queries, candidate cap {CANDIDATE_CAP}, \
         schema seed {SCHEMA_SEED:#x}, workload seed {WORKLOAD_SEED:#x}\n"
    );
    let schema = StarSchema::generate(SCHEMA_SEED, scale);
    let workload = StarWorkload::generate(&schema, WORKLOAD_SEED, QUERIES);
    let full_pool = generate_candidates(&schema.catalog, &workload.queries);
    let pool = if full_pool.len() > CANDIDATE_CAP {
        CandidatePool::from_indexes(full_pool.indexes()[..CANDIDATE_CAP].to_vec())
    } else {
        full_pool
    };
    let optimizer = Optimizer::new(&schema.catalog);

    let summary = summarize_templates(&workload.queries);
    println!(
        "template structure: {} relation instances over {} distinct templates \
         (largest group {}, {} singletons, sharing factor {:.1}x)",
        summary.rel_instances,
        summary.distinct_templates,
        summary.largest_group,
        summary.singleton_templates,
        summary.sharing_factor()
    );

    // --- Per-query reference path: one keep-all call per query. ---
    let per_query_start = Instant::now();
    let mut reference: Vec<AccessCostCatalog> = Vec::with_capacity(QUERIES);
    let mut per_query_calls = 0usize;
    for q in &workload.queries {
        let (access, stats) = collect_pinum(&optimizer, q, &pool);
        per_query_calls += stats.optimizer_calls;
        reference.push(access);
    }
    let per_query_wall = per_query_start.elapsed();

    // --- Batched path: one call per template-shape. ---
    let batched_start = Instant::now();
    let mut collector = WorkloadCollector::new();
    let (batched, bstats) = collector.collect_workload(&optimizer, &workload.queries, &pool);
    let batched_wall = batched_start.elapsed();
    let batched_calls = bstats.optimizer_calls;

    // --- Exactness: bit-identical catalogs, release mode included. ---
    let catalogs_identical = reference == batched;
    assert!(
        catalogs_identical,
        "batched collection diverged from per-query collect_pinum"
    );
    assert_eq!(
        batched_calls, summary.distinct_templates,
        "collector spent calls off the template structure"
    );

    // --- Advisor equivalence end to end: same plan caches, both access
    // collections, bit-identical pick sequences. ---
    let caches: Vec<PlanCache> = workload
        .queries
        .iter()
        .map(|q| build_cache_pinum(&optimizer, q, &BuilderOptions::default()).cache)
        .collect();
    let budget = (5.0 * 1024.0 * 1024.0 * 1024.0 * scale) as u64;
    let gopts = GreedyOptions {
        budget_bytes: budget,
        benefit_per_byte: false,
    };
    let model_ref = WorkloadModel::build(pool.len(), caches.iter().zip(reference.iter()));
    let model_batched = WorkloadModel::build(pool.len(), caches.iter().zip(batched.iter()));
    let greedy_ref = greedy_select_model(&pool, &gopts, &model_ref);
    let greedy_batched = greedy_select_model(&pool, &gopts, &model_batched);
    let picks_identical = greedy_ref.picked == greedy_batched.picked
        && greedy_ref.cost_trajectory == greedy_batched.cost_trajectory
        && greedy_ref.total_bytes == greedy_batched.total_bytes;
    assert!(
        picks_identical,
        "advisor picks diverged between collection paths"
    );

    let call_reduction = per_query_calls as f64 / batched_calls.max(1) as f64;
    let mut table = TextTable::new(vec![
        "collection path",
        "optimizer calls",
        "wall",
        "entries",
    ]);
    table.row(vec![
        "per-query collect_pinum".to_string(),
        per_query_calls.to_string(),
        fmt_duration(per_query_wall),
        reference
            .iter()
            .map(catalog_entries)
            .sum::<usize>()
            .to_string(),
    ]);
    table.row(vec![
        "batched WorkloadCollector".to_string(),
        batched_calls.to_string(),
        fmt_duration(batched_wall),
        bstats.entries.to_string(),
    ]);
    println!("{}", table.render());
    println!(
        "call reduction: {call_reduction:.1}x (acceptance: >=3x); catalogs identical: \
         {catalogs_identical}; advisor picks identical: {picks_identical}\n"
    );

    emit(
        "batched_collection",
        &JsonObject::new()
            .int("queries", workload.queries.len() as u64)
            .int("candidates", pool.len() as u64)
            .num("scale", scale)
            .int("rel_instances", summary.rel_instances as u64)
            .int("templates", summary.distinct_templates as u64)
            .int("largest_group", summary.largest_group as u64)
            .num("sharing_factor", summary.sharing_factor())
            .int("per_query_calls", per_query_calls as u64)
            .int("batched_calls", batched_calls as u64)
            .num("call_reduction", call_reduction)
            .num("per_query_wall_seconds", per_query_wall.as_secs_f64())
            .num("batched_wall_seconds", batched_wall.as_secs_f64())
            .num(
                "wall_speedup",
                per_query_wall.as_secs_f64() / batched_wall.as_secs_f64().max(1e-9),
            )
            .bool("catalogs_identical", catalogs_identical)
            .bool("picks_identical", picks_identical)
            .int("picks", greedy_batched.picked.len() as u64),
    );
    assert!(
        call_reduction >= 3.0,
        "batched collection saved only {call_reduction:.2}x optimizer calls (need >=3x)"
    );

    BatchedOutcome {
        queries: workload.queries.len(),
        candidates: pool.len(),
        per_query_calls,
        batched_calls,
        call_reduction,
        per_query_wall,
        batched_wall,
        catalogs_identical,
        picks_identical,
    }
}

fn catalog_entries(c: &AccessCostCatalog) -> usize {
    (0..c.relation_count() as u16)
        .map(|rel| c.entries(rel).len())
        .sum()
}
