//! E5 — Figure 6/7: the index-selection tool under a 5 GB budget.
//!
//! "We run the tool using the 10 queries in the workload, and restrict the
//! tool to suggest indexes taking 5GBs of space on disk. … Using PINUM's
//! suggested indexes speeds up the workload by 95% on average. PINUM
//! reduces the cost of the most expensive queries by building covering
//! indexes for them."
//!
//! Substitution note (DESIGN.md): the paper reports wall-clock execution
//! times on PostgreSQL; we report optimizer-estimated costs, which
//! preserve the figure's message — the per-query relative improvement.

use crate::paper_workload;
use crate::table::{fmt_duration, TextTable};
use pinum_advisor::tool::{advise, AdvisorOptions};

pub struct SelectionOutcome {
    pub average_improvement: f64,
    pub picked: usize,
    pub bytes: u64,
}

/// `legacy_defaults` reruns the paper's exact configuration (plain lazy
/// greedy, no candidate merging) instead of the tool's optimized defaults
/// — the `--legacy-defaults` escape hatch on `exp_index_selection`.
pub fn run(scale: f64, legacy_defaults: bool) -> SelectionOutcome {
    let budget = (5.0 * 1024.0 * 1024.0 * 1024.0 * scale) as u64; // 5 GB at full scale
    println!(
        "E5: index selection (paper Fig. 6/7) — budget {:.2} GB, {} defaults\n",
        budget as f64 / (1024.0 * 1024.0 * 1024.0),
        if legacy_defaults {
            "paper"
        } else {
            "optimized"
        }
    );
    let pw = paper_workload(scale);
    let opts = AdvisorOptions {
        budget_bytes: budget,
        ..if legacy_defaults {
            AdvisorOptions::paper_defaults()
        } else {
            AdvisorOptions::default()
        }
    };
    let advice = advise(&pw.schema.catalog, &pw.workload.queries, &opts);
    if advice.candidates_merged > 0 {
        println!(
            "candidate merging dropped {} prefix-subsumed candidates",
            advice.candidates_merged
        );
    }

    let mut table = TextTable::new(vec![
        "query",
        "original cost",
        "with indexes",
        "improvement",
    ]);
    for o in &advice.per_query {
        table.row(vec![
            o.name.clone(),
            format!("{:.0}", o.original_cost),
            format!("{:.0}", o.final_cost),
            format!("{:.0}%", o.improvement() * 100.0),
        ]);
    }
    println!("{}", table.render());
    println!(
        "suggested {} indexes, {:.2} GB of {:.2} GB budget, {} cost-model evaluations",
        advice.greedy.picked.len(),
        advice.greedy.total_bytes as f64 / (1024.0 * 1024.0 * 1024.0),
        budget as f64 / (1024.0 * 1024.0 * 1024.0),
        advice.greedy.evaluations,
    );
    println!(
        "cost model built with {} optimizer calls in {}",
        advice.model_build_calls,
        fmt_duration(advice.model_build_time)
    );
    println!("suggested indexes:");
    for ix in advice.selected_indexes() {
        println!(
            "  {} ({} key columns, {:.1} MB)",
            ix.name(),
            ix.key_columns().len(),
            ix.size().total_bytes() as f64 / (1024.0 * 1024.0)
        );
    }
    println!(
        "\naverage improvement: {:.0}% (paper: 95% average, via covering indexes on the fact table)\n",
        advice.average_improvement() * 100.0
    );
    SelectionOutcome {
        average_improvement: advice.average_improvement(),
        picked: advice.greedy.picked.len(),
        bytes: advice.greedy.total_bytes,
    }
}
