//! A8 — the multi-tenant daemon over loopback TCP: N tenants stream
//! deterministic drift workloads concurrently through `pinum-server`
//! and every tenant's outcome must be **bit-identical** to a
//! single-tenant in-process [`OnlineAdvisor`] replaying the same events.
//!
//! Gated claims:
//!
//! * **wire determinism** — per tenant, the daemon's final selection ids
//!   and priced cost bits equal the in-process baseline's exactly, for a
//!   1-shard and a fully-sharded server alike (the shard workers are
//!   each tenant's only mutator, so deferred budget-gated re-advises
//!   compute exactly what inline ones would);
//! * **zero steady-state full re-pricings per tenant** — past the first
//!   drift phase, no tenant's re-advise performs a `price_full`, over
//!   the wire just as in-process;
//! * **bounded re-advise wait** — the global budget's aging queue keeps
//!   every tenant's longest wait under [`WAIT_BOUND`] grant events, no
//!   matter the interleaving;
//! * **shard throughput** — with one shard the daemon serializes all
//!   tenants; with [`TENANTS`] shards the same stream must run at least
//!   [`SPEEDUP_GATE`]× faster (enforced only on machines with ≥
//!   [`TENANTS`] cores, reported elsewhere — loopback TCP on a 1-core
//!   box measures nothing about sharding).

use crate::fixtures::SCHEMA_SEED;
use crate::json::{emit, json_array, JsonObject};
use crate::table::{fmt_duration, TextTable};
use pinum_advisor::candidates::generate_candidates;
use pinum_core::access_costs::{collect_pinum, AccessCostCatalog};
use pinum_core::builder::{build_cache_pinum, BuilderOptions};
use pinum_core::{CandidatePool, PlanCache};
use pinum_online::{query_templates, AdmissionSpec, OnlineAdvisor, OnlineAdvisorOptions};
use pinum_optimizer::Optimizer;
use pinum_protocol::{Client, Request, Response, WireAdmission, WireBudgetStats};
use pinum_query::Query;
use pinum_server::{convert, Server, ServerConfig};
use pinum_workload::drift::{DriftProfile, DriftStream};
use pinum_workload::star::StarSchema;
use std::time::{Duration, Instant};

/// Concurrent tenants (= shards of the sharded pass).
pub const TENANTS: usize = 4;

/// Per-tenant stream shape: phases × admissions per phase.
pub const PHASES: usize = 3;
pub const PHASE_LENGTH: usize = 16;

/// Advisor window/epoch for every tenant.
pub const WINDOW: usize = 32;
pub const EPOCH: usize = 16;

/// Global re-advise budget: permits shared by all tenants.
pub const BUDGET_PERMITS: usize = 2;

/// Per-tenant candidate pool cap.
pub const CANDIDATE_CAP: usize = 200;

/// Base drift seed; tenant `t` streams from `BASE + 131·t`.
pub const DRIFT_SEED_BASE: u64 = 0xA11A;

/// Every 5th admission is reweighted ×1.3 (exercises the deferred
/// reweight-triggered re-advise path over the wire).
pub const REWEIGHT_EVERY: usize = 5;
pub const REWEIGHT_FACTOR: f64 = 1.3;

/// Acceptance bound on any tenant's longest re-advise wait, in grant
/// events (see `pinum_server::budget` — aging keeps waits at queue-length
/// scale; 2×TENANTS is generous for equal-rate tenants).
pub const WAIT_BOUND: u64 = 2 * TENANTS as u64;

/// Sharded-vs-serialized wall-clock gate (multi-core machines only).
pub const SPEEDUP_GATE: f64 = 1.15;

/// One tenant's precomputed stream: wire-ready admissions plus the
/// domain-side models the in-process baseline replays.
pub struct TenantFixture {
    pub pool: CandidatePool,
    pub queries: Vec<(Query, f64)>,
    pub models: Vec<(PlanCache, AccessCostCatalog)>,
    pub wire_admissions: Vec<WireAdmission>,
}

/// One tenant's end state, comparable across daemon and baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantRun {
    pub ids: Vec<u64>,
    pub cost_bits: u64,
    /// Re-advises observed (admission- and reweight-triggered + forced).
    pub readvises: u64,
    /// Full re-pricings in re-advises triggered past phase 0.
    pub steady_full: u64,
    /// Lifetime full re-pricings (includes warmup).
    pub total_full: u64,
}

pub struct MultiTenantOutcome {
    pub tenants: usize,
    pub queries_per_tenant: usize,
    pub identical: bool,
    pub max_quality_ratio: f64,
    pub steady_full_repricings: u64,
    pub max_wait_events: u64,
    pub shard_speedup: f64,
    pub speedup_gate_enforced: bool,
}

fn options(budget_bytes: u64) -> OnlineAdvisorOptions {
    OnlineAdvisorOptions {
        window_capacity: WINDOW,
        epoch_length: EPOCH,
        ..OnlineAdvisorOptions::defaults(budget_bytes)
    }
}

fn fixture(schema: &StarSchema, optimizer: &Optimizer, drift_seed: u64) -> TenantFixture {
    let profile = DriftProfile {
        phases: PHASES,
        phase_length: PHASE_LENGTH,
        edge_window: 4,
        churn: 0.05,
        growth_per_phase: 1.2,
    };
    let stream: Vec<_> = DriftStream::new(schema, drift_seed, profile).collect();
    let queries: Vec<(Query, f64)> = stream.into_iter().map(|d| (d.query, d.weight)).collect();
    let only: Vec<Query> = queries.iter().map(|(q, _)| q.clone()).collect();
    let full_pool = generate_candidates(&schema.catalog, &only);
    let pool = if full_pool.len() > CANDIDATE_CAP {
        CandidatePool::from_indexes(full_pool.indexes()[..CANDIDATE_CAP].to_vec())
    } else {
        full_pool
    };
    let models: Vec<(PlanCache, AccessCostCatalog)> = only
        .iter()
        .map(|q| {
            let built = build_cache_pinum(optimizer, q, &BuilderOptions::default());
            let (access, _) = collect_pinum(optimizer, q, &pool);
            (built.cache, access)
        })
        .collect();
    // Encode once, outside any timed region; both server passes replay
    // the identical bytes.
    let wire_admissions = models
        .iter()
        .zip(&queries)
        .map(|((cache, access), (query, weight))| WireAdmission {
            cache: convert::cache_to_wire(cache),
            access: convert::access_to_wire(access),
            weight: *weight,
            templates: query_templates(query)
                .iter()
                .map(convert::template_to_wire)
                .collect(),
        })
        .collect();
    TenantFixture {
        pool,
        queries,
        models,
        wire_admissions,
    }
}

/// The in-process baseline: the exact event sequence `drive_tenant`
/// sends over the wire, applied to a single-tenant advisor.
fn baseline(fx: &TenantFixture, opts: &OnlineAdvisorOptions) -> TenantRun {
    let mut advisor = OnlineAdvisor::new(fx.pool.clone(), *opts);
    let mut readvises = 0u64;
    let mut steady_full = 0u64;
    let mut tally = |i: usize, report: Option<pinum_online::ReadviseReport>| {
        if let Some(r) = report {
            readvises += 1;
            if i >= PHASE_LENGTH {
                steady_full += r.full_repricings as u64;
            }
        }
    };
    for (i, (cache, access)) in fx.models.iter().enumerate() {
        let (query, weight) = &fx.queries[i];
        let templates = query_templates(query);
        let adm = advisor.apply(
            AdmissionSpec::new(cache, access)
                .weight(*weight)
                .templates(&templates),
        );
        tally(i, adm.readvise);
        if i % REWEIGHT_EVERY == REWEIGHT_EVERY - 1 {
            tally(
                i,
                advisor
                    .reweight(i, *weight * REWEIGHT_FACTOR, false)
                    .readvise,
            );
        }
    }
    TenantRun {
        ids: advisor.selection().ids().map(|i| i as u64).collect(),
        cost_bits: advisor.current_cost().to_bits(),
        readvises,
        steady_full,
        total_full: advisor.stats().full_repricings as u64,
    }
}

/// Drives one tenant's stream through a wire client against a running
/// daemon; returns its end state plus the budget accounting.
fn drive_tenant(
    addr: std::net::SocketAddr,
    tenant: u64,
    fx: &TenantFixture,
    opts: &OnlineAdvisorOptions,
) -> (TenantRun, WireBudgetStats) {
    let mut client = Client::connect(addr).expect("connect tenant client");
    let resp = client
        .call(&Request::CreateTenant {
            tenant,
            pool: convert::pool_to_wire(&fx.pool),
            options: convert::options_to_wire(opts).expect("options are wire-expressible"),
        })
        .expect("create tenant");
    assert!(
        matches!(resp, Response::TenantCreated { tenant: t } if t == tenant),
        "create tenant {tenant}: {resp:?}"
    );

    let mut readvises = 0u64;
    let mut steady_full = 0u64;
    let mut tally = |i: usize, report: &Option<pinum_protocol::WireReadviseReport>| {
        if let Some(r) = report {
            readvises += 1;
            if i >= PHASE_LENGTH {
                steady_full += r.full_repricings;
            }
        }
    };
    for (i, admission) in fx.wire_admissions.iter().enumerate() {
        let resp = client
            .call(&Request::AdmitQuery {
                tenant,
                admission: admission.clone(),
            })
            .expect("admit");
        let Response::Admitted { results } = resp else {
            panic!("tenant {tenant} admit {i}: {resp:?}");
        };
        assert_eq!(
            results[0].ordinal, i as u64,
            "tenant {tenant} ordinal drift"
        );
        tally(i, &results[0].readvise);
        if i % REWEIGHT_EVERY == REWEIGHT_EVERY - 1 {
            let resp = client
                .call(&Request::ReweightAdmission {
                    tenant,
                    admission: i as u64,
                    weight: fx.queries[i].1 * REWEIGHT_FACTOR,
                })
                .expect("reweight");
            let Response::Reweighted { applied, readvise } = resp else {
                panic!("tenant {tenant} reweight {i}: {resp:?}");
            };
            assert!(applied, "tenant {tenant} reweight {i} missed its window");
            tally(i, &readvise);
        }
    }

    let Response::Selection { ids, cost, .. } = client
        .call(&Request::GetSelection { tenant })
        .expect("selection")
    else {
        panic!("tenant {tenant}: unexpected selection reply");
    };
    let Response::Stats { stats, budget } =
        client.call(&Request::GetStats { tenant }).expect("stats")
    else {
        panic!("tenant {tenant}: unexpected stats reply");
    };
    (
        TenantRun {
            ids,
            cost_bits: cost.to_bits(),
            readvises,
            steady_full,
            total_full: stats.full_repricings,
        },
        budget,
    )
}

/// Runs every tenant concurrently against a fresh daemon with the given
/// shard count; returns per-tenant results and the drive wall clock
/// (server start/stop excluded).
fn run_server_pass(
    shards: usize,
    fixtures: &[TenantFixture],
    opts: &OnlineAdvisorOptions,
) -> (Vec<(TenantRun, WireBudgetStats)>, Duration) {
    let server = Server::start(
        ("127.0.0.1", 0),
        ServerConfig {
            shards,
            budget: BUDGET_PERMITS,
            ..ServerConfig::default()
        },
    )
    .expect("start server");
    let addr = server.addr();
    let start = Instant::now();
    let results: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = fixtures
            .iter()
            .enumerate()
            .map(|(t, fx)| {
                let opts = *opts;
                scope.spawn(move || drive_tenant(addr, t as u64, fx, &opts))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("tenant thread"))
            .collect()
    });
    let wall = start.elapsed();
    server.shutdown();
    (results, wall)
}

pub fn run(scale: f64) -> MultiTenantOutcome {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "A8: multi-tenant daemon — {TENANTS} tenants × {PHASES}×{PHASE_LENGTH} admissions over \
         loopback TCP, window {WINDOW}, epoch {EPOCH}, re-advise budget {BUDGET_PERMITS}, \
         reweight every {REWEIGHT_EVERY} ×{REWEIGHT_FACTOR}, schema seed {SCHEMA_SEED:#x}, \
         drift seeds {DRIFT_SEED_BASE:#x}+131t, {cores} core(s) available\n"
    );
    let build_start = Instant::now();
    let schema = StarSchema::generate(SCHEMA_SEED, scale);
    let optimizer = Optimizer::new(&schema.catalog);
    let fixtures: Vec<TenantFixture> = (0..TENANTS as u64)
        .map(|t| fixture(&schema, &optimizer, DRIFT_SEED_BASE + 131 * t))
        .collect();
    let budget_bytes = (5.0 * 1024.0 * 1024.0 * 1024.0 * scale) as u64;
    let opts = options(budget_bytes);
    println!(
        "built {} per-tenant PINUM models ({} queries × {TENANTS} tenants, pools of {}) in {}\n",
        fixtures.iter().map(|f| f.models.len()).sum::<usize>(),
        fixtures[0].models.len(),
        fixtures
            .iter()
            .map(|f| f.pool.len().to_string())
            .collect::<Vec<_>>()
            .join("/"),
        fmt_duration(build_start.elapsed())
    );

    let baselines: Vec<TenantRun> = fixtures.iter().map(|fx| baseline(fx, &opts)).collect();

    // Sharded pass first: the process-global probe pool is sized on
    // first server start, and both passes then share it.
    let (sharded, sharded_wall) = run_server_pass(TENANTS, &fixtures, &opts);
    let (serialized, serialized_wall) = run_server_pass(1, &fixtures, &opts);

    // --- Determinism: every pass, every tenant, bit for bit. ---
    let mut identical = true;
    for (pass_name, results) in [("sharded", &sharded), ("1-shard", &serialized)] {
        for (t, ((run, _), want)) in results.iter().zip(&baselines).enumerate() {
            if run != want {
                identical = false;
                println!(
                    "DIVERGED: tenant {t} over the {pass_name} daemon\n  got  {run:?}\n  \
                     want {want:?}"
                );
            }
        }
    }
    let max_quality_ratio = sharded
        .iter()
        .zip(&baselines)
        .map(|((run, _), want)| {
            f64::from_bits(run.cost_bits) / f64::from_bits(want.cost_bits).max(1e-9)
        })
        .fold(0.0, f64::max);

    let steady_full_repricings: u64 = sharded.iter().map(|(run, _)| run.steady_full).sum();
    let max_wait_events = sharded
        .iter()
        .map(|(_, budget)| budget.max_wait_events)
        .max()
        .unwrap_or(0);
    let shard_speedup = serialized_wall.as_secs_f64() / sharded_wall.as_secs_f64().max(1e-9);
    let speedup_gate_enforced = cores >= TENANTS;

    // --- Report. ---
    let mut table = TextTable::new(vec![
        "tenant",
        "queries",
        "selection",
        "re-advises",
        "steady full reprices",
        "budget grants",
        "waits",
        "max wait (events)",
    ]);
    for (t, (run, budget)) in sharded.iter().enumerate() {
        table.row(vec![
            t.to_string(),
            fixtures[t].models.len().to_string(),
            format!("{} indexes", run.ids.len()),
            run.readvises.to_string(),
            run.steady_full.to_string(),
            budget.grants.to_string(),
            budget.waits.to_string(),
            budget.max_wait_events.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "wall: {TENANTS} shards {} vs 1 shard {} — speedup {shard_speedup:.2}x (acceptance ≥ \
         {SPEEDUP_GATE}x, {} on this {cores}-core machine); determinism: {}; max wait \
         {max_wait_events} grant events (bound {WAIT_BOUND})\n",
        fmt_duration(sharded_wall),
        fmt_duration(serialized_wall),
        if speedup_gate_enforced {
            "enforced"
        } else {
            "reported only"
        },
        if identical {
            "bit-identical to in-process baselines"
        } else {
            "DIVERGED"
        },
    );

    emit(
        "multi_tenant",
        &JsonObject::new()
            .int("tenants", TENANTS as u64)
            .int("queries_per_tenant", fixtures[0].models.len() as u64)
            .num("scale", scale)
            .int("cores", cores as u64)
            .int("budget_permits", BUDGET_PERMITS as u64)
            .bool("identical", identical)
            .num("max_quality_ratio", max_quality_ratio)
            .int("steady_full_repricings", steady_full_repricings)
            .int("max_wait_events", max_wait_events)
            .int("wait_bound", WAIT_BOUND)
            .bool("wait_bound_ok", max_wait_events <= WAIT_BOUND)
            .num("shard_speedup", shard_speedup)
            .bool("speedup_gate_enforced", speedup_gate_enforced)
            .num("sharded_wall_seconds", sharded_wall.as_secs_f64())
            .num("serialized_wall_seconds", serialized_wall.as_secs_f64())
            .raw(
                "points",
                json_array(sharded.iter().enumerate().map(|(t, (run, budget))| {
                    JsonObject::new()
                        .int("tenant", t as u64)
                        .int("selected", run.ids.len() as u64)
                        .int("readvises", run.readvises)
                        .int("steady_full_repricings", run.steady_full)
                        .int("total_full_repricings", run.total_full)
                        .int("budget_grants", budget.grants)
                        .int("budget_waits", budget.waits)
                        .int("max_wait_events", budget.max_wait_events)
                        .render()
                })),
            ),
    );

    // --- Acceptance gates. ---
    assert!(
        identical,
        "a daemon tenant diverged from its in-process baseline"
    );
    assert_eq!(
        steady_full_repricings, 0,
        "steady-state re-advises performed full re-pricings over the wire"
    );
    assert!(
        sharded.iter().all(|(run, _)| run.readvises > 0),
        "some tenant never re-advised — the stream exercised nothing"
    );
    assert!(
        max_wait_events <= WAIT_BOUND,
        "budget aging failed: a tenant waited {max_wait_events} grant events (bound {WAIT_BOUND})"
    );
    if speedup_gate_enforced {
        assert!(
            shard_speedup >= SPEEDUP_GATE,
            "sharding bought only {shard_speedup:.2}x over a serialized daemon \
             (must be ≥ {SPEEDUP_GATE}x on a ≥{TENANTS}-core machine)"
        );
    }

    MultiTenantOutcome {
        tenants: TENANTS,
        queries_per_tenant: fixtures[0].models.len(),
        identical,
        max_quality_ratio,
        steady_full_repricings,
        max_wait_events,
        shard_speedup,
        speedup_gate_enforced,
    }
}
