//! E1 — §IV motivation numbers.
//!
//! "The query has 648 interesting order combinations. INUM needs to query
//! the optimizer 648 times to fully build the cache; if we carefully parse
//! the plans, however, we find only 64 unique plans in the cache; 90% of
//! the optimizer calls and the cached plans are therefore redundant!"

use crate::fixtures;
use crate::paper_workload;
use crate::table::TextTable;
use pinum_core::builder::{build_cache_inum, build_cache_pinum, BuilderOptions};
use pinum_optimizer::Optimizer;
use pinum_workload::{tpch_catalog, tpch_q5};

pub fn run(scale: f64) {
    println!(
        "E1: plan redundancy (paper §IV) — seeds {}, {}\n",
        fixtures::SCHEMA_SEED,
        fixtures::WORKLOAD_SEED
    );

    let mut table = TextTable::new(vec![
        "query",
        "tables",
        "IOCs (=INUM calls)",
        "INUM unique winners",
        "redundant calls",
        "PINUM useful plans",
    ]);

    // Two redundancy measures: the distinct plans among classic INUM's
    // per-IOC winners (the paper's §IV counting), and the plans the PINUM
    // skyline retains per §V-D — the set a configuration with expensive
    // unordered access will actually need.
    let add_row =
        |table: &mut TextTable, opt: &Optimizer<'_>, q: &pinum_query::Query| -> (u64, usize) {
            let inum = build_cache_inum(
                opt,
                q,
                &BuilderOptions {
                    include_nlj: false,
                    nlj_extreme_calls: false,
                },
            );
            let pinum = build_cache_pinum(opt, q, &BuilderOptions::default());
            let ioc = inum.stats.ioc_count;
            let unique = inum.stats.unique_plan_structures;
            table.row(vec![
                q.name.clone(),
                q.relation_count().to_string(),
                ioc.to_string(),
                unique.to_string(),
                format!("{:.0}%", 100.0 * (1.0 - unique as f64 / ioc as f64)),
                pinum.stats.plans_cached.to_string(),
            ]);
            (ioc, pinum.stats.plans_cached)
        };

    // --- TPC-H Q5 (the paper's motivating example). ---
    let tpch = tpch_catalog(1.0);
    let q5 = tpch_q5(&tpch);
    let opt = Optimizer::new(&tpch);
    add_row(&mut table, &opt, &q5);

    // --- The star workload. ---
    let pw = paper_workload(scale);
    let opt = Optimizer::new(&pw.schema.catalog);
    let mut total_iocs = 0u64;
    let mut total_plans = 0usize;
    for q in &pw.workload.queries {
        let (ioc, unique) = add_row(&mut table, &opt, q);
        total_iocs += ioc;
        total_plans += unique;
    }
    println!("{}", table.render());
    println!(
        "star workload totals: {total_iocs} interesting-order combinations, {total_plans} useful plans"
    );
    println!("paper (§VI-A):       266 interesting-order combinations, 43 useful plans");
    println!("paper (§IV, Q5):     648 IOCs → 64 unique plans (90% redundant)\n");
}
