//! A4 — workload-scale advisor: naive full-repricing greedy vs the
//! incremental [`WorkloadModel`] engine.
//!
//! The paper's point is that cached plans make configuration pricing
//! "simple numerical calculations" fast enough to drive index selection —
//! but a naive greedy still re-prices the *entire* workload for every
//! candidate probe: O(workload × pool) per pick. The workload model probes
//! with per-candidate deltas instead, re-pricing only the affected
//! queries. This experiment runs both engines over the same cached models
//! on a 200-query × ≥200-candidate star workload and verifies they produce
//! the **identical pick sequence and cost trajectory**, then reports the
//! wall-clock speedup.

use crate::fixtures::{SCHEMA_SEED, WORKLOAD_SEED};
use crate::json::{emit, JsonObject};
use crate::table::{fmt_duration, TextTable};
use pinum_advisor::candidates::generate_candidates;
use pinum_advisor::greedy::{greedy_select, greedy_select_model, GreedyOptions, GreedyResult};
use pinum_core::access_costs::{collect_pinum, AccessCostCatalog};
use pinum_core::builder::{build_cache_pinum, BuilderOptions};
use pinum_core::{
    pairwise_total, CacheCostModel, CandidatePool, PlanCache, Selection, WorkloadModel,
};
use pinum_optimizer::Optimizer;
use pinum_workload::star::{StarSchema, StarWorkload};
use std::time::{Duration, Instant};

/// Workload size (the paper uses 10 queries; the scale target is 200).
pub const QUERIES: usize = 200;

/// Cap on the candidate pool so the *naive* engine stays tractable enough
/// to be timed; the acceptance floor is ≥ 200 candidates.
pub const CANDIDATE_CAP: usize = 400;

pub struct ScaleOutcome {
    pub queries: usize,
    pub candidates: usize,
    pub picks: usize,
    pub naive_wall: Duration,
    pub incremental_wall: Duration,
    pub speedup: f64,
    pub identical: bool,
}

/// Builds the scaled-up workload and its per-query cached models.
pub fn build_scale_fixture(
    scale: f64,
    queries: usize,
    candidate_cap: usize,
) -> (
    StarSchema,
    StarWorkload,
    CandidatePool,
    Vec<(PlanCache, AccessCostCatalog)>,
) {
    let schema = StarSchema::generate(SCHEMA_SEED, scale);
    let workload = StarWorkload::generate(&schema, WORKLOAD_SEED, queries);
    let full_pool = generate_candidates(&schema.catalog, &workload.queries);
    let pool = if full_pool.len() > candidate_cap {
        CandidatePool::from_indexes(full_pool.indexes()[..candidate_cap].to_vec())
    } else {
        full_pool
    };
    let optimizer = Optimizer::new(&schema.catalog);
    let models = workload
        .queries
        .iter()
        .map(|q| {
            let built = build_cache_pinum(&optimizer, q, &BuilderOptions::default());
            let (access, _) = collect_pinum(&optimizer, q, &pool);
            (built.cache, access)
        })
        .collect();
    (schema, workload, pool, models)
}

/// The naive engine exactly as the advisor ran before the workload model:
/// every probe re-prices every query through a fresh
/// `CacheCostModel::estimate`. Totals go through the same canonical
/// [`pairwise_total`] shape as the incremental engine's sum tree, so the
/// two trajectories can be compared bit for bit.
pub fn naive_greedy(
    pool: &CandidatePool,
    models: &[(PlanCache, AccessCostCatalog)],
    opts: &GreedyOptions,
) -> GreedyResult {
    greedy_select(pool, opts, |sel: &Selection| {
        let costs: Vec<f64> = models
            .iter()
            .map(|(cache, access)| {
                CacheCostModel::new(cache, access)
                    .estimate(sel)
                    .map(|e| e.cost)
                    .unwrap_or(f64::INFINITY)
            })
            .collect();
        pairwise_total(&costs)
    })
}

pub fn run(scale: f64) -> ScaleOutcome {
    println!(
        "A4: workload-scale advisor — {QUERIES} queries, candidate cap {CANDIDATE_CAP}, \
         schema seed {SCHEMA_SEED:#x}, workload seed {WORKLOAD_SEED:#x}\n"
    );
    let build_start = Instant::now();
    let (_schema, _workload, pool, models) = build_scale_fixture(scale, QUERIES, CANDIDATE_CAP);
    println!(
        "built {} per-query PINUM models over {} candidates in {}",
        models.len(),
        pool.len(),
        fmt_duration(build_start.elapsed())
    );
    assert!(
        pool.len() >= 200,
        "scale target needs ≥200 candidates, got {}",
        pool.len()
    );

    let budget = (5.0 * 1024.0 * 1024.0 * 1024.0 * scale) as u64;
    let gopts = GreedyOptions {
        budget_bytes: budget,
        benefit_per_byte: false,
    };

    // --- Naive engine: full workload re-pricing per probe. ---
    let naive_start = Instant::now();
    let naive = naive_greedy(&pool, &models, &gopts);
    let naive_wall = naive_start.elapsed();

    // --- Incremental engine: flatten once, probe with deltas. ---
    let incr_start = Instant::now();
    let model = WorkloadModel::build(pool.len(), models.iter().map(|(c, a)| (c, a)));
    let incremental = greedy_select_model(&pool, &gopts, &model);
    let incremental_wall = incr_start.elapsed();

    let identical = naive.picked == incremental.picked
        && naive.cost_trajectory == incremental.cost_trajectory
        && naive.total_bytes == incremental.total_bytes;
    let speedup = naive_wall.as_secs_f64() / incremental_wall.as_secs_f64().max(1e-9);

    let mut table = TextTable::new(vec![
        "engine",
        "wall",
        "evaluations",
        "queries repriced",
        "picks",
        "final cost",
    ]);
    table.row(vec![
        "naive full repricing".to_string(),
        fmt_duration(naive_wall),
        naive.evaluations.to_string(),
        (naive.evaluations * models.len()).to_string(),
        naive.picked.len().to_string(),
        format!("{:.0}", naive.cost_trajectory.last().unwrap()),
    ]);
    table.row(vec![
        "incremental delta".to_string(),
        fmt_duration(incremental_wall),
        incremental.evaluations.to_string(),
        incremental.queries_repriced.to_string(),
        incremental.picked.len().to_string(),
        format!("{:.0}", incremental.cost_trajectory.last().unwrap()),
    ]);
    println!("{}", table.render());
    println!("pick sequences identical: {identical}; speedup: {speedup:.1}x (acceptance: ≥5x)\n");
    emit(
        "advisor_scale",
        &JsonObject::new()
            .int("queries", models.len() as u64)
            .int("candidates", pool.len() as u64)
            .num("scale", scale)
            .int("budget_bytes", budget)
            .int("picks", incremental.picked.len() as u64)
            .num("naive_wall_seconds", naive_wall.as_secs_f64())
            .num("incremental_wall_seconds", incremental_wall.as_secs_f64())
            .int("naive_probes", naive.evaluations as u64)
            .int("incremental_probes", incremental.evaluations as u64)
            .int(
                "naive_queries_repriced",
                (naive.evaluations * models.len()) as u64,
            )
            .int(
                "incremental_queries_repriced",
                incremental.queries_repriced as u64,
            )
            .num("final_cost", *incremental.cost_trajectory.last().unwrap())
            .num("speedup", speedup)
            .bool("identical", identical),
    );
    assert!(identical, "engines diverged — delta pricing is broken");

    ScaleOutcome {
        queries: models.len(),
        candidates: pool.len(),
        picks: incremental.picked.len(),
        naive_wall,
        incremental_wall,
        speedup,
        identical,
    }
}
