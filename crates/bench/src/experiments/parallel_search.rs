//! P1 — deterministic parallel probe fan-out acceptance.
//!
//! The PR's tentpole claim is two-sided: batched probe pricing through
//! the persistent [`ProbePool`] must be **bit-identical** to the serial
//! path at every thread count and chunk size — picks, trajectories, and
//! every gated probe metric — and the probe phase itself must get
//! meaningfully faster when real cores are available. This experiment
//! gates both on the 200-query × ≤400-candidate scale workload:
//!
//! * **identity** — all four search strategies replayed on explicit
//!   1-, 2-, and 8-thread pools (scoped and unscoped, plus a
//!   global-pool leg so a `PINUM_THREADS` override is also covered)
//!   must reproduce the serial run bit for bit;
//! * **speedup** — a batched add-probe sweep on the 8-thread pool must
//!   deliver ≥ 2.5× the 1-thread batch throughput. The bound is only
//!   *enforced* when the machine actually has ≥ 8 cores
//!   (`speedup_gate_enforced` in the JSON says which); the measured
//!   ratio is reported and trend-tracked either way.

use crate::experiments::advisor_scale::{build_scale_fixture, CANDIDATE_CAP, QUERIES};
use crate::experiments::search_strategies::ANNEAL_SEED;
use crate::json::{emit, JsonObject};
use crate::table::{fmt_duration, TextTable};
use pinum_advisor::greedy::{GreedyOptions, GreedyResult};
use pinum_advisor::search::{
    Anneal, EagerGreedy, LazyGreedy, SearchScope, SearchStrategy, SwapHillClimb,
};
use pinum_core::{Probe, ProbePool, Selection, WorkloadModel};
use std::time::{Duration, Instant};

/// Thread counts the identity matrix replays (first entry = reference).
const THREADS: [usize; 3] = [1, 2, 8];
/// Mid-search base selection for the speedup sweep (one member every N).
const SELECTED_EVERY: usize = 50;
/// Acceptance bound on the 8-thread batch-throughput ratio.
const SPEEDUP_GATE: f64 = 2.5;

pub struct ParallelSearchOutcome {
    pub queries: usize,
    pub candidates: usize,
    /// Every strategy × scope × thread-count replay matched the serial
    /// reference bit for bit.
    pub identical: bool,
    /// 8-thread / 1-thread batched probe throughput.
    pub speedup_8t: f64,
    /// Whether the ≥ 2.5× bound is enforced (≥ 8 cores available).
    pub gate_enforced: bool,
    pub serial_probes_per_second: f64,
    pub parallel_probes_per_second: f64,
}

/// Panics unless the two results agree bit for bit — picks, trajectory,
/// probe accounting, and the final priced state.
fn assert_bit_identical(reference: &GreedyResult, run: &GreedyResult, label: &str) {
    assert_eq!(reference.picked, run.picked, "{label}: picks diverged");
    let traj =
        |r: &GreedyResult| -> Vec<u64> { r.cost_trajectory.iter().map(|c| c.to_bits()).collect() };
    assert_eq!(
        traj(reference),
        traj(run),
        "{label}: cost trajectory diverged"
    );
    assert_eq!(
        reference.evaluations, run.evaluations,
        "{label}: probe evaluations diverged"
    );
    assert_eq!(
        reference.queries_repriced, run.queries_repriced,
        "{label}: repriced-query accounting diverged"
    );
    assert_eq!(
        reference.full_repricings, run.full_repricings,
        "{label}: full-repricing accounting diverged"
    );
    assert_eq!(
        reference.total_bytes, run.total_bytes,
        "{label}: selected bytes diverged"
    );
    let (a, b) = (
        reference.final_state.as_ref().expect("state tracked"),
        run.final_state.as_ref().expect("state tracked"),
    );
    assert_eq!(
        a.total().to_bits(),
        b.total().to_bits(),
        "{label}: final total diverged"
    );
    for (q, (x, y)) in a.per_query().iter().zip(b.per_query()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{label}: per-query cost {q} diverged"
        );
    }
}

/// Times `passes` sweeps, returning wall plus a checksum that keeps the
/// optimizer from discarding the priced totals.
fn sweep<F: FnMut() -> f64>(passes: usize, mut pass: F) -> (Duration, f64) {
    let start = Instant::now();
    let mut checksum = 0.0;
    for _ in 0..passes {
        checksum += pass();
    }
    (start.elapsed(), checksum)
}

pub fn run(scale: f64) -> ParallelSearchOutcome {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "P1: parallel probe fan-out — {QUERIES} queries, candidate cap {CANDIDATE_CAP}, \
         thread matrix {THREADS:?}, {cores} core(s) available\n"
    );
    let build_start = Instant::now();
    let (_schema, _workload, pool, models) = build_scale_fixture(scale, QUERIES, CANDIDATE_CAP);
    let model = WorkloadModel::build(pool.len(), models.iter().map(|(c, a)| (c, a)));
    println!(
        "built the workload model over {} queries × {} candidates in {}\n",
        model.query_count(),
        pool.len(),
        fmt_duration(build_start.elapsed())
    );

    let budget = (5.0 * 1024.0 * 1024.0 * 1024.0 * scale) as u64;
    let gopts = GreedyOptions {
        budget_bytes: budget,
        benefit_per_byte: false,
    };

    // ---- Identity matrix -------------------------------------------------
    // Explicit pools (not the global one) so the matrix is independent of
    // any PINUM_THREADS override the CI leg sets.
    let pools: Vec<ProbePool> = THREADS.iter().map(|&t| ProbePool::new(t)).collect();
    let strategies: [(&str, Box<dyn SearchStrategy>); 4] = [
        ("eager-greedy", Box::new(EagerGreedy)),
        ("lazy-greedy", Box::new(LazyGreedy)),
        ("swap-hill-climb", Box::new(SwapHillClimb::default())),
        ("anneal", Box::new(Anneal::with_seed(ANNEAL_SEED))),
    ];
    // Scoped leg: an every-other-candidate mask, a sorted every-third
    // query mask, and a warm seed — the online re-advise shape.
    let mask = Selection::from_ids(pool.len(), &(0..pool.len()).step_by(2).collect::<Vec<_>>());
    let qmask: Vec<u32> = (0..model.query_count() as u32).step_by(3).collect();
    let warm = Selection::from_ids(pool.len(), &(0..pool.len()).step_by(61).collect::<Vec<_>>());
    let cold = Selection::empty(pool.len());

    fn scope_of<'a>(
        scoped: bool,
        mask: &'a Selection,
        qmask: &'a [u32],
        exec: &'a ProbePool,
    ) -> SearchScope<'a> {
        let s = if scoped {
            SearchScope::masked(mask).with_query_mask(qmask)
        } else {
            SearchScope::all()
        };
        s.with_probe_pool(exec)
    }

    let mut table = TextTable::new(vec!["strategy", "scope", "serial wall", "replays", "picks"]);
    let mut replays = 0usize;
    for (name, strategy) in &strategies {
        for scoped in [false, true] {
            let warm = if scoped { &warm } else { &cold };
            let start = Instant::now();
            let reference = strategy.search_scoped(
                &pool,
                &model,
                &gopts,
                warm,
                &scope_of(scoped, &mask, &qmask, &pools[0]),
            );
            let serial_wall = start.elapsed();
            for (i, exec) in pools.iter().enumerate().skip(1) {
                let run = strategy.search_scoped(
                    &pool,
                    &model,
                    &gopts,
                    warm,
                    &scope_of(scoped, &mask, &qmask, exec),
                );
                assert_bit_identical(
                    &reference,
                    &run,
                    &format!("{name} scoped={scoped} threads={}", THREADS[i]),
                );
                replays += 1;
            }
            table.row(vec![
                name.to_string(),
                if scoped { "masked+qmask" } else { "full" }.to_string(),
                fmt_duration(serial_wall),
                (pools.len() - 1).to_string(),
                reference.picked.len().to_string(),
            ]);
        }
    }
    // Global-pool leg: no explicit pool on the scope, so whatever
    // PINUM_THREADS / the parallel feature resolved the global pool to is
    // also pinned to the serial reference.
    let global_run = LazyGreedy.search(&pool, &model, &gopts);
    let serial_ref = LazyGreedy.search_scoped(
        &pool,
        &model,
        &gopts,
        &cold,
        &SearchScope::all().with_probe_pool(&pools[0]),
    );
    assert_bit_identical(
        &serial_ref,
        &global_run,
        &format!(
            "lazy-greedy on the global pool ({} threads)",
            ProbePool::global().threads()
        ),
    );
    replays += 1;
    println!("{}", table.render());
    println!(
        "identity: {replays} replays across threads {THREADS:?} all bit-identical \
         to the serial reference\n"
    );
    let identical = true; // any divergence panicked above

    // ---- Speedup sweep ---------------------------------------------------
    let selection = Selection::from_ids(
        pool.len(),
        &(0..pool.len()).step_by(SELECTED_EVERY).collect::<Vec<_>>(),
    );
    let state = model.price_full(&selection);
    let probes: Vec<Probe> = (0..pool.len())
        .filter(|&c| !selection.contains(c))
        .map(|cand| Probe::Add { cand })
        .collect();
    let serial_pool = &pools[0];
    let eight_pool = &pools[2];

    let batch_total = |exec: &ProbePool| -> f64 {
        model
            .price_delta_batch(&state, &selection, &probes, None, exec)
            .iter()
            .map(|d| if d.total.is_finite() { d.total } else { 0.0 })
            .sum()
    };
    let (once, _) = sweep(1, || batch_total(serial_pool));
    let passes = (0.3 / once.as_secs_f64().max(1e-6)).ceil().max(1.0) as usize;
    let (serial_wall, serial_check) = sweep(passes, || batch_total(serial_pool));
    let (parallel_wall, parallel_check) = sweep(passes, || batch_total(eight_pool));
    // Same pass count, bit-identical per-probe totals ⇒ the accumulated
    // checksums must agree to the bit.
    assert_eq!(
        serial_check.to_bits(),
        parallel_check.to_bits(),
        "speedup sweep: serial and 8-thread batches priced different totals"
    );

    let serial_pps = (passes * probes.len()) as f64 / serial_wall.as_secs_f64();
    let parallel_pps = (passes * probes.len()) as f64 / parallel_wall.as_secs_f64();
    let speedup_8t = parallel_pps / serial_pps.max(1e-9);
    let gate_enforced = cores >= 8;

    let mut speed_table = TextTable::new(vec!["pool", "probes/s", "passes", "wall"]);
    for (label, pps, wall) in [
        ("1 thread", serial_pps, serial_wall),
        ("8 threads", parallel_pps, parallel_wall),
    ] {
        speed_table.row(vec![
            label.to_string(),
            format!("{pps:.0}"),
            passes.to_string(),
            fmt_duration(wall),
        ]);
    }
    println!("{}", speed_table.render());
    println!(
        "probe-phase speedup at 8 threads: {speedup_8t:.2}x \
         (acceptance ≥ {SPEEDUP_GATE}x, {} on this {cores}-core machine)\n",
        if gate_enforced {
            "enforced"
        } else {
            "reported only"
        },
    );

    emit(
        "parallel_search",
        &JsonObject::new()
            .int("queries", model.query_count() as u64)
            .int("candidates", pool.len() as u64)
            .num("scale", scale)
            .int("cores", cores as u64)
            .bool("identical", identical)
            .int("replays", replays as u64)
            .num("speedup_8t", speedup_8t)
            .bool("speedup_gate_enforced", gate_enforced)
            .num("serial_probes_per_second", serial_pps)
            .num("parallel_probes_per_second", parallel_pps),
    );

    if gate_enforced {
        assert!(
            speedup_8t >= SPEEDUP_GATE,
            "acceptance: 8-thread batch throughput {speedup_8t:.2}x \
             (must be ≥ {SPEEDUP_GATE}x on a ≥8-core machine)"
        );
    }

    ParallelSearchOutcome {
        queries: model.query_count(),
        candidates: pool.len(),
        identical,
        speedup_8t,
        gate_enforced,
        serial_probes_per_second: serial_pps,
        parallel_probes_per_second: parallel_pps,
    }
}
