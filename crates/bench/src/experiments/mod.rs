//! Experiment implementations, one module per paper artefact. Thin
//! binaries under `src/bin/` call these, and `exp_all` chains them.

pub mod advisor_scale;
pub mod batched_collection;
pub mod cache_construction;
pub mod cost_accuracy;
pub mod durable_throughput;
pub mod engine_validation;
pub mod greedy_quality;
pub mod index_selection;
pub mod multi_tenant;
pub mod nlj;
pub mod online_drift;
pub mod parallel_search;
pub mod price_kernel;
pub mod pruning;
pub mod redundancy;
pub mod scoped_readvise;
pub mod search_strategies;
pub mod warm_restart;
pub mod whatif;
