//! A5 — pluggable search strategies over the shared workload model.
//!
//! One flattened `WorkloadModel` (one "optimizer call cache" in the
//! paper's framing) prices *any* configuration, so the search policy on
//! top is interchangeable. This experiment runs all four strategies over
//! the same 200-query × ≤400-candidate star-workload model and compares
//! probe counts, wall time, and final workload cost, with the acceptance
//! gates of the PR:
//!
//! * **lazy greedy** must reproduce eager greedy's pick sequence and cost
//!   trajectory bit-for-bit while performing ≤ 50 % of its candidate
//!   probes (the lazy-bound invariant in action);
//! * **swap hill climbing** and **annealing** must never end with a
//!   higher final workload cost than greedy (both are greedy-seeded).
//!
//! Also reports workload-level candidate merging: the prefix-subsumed
//! pool shrink applied before any pricing.

use crate::experiments::advisor_scale::{build_scale_fixture, CANDIDATE_CAP, QUERIES};
use crate::fixtures::{SCHEMA_SEED, WORKLOAD_SEED};
use crate::json::{emit, json_array, JsonObject};
use crate::table::{fmt_duration, TextTable};
use pinum_advisor::candidates::merge_prefix_subsumed;
use pinum_advisor::greedy::{GreedyOptions, GreedyResult};
use pinum_advisor::search::{Anneal, EagerGreedy, LazyGreedy, SearchStrategy, SwapHillClimb};
use pinum_core::WorkloadModel;
use std::time::{Duration, Instant};

/// Fixed annealing seed so the experiment is reproducible.
pub const ANNEAL_SEED: u64 = 0xC0FFEE;

/// One strategy's scorecard.
pub struct StrategyOutcome {
    pub name: &'static str,
    pub result: GreedyResult,
    pub wall: Duration,
}

pub struct SearchStrategiesOutcome {
    pub queries: usize,
    pub candidates: usize,
    pub merged_away: usize,
    pub strategies: Vec<StrategyOutcome>,
    /// Lazy greedy reproduced eager greedy exactly.
    pub lazy_identical: bool,
    /// lazy probes / eager probes (acceptance: ≤ 0.5).
    pub probe_fraction: f64,
}

fn run_strategy(
    strategy: &dyn SearchStrategy,
    pool: &pinum_core::CandidatePool,
    model: &WorkloadModel,
    opts: &GreedyOptions,
) -> StrategyOutcome {
    let start = Instant::now();
    let result = strategy.search(pool, model, opts);
    StrategyOutcome {
        name: strategy.name(),
        result,
        wall: start.elapsed(),
    }
}

pub fn run(scale: f64) -> SearchStrategiesOutcome {
    println!(
        "A5: search strategies — {QUERIES} queries, candidate cap {CANDIDATE_CAP}, \
         schema seed {SCHEMA_SEED:#x}, workload seed {WORKLOAD_SEED:#x}, \
         anneal seed {ANNEAL_SEED:#x}\n"
    );
    let build_start = Instant::now();
    let (_schema, _workload, pool, models) = build_scale_fixture(scale, QUERIES, CANDIDATE_CAP);
    let model_start = Instant::now();
    let model = WorkloadModel::build(pool.len(), models.iter().map(|(c, a)| (c, a)));
    let flatten_wall = model_start.elapsed();
    println!(
        "built {} per-query PINUM models over {} candidates in {} \
         (workload-model flattening: {})",
        models.len(),
        pool.len(),
        fmt_duration(build_start.elapsed()),
        fmt_duration(flatten_wall),
    );
    // Workload-level merging, reported on the same pool the strategies use
    // a capped slice of (the strategies themselves keep the uncapped pool
    // so pick sequences stay comparable with exp_advisor_scale).
    let (_merged_pool, merged_away) = merge_prefix_subsumed(&pool);
    println!(
        "candidate merging would drop {merged_away} of {} prefix-subsumed candidates\n",
        pool.len()
    );

    let budget = (5.0 * 1024.0 * 1024.0 * 1024.0 * scale) as u64;
    let gopts = GreedyOptions {
        budget_bytes: budget,
        benefit_per_byte: false,
    };

    let eager = run_strategy(&EagerGreedy, &pool, &model, &gopts);
    let lazy = run_strategy(&LazyGreedy, &pool, &model, &gopts);
    let swap = run_strategy(&SwapHillClimb::default(), &pool, &model, &gopts);
    let anneal = run_strategy(&Anneal::with_seed(ANNEAL_SEED), &pool, &model, &gopts);

    let lazy_identical = eager.result.picked == lazy.result.picked
        && eager.result.cost_trajectory == lazy.result.cost_trajectory
        && eager.result.total_bytes == lazy.result.total_bytes;
    let probe_fraction = lazy.result.evaluations as f64 / eager.result.evaluations.max(1) as f64;
    let greedy_final = *eager.result.cost_trajectory.last().unwrap();

    let strategies = vec![eager, lazy, swap, anneal];
    let mut table = TextTable::new(vec![
        "strategy",
        "wall",
        "probes",
        "queries repriced",
        "picks",
        "final cost",
        "vs greedy",
    ]);
    for s in &strategies {
        let fin = *s.result.cost_trajectory.last().unwrap();
        table.row(vec![
            s.name.to_string(),
            fmt_duration(s.wall),
            s.result.evaluations.to_string(),
            s.result.queries_repriced.to_string(),
            s.result.picked.len().to_string(),
            format!("{fin:.0}"),
            format!("{:+.2}%", (fin / greedy_final - 1.0) * 100.0),
        ]);
    }
    println!("{}", table.render());
    println!(
        "lazy identical to eager: {lazy_identical}; lazy probe fraction: \
         {probe_fraction:.2} (acceptance: ≤ 0.50)\n"
    );

    emit(
        "search_strategies",
        &JsonObject::new()
            .int("queries", QUERIES as u64)
            .int("candidates", pool.len() as u64)
            .int("merged_away", merged_away as u64)
            .num("scale", scale)
            .int("budget_bytes", budget)
            .bool("lazy_identical", lazy_identical)
            .num("lazy_probe_fraction", probe_fraction)
            .raw(
                "strategies",
                json_array(strategies.iter().map(|s| {
                    JsonObject::new()
                        .str("name", s.name)
                        .num("wall_seconds", s.wall.as_secs_f64())
                        .int("probes", s.result.evaluations as u64)
                        .int("queries_repriced", s.result.queries_repriced as u64)
                        .int("picks", s.result.picked.len() as u64)
                        .num("final_cost", *s.result.cost_trajectory.last().unwrap())
                        .int("total_bytes", s.result.total_bytes)
                        .render()
                })),
            ),
    );

    // --- Acceptance gates (also asserted by the exp binary and CI). ---
    assert!(
        lazy_identical,
        "lazy greedy diverged from eager greedy — the stale-bound invariant broke"
    );
    assert!(
        probe_fraction <= 0.5,
        "lazy greedy probed {probe_fraction:.2} of eager's evaluations (acceptance: ≤ 0.5)"
    );
    for s in &strategies {
        let fin = *s.result.cost_trajectory.last().unwrap();
        assert!(
            fin <= greedy_final * (1.0 + 1e-12),
            "{} ended at {fin}, worse than greedy's {greedy_final}",
            s.name
        );
    }

    SearchStrategiesOutcome {
        queries: models.len(),
        candidates: pool.len(),
        merged_away,
        strategies,
        lazy_identical,
        probe_fraction,
    }
}
