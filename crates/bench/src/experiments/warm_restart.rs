//! A9 — warm restart: a drifting admission stream is journaled through
//! [`pinum_persist::PersistentAdvisor`], the process is "killed" at
//! several points (hard kills mid-epoch with no snapshot in hand, plus
//! one clean shutdown that cuts a snapshot first), the advisor is
//! restored from the latest valid snapshot plus the replayed log tail,
//! and the stream is finished. Every restarted run must land
//! **bit-identically** on an uninterrupted in-memory session: same
//! selection, same priced-cost bits (total and per query), same
//! counters.
//!
//! Acceptance gates (asserted here and re-checked from the JSON in CI):
//!
//! * **restart identity** — every kill/restore/finish run fingerprints
//!   equal to the uninterrupted baseline;
//! * **replay actually happens** — the hard kills land between snapshot
//!   cuts, so a non-empty log tail must replay;
//! * **no re-optimization on restore** — steady-state (past phase 0)
//!   full re-pricings stay 0, and total full re-pricings match the
//!   baseline exactly (restoring adopts serialized per-query costs
//!   instead of re-pricing).

use crate::fixtures::SCHEMA_SEED;
use crate::json::{emit, json_array, JsonObject};
use crate::table::{fmt_duration, TextTable};
use pinum_advisor::candidates::generate_candidates;
use pinum_advisor::search::StrategyKind;
use pinum_core::access_costs::{collect_pinum, AccessCostCatalog};
use pinum_core::builder::{build_cache_pinum, BuilderOptions};
use pinum_core::{CandidatePool, PlanCache};
use pinum_online::{query_templates, AdmissionSpec, OnlineAdvisor, OnlineAdvisorOptions};
use pinum_optimizer::Optimizer;
use pinum_persist::PersistentAdvisor;
use pinum_query::TemplateKey;
use pinum_workload::drift::{DriftProfile, DriftStream, DriftedQuery};
use pinum_workload::star::StarSchema;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Stream shape: 3 phases × 40 admissions.
pub const PHASES: usize = 3;
pub const PHASE_LENGTH: usize = 40;

/// Online advisor window / epoch (same regime as `exp_online_drift`).
pub const WINDOW: usize = 40;
pub const EPOCH: usize = 20;
pub const DRIFT_THRESHOLD: f64 = 0.15;

/// Every 4th admission is immediately reweighted, so the journal carries
/// reweight records too.
pub const REWEIGHT_EVERY: usize = 4;
pub const REWEIGHT_FACTOR: f64 = 1.25;

/// Background snapshot cadence (admissions between cuts). The hard-kill
/// points below are deliberately NOT multiples of this, so a log tail
/// always has to replay.
pub const SNAPSHOT_EVERY: usize = 16;

/// Candidate pool cap and drift seed.
pub const CANDIDATE_CAP: usize = 300;
pub const DRIFT_SEED: u64 = 0x9E57;

/// One kill/restore/finish run.
pub struct RestartPoint {
    /// Admissions applied before the kill.
    pub kill_after: usize,
    /// Whether a snapshot was cut explicitly before the kill (clean
    /// shutdown) or the run died between background cuts (hard kill).
    pub clean: bool,
    /// Log records replayed on top of the restored snapshot.
    pub replayed: u64,
    pub restore_wall: Duration,
    /// Fingerprint equality with the uninterrupted baseline.
    pub identical: bool,
}

pub struct WarmRestartOutcome {
    pub queries: usize,
    pub candidates: usize,
    pub points: Vec<RestartPoint>,
    pub restart_identity: bool,
    pub replayed_tail_total: u64,
    pub snapshot_wall: Duration,
    pub steady_full_repricings: u64,
}

struct Fixture {
    pool: CandidatePool,
    weights: Vec<f64>,
    templates: Vec<Vec<TemplateKey>>,
    models: Vec<(PlanCache, AccessCostCatalog)>,
}

fn build_fixture(scale: f64) -> Fixture {
    let schema = StarSchema::generate(SCHEMA_SEED, scale);
    let profile = DriftProfile {
        phases: PHASES,
        phase_length: PHASE_LENGTH,
        edge_window: 4,
        churn: 0.05,
        growth_per_phase: 1.3,
    };
    let stream: Vec<DriftedQuery> = DriftStream::new(&schema, DRIFT_SEED, profile).collect();
    let queries: Vec<_> = stream.iter().map(|d| d.query.clone()).collect();
    let full_pool = generate_candidates(&schema.catalog, &queries);
    let pool = if full_pool.len() > CANDIDATE_CAP {
        CandidatePool::from_indexes(full_pool.indexes()[..CANDIDATE_CAP].to_vec())
    } else {
        full_pool
    };
    let optimizer = Optimizer::new(&schema.catalog);
    let models = queries
        .iter()
        .map(|q| {
            let built = build_cache_pinum(&optimizer, q, &BuilderOptions::default());
            let (access, _) = collect_pinum(&optimizer, q, &pool);
            (built.cache, access)
        })
        .collect();
    Fixture {
        pool,
        weights: stream.iter().map(|d| d.weight).collect(),
        templates: queries.iter().map(query_templates).collect(),
        models,
    }
}

fn options(budget: u64) -> OnlineAdvisorOptions {
    OnlineAdvisorOptions {
        window_capacity: WINDOW,
        epoch_length: EPOCH,
        drift_threshold: DRIFT_THRESHOLD,
        decay: 1.0,
        strategy: StrategyKind::SwapHillClimb,
        budget_bytes: budget,
        benefit_per_byte: false,
        warm_start: true,
        scoped_readvise: false,
        attribution_threshold: 0.1,
    }
}

/// Every bit the identity gate covers.
fn fingerprint(advisor: &OnlineAdvisor) -> (Vec<usize>, u64, Vec<u64>, Vec<u64>) {
    let stats = advisor.stats();
    (
        advisor.selection().ids().collect(),
        advisor.current_cost().to_bits(),
        advisor
            .to_parts()
            .per_query
            .iter()
            .map(|c| c.to_bits())
            .collect(),
        vec![
            stats.admits as u64,
            stats.reweights as u64,
            stats.readvises as u64,
            stats.epoch_readvises as u64,
            stats.drift_readvises as u64,
            stats.full_repricings as u64,
        ],
    )
}

fn spec_at(fx: &Fixture, i: usize) -> AdmissionSpec<'_> {
    let (cache, access) = &fx.models[i];
    AdmissionSpec::new(cache, access)
        .weight(fx.weights[i])
        .templates(&fx.templates[i])
}

/// Drives stream positions `range` through the in-memory advisor,
/// tallying steady-state full re-pricings from the re-advise reports.
fn drive_volatile(
    advisor: &mut OnlineAdvisor,
    fx: &Fixture,
    range: std::ops::Range<usize>,
    steady_full: &mut u64,
) {
    for i in range {
        let adm = advisor.apply(spec_at(fx, i));
        if let Some(r) = adm.readvise {
            if i >= PHASE_LENGTH {
                *steady_full += r.full_repricings as u64;
            }
        }
        if i % REWEIGHT_EVERY == REWEIGHT_EVERY - 1 {
            let out = advisor.reweight(i, fx.weights[i] * REWEIGHT_FACTOR, false);
            if let Some(r) = out.readvise {
                if i >= PHASE_LENGTH {
                    *steady_full += r.full_repricings as u64;
                }
            }
        }
    }
}

/// The identical stream positions through the journaled advisor.
fn drive_durable(advisor: &mut PersistentAdvisor, fx: &Fixture, range: std::ops::Range<usize>) {
    for i in range {
        advisor.apply(spec_at(fx, i)).expect("journaled apply");
        if i % REWEIGHT_EVERY == REWEIGHT_EVERY - 1 {
            advisor
                .reweight(i, fx.weights[i] * REWEIGHT_FACTOR, false)
                .expect("journaled reweight");
        }
    }
}

/// Self-cleaning scratch directory (no external tempfile dependency).
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("pinum-warm-restart-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Self(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

pub fn run(scale: f64) -> WarmRestartOutcome {
    println!(
        "A9: warm restart — {PHASES} phases × {PHASE_LENGTH} admissions, window {WINDOW}, \
         epoch {EPOCH}, reweight every {REWEIGHT_EVERY}, snapshot every {SNAPSHOT_EVERY}, \
         schema seed {SCHEMA_SEED:#x}, drift seed {DRIFT_SEED:#x}\n"
    );
    let build_start = Instant::now();
    let fx = build_fixture(scale);
    let n = fx.models.len();
    println!(
        "built {} per-query PINUM models over {} candidates in {}",
        n,
        fx.pool.len(),
        fmt_duration(build_start.elapsed())
    );
    let budget = (5.0 * 1024.0 * 1024.0 * 1024.0 * scale) as u64;
    let opts = options(budget);

    // --- Uninterrupted in-memory baseline. ---
    let mut baseline = OnlineAdvisor::new(fx.pool.clone(), opts);
    let mut steady_full = 0u64;
    drive_volatile(&mut baseline, &fx, 0..n, &mut steady_full);
    let want = fingerprint(&baseline);

    // --- Kill/restore/finish runs. Hard kills land mid-phase, off the
    // snapshot cadence; the last run shuts down cleanly (explicit cut),
    // which is also where the snapshot wall is measured. ---
    let kills = [
        (PHASE_LENGTH / 2, false),
        (PHASE_LENGTH + PHASE_LENGTH / 2, false),
        (2 * PHASE_LENGTH + PHASE_LENGTH / 2, true),
    ];
    let mut points = Vec::new();
    let mut snapshot_wall = Duration::ZERO;
    for (run_idx, &(kill_after, clean)) in kills.iter().enumerate() {
        let scratch = ScratchDir::new(&format!("run{run_idx}"));
        let mut durable =
            PersistentAdvisor::create(&scratch.0, fx.pool.clone(), opts, SNAPSHOT_EVERY)
                .expect("create durable advisor");
        drive_durable(&mut durable, &fx, 0..kill_after);
        if clean {
            let snap_start = Instant::now();
            durable.snapshot_now().expect("snapshot before shutdown");
            snapshot_wall = snap_start.elapsed();
        }
        drop(durable); // the kill: nothing beyond the fsynced journal survives

        let restore_start = Instant::now();
        let (mut restored, report) =
            PersistentAdvisor::open(&scratch.0, SNAPSHOT_EVERY).expect("restore");
        let restore_wall = restore_start.elapsed();
        drive_durable(&mut restored, &fx, kill_after..n);
        let identical = fingerprint(restored.advisor()) == want;
        points.push(RestartPoint {
            kill_after,
            clean,
            replayed: report.replayed as u64,
            restore_wall,
            identical,
        });
    }

    // --- Report. ---
    let mut table = TextTable::new(vec![
        "kill after",
        "shutdown",
        "replayed tail",
        "restore wall",
        "bit-identical",
    ]);
    for p in &points {
        table.row(vec![
            p.kill_after.to_string(),
            if p.clean { "clean" } else { "hard kill" }.to_string(),
            p.replayed.to_string(),
            fmt_duration(p.restore_wall),
            p.identical.to_string(),
        ]);
    }
    println!("{}", table.render());
    let restart_identity = points.iter().all(|p| p.identical);
    let replayed_tail_total: u64 = points.iter().map(|p| p.replayed).sum();
    let restore_wall_max = points
        .iter()
        .map(|p| p.restore_wall)
        .max()
        .unwrap_or_default();
    println!(
        "restart identity: {restart_identity}; replayed tail total: {replayed_tail_total} \
         records; snapshot wall: {}; worst restore wall: {}; steady-state full re-pricings: \
         {steady_full}\n",
        fmt_duration(snapshot_wall),
        fmt_duration(restore_wall_max),
    );

    emit(
        "warm_restart",
        &JsonObject::new()
            .int("queries", n as u64)
            .int("candidates", fx.pool.len() as u64)
            .num("scale", scale)
            .int("budget_bytes", budget)
            .int("window", WINDOW as u64)
            .int("epoch", EPOCH as u64)
            .int("snapshot_every", SNAPSHOT_EVERY as u64)
            .bool("restart_identity", restart_identity)
            .int("replayed_tail_total", replayed_tail_total)
            .num("snapshot_wall_seconds", snapshot_wall.as_secs_f64())
            .num("restore_wall_seconds", restore_wall_max.as_secs_f64())
            .int("steady_full_repricings", steady_full)
            .int(
                "baseline_full_repricings",
                baseline.stats().full_repricings as u64,
            )
            .raw(
                "points",
                json_array(points.iter().map(|p| {
                    JsonObject::new()
                        .int("kill_after", p.kill_after as u64)
                        .bool("clean", p.clean)
                        .int("replayed", p.replayed)
                        .num("restore_wall_seconds", p.restore_wall.as_secs_f64())
                        .bool("identical", p.identical)
                        .render()
                })),
            ),
    );

    // --- Acceptance gates. ---
    assert!(
        restart_identity,
        "a restarted advisor diverged from the uninterrupted baseline"
    );
    for p in &points {
        if !p.clean {
            assert!(
                p.replayed > 0,
                "hard kill after {} admissions replayed no log tail — the kill point \
                 must land between snapshot cuts",
                p.kill_after
            );
        }
    }
    assert_eq!(
        steady_full, 0,
        "steady-state re-advises performed full re-pricings"
    );

    WarmRestartOutcome {
        queries: n,
        candidates: fx.pool.len(),
        points,
        restart_identity,
        replayed_tail_total,
        snapshot_wall,
        steady_full_repricings: steady_full,
    }
}
