//! A10 — durable throughput: the group-commit WAL + batched admission
//! pipeline against the serial journaled hot path. One drifting
//! admission stream is driven twice through a durable advisor: once one
//! admission at a time (one fsync per record — the pre-batching daemon
//! path), once through [`PersistentAdvisor::apply_batch`] with a
//! group-commit policy (one fsync per chunk). The batched run must be
//! **bit-identical** — same selection, same priced-cost bits, same
//! counters — while spending a small fraction of the fsyncs.
//!
//! Acceptance gates (asserted here and re-checked from the JSON in CI):
//!
//! * **batch identity** — the batched run fingerprints equal to the
//!   serial run;
//! * **amortized durability** — steady-state fsyncs per admission in
//!   the batched run stay ≤ 1/8 (count-based, so it holds on any disk);
//! * **crash-restore identity** — a batched run killed mid-stream,
//!   restored (snapshot + group-committed log tail), and finished
//!   batched lands bit-identically on the uninterrupted run.
//!
//! The wall-clock speedup is reported and trend-tracked with a wide
//! tolerance rather than hard-gated: on tmpfs or fancy NVMe an fsync is
//! nearly free and the speedup shrinks toward 1×, while the fsync
//! *count* ratio is invariant.

use crate::fixtures::SCHEMA_SEED;
use crate::json::{emit, JsonObject};
use crate::table::{fmt_duration, TextTable};
use pinum_advisor::candidates::generate_candidates;
use pinum_advisor::search::StrategyKind;
use pinum_core::access_costs::{collect_pinum, AccessCostCatalog};
use pinum_core::builder::{build_cache_pinum, BuilderOptions};
use pinum_core::{CandidatePool, PlanCache};
use pinum_online::{query_templates, AdmissionSpec, OnlineAdvisor, OnlineAdvisorOptions};
use pinum_optimizer::Optimizer;
use pinum_persist::{GroupCommitPolicy, PersistentAdvisor};
use pinum_query::TemplateKey;
use pinum_workload::drift::{DriftProfile, DriftStream, DriftedQuery};
use pinum_workload::star::StarSchema;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Stream shape: 3 phases × 40 admissions, admissions only — the batch
/// pipeline coalesces admissions, so the stream is pure admissions.
pub const PHASES: usize = 3;
pub const PHASE_LENGTH: usize = 40;

/// Online advisor window / epoch (same regime as `exp_warm_restart`).
pub const WINDOW: usize = 40;
pub const EPOCH: usize = 20;
pub const DRIFT_THRESHOLD: f64 = 0.15;

/// Admissions per client batch, and the group-commit chunk cap — one
/// fsync per 16 admissions, an 8× margin under the 1-per-admission
/// serial path and 2× under the 1/8 gate.
pub const BATCH: usize = 16;

/// Snapshot cadence for the crash leg only (off the batch boundary, so
/// the kill always leaves a log tail to replay); the throughput legs
/// run without automatic snapshots so the fsync counters are purely the
/// journal's.
pub const CRASH_SNAPSHOT_EVERY: usize = 24;
/// Admissions applied before the crash leg's kill (a batch multiple
/// that is NOT a snapshot-cut multiple).
pub const CRASH_KILL_AFTER: usize = 48;

/// Candidate pool cap and drift seed.
pub const CANDIDATE_CAP: usize = 300;
pub const DRIFT_SEED: u64 = 0xD0_B17;

pub struct DurableThroughputOutcome {
    pub queries: usize,
    pub candidates: usize,
    pub batch_identity: bool,
    pub serial_wall: Duration,
    pub batched_wall: Duration,
    pub durable_speedup: f64,
    pub serial_fsyncs: u64,
    pub batched_fsyncs: u64,
    pub fsyncs_per_admission: f64,
    pub crash_identity: bool,
    pub crash_replayed: u64,
}

struct Fixture {
    pool: CandidatePool,
    weights: Vec<f64>,
    templates: Vec<Vec<TemplateKey>>,
    models: Vec<(PlanCache, AccessCostCatalog)>,
}

fn build_fixture(scale: f64) -> Fixture {
    let schema = StarSchema::generate(SCHEMA_SEED, scale);
    let profile = DriftProfile {
        phases: PHASES,
        phase_length: PHASE_LENGTH,
        edge_window: 4,
        churn: 0.05,
        growth_per_phase: 1.3,
    };
    let stream: Vec<DriftedQuery> = DriftStream::new(&schema, DRIFT_SEED, profile).collect();
    let queries: Vec<_> = stream.iter().map(|d| d.query.clone()).collect();
    let full_pool = generate_candidates(&schema.catalog, &queries);
    let pool = if full_pool.len() > CANDIDATE_CAP {
        CandidatePool::from_indexes(full_pool.indexes()[..CANDIDATE_CAP].to_vec())
    } else {
        full_pool
    };
    let optimizer = Optimizer::new(&schema.catalog);
    let models = queries
        .iter()
        .map(|q| {
            let built = build_cache_pinum(&optimizer, q, &BuilderOptions::default());
            let (access, _) = collect_pinum(&optimizer, q, &pool);
            (built.cache, access)
        })
        .collect();
    Fixture {
        pool,
        weights: stream.iter().map(|d| d.weight).collect(),
        templates: queries.iter().map(query_templates).collect(),
        models,
    }
}

fn options(budget: u64) -> OnlineAdvisorOptions {
    OnlineAdvisorOptions {
        window_capacity: WINDOW,
        epoch_length: EPOCH,
        drift_threshold: DRIFT_THRESHOLD,
        decay: 1.0,
        strategy: StrategyKind::SwapHillClimb,
        budget_bytes: budget,
        benefit_per_byte: false,
        warm_start: true,
        scoped_readvise: false,
        attribution_threshold: 0.1,
    }
}

/// Every bit the identity gates cover.
fn fingerprint(advisor: &OnlineAdvisor) -> (Vec<usize>, u64, Vec<u64>, Vec<u64>) {
    let stats = advisor.stats();
    (
        advisor.selection().ids().collect(),
        advisor.current_cost().to_bits(),
        advisor
            .to_parts()
            .per_query
            .iter()
            .map(|c| c.to_bits())
            .collect(),
        vec![
            stats.admits as u64,
            stats.reweights as u64,
            stats.readvises as u64,
            stats.epoch_readvises as u64,
            stats.drift_readvises as u64,
            stats.full_repricings as u64,
        ],
    )
}

fn spec_at(fx: &Fixture, i: usize) -> AdmissionSpec<'_> {
    let (cache, access) = &fx.models[i];
    AdmissionSpec::new(cache, access)
        .weight(fx.weights[i])
        .templates(&fx.templates[i])
}

/// The pre-batching daemon hot path: one journaled admission at a time
/// (deferred spec, pending trigger executed immediately), one fsync per
/// record.
fn drive_serial(advisor: &mut PersistentAdvisor, fx: &Fixture, range: std::ops::Range<usize>) {
    for i in range {
        let adm = advisor
            .apply(spec_at(fx, i).deferred(true))
            .expect("journaled apply");
        if let Some(t) = adm.pending {
            advisor.readvise_triggered(t).expect("journaled readvise");
        }
    }
}

/// The batched pipeline: `BATCH` admissions per `apply_batch`, each
/// group-committed with one fsync per policy chunk.
fn drive_batched(advisor: &mut PersistentAdvisor, fx: &Fixture, range: std::ops::Range<usize>) {
    let policy = GroupCommitPolicy {
        max_records: BATCH,
        ..GroupCommitPolicy::default()
    };
    let mut base = range.start;
    while base < range.end {
        let end = (base + BATCH).min(range.end);
        let specs: Vec<AdmissionSpec<'_>> = (base..end).map(|i| spec_at(fx, i)).collect();
        advisor
            .apply_batch(&specs, policy, |_| ())
            .expect("batched journaled apply");
        base = end;
    }
}

/// Self-cleaning scratch directory (no external tempfile dependency).
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "pinum-durable-throughput-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Self(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

pub fn run(scale: f64) -> DurableThroughputOutcome {
    println!(
        "A10: durable throughput — {PHASES} phases × {PHASE_LENGTH} admissions, window \
         {WINDOW}, epoch {EPOCH}, batch {BATCH}, schema seed {SCHEMA_SEED:#x}, drift seed \
         {DRIFT_SEED:#x}\n"
    );
    let build_start = Instant::now();
    let fx = build_fixture(scale);
    let n = fx.models.len();
    println!(
        "built {} per-query PINUM models over {} candidates in {}",
        n,
        fx.pool.len(),
        fmt_duration(build_start.elapsed())
    );
    let budget = (5.0 * 1024.0 * 1024.0 * 1024.0 * scale) as u64;
    let opts = options(budget);

    // --- Serial durable leg: the baseline hot path. ---
    let scratch_serial = ScratchDir::new("serial");
    let mut serial = PersistentAdvisor::create(&scratch_serial.0, fx.pool.clone(), opts, 0)
        .expect("create serial advisor");
    let serial_at_start = serial.persist_stats();
    let serial_start = Instant::now();
    drive_serial(&mut serial, &fx, 0..n);
    let serial_wall = serial_start.elapsed();
    let serial_stats = serial.persist_stats();
    let serial_fsyncs = serial_stats.fsyncs - serial_at_start.fsyncs;
    let want = fingerprint(serial.advisor());
    drop(serial);

    // --- Batched durable leg: same stream, group-committed. ---
    let scratch_batched = ScratchDir::new("batched");
    let mut batched = PersistentAdvisor::create(&scratch_batched.0, fx.pool.clone(), opts, 0)
        .expect("create batched advisor");
    let batched_at_start = batched.persist_stats();
    let batched_start = Instant::now();
    drive_batched(&mut batched, &fx, 0..n);
    let batched_wall = batched_start.elapsed();
    let batched_stats = batched.persist_stats();
    let batched_fsyncs = batched_stats.fsyncs - batched_at_start.fsyncs;
    let batch_identity = fingerprint(batched.advisor()) == want;
    let fsyncs_per_admission = batched_fsyncs as f64 / n as f64;
    let durable_speedup = serial_wall.as_secs_f64() / batched_wall.as_secs_f64().max(1e-9);
    drop(batched);

    // --- Crash leg: kill a batched run mid-stream, restore from the
    // snapshot plus the group-committed log tail, finish batched. ---
    let scratch_crash = ScratchDir::new("crash");
    let mut crashing = PersistentAdvisor::create(
        &scratch_crash.0,
        fx.pool.clone(),
        opts,
        CRASH_SNAPSHOT_EVERY,
    )
    .expect("create crash advisor");
    drive_batched(&mut crashing, &fx, 0..CRASH_KILL_AFTER);
    drop(crashing); // the kill: only the fsynced journal + snapshots survive

    let (mut restored, report) =
        PersistentAdvisor::open(&scratch_crash.0, CRASH_SNAPSHOT_EVERY).expect("restore");
    let crash_replayed = report.replayed as u64;
    drive_batched(&mut restored, &fx, CRASH_KILL_AFTER..n);
    let crash_identity = fingerprint(restored.advisor()) == want;
    drop(restored);

    // --- Report. ---
    let mut table = TextTable::new(vec!["leg", "wall", "appends", "fsyncs", "fsyncs/admit"]);
    table.row(vec![
        "serial durable".into(),
        fmt_duration(serial_wall),
        (serial_stats.appends - serial_at_start.appends).to_string(),
        serial_fsyncs.to_string(),
        format!("{:.4}", serial_fsyncs as f64 / n as f64),
    ]);
    table.row(vec![
        format!("batched (chunk {BATCH})"),
        fmt_duration(batched_wall),
        (batched_stats.appends - batched_at_start.appends).to_string(),
        batched_fsyncs.to_string(),
        format!("{fsyncs_per_admission:.4}"),
    ]);
    println!("{}", table.render());
    println!(
        "batch identity: {batch_identity}; durable speedup: {durable_speedup:.2}×; \
         crash leg: {crash_replayed} records replayed, identical: {crash_identity}\n"
    );

    emit(
        "durable_throughput",
        &JsonObject::new()
            .int("queries", n as u64)
            .int("candidates", fx.pool.len() as u64)
            .num("scale", scale)
            .int("budget_bytes", budget)
            .int("window", WINDOW as u64)
            .int("epoch", EPOCH as u64)
            .int("batch", BATCH as u64)
            .bool("batch_identity", batch_identity)
            .num("serial_wall_seconds", serial_wall.as_secs_f64())
            .num("batched_wall_seconds", batched_wall.as_secs_f64())
            .num("durable_speedup", durable_speedup)
            .int("serial_fsyncs", serial_fsyncs)
            .int("batched_fsyncs", batched_fsyncs)
            .int("batched_max_batch_records", batched_stats.max_batch_records)
            .num("fsyncs_per_admission", fsyncs_per_admission)
            .bool("crash_identity", crash_identity)
            .int("crash_replayed", crash_replayed),
    );

    // --- Acceptance gates. ---
    assert!(
        batch_identity,
        "the batched durable run diverged from the serial durable run"
    );
    assert!(
        fsyncs_per_admission <= 1.0 / 8.0,
        "group commit must amortize to ≤ 1/8 fsyncs per admission, got {fsyncs_per_admission}"
    );
    assert!(
        crash_replayed > 0,
        "the crash leg's kill point must leave a log tail to replay"
    );
    assert!(
        crash_identity,
        "the restored-and-finished batched run diverged from the uninterrupted one"
    );

    DurableThroughputOutcome {
        queries: n,
        candidates: fx.pool.len(),
        batch_identity,
        serial_wall,
        batched_wall,
        durable_speedup,
        serial_fsyncs,
        batched_fsyncs,
        fsyncs_per_admission,
        crash_identity,
        crash_replayed,
    }
}
