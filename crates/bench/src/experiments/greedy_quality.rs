//! A3 — greedy vs exhaustive selection quality (§V-E).
//!
//! "Although this algorithm is very simple, it has been shown to perform
//! better in terms of accuracy than more complex algorithms used in the
//! commercial designers, mainly because of its significantly larger
//! candidate index set." We verify the greedy heuristic lands near the
//! exhaustive optimum on instances small enough to enumerate.

use crate::table::TextTable;
use pinum_advisor::candidates::generate_candidates;
use pinum_advisor::greedy::{exhaustive_select, greedy_select, GreedyOptions};
use pinum_core::access_costs::collect_pinum;
use pinum_core::builder::{build_cache_pinum, BuilderOptions};
use pinum_core::{CacheCostModel, CandidatePool, Selection};
use pinum_optimizer::Optimizer;
use pinum_workload::star::{StarSchema, StarWorkload};

pub fn run(_scale: f64) {
    println!("A3: greedy vs exhaustive selection quality (small instances)\n");
    let mut table = TextTable::new(vec![
        "queries",
        "candidates",
        "budget MB",
        "greedy cost",
        "optimal cost",
        "gap",
    ]);
    for (nq, budget_mb) in [(2usize, 64u64), (3, 128), (3, 512)] {
        let schema = StarSchema::generate(11, 0.002);
        let workload = StarWorkload::generate(&schema, 3, nq);
        let opt = Optimizer::new(&schema.catalog);
        let full_pool = generate_candidates(&schema.catalog, &workload.queries);
        // Shrink to ≤14 candidates for tractable exhaustion: keep the
        // first candidates per table in pool order.
        let keep: Vec<usize> = (0..full_pool.len()).take(14).collect();
        let pool =
            CandidatePool::from_indexes(keep.iter().map(|&i| full_pool.index(i).clone()).collect());

        let models: Vec<_> = workload
            .queries
            .iter()
            .map(|q| {
                let built = build_cache_pinum(&opt, q, &BuilderOptions::default());
                let (access, _) = collect_pinum(&opt, q, &pool);
                (built.cache, access)
            })
            .collect();
        let cost = |sel: &Selection| -> f64 {
            models
                .iter()
                .map(|(c, a)| CacheCostModel::new(c, a).estimate(sel).unwrap().cost)
                .sum()
        };
        let budget = budget_mb * 1024 * 1024;
        let g = greedy_select(
            &pool,
            &GreedyOptions {
                budget_bytes: budget,
                benefit_per_byte: false,
            },
            cost,
        );
        let (_, best) = exhaustive_select(&pool, budget, cost);
        let greedy_cost = *g.cost_trajectory.last().unwrap();
        table.row(vec![
            nq.to_string(),
            pool.len().to_string(),
            budget_mb.to_string(),
            format!("{greedy_cost:.0}"),
            format!("{best:.0}"),
            format!("{:.1}%", (greedy_cost / best - 1.0) * 100.0),
        ]);
    }
    println!("{}", table.render());
    println!(
        "(the greedy gap stays small; the paper's quality comes from the large candidate set)\n"
    );
}
