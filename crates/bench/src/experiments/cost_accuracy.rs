//! E3 — §VI-C cost-estimation accuracy of the PINUM cache.
//!
//! "To study the accuracy of PINUM's cost model, we generate 1000 random
//! atomic configurations for each query in the workload. We then compare
//! the cost of the queries using PINUM's cost model and using what-if
//! indexes on the optimizer. Out of ten queries, six had less than 1%
//! error in cost estimation. Further three queries had about 4% error, and
//! only one query had 9% error."

use crate::paper_workload;
use crate::table::TextTable;
use pinum_advisor::candidates::generate_candidates;
use pinum_core::access_costs::collect_pinum;
use pinum_core::builder::{build_cache_pinum, BuilderOptions};
use pinum_core::{CacheCostModel, Selection};
use pinum_optimizer::{Optimizer, OptimizerOptions};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Per-query outcome, returned for integration tests.
pub struct QueryAccuracy {
    pub name: String,
    pub mean_error: f64,
    pub p95_error: f64,
    pub max_error: f64,
}

pub fn run(scale: f64) -> Vec<QueryAccuracy> {
    run_with(scale, 1000, 0xC0575)
}

pub fn run_with(scale: f64, configs_per_query: usize, seed: u64) -> Vec<QueryAccuracy> {
    println!(
        "E3: cache cost-model accuracy (paper §VI-C) — {configs_per_query} random atomic configurations per query, seed {seed:#x}\n"
    );
    let pw = paper_workload(scale);
    let catalog = &pw.schema.catalog;
    let opt = Optimizer::new(catalog);
    let pool = generate_candidates(catalog, &pw.workload.queries);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();

    let mut table = TextTable::new(vec!["query", "tables", "mean err", "p95 err", "max err"]);
    for q in &pw.workload.queries {
        let built = build_cache_pinum(&opt, q, &BuilderOptions::default());
        let (access, _) = collect_pinum(&opt, q, &pool);
        let model = CacheCostModel::new(&built.cache, &access);

        // Candidates per relation of this query.
        let per_rel: Vec<Vec<usize>> = (0..q.relation_count() as u16)
            .map(|rel| pool.on_table(q.table_of(rel)).to_vec())
            .collect();

        let mut errors = Vec::with_capacity(configs_per_query);
        for _ in 0..configs_per_query {
            // Random atomic configuration: ≤1 candidate per table.
            let mut ids = Vec::new();
            for cands in &per_rel {
                if cands.is_empty() || rng.gen_bool(0.35) {
                    continue;
                }
                ids.push(*cands.choose(&mut rng).unwrap());
            }
            let sel = Selection::from_ids(pool.len(), &ids);
            let est = model.estimate(&sel).expect("non-empty cache").cost;
            let (config, _) = pool.configuration(&sel);
            let direct = opt
                .optimize(q, &config, &OptimizerOptions::standard())
                .best_cost
                .total;
            errors.push((est - direct).abs() / direct);
        }
        errors.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mean = errors.iter().sum::<f64>() / errors.len() as f64;
        let p95 = errors[(errors.len() * 95 / 100).min(errors.len() - 1)];
        let max = *errors.last().unwrap();
        table.row(vec![
            q.name.clone(),
            q.relation_count().to_string(),
            format!("{:.2}%", mean * 100.0),
            format!("{:.2}%", p95 * 100.0),
            format!("{:.2}%", max * 100.0),
        ]);
        out.push(QueryAccuracy {
            name: q.name.clone(),
            mean_error: mean,
            p95_error: p95,
            max_error: max,
        });
    }
    println!("{}", table.render());
    let under_1 = out.iter().filter(|a| a.mean_error < 0.01).count();
    let under_5 = out
        .iter()
        .filter(|a| (0.01..0.05).contains(&a.mean_error))
        .count();
    let over_5 = out.iter().filter(|a| a.mean_error >= 0.05).count();
    println!("this repro: {under_1} queries <1% error, {under_5} in 1–5%, {over_5} ≥5%");
    println!("paper:      6 queries <1% error, 3 ≈4%, 1 ≈9% (NLJ-favouring query)\n");
    out
}
