//! Deterministic parallel probe fan-out: all four strategies replayed
//! across 1/2/8-thread pools must be bit-identical, and the batched
//! probe phase must clear the speedup gate when the machine has the
//! cores for it (see `experiments::parallel_search`).
use pinum_bench::experiments::parallel_search;
use pinum_bench::fixtures::scale_from_env;

fn main() {
    let outcome = parallel_search::run(scale_from_env());
    assert!(
        outcome.identical,
        "acceptance: parallel search must be bit-identical to serial"
    );
    // The ≥2.5× bound is asserted inside run() when ≥8 cores are
    // available; on smaller machines the ratio is reported only.
    println!(
        "parallel search ok: bit-identical; 8-thread batch speedup {:.2}x ({})",
        outcome.speedup_8t,
        if outcome.gate_enforced {
            "gate enforced"
        } else {
            "gate reported only — fewer than 8 cores"
        }
    );
}
