//! A2 — NLJ caching ablation. See `pinum_bench::experiments::nlj`.
fn main() {
    pinum_bench::experiments::nlj::run(pinum_bench::fixtures::scale_from_env());
}
