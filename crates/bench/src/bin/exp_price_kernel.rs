//! Pricing-kernel microbench: SoA delta kernel vs the frozen nested
//! reference engine on the 200×400 scale workload (see
//! `experiments::price_kernel`).
use pinum_bench::experiments::price_kernel;
use pinum_bench::fixtures::scale_from_env;

fn main() {
    let outcome = price_kernel::run(scale_from_env());
    assert!(
        outcome.speedup >= 3.0,
        "acceptance: SoA kernel must deliver ≥3x delta throughput (got {:.1}x)",
        outcome.speedup
    );
}
