//! Cross-commit trend gate: diffs the current run's `PINUM_JSON_DIR`
//! experiment JSON against the committed baseline
//! (`crates/bench/baselines/trend.json`) and exits non-zero on any
//! probe-count/speedup/quality regression. See `pinum_bench::trend`.
//!
//! Environment:
//! * `PINUM_JSON_DIR` — directory holding the current `<name>.json`
//!   files (default `artifacts`);
//! * `PINUM_TREND_BASELINE` — baseline file override (default
//!   `crates/bench/baselines/trend.json`, resolved against the crate
//!   when not run from the repo root).

use pinum_bench::trend;
use std::path::PathBuf;

fn main() {
    let dir = PathBuf::from(std::env::var("PINUM_JSON_DIR").unwrap_or_else(|_| "artifacts".into()));
    let baseline = std::env::var("PINUM_TREND_BASELINE")
        .map(PathBuf::from)
        .unwrap_or_else(|_| {
            let committed = PathBuf::from("crates/bench/baselines/trend.json");
            if committed.exists() {
                committed
            } else {
                PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("baselines/trend.json")
            }
        });
    println!(
        "trend gate: {} vs baseline {}\n",
        dir.display(),
        baseline.display()
    );
    let specs = match trend::load_baseline(&baseline) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let outcomes = trend::evaluate(&dir, &specs);
    let (table, all_ok) = trend::report(&outcomes);
    println!("{table}");
    if all_ok {
        println!("trend ok: {} metrics within tolerance", outcomes.len());
    } else {
        let failed: Vec<String> = outcomes
            .iter()
            .filter(|o| !o.ok)
            .map(|o| format!("{}:{}", o.spec.file, o.spec.key))
            .collect();
        eprintln!(
            "trend REGRESSION in {} of {} metrics: {}",
            failed.len(),
            outcomes.len(),
            failed.join(", ")
        );
        std::process::exit(1);
    }
}
