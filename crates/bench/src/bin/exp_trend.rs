//! Cross-commit trend gate: diffs the current run's `PINUM_JSON_DIR`
//! experiment JSON against the committed baseline
//! (`crates/bench/baselines/trend.json`) and exits non-zero on any
//! probe-count/speedup/quality regression. See `pinum_bench::trend`.
//!
//! With `--write-baseline`, instead of gating, the baseline file is
//! rewritten with every tracked metric's current value (kinds,
//! tolerances and the comment are preserved) — the supported workflow
//! for moving the baseline when a change shifts a metric intentionally:
//! run the experiments into `PINUM_JSON_DIR`, run `exp_trend
//! --write-baseline`, and commit the diff in the same PR.
//!
//! Environment:
//! * `PINUM_JSON_DIR` — directory holding the current `<name>.json`
//!   files (default `artifacts`);
//! * `PINUM_TREND_BASELINE` — baseline file override (default
//!   `crates/bench/baselines/trend.json`, resolved against the crate
//!   when not run from the repo root).

use pinum_bench::trend;
use std::path::PathBuf;

fn main() {
    let write_baseline = std::env::args().skip(1).any(|a| a == "--write-baseline");
    let dir = PathBuf::from(std::env::var("PINUM_JSON_DIR").unwrap_or_else(|_| "artifacts".into()));
    let baseline = std::env::var("PINUM_TREND_BASELINE")
        .map(PathBuf::from)
        .unwrap_or_else(|_| {
            let committed = PathBuf::from("crates/bench/baselines/trend.json");
            if committed.exists() {
                committed
            } else {
                PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("baselines/trend.json")
            }
        });
    if write_baseline {
        match trend::write_baseline(&dir, &baseline) {
            Ok(summary) => {
                println!("baseline refresh: {summary}");
                println!("commit the diff of {} in the same PR", baseline.display());
                return;
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }
    println!(
        "trend gate: {} vs baseline {}\n",
        dir.display(),
        baseline.display()
    );
    let specs = match trend::load_baseline(&baseline) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let outcomes = trend::evaluate(&dir, &specs);
    let (table, all_ok) = trend::report(&outcomes);
    println!("{table}");
    if all_ok {
        println!("trend ok: {} metrics within tolerance", outcomes.len());
    } else {
        let failed: Vec<String> = outcomes
            .iter()
            .filter(|o| !o.ok)
            .map(|o| format!("{}:{}", o.spec.file, o.spec.key))
            .collect();
        eprintln!(
            "trend REGRESSION in {} of {} metrics: {}",
            failed.len(),
            outcomes.len(),
            failed.join(", ")
        );
        std::process::exit(1);
    }
}
