//! Pluggable search strategies over one shared workload model: eager vs
//! lazy greedy (must be bit-identical at ≤50% of the probes), swap hill
//! climbing, and deterministic annealing (never worse than greedy). See
//! `experiments::search_strategies`.
use pinum_bench::experiments::search_strategies;
use pinum_bench::fixtures::scale_from_env;

fn main() {
    let outcome = search_strategies::run(scale_from_env());
    // The strategy-equivalence acceptance gates are asserted inside
    // `run`; re-state the headline numbers for the CI log.
    println!(
        "acceptance ok: lazy identical over {} queries × {} candidates at probe \
         fraction {:.2}",
        outcome.queries, outcome.candidates, outcome.probe_fraction
    );
}
