//! Persistent pricing sessions + template-scoped re-advising on a
//! reweight-heavy drift stream: zero steady-state full re-pricings,
//! quality within 1 % of full-scope re-advising, measured probe
//! reduction. See `experiments::scoped_readvise`.
use pinum_bench::experiments::scoped_readvise;
use pinum_bench::fixtures::scale_from_env;

fn main() {
    let outcome = scoped_readvise::run(scale_from_env());
    // The gates are asserted inside `run`; re-state the headline for CI.
    println!(
        "acceptance ok: {} steady-state full re-pricings, quality ratio {:.4}, \
         probe fraction {:.4} over {} re-advises ({} scoped), {} reweight events applied",
        outcome.scoped.steady_full_repricings(),
        outcome.quality_ratio,
        outcome.scoped_probe_fraction,
        outcome.scoped.reports.len() + 1,
        outcome.scoped.stats.scoped_readvises,
        outcome.scoped.stats.reweights,
    );
}
