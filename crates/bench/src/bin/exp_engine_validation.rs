//! V1 — engine validation. See `pinum_bench::experiments::engine_validation`.
fn main() {
    pinum_bench::experiments::engine_validation::run(pinum_bench::fixtures::scale_from_env());
}
