//! Runs every experiment in sequence — regenerates all of the paper's
//! tables and figures (EXPERIMENTS.md records one full run).
use pinum_bench::experiments as e;
use pinum_bench::fixtures::scale_from_env;

fn main() {
    let scale = scale_from_env();
    println!("==== PINUM reproduction: full experiment run (scale {scale}) ====\n");
    e::redundancy::run(scale);
    e::whatif::run(scale);
    e::cost_accuracy::run(scale);
    e::cache_construction::run(scale);
    e::index_selection::run(scale, false);
    e::pruning::run(scale);
    e::nlj::run(scale);
    e::greedy_quality::run(scale);
    e::engine_validation::run(scale);
    e::advisor_scale::run(scale);
    e::price_kernel::run(scale);
    e::batched_collection::run(scale);
    e::search_strategies::run(scale);
    e::online_drift::run(scale);
    e::scoped_readvise::run(scale);
    e::parallel_search::run(scale);
    e::multi_tenant::run(scale);
    e::warm_restart::run(scale);
    e::durable_throughput::run(scale);
    println!("==== done ====");
}
