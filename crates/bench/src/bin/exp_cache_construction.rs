//! E4 — Figure 4/5 cache-construction times. See `pinum_bench::experiments::cache_construction`.
fn main() {
    pinum_bench::experiments::cache_construction::run(pinum_bench::fixtures::scale_from_env());
}
