//! E5 — Figure 6/7 index-selection outcome. See `pinum_bench::experiments::index_selection`.
fn main() {
    pinum_bench::experiments::index_selection::run(pinum_bench::fixtures::scale_from_env());
}
