//! E5 — Figure 6/7 index-selection outcome. See `pinum_bench::experiments::index_selection`.
//! Pass `--legacy-defaults` to rerun the paper's exact configuration
//! instead of the tool's optimized defaults.
fn main() {
    let legacy = std::env::args().any(|a| a == "--legacy-defaults");
    pinum_bench::experiments::index_selection::run(pinum_bench::fixtures::scale_from_env(), legacy);
}
