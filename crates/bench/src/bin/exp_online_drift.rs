//! Online tuning under workload drift: the `pinum_online` daemon (epoch +
//! drift-triggered warm-started re-advising over a streaming model) vs
//! periodic full rebuild-and-reselect. See `experiments::online_drift`.
use pinum_bench::experiments::online_drift;
use pinum_bench::fixtures::scale_from_env;

fn main() {
    let outcome = online_drift::run(scale_from_env());
    // The gates are asserted inside `run`; re-state the headline for CI.
    println!(
        "acceptance ok: steady-state cost ratio {:.4} over {} re-advise points, \
         {} full rebuilds, O(query) admission (arms identical: {}, wall ratio {:.2})",
        outcome.steady_max_ratio,
        outcome.points.len(),
        outcome.full_rebuilds,
        outcome.admit_arms_identical,
        outcome.admit_wall_ratio
    );
}
