//! Durable throughput: drive one drifting admission stream through the
//! journaled advisor serially and group-commit batched, demand
//! bit-identity at a fraction of the fsyncs, and re-check identity
//! through a mid-stream crash and restore. See
//! `experiments::durable_throughput`.
use pinum_bench::experiments::durable_throughput;
use pinum_bench::fixtures::scale_from_env;

fn main() {
    let outcome = durable_throughput::run(scale_from_env());
    // The gates are asserted inside `run`; re-state the headline for CI.
    println!(
        "acceptance ok: batched run bit-identical at {:.4} fsyncs/admission \
         ({} vs {} serial), {:.2}x speedup, crash leg replayed {} records identically",
        outcome.fsyncs_per_admission,
        outcome.batched_fsyncs,
        outcome.serial_fsyncs,
        outcome.durable_speedup,
        outcome.crash_replayed
    );
}
