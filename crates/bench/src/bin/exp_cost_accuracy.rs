//! E3 — §VI-C cache cost-model accuracy. See `pinum_bench::experiments::cost_accuracy`.
fn main() {
    pinum_bench::experiments::cost_accuracy::run(pinum_bench::fixtures::scale_from_env());
}
