//! A3 — greedy vs exhaustive quality. See `pinum_bench::experiments::greedy_quality`.
fn main() {
    pinum_bench::experiments::greedy_quality::run(pinum_bench::fixtures::scale_from_env());
}
