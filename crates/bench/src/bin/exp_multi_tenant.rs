//! Multi-tenant daemon acceptance: N concurrent tenants over loopback
//! TCP, each bit-identical to an in-process advisor, zero steady-state
//! full re-pricings, bounded budget waits, shard throughput scaling on
//! multi-core machines. See `experiments::multi_tenant`.
use pinum_bench::experiments::multi_tenant;
use pinum_bench::fixtures::scale_from_env;

fn main() {
    let outcome = multi_tenant::run(scale_from_env());
    // The gates are asserted inside `run`; re-state the headline for CI.
    println!(
        "acceptance ok: {} tenants bit-identical over the wire, {} steady-state full \
         re-pricings, max wait {} grant events, shard speedup {:.2}x ({})",
        outcome.tenants,
        outcome.steady_full_repricings,
        outcome.max_wait_events,
        outcome.shard_speedup,
        if outcome.speedup_gate_enforced {
            "enforced"
        } else {
            "reported only"
        },
    );
}
