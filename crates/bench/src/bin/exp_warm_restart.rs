//! Warm restart: kill a journaled advisor mid-stream, restore from the
//! latest snapshot plus the replayed log tail, finish the stream, and
//! demand bit-identity with an uninterrupted session. See
//! `experiments::warm_restart`.
use pinum_bench::experiments::warm_restart;
use pinum_bench::fixtures::scale_from_env;

fn main() {
    let outcome = warm_restart::run(scale_from_env());
    // The gates are asserted inside `run`; re-state the headline for CI.
    println!(
        "acceptance ok: {} restarts bit-identical, {} log records replayed, \
         {} steady-state full re-pricings",
        outcome.points.len(),
        outcome.replayed_tail_total,
        outcome.steady_full_repricings
    );
}
