//! E1 — §IV plan-redundancy numbers. See `pinum_bench::experiments::redundancy`.
fn main() {
    pinum_bench::experiments::redundancy::run(pinum_bench::fixtures::scale_from_env());
}
