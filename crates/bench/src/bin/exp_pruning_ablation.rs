//! A1 — §V-D pruning ablation. See `pinum_bench::experiments::pruning`.
fn main() {
    pinum_bench::experiments::pruning::run(pinum_bench::fixtures::scale_from_env());
}
