//! E2 — §VI-B what-if index accuracy. See `pinum_bench::experiments::whatif`.
fn main() {
    pinum_bench::experiments::whatif::run(pinum_bench::fixtures::scale_from_env());
}
