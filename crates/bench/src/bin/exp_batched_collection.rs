//! CI acceptance: workload-level batched collection prices the 200-query
//! scale workload with ≥3× fewer optimizer calls than per-query
//! `collect_pinum`, bit-identically (catalogs and advisor picks). See
//! `pinum_bench::experiments::batched_collection`.

use pinum_bench::experiments::batched_collection;
use pinum_bench::fixtures::scale_from_env;

fn main() {
    let outcome = batched_collection::run(scale_from_env());
    assert!(outcome.catalogs_identical);
    assert!(outcome.picks_identical);
    assert!(outcome.call_reduction >= 3.0);
}
