//! Workload-scale advisor: incremental WorkloadModel greedy vs naive full
//! repricing on a 200-query star workload (see
//! `experiments::advisor_scale`).
use pinum_bench::experiments::advisor_scale;
use pinum_bench::fixtures::scale_from_env;

fn main() {
    let outcome = advisor_scale::run(scale_from_env());
    assert!(
        outcome.speedup >= 5.0,
        "acceptance: incremental engine must be ≥5x faster (got {:.1}x)",
        outcome.speedup
    );
}
