//! Shared experiment fixtures: the paper's workload at a configurable
//! scale, with one place defining the seeds so every experiment sees the
//! same database and queries.

use pinum_workload::star::{StarSchema, StarWorkload};

/// Default schema seed (printed by every experiment for reproducibility).
pub const SCHEMA_SEED: u64 = 42;

/// Default workload seed.
pub const WORKLOAD_SEED: u64 = 7;

/// The paper's experimental setup: star schema plus ten queries.
pub struct PaperWorkload {
    pub schema: StarSchema,
    pub workload: StarWorkload,
}

/// Builds the §VI-A workload. `scale = 1.0` is the paper's 10 GB database;
/// experiments default to 1.0 since only statistics are materialized.
pub fn paper_workload(scale: f64) -> PaperWorkload {
    let schema = StarSchema::generate(SCHEMA_SEED, scale);
    let workload = StarWorkload::generate(&schema, WORKLOAD_SEED, 10);
    PaperWorkload { schema, workload }
}

/// Scale requested via the `PINUM_SCALE` environment variable (default 1.0)
/// so CI can run the full harness quickly.
pub fn scale_from_env() -> f64 {
    std::env::var("PINUM_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}
