//! Plan execution: interprets a [`PlanNode`] tree against a [`Database`].
//!
//! Rows flow as `Vec<i64>` with a *layout*: the sorted list of relations
//! whose full column sets are concatenated. Aggregation emits one
//! representative row per group with the group count appended, so a final
//! ORDER BY sort above the aggregate still finds its columns.

use crate::data::Database;
use pinum_catalog::Catalog;
use pinum_optimizer::plan::JoinQual;
use pinum_optimizer::PlanNode;
use pinum_query::{FilterOp, Query, RelIdx};
use std::collections::HashMap;

/// Execution counters (the engine's "work" measure).
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct ExecStats {
    /// Base-table rows scanned.
    pub rows_scanned: u64,
    /// Join pairs inspected.
    pub pairs_inspected: u64,
    /// Rows emitted by the root.
    pub rows_out: u64,
}

/// The result of executing a plan.
#[derive(Debug)]
pub struct ExecOutput {
    /// Relations whose columns the rows contain, in layout order.
    pub layout: Vec<RelIdx>,
    /// Output rows (for aggregates: representative row + count).
    pub rows: Vec<Vec<i64>>,
    pub stats: ExecStats,
}

impl ExecOutput {
    /// Column offset of `(rel, col)` in this layout.
    pub fn offset(&self, catalog: &Catalog, query: &Query, rel: RelIdx, col: u16) -> usize {
        let mut off = 0usize;
        for &r in &self.layout {
            if r == rel {
                return off + col as usize;
            }
            off += catalog.table(query.table_of(r)).columns().len();
        }
        panic!("relation {rel} not in layout {:?}", self.layout);
    }

    /// Projects the query's SELECT columns out of the result rows.
    pub fn project(&self, catalog: &Catalog, query: &Query) -> Vec<Vec<i64>> {
        let offsets: Vec<usize> = query
            .select
            .iter()
            .map(|&(r, c)| self.offset(catalog, query, r, c))
            .collect();
        self.rows
            .iter()
            .map(|row| offsets.iter().map(|&o| row[o]).collect())
            .collect()
    }
}

/// Executes `plan` for `query` against `db`.
pub fn execute(catalog: &Catalog, query: &Query, db: &Database, plan: &PlanNode) -> ExecOutput {
    let mut stats = ExecStats::default();
    let (layout, rows) = run(catalog, query, db, plan, &mut stats);
    stats.rows_out = rows.len() as u64;
    ExecOutput {
        layout,
        rows,
        stats,
    }
}

type Rows = Vec<Vec<i64>>;

fn run(
    catalog: &Catalog,
    query: &Query,
    db: &Database,
    plan: &PlanNode,
    stats: &mut ExecStats,
) -> (Vec<RelIdx>, Rows) {
    match plan {
        PlanNode::SeqScan { rel, .. } => {
            (vec![*rel], scan_base(catalog, query, db, *rel, None, stats))
        }
        PlanNode::BitmapScan {
            rel, key_columns, ..
        } => (
            vec![*rel],
            scan_base(catalog, query, db, *rel, Some(key_columns), stats),
        ),
        PlanNode::IndexScan {
            rel,
            key_columns,
            parameterized,
            ..
        } => {
            let mut rows = scan_base(catalog, query, db, *rel, Some(key_columns), stats);
            // A plain index scan delivers key order; parameterized probes
            // are ordered per probe only, which the NLJ driver handles.
            if !parameterized {
                sort_rows(
                    &mut rows,
                    &key_columns.iter().map(|&c| c as usize).collect::<Vec<_>>(),
                );
            }
            (vec![*rel], rows)
        }
        PlanNode::Sort { input, keys, .. } => {
            let (layout, mut rows) = run(catalog, query, db, input, stats);
            let offsets: Vec<usize> = keys
                .iter()
                .map(|&(r, c)| layout_offset(catalog, query, &layout, r, c))
                .collect();
            sort_rows(&mut rows, &offsets);
            (layout, rows)
        }
        PlanNode::Material { input, .. } => run(catalog, query, db, input, stats),
        PlanNode::NestLoop {
            outer,
            inner,
            quals,
            ..
        } => join(
            catalog,
            query,
            db,
            outer,
            inner,
            quals,
            JoinAlgo::NestLoop,
            stats,
        ),
        PlanNode::MergeJoin {
            outer,
            inner,
            quals,
            ..
        } => join(
            catalog,
            query,
            db,
            outer,
            inner,
            quals,
            JoinAlgo::Merge,
            stats,
        ),
        PlanNode::HashJoin {
            outer,
            inner,
            quals,
            ..
        } => join(
            catalog,
            query,
            db,
            outer,
            inner,
            quals,
            JoinAlgo::Hash,
            stats,
        ),
        PlanNode::Agg { input, .. } => {
            let (layout, rows) = run(catalog, query, db, input, stats);
            let offsets: Vec<usize> = query
                .group_by
                .iter()
                .map(|&(r, c)| layout_offset(catalog, query, &layout, r, c))
                .collect();
            let mut groups: HashMap<Vec<i64>, (Vec<i64>, i64)> = HashMap::new();
            for row in rows {
                let key: Vec<i64> = offsets.iter().map(|&o| row[o]).collect();
                groups
                    .entry(key)
                    .and_modify(|(_, n)| *n += 1)
                    .or_insert((row, 1));
            }
            let mut out: Rows = groups
                .into_values()
                .map(|(mut row, n)| {
                    row.push(n);
                    row
                })
                .collect();
            // Deterministic output for comparisons.
            out.sort_unstable();
            (layout, out)
        }
    }
}

/// Scans a base relation, applying the query's filters on it.
///
/// When `index_cols` is given, rows failing the filters on those columns
/// count as pruned by the index (not scanned) — the engine's work measure
/// for index and bitmap access.
fn scan_base(
    catalog: &Catalog,
    query: &Query,
    db: &Database,
    rel: RelIdx,
    index_cols: Option<&[u16]>,
    stats: &mut ExecStats,
) -> Rows {
    let table_id = query.table_of(rel);
    let data = db.table(table_id);
    let ncols = catalog.table(table_id).columns().len();
    let filters: Vec<_> = query.filters_on(rel).collect();
    let passes = |f: &&pinum_query::FilterPredicate, r: usize| {
        let v = data.value(f.column, r);
        match f.op {
            FilterOp::Eq { value } => v == value as i64,
            FilterOp::Range { lo, hi } => (v as f64) >= lo && (v as f64) < hi,
        }
    };
    let mut out = Vec::new();
    for r in 0..data.rows {
        if let Some(keys) = index_cols {
            // The index prunes rows failing key-column conditions before
            // they are fetched.
            if !filters
                .iter()
                .filter(|f| keys.contains(&f.column))
                .all(|f| passes(f, r))
            {
                continue;
            }
        }
        stats.rows_scanned += 1;
        if filters.iter().all(|f| passes(f, r)) {
            out.push((0..ncols as u16).map(|c| data.value(c, r)).collect());
        }
    }
    out
}

enum JoinAlgo {
    NestLoop,
    Merge,
    Hash,
}

#[allow(clippy::too_many_arguments)]
fn join(
    catalog: &Catalog,
    query: &Query,
    db: &Database,
    outer: &PlanNode,
    inner: &PlanNode,
    quals: &[JoinQual],
    algo: JoinAlgo,
    stats: &mut ExecStats,
) -> (Vec<RelIdx>, Rows) {
    let (lo, orows) = run(catalog, query, db, outer, stats);
    let (li, irows) = run(catalog, query, db, inner, stats);
    assert!(!quals.is_empty(), "cartesian joins are out of scope");
    let o_off: Vec<usize> = quals
        .iter()
        .map(|&((r, c), _)| layout_offset(catalog, query, &lo, r, c))
        .collect();
    let i_off: Vec<usize> = quals
        .iter()
        .map(|&(_, (r, c))| layout_offset(catalog, query, &li, r, c))
        .collect();

    let mut out: Rows = Vec::new();
    match algo {
        JoinAlgo::Hash | JoinAlgo::Merge | JoinAlgo::NestLoop => {
            // All three produce identical results; model each with the
            // natural data structure so the work counters differ.
            match algo {
                JoinAlgo::NestLoop => {
                    for orow in &orows {
                        for irow in &irows {
                            stats.pairs_inspected += 1;
                            if quals_match(orow, irow, &o_off, &i_off) {
                                out.push(concat(orow, irow));
                            }
                        }
                    }
                }
                _ => {
                    // Build on the first qual column, recheck the rest.
                    let mut ht: HashMap<i64, Vec<usize>> = HashMap::new();
                    for (idx, irow) in irows.iter().enumerate() {
                        ht.entry(irow[i_off[0]]).or_default().push(idx);
                    }
                    for orow in &orows {
                        if let Some(matches) = ht.get(&orow[o_off[0]]) {
                            for &idx in matches {
                                stats.pairs_inspected += 1;
                                let irow = &irows[idx];
                                if quals_match(orow, irow, &o_off, &i_off) {
                                    out.push(concat(orow, irow));
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    // Output layout: outer rels then inner rels, merged sorted.
    let mut layout = lo.clone();
    layout.extend(&li);
    (layout, out)
}

fn quals_match(orow: &[i64], irow: &[i64], o_off: &[usize], i_off: &[usize]) -> bool {
    o_off.iter().zip(i_off).all(|(&o, &i)| orow[o] == irow[i])
}

fn concat(a: &[i64], b: &[i64]) -> Vec<i64> {
    let mut v = Vec::with_capacity(a.len() + b.len());
    v.extend_from_slice(a);
    v.extend_from_slice(b);
    v
}

fn layout_offset(
    catalog: &Catalog,
    query: &Query,
    layout: &[RelIdx],
    rel: RelIdx,
    col: u16,
) -> usize {
    let mut off = 0usize;
    for &r in layout {
        if r == rel {
            return off + col as usize;
        }
        off += catalog.table(query.table_of(r)).columns().len();
    }
    panic!("relation {rel} not in layout {layout:?}");
}

fn sort_rows(rows: &mut Rows, offsets: &[usize]) {
    rows.sort_by(|a, b| {
        for &o in offsets {
            match a[o].cmp(&b[o]) {
                std::cmp::Ordering::Equal => continue,
                other => return other,
            }
        }
        a.cmp(b) // total order for determinism
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinum_catalog::{Column, ColumnStats, ColumnType, Configuration, Table};
    use pinum_optimizer::{Optimizer, OptimizerOptions};
    use pinum_query::QueryBuilder;

    fn setup() -> (Catalog, Query, Database) {
        let mut cat = Catalog::new();
        cat.add_table(Table::new(
            "f",
            2_000,
            vec![
                Column::new("fk", ColumnType::Int8)
                    .with_stats(ColumnStats::uniform(0.0, 100.0, 100.0)),
                Column::new("v", ColumnType::Int4)
                    .with_stats(ColumnStats::uniform(0.0, 100.0, 100.0)),
            ],
        ));
        cat.add_table(Table::new(
            "d",
            100,
            vec![
                Column::new("k", ColumnType::Int8)
                    .with_ndv(100)
                    .with_correlation(1.0),
                Column::new("w", ColumnType::Int4)
                    .with_stats(ColumnStats::uniform(0.0, 10.0, 10.0)),
            ],
        ));
        let q = QueryBuilder::new("q", &cat)
            .table("f")
            .table("d")
            .join(("f", "fk"), ("d", "k"))
            .filter_range(("f", "v"), 0.0, 10.0)
            .select(("f", "v"))
            .select(("d", "w"))
            .order_by(("d", "w"))
            .build();
        let db = Database::generate(&cat, 5);
        (cat, q, db)
    }

    /// Brute-force reference join for verification.
    fn reference(_cat: &Catalog, q: &Query, db: &Database) -> usize {
        let f = db.table(q.table_of(0));
        let d = db.table(q.table_of(1));
        let mut n = 0;
        for i in 0..f.rows {
            if f.value(1, i) >= 10 {
                continue;
            }
            for j in 0..d.rows {
                if f.value(0, i) == d.value(0, j) {
                    n += 1;
                }
            }
        }
        n
    }

    #[test]
    fn executed_plan_matches_brute_force() {
        let (cat, q, db) = setup();
        let opt = Optimizer::new(&cat);
        let planned = opt.optimize(&q, &Configuration::empty(), &OptimizerOptions::standard());
        let out = execute(&cat, &q, &db, &planned.plan);
        assert_eq!(out.rows.len(), reference(&cat, &q, &db));
        assert!(out.stats.rows_scanned >= 2_100 - 100);
    }

    #[test]
    fn different_plans_same_result() {
        let (cat, q, db) = setup();
        let opt = Optimizer::new(&cat);
        // Plan A: no indexes. Plan B: covering indexes (different shape).
        let planned_a = opt.optimize(&q, &Configuration::empty(), &OptimizerOptions::standard());
        let cfg = pinum_core::builder::covering_configuration(&cat, &q);
        let planned_b = opt.optimize(&q, &cfg, &OptimizerOptions::standard());
        let a = execute(&cat, &q, &db, &planned_a.plan);
        let b = execute(&cat, &q, &db, &planned_b.plan);
        let mut pa = a.project(&cat, &q);
        let mut pb = b.project(&cat, &q);
        pa.sort_unstable();
        pb.sort_unstable();
        assert_eq!(pa, pb, "plans must be result-equivalent");
    }

    #[test]
    fn order_by_is_respected() {
        let (cat, q, db) = setup();
        let opt = Optimizer::new(&cat);
        let planned = opt.optimize(&q, &Configuration::empty(), &OptimizerOptions::standard());
        let out = execute(&cat, &q, &db, &planned.plan);
        let w_off = out.offset(&cat, &q, 1, 1);
        let ws: Vec<i64> = out.rows.iter().map(|r| r[w_off]).collect();
        assert!(
            ws.windows(2).all(|p| p[0] <= p[1]),
            "output not sorted by d.w"
        );
    }

    #[test]
    fn cardinality_estimate_is_close_on_uniform_data() {
        let (cat, q, db) = setup();
        let opt = Optimizer::new(&cat);
        let planned = opt.optimize(&q, &Configuration::empty(), &OptimizerOptions::standard());
        let out = execute(&cat, &q, &db, &planned.plan);
        let est = planned.best_rows;
        let actual = out.rows.len() as f64;
        assert!(
            est / actual < 3.0 && actual / est < 3.0,
            "estimate {est} vs actual {actual}"
        );
    }

    #[test]
    fn group_by_aggregates_counts() {
        let (cat, _, _) = setup();
        let q = QueryBuilder::new("g", &cat)
            .table("d")
            .select(("d", "w"))
            .group_by(("d", "w"))
            .build();
        let db = Database::generate(&cat, 5);
        let opt = Optimizer::new(&cat);
        let planned = opt.optimize(&q, &Configuration::empty(), &OptimizerOptions::standard());
        let out = execute(&cat, &q, &db, &planned.plan);
        assert!(out.rows.len() <= 10);
        // Counts sum to the table size.
        let total: i64 = out.rows.iter().map(|r| r.last().unwrap()).sum();
        assert_eq!(total, 100);
    }
}
