//! Synthetic data generation matching catalog statistics.
//!
//! Columns are generated to satisfy exactly the statistical model the
//! optimizer plans against: key-like columns (`ndv == rows`) become
//! permutations of `0..rows` (the identity when the stats claim perfect
//! correlation, as for serially loaded dimension keys), and other columns
//! draw uniformly from `ndv` distinct values — the paper's "numeric and
//! uniformly distributed" synthetic columns (§VI-A).

use pinum_catalog::{Catalog, TableId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Column-major data of one table.
#[derive(Debug, Clone)]
pub struct TableData {
    /// `columns[c][row]`.
    pub columns: Vec<Vec<i64>>,
    pub rows: usize,
}

impl TableData {
    /// Value of `column` at `row`.
    pub fn value(&self, column: u16, row: usize) -> i64 {
        self.columns[column as usize][row]
    }
}

/// All generated tables.
#[derive(Debug, Clone)]
pub struct Database {
    tables: HashMap<TableId, TableData>,
}

impl Database {
    /// Generates data for every table of the catalog.
    ///
    /// Keep catalogs small when calling this (the engine is for scaled-down
    /// validation, not 10 GB runs).
    pub fn generate(catalog: &Catalog, seed: u64) -> Self {
        let mut tables = HashMap::new();
        for table in catalog.tables() {
            let mut rng = StdRng::seed_from_u64(seed ^ (table.id().0 as u64) << 17);
            let rows = table.rows() as usize;
            let columns = table
                .columns()
                .iter()
                .map(|col| {
                    let stats = col.stats();
                    let ndv = stats.n_distinct.max(1.0) as i64;
                    if (stats.n_distinct - rows as f64).abs() < 0.5 {
                        // Key-like: a permutation of 0..rows keeps both the
                        // distinct count and the uniform histogram honest.
                        let mut vals: Vec<i64> = (0..rows as i64).collect();
                        if stats.correlation < 0.99 {
                            vals.shuffle(&mut rng);
                        }
                        vals
                    } else {
                        let lo = stats.min as i64;
                        (0..rows)
                            .map(|_| lo + rng.gen_range(0..ndv.max(1)))
                            .collect()
                    }
                })
                .collect();
            tables.insert(table.id(), TableData { columns, rows });
        }
        Self { tables }
    }

    pub fn table(&self, id: TableId) -> &TableData {
        &self.tables[&id]
    }

    /// Total generated rows.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(|t| t.rows).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinum_catalog::{Column, ColumnStats, ColumnType, Table};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.add_table(Table::new(
            "t",
            1_000,
            vec![
                Column::new("k", ColumnType::Int8)
                    .with_ndv(1_000)
                    .with_correlation(1.0),
                Column::new("v", ColumnType::Int4)
                    .with_stats(ColumnStats::uniform(0.0, 10.0, 10.0)),
            ],
        ));
        cat
    }

    #[test]
    fn key_columns_are_permutations() {
        let cat = catalog();
        let db = Database::generate(&cat, 1);
        let t = db.table(TableId(0));
        let mut keys = t.columns[0].clone();
        keys.sort_unstable();
        assert_eq!(keys, (0..1000).collect::<Vec<i64>>());
        // correlation = 1.0 ⇒ identity order.
        assert_eq!(t.columns[0][..5], [0, 1, 2, 3, 4]);
    }

    #[test]
    fn low_ndv_columns_stay_in_domain() {
        let cat = catalog();
        let db = Database::generate(&cat, 1);
        let t = db.table(TableId(0));
        assert!(t.columns[1].iter().all(|&v| (0..10).contains(&v)));
        let distinct: std::collections::HashSet<_> = t.columns[1].iter().collect();
        assert!(distinct.len() <= 10 && distinct.len() >= 8);
    }

    #[test]
    fn generation_is_deterministic() {
        let cat = catalog();
        let a = Database::generate(&cat, 9);
        let b = Database::generate(&cat, 9);
        assert_eq!(a.table(TableId(0)).columns, b.table(TableId(0)).columns);
    }
}
