//! # pinum-engine
//!
//! A mini row-level execution engine over synthetic in-memory data.
//!
//! The paper runs its workload on a 10 GB PostgreSQL database; this crate
//! is the scaled-down stand-in (DESIGN.md substitution table): it
//! materializes data matching the catalog's statistics ([`data`]) and
//! executes the optimizer's [`pinum_optimizer::PlanNode`] trees against it
//! ([`exec`]). It serves two purposes:
//!
//! 1. **validation** — actual row counts and join results check the cost
//!    model's cardinality estimates and the optimizer's plan correctness
//!    (every plan of the same query must produce the same rows);
//! 2. **examples** — runnable end-to-end demos that *execute* the queries
//!    the advisor tunes.

pub mod data;
pub mod exec;

pub use data::{Database, TableData};
pub use exec::{execute, ExecOutput, ExecStats};
