//! Drifting query streams over the star schema — the workload as a
//! moving target.
//!
//! The paper's workload is a fixed batch of ten queries; an online tuner
//! needs the opposite: a stream whose *generating distribution shifts*
//! while it runs. [`DriftStream`] produces that stream in phases, with
//! three drift mechanisms layered on the [`crate::star`] query shape:
//!
//! * **template mix shift** — each phase concentrates its joins on a
//!   sliding window of the fact table's level-1 foreign-key edges and its
//!   predicates on a rotating window of fact measures, so the candidate
//!   indexes that pay off change from phase to phase;
//! * **table-growth reweighting** — one dimension per phase is designated
//!   as "growing": queries that join it carry a workload weight that
//!   compounds by `growth_per_phase` each phase, modelling a table whose
//!   traffic share swells over time (consumed via
//!   `WorkloadModel::admit_query_weighted` / `reweight_query`);
//! * **query churn** — with probability `churn`, a query ignores the
//!   phase bias entirely and samples a one-off template from the whole
//!   schema, the long tail no window ever fully covers.
//!
//! The stream is a pure function of `(schema, seed, profile)`: replays
//! are bit-identical, which is what lets `exp_online_drift` compare an
//! online advisor against a periodic-rebuild baseline on the exact same
//! history.
//!
//! [`DriftEventStream`] layers a fourth mechanism on top: **in-place
//! reweights**. Real workloads do not only shift by *new* queries
//! arriving — a resident query gets hotter (its execution frequency
//! climbs) without changing shape. The event stream interleaves
//! [`DriftEvent::Reweight`] events (a recent admission's weight
//! compounds by `ReweightProfile::factor`) with the base stream's
//! admissions, addressed by **admission ordinal** so consumers like
//! `pinum_online::OnlineAdvisor::reweight` can apply them without
//! tracking model query ids.

use crate::star::{FkEdge, StarSchema};
use pinum_query::{Query, QueryBuilder};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Shape of the drift: how many phases, how fast the mix moves, how much
/// churn rides on top.
#[derive(Debug, Clone, Copy)]
pub struct DriftProfile {
    /// Number of distribution phases.
    pub phases: usize,
    /// Queries emitted per phase.
    pub phase_length: usize,
    /// How many level-1 fact edges a phase's template mix concentrates
    /// on (the window slides by `edge_window / 2` each phase).
    pub edge_window: usize,
    /// Probability that a query is a one-off template sampled from the
    /// whole schema instead of the phase mix.
    pub churn: f64,
    /// Weight multiplier compounded per phase for queries that join the
    /// phase's designated growing dimension (1.0 = no growth drift).
    pub growth_per_phase: f64,
}

impl Default for DriftProfile {
    fn default() -> Self {
        Self {
            phases: 3,
            phase_length: 100,
            edge_window: 4,
            churn: 0.05,
            growth_per_phase: 1.0,
        }
    }
}

/// One emitted stream element: the query plus its drift metadata.
#[derive(Debug, Clone)]
pub struct DriftedQuery {
    pub query: Query,
    /// Workload weight (growth drift; 1.0 when untouched by growth).
    pub weight: f64,
    /// Phase the query was drawn in.
    pub phase: usize,
    /// True when the query came from the churn tail, not the phase mix.
    pub churned: bool,
}

/// Deterministic drifting query stream; see the module docs.
pub struct DriftStream<'a> {
    schema: &'a StarSchema,
    profile: DriftProfile,
    rng: StdRng,
    emitted: usize,
}

impl<'a> DriftStream<'a> {
    pub fn new(schema: &'a StarSchema, seed: u64, profile: DriftProfile) -> Self {
        assert!(profile.phases >= 1, "need at least one phase");
        assert!(
            profile.phase_length >= 1,
            "need at least one query per phase"
        );
        assert!(
            profile.edge_window >= 1,
            "phase mix needs at least one edge"
        );
        assert!(
            (0.0..=1.0).contains(&profile.churn),
            "churn is a probability"
        );
        assert!(
            profile.growth_per_phase >= 1.0 && profile.growth_per_phase.is_finite(),
            "growth factor must be finite and ≥ 1"
        );
        Self {
            schema,
            profile,
            rng: StdRng::seed_from_u64(seed ^ 0x00D5_D51F_7A11_u64),
            emitted: 0,
        }
    }

    /// Total queries the stream will emit.
    pub fn len(&self) -> usize {
        self.profile.phases * self.profile.phase_length
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Phase of the `index`-th emitted query.
    pub fn phase_of(&self, index: usize) -> usize {
        (index / self.profile.phase_length).min(self.profile.phases - 1)
    }

    /// The level-1 fact edges the given phase's template mix draws from
    /// (a sliding window over all level-1 edges, half-overlapping so
    /// consecutive phases share some templates).
    fn phase_edges(&self, phase: usize) -> Vec<FkEdge> {
        let all = self.schema.children_of(self.schema.fact);
        let stride = (self.profile.edge_window / 2).max(1);
        let start = (phase * stride) % all.len();
        (0..self.profile.edge_window.min(all.len()))
            .map(|i| all[(start + i) % all.len()])
            .collect()
    }

    /// Ordinals of the fact measures the phase's predicates rotate over.
    fn phase_measures(&self, phase: usize, measures: &[u16]) -> Vec<u16> {
        let start = (phase * 2) % measures.len();
        (0..3.min(measures.len()))
            .map(|i| measures[(start + i) % measures.len()])
            .collect()
    }
}

impl Iterator for DriftStream<'_> {
    type Item = DriftedQuery;

    fn next(&mut self) -> Option<DriftedQuery> {
        if self.emitted >= self.len() {
            return None;
        }
        let index = self.emitted;
        self.emitted += 1;
        let phase = self.phase_of(index);
        let catalog = &self.schema.catalog;
        let fact = catalog.table(self.schema.fact);

        // Fact measure ordinals ("m*" columns, as laid out by star.rs).
        let measures: Vec<u16> = (0..fact.columns().len() as u16)
            .filter(|&c| fact.column(c).name().starts_with('m'))
            .collect();

        let churned = self.rng.gen_bool(self.profile.churn);
        let (edges, preds) = if churned {
            // Long tail: anywhere in the schema, any measure.
            (self.schema.children_of(self.schema.fact), measures.clone())
        } else {
            (
                self.phase_edges(phase),
                self.phase_measures(phase, &measures),
            )
        };

        let width = 2 + self.rng.gen_range(0..4usize); // 2..=5 tables
        let query = generate_phase_query(
            self.schema,
            &mut self.rng,
            &format!("D{phase}_{index}"),
            width,
            &edges,
            &preds,
        );

        // Growth drift: the phase's designated growing dimension makes
        // the queries that join it progressively heavier.
        let growing = self.phase_edges(phase).first().map(|e| e.parent);
        let weight = match growing {
            Some(dim) if self.profile.growth_per_phase > 1.0 && query.relations.contains(&dim) => {
                self.profile.growth_per_phase.powi(phase as i32 + 1)
            }
            _ => 1.0,
        };

        Some(DriftedQuery {
            query,
            weight,
            phase,
            churned,
        })
    }
}

/// Builds one query joining the fact table with a connected sub-tree of
/// dimensions grown along `edges` (the phase's template mix), with a
/// ~1 %-selectivity predicate on one of `pred_measures`. Mirrors the
/// batch generator in [`crate::star`], parameterized by the phase bias.
fn generate_phase_query(
    schema: &StarSchema,
    rng: &mut StdRng,
    name: &str,
    width: usize,
    edges: &[FkEdge],
    pred_measures: &[u16],
) -> Query {
    let catalog = &schema.catalog;
    let mut tables = vec![schema.fact];
    let mut frontier: Vec<FkEdge> = edges.to_vec();
    let mut joins = Vec::new();
    while tables.len() < width && !frontier.is_empty() {
        let pick = rng.gen_range(0..frontier.len());
        let edge = frontier.swap_remove(pick);
        if tables.contains(&edge.parent) {
            continue;
        }
        tables.push(edge.parent);
        joins.push((edge.child, edge.child_column, edge.parent));
        frontier.extend(schema.children_of(edge.parent));
    }

    let mut qb = QueryBuilder::new(name, catalog);
    let names: Vec<String> = tables
        .iter()
        .map(|t| catalog.table(*t).name().to_string())
        .collect();
    for n in &names {
        qb = qb.table(n);
    }
    for (child, col, parent) in &joins {
        let child_name = catalog.table(*child).name().to_string();
        let col_name = catalog.table(*child).column(*col).name().to_string();
        let parent_name = catalog.table(*parent).name().to_string();
        qb = qb.join((&child_name, &col_name), (&parent_name, "k"));
    }

    // ~1 %-selectivity range predicate on a phase-biased fact measure.
    let fact = catalog.table(schema.fact);
    let measure = pred_measures[rng.gen_range(0..pred_measures.len())];
    let mcol = fact.column(measure);
    let hi = (mcol.stats().max * 0.01).max(1.0);
    qb = qb.filter_range(("fact", mcol.name()), 0.0, hi);

    // Select one fact measure plus one attribute per joined dimension.
    let select_measure = pred_measures[rng.gen_range(0..pred_measures.len())];
    qb = qb.select(("fact", fact.column(select_measure).name()));
    for &t in tables.iter().skip(1) {
        let dt = catalog.table(t);
        let attrs: Vec<u16> = (0..dt.columns().len() as u16)
            .filter(|&c| dt.column(c).name().starts_with('a'))
            .collect();
        if let Some(&c) = attrs.choose(rng) {
            let dt_name = dt.name().to_string();
            let c_name = dt.column(c).name().to_string();
            qb = qb.select((&dt_name, &c_name));
        }
    }

    // ORDER BY a dimension attribute (or a fact measure when alone).
    if tables.len() > 1 && rng.gen_bool(0.8) {
        let t = tables[rng.gen_range(1..tables.len())];
        let dt = catalog.table(t);
        let attrs: Vec<u16> = (0..dt.columns().len() as u16)
            .filter(|&c| dt.column(c).name().starts_with('a'))
            .collect();
        let attr = attrs[rng.gen_range(0..attrs.len())];
        let dt_name = dt.name().to_string();
        let a_name = dt.column(attr).name().to_string();
        qb = qb.order_by((&dt_name, &a_name));
    } else {
        let m = pred_measures[rng.gen_range(0..pred_measures.len())];
        qb = qb.order_by(("fact", fact.column(m).name()));
    }

    qb.build()
}

/// One element of a reweight-bearing drift stream.
#[derive(Debug, Clone)]
pub enum DriftEvent {
    /// A fresh query arrives (an admission).
    Admit(DriftedQuery),
    /// The query admitted as ordinal `admission` (0-based count of
    /// [`DriftEvent::Admit`] events so far) now runs at `weight` — the
    /// same query getting hotter in place.
    Reweight { admission: usize, weight: f64 },
}

/// Shape of the in-place reweight drift riding on a [`DriftStream`].
#[derive(Debug, Clone, Copy)]
pub struct ReweightProfile {
    /// Probability that the next event is a reweight instead of an
    /// admission (given at least one admission happened; admissions
    /// always resume once the coin lands tails, so the stream ends).
    pub rate: f64,
    /// Weight multiplier compounded per reweight event (> 1 = hotter).
    pub factor: f64,
    /// Reweights target one of the most recent `lookback` admissions
    /// (uniformly), modelling heat on the working set.
    pub lookback: usize,
}

impl Default for ReweightProfile {
    fn default() -> Self {
        Self {
            rate: 0.2,
            factor: 1.5,
            lookback: 32,
        }
    }
}

/// [`DriftStream`] with interleaved in-place [`DriftEvent::Reweight`]
/// events. Deterministic: a pure function of
/// `(schema, seed, base profile, reweight profile)`.
pub struct DriftEventStream<'a> {
    inner: DriftStream<'a>,
    profile: ReweightProfile,
    rng: StdRng,
    /// Current weight of each admission (reweights compound onto the
    /// admitted weight).
    weights: Vec<f64>,
    admits_remaining: usize,
}

impl<'a> DriftEventStream<'a> {
    pub fn new(
        schema: &'a StarSchema,
        seed: u64,
        base: DriftProfile,
        reweights: ReweightProfile,
    ) -> Self {
        assert!(
            (0.0..1.0).contains(&reweights.rate),
            "reweight rate must be in [0, 1)"
        );
        assert!(
            reweights.factor >= 1.0 && reweights.factor.is_finite(),
            "reweight factor must be finite and ≥ 1"
        );
        assert!(reweights.lookback >= 1, "lookback must cover an admission");
        let inner = DriftStream::new(schema, seed, base);
        let admits_remaining = inner.len();
        Self {
            inner,
            profile: reweights,
            rng: StdRng::seed_from_u64(seed ^ 0x0000_073B_3471_1EA7_u64),
            weights: Vec::new(),
            admits_remaining,
        }
    }

    /// Admissions the stream will emit (reweight events ride on top).
    pub fn admissions(&self) -> usize {
        self.inner.len()
    }
}

impl Iterator for DriftEventStream<'_> {
    type Item = DriftEvent;

    fn next(&mut self) -> Option<DriftEvent> {
        if self.admits_remaining > 0
            && !self.weights.is_empty()
            && self.rng.gen_bool(self.profile.rate)
        {
            let span = self.profile.lookback.min(self.weights.len());
            let admission = self.weights.len() - 1 - self.rng.gen_range(0..span);
            let weight = self.weights[admission] * self.profile.factor;
            self.weights[admission] = weight;
            return Some(DriftEvent::Reweight { admission, weight });
        }
        let dq = self.inner.next()?;
        self.admits_remaining -= 1;
        self.weights.push(dq.weight);
        Some(DriftEvent::Admit(dq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> StarSchema {
        StarSchema::generate(42, 0.001)
    }

    fn profile() -> DriftProfile {
        DriftProfile {
            phases: 3,
            phase_length: 20,
            edge_window: 4,
            churn: 0.1,
            growth_per_phase: 1.5,
        }
    }

    #[test]
    fn stream_is_deterministic_and_sized() {
        let s = schema();
        let a: Vec<_> = DriftStream::new(&s, 9, profile()).collect();
        let b: Vec<_> = DriftStream::new(&s, 9, profile()).collect();
        assert_eq!(a.len(), 60);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.query.relations, y.query.relations);
            assert_eq!(x.query.joins, y.query.joins);
            assert_eq!(x.weight, y.weight);
            assert_eq!(x.phase, y.phase);
            assert_eq!(x.churned, y.churned);
        }
    }

    #[test]
    fn queries_are_valid_and_connected() {
        let s = schema();
        for dq in DriftStream::new(&s, 3, profile()) {
            dq.query.validate(&s.catalog);
            assert!(
                dq.query.join_graph_connected(),
                "{} disconnected",
                dq.query.name
            );
            assert!(!dq.query.filters.is_empty());
            assert!(!dq.query.order_by.is_empty());
            assert!(dq.weight >= 1.0 && dq.weight.is_finite());
        }
    }

    #[test]
    fn template_mix_actually_shifts_between_phases() {
        let s = schema();
        let stream = DriftStream::new(&s, 7, profile());
        let all: Vec<_> = stream.collect();
        // Dimension histogram per phase (excluding churned queries).
        let dims_of = |phase: usize| -> std::collections::BTreeSet<_> {
            all.iter()
                .filter(|d| d.phase == phase && !d.churned)
                .flat_map(|d| d.query.relations.iter().copied())
                .filter(|&t| t != s.fact)
                .collect()
        };
        let (p0, p2) = (dims_of(0), dims_of(2));
        assert!(!p0.is_empty() && !p2.is_empty());
        assert_ne!(p0, p2, "phases 0 and 2 drew the same dimension mix");
    }

    #[test]
    fn growth_drift_weights_compound_by_phase() {
        let s = schema();
        let all: Vec<_> = DriftStream::new(&s, 11, profile()).collect();
        let grown: Vec<&DriftedQuery> = all.iter().filter(|d| d.weight > 1.0).collect();
        assert!(!grown.is_empty(), "no query hit the growing dimension");
        for d in &grown {
            let expect = 1.5f64.powi(d.phase as i32 + 1);
            assert_eq!(d.weight, expect, "phase {} weight", d.phase);
        }
    }

    #[test]
    fn churn_emits_one_off_templates() {
        let s = schema();
        let high_churn = DriftProfile {
            churn: 0.5,
            ..profile()
        };
        let all: Vec<_> = DriftStream::new(&s, 5, high_churn).collect();
        let churned = all.iter().filter(|d| d.churned).count();
        assert!(churned > 5, "churn rate 0.5 produced only {churned} of 60");
        assert!(churned < 55);
    }

    fn reweights() -> ReweightProfile {
        ReweightProfile {
            rate: 0.3,
            factor: 1.5,
            lookback: 8,
        }
    }

    #[test]
    fn event_stream_is_deterministic_and_complete() {
        let s = schema();
        let collect = || -> Vec<DriftEvent> {
            DriftEventStream::new(&s, 9, profile(), reweights()).collect()
        };
        let (a, b) = (collect(), collect());
        assert_eq!(a.len(), b.len());
        let admits = a
            .iter()
            .filter(|e| matches!(e, DriftEvent::Admit(_)))
            .count();
        assert_eq!(admits, 60, "every base admission must come through");
        let rws = a.len() - admits;
        assert!(rws > 5, "rate 0.3 produced only {rws} reweights");
        for (x, y) in a.iter().zip(&b) {
            match (x, y) {
                (DriftEvent::Admit(p), DriftEvent::Admit(q)) => {
                    assert_eq!(p.query.relations, q.query.relations);
                    assert_eq!(p.weight, q.weight);
                }
                (
                    DriftEvent::Reweight {
                        admission: pa,
                        weight: pw,
                    },
                    DriftEvent::Reweight {
                        admission: qa,
                        weight: qw,
                    },
                ) => {
                    assert_eq!(pa, qa);
                    assert_eq!(pw, qw);
                }
                _ => panic!("event kinds diverged between replays"),
            }
        }
    }

    #[test]
    fn reweights_target_recent_admissions_and_compound() {
        let s = schema();
        let mut admitted = 0usize;
        let mut current: Vec<f64> = Vec::new();
        for event in DriftEventStream::new(&s, 5, profile(), reweights()) {
            match event {
                DriftEvent::Admit(dq) => {
                    admitted += 1;
                    current.push(dq.weight);
                }
                DriftEvent::Reweight { admission, weight } => {
                    assert!(admission < admitted, "reweight before its admission");
                    assert!(
                        admitted - admission <= 8,
                        "reweight outside the lookback window"
                    );
                    let expect = current[admission] * 1.5;
                    assert_eq!(weight, expect, "weights must compound by the factor");
                    assert!(weight.is_finite() && weight > 0.0);
                    current[admission] = weight;
                }
            }
        }
        assert_eq!(admitted, 60);
    }

    #[test]
    fn zero_rate_reduces_to_the_base_stream() {
        let s = schema();
        let base: Vec<_> = DriftStream::new(&s, 9, profile()).collect();
        let events: Vec<_> = DriftEventStream::new(
            &s,
            9,
            profile(),
            ReweightProfile {
                rate: 0.0,
                ..reweights()
            },
        )
        .collect();
        assert_eq!(events.len(), base.len());
        for (e, d) in events.iter().zip(&base) {
            match e {
                DriftEvent::Admit(dq) => {
                    assert_eq!(dq.query.relations, d.query.relations);
                    assert_eq!(dq.weight, d.weight);
                }
                DriftEvent::Reweight { .. } => panic!("rate 0 emitted a reweight"),
            }
        }
    }

    #[test]
    fn phase_of_matches_emission_order() {
        let s = schema();
        let stream = DriftStream::new(&s, 1, profile());
        assert_eq!(stream.phase_of(0), 0);
        assert_eq!(stream.phase_of(19), 0);
        assert_eq!(stream.phase_of(20), 1);
        assert_eq!(stream.phase_of(59), 2);
        assert_eq!(stream.phase_of(1000), 2, "clamps to the last phase");
    }
}
