//! # pinum-workload
//!
//! Workload substrates for the PINUM reproduction:
//!
//! * [`star`] — the paper's synthetic benchmark (§VI-A): a 10 GB
//!   star/snowflake schema with one fact table and 28 dimension tables
//!   ("The dimension tables themselves have other dimension tables and so
//!   on"), uniformly distributed numeric columns, and ten foreign-key-join
//!   queries with 1 %-selectivity predicates and ORDER BY clauses;
//! * [`tpch`] — TPC-H schema *statistics* (published cardinalities) and
//!   query skeletons, used for the §IV motivation numbers (TPC-H Q5 has
//!   648 interesting-order combinations);
//! * [`drift`] — deterministic *drifting* query streams over the star
//!   schema (phased template-mix shifts, table-growth reweighting, query
//!   churn) for exercising the online tuning subsystem;
//! * [`templates`] — collection-template statistics: how many distinct
//!   `(table, filter shape)` signatures a workload's relations collapse
//!   onto, i.e. the optimizer-call count of workload-level batched
//!   collection (`pinum_core::WorkloadCollector`).
//!
//! Only statistics are generated — the optimizer, the INUM cache and the
//! index advisor all work off statistics, exactly like what-if calls
//! against a real DBMS. The small-scale executable data for the mini
//! engine lives in `pinum-engine`.

pub mod drift;
pub mod star;
pub mod templates;
pub mod tpch;

pub use drift::{DriftProfile, DriftStream, DriftedQuery};
pub use star::{StarSchema, StarWorkload};
pub use templates::{summarize_templates, TemplateSummary};
pub use tpch::{tpch_catalog, tpch_q10, tpch_q3, tpch_q5};
