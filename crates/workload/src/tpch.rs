//! TPC-H schema statistics and query skeletons.
//!
//! Used for the paper's §IV motivation: "consider, for instance, the 5th
//! query in the TPC-H benchmark. The query joins 6 tables … the query has
//! 648 interesting order combinations. INUM needs to query the optimizer
//! 648 times to fully build the cache; if we carefully parse the plans,
//! however, we find only 64 unique plans in the cache; 90 % of the
//! optimizer calls and the cached plans are therefore redundant!"
//!
//! Cardinalities follow the TPC-H specification at scale factor `sf`
//! (lineitem ≈ 6 M rows/SF etc.). Only the columns the skeleton queries
//! touch are modeled, plus representative extras for realistic widths.

use pinum_catalog::{Catalog, Column, ColumnStats, ColumnType, Table};
use pinum_query::{Query, QueryBuilder};

fn uniform(ndv: u64) -> ColumnStats {
    ColumnStats::uniform(0.0, ndv as f64, ndv.max(1) as f64)
}

/// dbgen emits rows in primary-key order, so key columns are physically
/// correlated with the heap — which is what makes ordered index access
/// competitive and the per-IOC plans genuinely diverse (§IV).
fn correlated(ndv: u64) -> ColumnStats {
    let mut s = uniform(ndv);
    s.correlation = 1.0;
    s
}

/// Builds the eight TPC-H tables at scale factor `sf`.
pub fn tpch_catalog(sf: f64) -> Catalog {
    assert!(sf > 0.0);
    let n = |base: f64| (base * sf).max(1.0) as u64;
    let mut cat = Catalog::new();

    cat.add_table(Table::new(
        "region",
        5,
        vec![
            Column::new("r_regionkey", ColumnType::Int4).with_stats(correlated(5)),
            Column::new("r_name", ColumnType::Text { avg_len: 12 }).with_stats(uniform(5)),
        ],
    ));
    cat.add_table(Table::new(
        "nation",
        25,
        vec![
            Column::new("n_nationkey", ColumnType::Int4).with_stats(correlated(25)),
            Column::new("n_name", ColumnType::Text { avg_len: 12 }).with_stats(uniform(25)),
            Column::new("n_regionkey", ColumnType::Int4).with_stats(uniform(5)),
        ],
    ));
    cat.add_table(Table::new(
        "supplier",
        n(10_000.0),
        vec![
            Column::new("s_suppkey", ColumnType::Int4).with_stats(correlated(n(10_000.0))),
            Column::new("s_name", ColumnType::Text { avg_len: 18 })
                .with_stats(uniform(n(10_000.0))),
            Column::new("s_nationkey", ColumnType::Int4).with_stats(uniform(25)),
            Column::new("s_acctbal", ColumnType::Float8).with_stats(uniform(n(10_000.0))),
        ],
    ));
    cat.add_table(Table::new(
        "customer",
        n(150_000.0),
        vec![
            Column::new("c_custkey", ColumnType::Int4).with_stats(correlated(n(150_000.0))),
            Column::new("c_name", ColumnType::Text { avg_len: 18 })
                .with_stats(uniform(n(150_000.0))),
            Column::new("c_nationkey", ColumnType::Int4).with_stats(uniform(25)),
            Column::new("c_mktsegment", ColumnType::Text { avg_len: 10 }).with_stats(uniform(5)),
            Column::new("c_acctbal", ColumnType::Float8).with_stats(uniform(n(140_000.0))),
        ],
    ));
    cat.add_table(Table::new(
        "part",
        n(200_000.0),
        vec![
            Column::new("p_partkey", ColumnType::Int4).with_stats(correlated(n(200_000.0))),
            Column::new("p_name", ColumnType::Text { avg_len: 32 })
                .with_stats(uniform(n(200_000.0))),
            Column::new("p_type", ColumnType::Text { avg_len: 20 }).with_stats(uniform(150)),
            Column::new("p_size", ColumnType::Int4).with_stats(uniform(50)),
        ],
    ));
    cat.add_table(Table::new(
        "partsupp",
        n(800_000.0),
        vec![
            Column::new("ps_partkey", ColumnType::Int4).with_stats(uniform(n(200_000.0))),
            Column::new("ps_suppkey", ColumnType::Int4).with_stats(uniform(n(10_000.0))),
            Column::new("ps_supplycost", ColumnType::Float8).with_stats(uniform(100_000)),
        ],
    ));
    cat.add_table(Table::new(
        "orders",
        n(1_500_000.0),
        vec![
            Column::new("o_orderkey", ColumnType::Int4).with_stats(correlated(n(1_500_000.0))),
            Column::new("o_custkey", ColumnType::Int4).with_stats(uniform(n(100_000.0))),
            Column::new("o_orderdate", ColumnType::Date).with_stats({
                let mut s = ColumnStats::uniform(0.0, 2406.0, 2406.0);
                s.correlation = 1.0;
                s
            }), // days 1992-01-01..1998-08-02
            Column::new("o_shippriority", ColumnType::Int4).with_stats(uniform(1)),
            Column::new("o_totalprice", ColumnType::Float8).with_stats(uniform(n(1_500_000.0))),
        ],
    ));
    cat.add_table(Table::new(
        "lineitem",
        n(6_000_000.0),
        vec![
            Column::new("l_orderkey", ColumnType::Int4).with_stats(correlated(n(1_500_000.0))),
            Column::new("l_suppkey", ColumnType::Int4).with_stats(uniform(n(10_000.0))),
            Column::new("l_extendedprice", ColumnType::Float8).with_stats(uniform(n(1_000_000.0))),
            Column::new("l_discount", ColumnType::Float8).with_stats(uniform(11)),
            Column::new("l_shipdate", ColumnType::Date)
                .with_stats(ColumnStats::uniform(0.0, 2526.0, 2526.0)),
            Column::new("l_quantity", ColumnType::Float8).with_stats(uniform(50)),
        ],
    ));
    cat
}

/// TPC-H Q5 skeleton (local supplier volume): 6-way join, region filter,
/// one-year date range, GROUP BY `n_name`.
///
/// Interesting orders: customer {c_custkey, c_nationkey}, orders
/// {o_orderkey, o_custkey}, lineitem {l_orderkey, l_suppkey}, supplier
/// {s_suppkey, s_nationkey}, nation {n_nationkey, n_regionkey, n_name},
/// region {r_regionkey} ⇒ 3·3·3·3·4·2 = **648 combinations** (§IV).
pub fn tpch_q5(cat: &Catalog) -> Query {
    QueryBuilder::new("Q5", cat)
        .table("customer")
        .table("orders")
        .table("lineitem")
        .table("supplier")
        .table("nation")
        .table("region")
        .join(("customer", "c_custkey"), ("orders", "o_custkey"))
        .join(("lineitem", "l_orderkey"), ("orders", "o_orderkey"))
        .join(("lineitem", "l_suppkey"), ("supplier", "s_suppkey"))
        .join(("customer", "c_nationkey"), ("supplier", "s_nationkey"))
        .join(("supplier", "s_nationkey"), ("nation", "n_nationkey"))
        .join(("nation", "n_regionkey"), ("region", "r_regionkey"))
        .filter_eq(("region", "r_name"), 2.0)
        .filter_range(("orders", "o_orderdate"), 730.0, 1095.0) // one year
        .select(("nation", "n_name"))
        .select(("lineitem", "l_extendedprice"))
        .select(("lineitem", "l_discount"))
        .group_by(("nation", "n_name"))
        .build()
}

/// TPC-H Q3 skeleton (shipping priority): 3-way join with segment filter
/// and two date predicates.
pub fn tpch_q3(cat: &Catalog) -> Query {
    QueryBuilder::new("Q3", cat)
        .table("customer")
        .table("orders")
        .table("lineitem")
        .join(("customer", "c_custkey"), ("orders", "o_custkey"))
        .join(("lineitem", "l_orderkey"), ("orders", "o_orderkey"))
        .filter_eq(("customer", "c_mktsegment"), 1.0)
        .filter_range(("orders", "o_orderdate"), 0.0, 1155.0)
        .filter_range(("lineitem", "l_shipdate"), 1155.0, 2526.0)
        .select(("lineitem", "l_orderkey"))
        .select(("lineitem", "l_extendedprice"))
        .select(("lineitem", "l_discount"))
        .select(("orders", "o_orderdate"))
        .select(("orders", "o_shippriority"))
        .group_by(("lineitem", "l_orderkey"))
        .group_by(("orders", "o_orderdate"))
        .group_by(("orders", "o_shippriority"))
        .order_by(("orders", "o_orderdate"))
        .build()
}

/// TPC-H Q10 skeleton (returned items): 4-way join with a quarter date
/// range, grouped by customer attributes.
pub fn tpch_q10(cat: &Catalog) -> Query {
    QueryBuilder::new("Q10", cat)
        .table("customer")
        .table("orders")
        .table("lineitem")
        .table("nation")
        .join(("customer", "c_custkey"), ("orders", "o_custkey"))
        .join(("lineitem", "l_orderkey"), ("orders", "o_orderkey"))
        .join(("customer", "c_nationkey"), ("nation", "n_nationkey"))
        .filter_range(("orders", "o_orderdate"), 800.0, 890.0)
        .select(("customer", "c_custkey"))
        .select(("customer", "c_name"))
        .select(("lineitem", "l_extendedprice"))
        .select(("nation", "n_name"))
        .group_by(("customer", "c_custkey"))
        .group_by(("customer", "c_name"))
        .group_by(("nation", "n_name"))
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q5_has_648_interesting_order_combinations() {
        // The paper's headline §IV number.
        let cat = tpch_catalog(1.0);
        let q5 = tpch_q5(&cat);
        assert_eq!(q5.interesting_orders().combination_count(), 648);
    }

    #[test]
    fn q5_per_table_orders() {
        let cat = tpch_catalog(1.0);
        let q5 = tpch_q5(&cat);
        let io = q5.interesting_orders();
        // (customer, orders, lineitem, supplier, nation, region)
        let counts: Vec<usize> = (0..6).map(|r| io.orders_of(r).len()).collect();
        assert_eq!(counts, vec![2, 2, 2, 2, 3, 1]);
    }

    #[test]
    fn cardinalities_scale() {
        let sf1 = tpch_catalog(1.0);
        let sf10 = tpch_catalog(10.0);
        assert_eq!(sf1.table_by_name("lineitem").unwrap().rows(), 6_000_000);
        assert_eq!(sf10.table_by_name("lineitem").unwrap().rows(), 60_000_000);
        assert_eq!(sf10.table_by_name("nation").unwrap().rows(), 25);
    }

    #[test]
    fn q3_and_q10_validate() {
        let cat = tpch_catalog(0.1);
        let q3 = tpch_q3(&cat);
        let q10 = tpch_q10(&cat);
        assert!(q3.join_graph_connected());
        assert!(q10.join_graph_connected());
        assert!(q3.interesting_orders().combination_count() > 10);
        assert!(q10.interesting_orders().combination_count() > 10);
    }
}
