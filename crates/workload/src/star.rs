//! The paper's synthetic star-schema benchmark (§VI-A).
//!
//! "The synthetic workload consists of a 10GB star-schema database, with
//! one large fact table, and 28 smaller dimension tables. The dimension
//! tables themselves have other dimension tables and so on. The columns in
//! the tables are numeric and uniformly distributed across all positive
//! integers. We use 10 queries, each joining a subset of tables using
//! foreign keys. Other than the join clauses, they contain randomly
//! generated select columns, where clauses with 1% selectivity, and
//! order-by clauses."

use pinum_catalog::{Catalog, Column, ColumnStats, ColumnType, Table, TableId};
use pinum_query::{Query, QueryBuilder};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A foreign-key edge: `child.column → parent` (parent key is column 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FkEdge {
    pub child: TableId,
    pub child_column: u16,
    pub parent: TableId,
}

/// The generated snowflake schema.
#[derive(Debug, Clone)]
pub struct StarSchema {
    pub catalog: Catalog,
    pub fact: TableId,
    /// All dimension tables, level by level.
    pub dimensions: Vec<TableId>,
    /// Every foreign-key edge (fact→level-1, level-1→level-2, …).
    pub edges: Vec<FkEdge>,
    /// The scale used (1.0 ≈ the paper's 10 GB).
    pub scale: f64,
}

/// Number of level-1 / level-2 / level-3 dimensions (total 28, as in the
/// paper).
const LEVELS: [usize; 3] = [12, 10, 6];

/// Fact-table measure columns (non-FK).
const FACT_MEASURES: usize = 8;

/// Attribute columns per dimension (non-key, non-FK).
const DIM_ATTRS: usize = 5;

impl StarSchema {
    /// Generates the snowflake schema. `scale = 1.0` targets the paper's
    /// 10 GB database; tests use `0.01` or less.
    pub fn generate(seed: u64, scale: f64) -> Self {
        assert!(scale > 0.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut catalog = Catalog::new();
        let mut dimensions = Vec::new();
        let mut edges = Vec::new();

        // Row counts at scale 1.0; uniform positive-integer columns. The
        // proportions keep the fact table at roughly half the 10 GB total,
        // as in the paper, so a 5 GB budget fits a handful of fact-table
        // covering indexes (§VI-E).
        let fact_rows = (25_000_000.0 * scale).max(1000.0) as u64;
        let l1_rows =
            |rng: &mut StdRng| (rng.gen_range(800_000..4_000_000) as f64 * scale).max(50.0) as u64;
        let l2_rows =
            |rng: &mut StdRng| (rng.gen_range(80_000..600_000) as f64 * scale).max(20.0) as u64;
        let l3_rows =
            |rng: &mut StdRng| (rng.gen_range(10_000..80_000) as f64 * scale).max(10.0) as u64;

        // --- Level 3 first (leaves of the snowflake). ---
        let mut level3 = Vec::new();
        for i in 0..LEVELS[2] {
            let rows = l3_rows(&mut rng);
            let t = catalog.add_table(dimension_table(&format!("dim3_{i}"), rows, 0, &mut rng));
            level3.push(t);
            dimensions.push(t);
        }

        // --- Level 2: some have a level-3 child. ---
        let mut level2 = Vec::new();
        for i in 0..LEVELS[1] {
            let rows = l2_rows(&mut rng);
            let child = level3.get(i).copied();
            let t = catalog.add_table(dimension_table(
                &format!("dim2_{i}"),
                rows,
                usize::from(child.is_some()),
                &mut rng,
            ));
            if let Some(c) = child {
                // FK column sits right after the key (ordinal 1).
                set_fk_stats(&mut catalog, t, 1, c);
                edges.push(FkEdge {
                    child: t,
                    child_column: 1,
                    parent: c,
                });
            }
            level2.push(t);
            dimensions.push(t);
        }

        // --- Level 1: some have a level-2 child. ---
        let mut level1 = Vec::new();
        for i in 0..LEVELS[0] {
            let rows = l1_rows(&mut rng);
            let child = level2.get(i).copied();
            let t = catalog.add_table(dimension_table(
                &format!("dim1_{i}"),
                rows,
                usize::from(child.is_some()),
                &mut rng,
            ));
            if let Some(c) = child {
                set_fk_stats(&mut catalog, t, 1, c);
                edges.push(FkEdge {
                    child: t,
                    child_column: 1,
                    parent: c,
                });
            }
            level1.push(t);
            dimensions.push(t);
        }

        // --- Fact table: one FK per level-1 dimension plus measures. ---
        let mut cols = Vec::new();
        for i in 0..LEVELS[0] {
            cols.push(Column::new(format!("fk{i}"), ColumnType::Int8).with_ndv(1));
        }
        for i in 0..FACT_MEASURES {
            let ndv = rng.gen_range(10_000..1_000_000) as u64;
            cols.push(
                Column::new(format!("m{i}"), ColumnType::Int8)
                    .with_stats(ColumnStats::uniform(0.0, ndv as f64, ndv as f64)),
            );
        }
        let fact = catalog.add_table(Table::new("fact", fact_rows, cols));
        for (i, &dim) in level1.iter().enumerate() {
            set_fk_stats(&mut catalog, fact, i as u16, dim);
            edges.push(FkEdge {
                child: fact,
                child_column: i as u16,
                parent: dim,
            });
        }

        Self {
            catalog,
            fact,
            dimensions,
            edges,
            scale,
        }
    }

    /// Total database size (heap bytes), for checking the 10 GB target.
    pub fn total_bytes(&self) -> u64 {
        self.catalog.tables().iter().map(Table::heap_bytes).sum()
    }

    /// Children of `table` in the snowflake (via FK edges).
    pub fn children_of(&self, table: TableId) -> Vec<FkEdge> {
        self.edges
            .iter()
            .filter(|e| e.child == table)
            .copied()
            .collect()
    }
}

/// A dimension with a key, `fks` foreign-key slots, and attribute columns.
fn dimension_table(name: &str, rows: u64, fks: usize, rng: &mut StdRng) -> Table {
    let mut cols = vec![Column::new("k", ColumnType::Int8)
        .with_ndv(rows)
        .with_correlation(1.0)]; // serially loaded keys are heap-ordered
    for i in 0..fks {
        cols.push(Column::new(format!("fk{i}"), ColumnType::Int8).with_ndv(1));
    }
    for i in 0..DIM_ATTRS {
        let ndv = (rows / rng.gen_range(2..50u64)).max(2);
        cols.push(
            Column::new(format!("a{i}"), ColumnType::Int8)
                .with_stats(ColumnStats::uniform(0.0, ndv as f64, ndv as f64)),
        );
    }
    Table::new(name, rows, cols)
}

/// Gives FK column `col` of `child` the parent's key domain.
fn set_fk_stats(catalog: &mut Catalog, child: TableId, col: u16, parent: TableId) {
    let parent_rows = catalog.table(parent).rows() as f64;
    *catalog.table_mut(child).column_mut(col).stats_mut() =
        ColumnStats::uniform(0.0, parent_rows, parent_rows);
}

/// The generated ten-query workload.
#[derive(Debug, Clone)]
pub struct StarWorkload {
    pub queries: Vec<Query>,
}

impl StarWorkload {
    /// Generates `count` queries (the paper uses 10), ordered by join
    /// width: Q1 joins 2 tables, later queries up to 7 — matching the
    /// paper's observation that PINUM's advantage grows with join width.
    pub fn generate(schema: &StarSchema, seed: u64, count: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5741_5243);
        let widths: Vec<usize> = (0..count)
            .map(|i| 2 + (i * 5 / count.max(1)).min(4))
            .collect();
        let queries = widths
            .iter()
            .enumerate()
            .map(|(i, &w)| generate_query(schema, &mut rng, &format!("Q{}", i + 1), w))
            .collect();
        Self { queries }
    }
}

/// Builds one query joining `width` tables: the fact table plus a random
/// connected sub-tree of dimensions.
fn generate_query(schema: &StarSchema, rng: &mut StdRng, name: &str, width: usize) -> Query {
    let catalog = &schema.catalog;
    // Grow a connected table set from the fact table along FK edges. Like
    // real dashboards, the workload concentrates on a subset of the
    // dimensions (the first six FK edges); deeper snowflake levels stay
    // reachable through them.
    let mut tables = vec![schema.fact];
    let mut frontier: Vec<FkEdge> = schema
        .children_of(schema.fact)
        .into_iter()
        .filter(|e| e.child_column < 6)
        .collect();
    let mut joins: Vec<(TableId, u16, TableId)> = Vec::new();
    while tables.len() < width && !frontier.is_empty() {
        let pick = rng.gen_range(0..frontier.len());
        let edge = frontier.swap_remove(pick);
        if tables.contains(&edge.parent) {
            continue;
        }
        tables.push(edge.parent);
        joins.push((edge.child, edge.child_column, edge.parent));
        frontier.extend(schema.children_of(edge.parent));
    }

    let mut qb = QueryBuilder::new(name, catalog);
    let names: Vec<String> = tables
        .iter()
        .map(|t| catalog.table(*t).name().to_string())
        .collect();
    for n in &names {
        qb = qb.table(n);
    }
    for (child, col, parent) in &joins {
        let child_name = catalog.table(*child).name().to_string();
        let col_name = catalog.table(*child).column(*col).name().to_string();
        let parent_name = catalog.table(*parent).name().to_string();
        qb = qb.join((&child_name, &col_name), (&parent_name, "k"));
    }

    // 1 %-selectivity range predicate on a fact measure. Queries draw
    // their predicates from a small shared set of measures, as analytical
    // dashboards do — this is also what lets a 5 GB budget cover the whole
    // workload with a handful of covering indexes (paper §VI-E finds 4
    // fact-table covering indexes suffice).
    let fact = catalog.table(schema.fact);
    let measure = LEVELS[0] + rng.gen_range(0..3usize);
    let mcol = fact.column(measure as u16);
    let hi = mcol.stats().max * 0.01;
    qb = qb.filter_range(("fact", mcol.name()), 0.0, hi);

    // Occasionally a second 1 % predicate on a dimension attribute.
    if width >= 4 && rng.gen_bool(0.5) && tables.len() > 1 {
        let dim = tables[rng.gen_range(1..tables.len())];
        let dt = catalog.table(dim);
        let attr_ord = (dt.columns().len() - 1) as u16;
        let acol = dt.column(attr_ord);
        let hi = (acol.stats().max * 0.01).max(1.0);
        let dt_name = dt.name().to_string();
        let acol_name = acol.name().to_string();
        qb = qb.filter_range((&dt_name, &acol_name), 0.0, hi);
    }

    // Random select columns: one from the fact, one from each dimension.
    let fmeasure = LEVELS[0] + rng.gen_range(0..4usize);
    qb = qb.select(("fact", fact.column(fmeasure as u16).name()));
    for &t in tables.iter().skip(1) {
        let dt = catalog.table(t);
        let attrs: Vec<u16> = (0..dt.columns().len() as u16)
            .filter(|&c| dt.column(c).name().starts_with('a'))
            .collect();
        if let Some(&c) = attrs.choose(rng) {
            let dt_name = dt.name().to_string();
            let c_name = dt.column(c).name().to_string();
            qb = qb.select((&dt_name, &c_name));
        }
    }

    // ORDER BY a random attribute of a joined dimension (or a fact
    // measure for 2-table queries).
    if tables.len() > 1 && rng.gen_bool(0.8) {
        let t = tables[rng.gen_range(1..tables.len())];
        let dt = catalog.table(t);
        let attr = (dt.columns().len() - DIM_ATTRS) as u16 + rng.gen_range(0..DIM_ATTRS as u16);
        let dt_name = dt.name().to_string();
        let a_name = dt.column(attr).name().to_string();
        qb = qb.order_by((&dt_name, &a_name));
    } else {
        let m = LEVELS[0] + rng.gen_range(0..4usize);
        qb = qb.order_by(("fact", fact.column(m as u16).name()));
    }

    qb.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_has_29_tables_and_is_connected() {
        let s = StarSchema::generate(7, 0.001);
        assert_eq!(s.catalog.table_count(), 29); // fact + 28 dims
        assert_eq!(s.dimensions.len(), 28);
        // Every level-1 dim reachable from the fact.
        assert_eq!(s.children_of(s.fact).len(), LEVELS[0]);
    }

    #[test]
    fn full_scale_is_about_10gb() {
        let s = StarSchema::generate(42, 1.0);
        let gb = s.total_bytes() as f64 / (1024.0 * 1024.0 * 1024.0);
        assert!(
            (6.5..14.0).contains(&gb),
            "total size {gb:.1} GB should be near the paper's 10 GB"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = StarSchema::generate(42, 0.001);
        let b = StarSchema::generate(42, 0.001);
        assert_eq!(a.total_bytes(), b.total_bytes());
        let wa = StarWorkload::generate(&a, 1, 10);
        let wb = StarWorkload::generate(&b, 1, 10);
        for (qa, qb) in wa.queries.iter().zip(&wb.queries) {
            assert_eq!(qa.relations, qb.relations);
            assert_eq!(qa.joins, qb.joins);
        }
    }

    #[test]
    fn workload_queries_are_valid_and_connected() {
        let s = StarSchema::generate(42, 0.001);
        let w = StarWorkload::generate(&s, 1, 10);
        assert_eq!(w.queries.len(), 10);
        for q in &w.queries {
            q.validate(&s.catalog);
            assert!(q.join_graph_connected(), "{} disconnected", q.name);
            assert!(!q.filters.is_empty(), "{} lacks the 1% predicate", q.name);
            assert!(!q.order_by.is_empty(), "{} lacks ORDER BY", q.name);
        }
        // Widths grow from 2 to 6.
        assert_eq!(w.queries[0].relation_count(), 2);
        assert!(w.queries[9].relation_count() >= 5);
    }

    #[test]
    fn one_percent_filters() {
        let s = StarSchema::generate(42, 0.001);
        let w = StarWorkload::generate(&s, 1, 10);
        for q in &w.queries {
            let f = q.filters[0];
            let sel = pinum_query::selectivity::filter_selectivity(&s.catalog, q, &f);
            assert!(
                (0.005..0.02).contains(&sel),
                "{}: selectivity {sel} not ≈1%",
                q.name
            );
        }
    }

    #[test]
    fn fk_stats_match_parent_domain() {
        let s = StarSchema::generate(3, 0.001);
        for e in &s.edges {
            let child_col = s.catalog.table(e.child).column(e.child_column);
            let parent_rows = s.catalog.table(e.parent).rows() as f64;
            assert_eq!(child_col.stats().n_distinct, parent_rows);
        }
    }
}
