//! Template-shape statistics of a workload: how many distinct
//! `(table, filter shape)` signatures its relations collapse onto.
//!
//! This is the planning-side view of workload-level batched collection
//! (`pinum_core::WorkloadCollector`): the number of distinct templates is
//! the number of optimizer calls the batched collector will spend on the
//! workload, and the group-size distribution shows where the sharing
//! comes from. Experiments print the summary next to the measured call
//! counts so the grouping structure of a workload is visible without
//! running the collector.

use pinum_query::{Query, RelIdx, RelTemplate, TemplateKey};
use std::collections::HashMap;

/// Template grouping structure of one workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TemplateSummary {
    /// Total relation instances across all queries.
    pub rel_instances: usize,
    /// Distinct templates — the batched collector's optimizer-call count
    /// for this workload (on a cold cache).
    pub distinct_templates: usize,
    /// Relation instances in the most-shared template group.
    pub largest_group: usize,
    /// Templates presented by exactly one relation instance (no sharing).
    pub singleton_templates: usize,
}

impl TemplateSummary {
    /// Mean relation instances per template — the workload's access-arm
    /// sharing factor.
    pub fn sharing_factor(&self) -> f64 {
        if self.distinct_templates == 0 {
            return 0.0;
        }
        self.rel_instances as f64 / self.distinct_templates as f64
    }
}

/// Groups every relation instance of `queries` by collection template.
pub fn summarize_templates(queries: &[Query]) -> TemplateSummary {
    let mut groups: HashMap<TemplateKey, usize> = HashMap::new();
    let mut rel_instances = 0usize;
    for query in queries {
        for rel in 0..query.relation_count() as RelIdx {
            rel_instances += 1;
            *groups.entry(RelTemplate::of(query, rel).key()).or_insert(0) += 1;
        }
    }
    TemplateSummary {
        rel_instances,
        distinct_templates: groups.len(),
        largest_group: groups.values().copied().max().unwrap_or(0),
        singleton_templates: groups.values().filter(|&&n| n == 1).count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::star::{StarSchema, StarWorkload};

    #[test]
    fn scale_workload_collapses_onto_few_templates() {
        let schema = StarSchema::generate(42, 0.001);
        let workload = StarWorkload::generate(&schema, 7, 200);
        let summary = summarize_templates(&workload.queries);
        assert_eq!(summary.rel_instances, 800, "widths 2..6, 40 queries each");
        // The 200-query workload must collapse onto far fewer templates
        // than queries — the premise of batched collection (the exact
        // count is pinned by the trend baseline, not here).
        assert!(
            summary.distinct_templates * 3 <= workload.queries.len(),
            "only {} queries over {} templates",
            workload.queries.len(),
            summary.distinct_templates
        );
        assert!(summary.largest_group > 1);
        assert!(summary.sharing_factor() > 3.0);
    }

    #[test]
    fn empty_workload_has_no_templates() {
        let summary = summarize_templates(&[]);
        assert_eq!(summary.rel_instances, 0);
        assert_eq!(summary.distinct_templates, 0);
        assert_eq!(summary.sharing_factor(), 0.0);
    }
}
