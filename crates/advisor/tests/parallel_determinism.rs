//! Property tests for the parallel probe fan-out: randomized workloads
//! put through randomized admit / evict / reweight mutation sequences,
//! then searched by **all four strategies** — scoped and unscoped — on
//! worker pools spanning threads {1, 2, 3, 8} and chunk sizes {1, 3, 16}.
//! Every run must be bit-identical to the single-threaded reference:
//! same picks, same cost trajectory bits, same probe accounting, same
//! final [`PricedWorkload`] state. The batch reduction is deterministic
//! by construction (deltas land at their probe's index; the winner scan
//! is serial); these tests pin that contract against regressions.

use pinum_advisor::greedy::{GreedyOptions, GreedyResult};
use pinum_advisor::search::{Anneal, EagerGreedy, LazyGreedy, SearchScope, SwapHillClimb};
use pinum_advisor::SearchStrategy;
use pinum_catalog::{Catalog, Column, ColumnType, Index, Table};
use pinum_core::access_costs::{collect_pinum, AccessCostCatalog};
use pinum_core::builder::{build_cache_pinum, BuilderOptions};
use pinum_core::{CandidatePool, PlanCache, ProbePool, Selection, WorkloadModel};
use pinum_optimizer::Optimizer;
use pinum_query::QueryBuilder;
use proptest::prelude::*;
use std::sync::OnceLock;

/// The pool matrix every search is replayed on. The first entry is the
/// serial reference; the rest vary both thread count and chunk size so a
/// chunk-boundary or worker-count dependence cannot hide.
fn pools() -> &'static [ProbePool; 4] {
    static POOLS: OnceLock<[ProbePool; 4]> = OnceLock::new();
    POOLS.get_or_init(|| {
        [
            ProbePool::with_chunk(1, 16),
            ProbePool::with_chunk(2, 16),
            ProbePool::with_chunk(3, 3),
            ProbePool::with_chunk(8, 1),
        ]
    })
}

/// A randomized two-table star (same shape as the core SoA kernel
/// property suite): fact/dimension sizes and per-query filter widths
/// vary per case, so arm costs and min-scan winners differ across
/// samples.
fn random_workload(
    fact_rows: u64,
    dim_rows: u64,
    widths: &[u32],
) -> (CandidatePool, Vec<(PlanCache, AccessCostCatalog)>) {
    let mut cat = Catalog::new();
    cat.add_table(Table::new(
        "f",
        fact_rows,
        vec![
            Column::new("fk", ColumnType::Int8).with_ndv(dim_rows),
            Column::new("v", ColumnType::Int4).with_ndv(1_000),
            Column::new("s", ColumnType::Int4).with_ndv(100),
        ],
    ));
    cat.add_table(Table::new(
        "d",
        dim_rows,
        vec![
            Column::new("k", ColumnType::Int8)
                .with_ndv(dim_rows)
                .with_correlation(1.0),
            Column::new("w", ColumnType::Int4).with_ndv(50),
        ],
    ));
    let queries: Vec<_> = widths
        .iter()
        .enumerate()
        .map(|(i, &w)| {
            let lo = (i as f64) * 3.0;
            let builder = QueryBuilder::new(format!("q{i}"), &cat)
                .table("f")
                .filter_range(("f", "v"), lo, lo + 10.0 * w as f64)
                .select(("f", "s"));
            if i % 2 == 0 {
                builder
                    .table("d")
                    .join(("f", "fk"), ("d", "k"))
                    .order_by(("d", "w"))
                    .build()
            } else {
                builder.order_by(("f", "s")).build()
            }
        })
        .collect();
    let f = cat.table(cat.table_id("f").unwrap()).clone();
    let d = cat.table(cat.table_id("d").unwrap()).clone();
    let pool = CandidatePool::from_indexes(vec![
        Index::hypothetical(&f, vec![0], false),
        Index::hypothetical(&f, vec![1, 0, 2], false),
        Index::hypothetical(&f, vec![2], false),
        Index::hypothetical(&f, vec![1], false),
        Index::hypothetical(&d, vec![0], false),
        Index::hypothetical(&d, vec![1], false),
        Index::hypothetical(&d, vec![1, 0], false),
    ]);
    let opt = Optimizer::new(&cat);
    let models = queries
        .iter()
        .map(|q| {
            let built = build_cache_pinum(&opt, q, &BuilderOptions::default());
            let (access, _) = collect_pinum(&opt, q, &pool);
            (built.cache, access)
        })
        .collect();
    (pool, models)
}

/// Two results must agree bit for bit — picks, trajectory, accounting,
/// and the maintained priced state.
fn assert_bit_identical(reference: &GreedyResult, run: &GreedyResult, label: &str) {
    assert_eq!(reference.picked, run.picked, "{label}: picks diverged");
    assert_eq!(
        reference.cost_trajectory.len(),
        run.cost_trajectory.len(),
        "{label}: trajectory length diverged"
    );
    for (i, (a, b)) in reference
        .cost_trajectory
        .iter()
        .zip(&run.cost_trajectory)
        .enumerate()
    {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{label}: trajectory step {i} diverged ({a} vs {b})"
        );
    }
    assert_eq!(
        reference.total_bytes, run.total_bytes,
        "{label}: selected bytes diverged"
    );
    assert_eq!(
        reference.evaluations, run.evaluations,
        "{label}: probe evaluations diverged"
    );
    assert_eq!(
        reference.queries_repriced, run.queries_repriced,
        "{label}: repriced-query accounting diverged"
    );
    assert_eq!(
        reference.full_repricings, run.full_repricings,
        "{label}: full-repricing accounting diverged"
    );
    let (a_ids, b_ids): (Vec<usize>, Vec<usize>) = (
        reference.selection.ids().collect(),
        run.selection.ids().collect(),
    );
    assert_eq!(a_ids, b_ids, "{label}: final selection diverged");
    let (a_state, b_state) = (
        reference.final_state.as_ref().expect("state tracked"),
        run.final_state.as_ref().expect("state tracked"),
    );
    assert_eq!(
        a_state.total().to_bits(),
        b_state.total().to_bits(),
        "{label}: final total diverged"
    );
    for (q, (a, b)) in a_state
        .per_query()
        .iter()
        .zip(b_state.per_query())
        .enumerate()
    {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{label}: final per-query cost {q} diverged"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Random admit/evict/reweight sequences, then every strategy —
    /// scoped and unscoped, warm and cold — replayed across the pool
    /// matrix: bit-identical to the serial reference, every time.
    #[test]
    fn every_strategy_is_bit_identical_across_threads_and_chunks(
        fact_rows in 60_000u64..400_000,
        dim_rows in 600u64..20_000,
        widths in prop::collection::vec(1u32..20, 6),
        ops in prop::collection::vec(0u32..3, 10),
        picks in prop::collection::vec(0u32..64, 10),
        scope_mask in 1u64..127,
        qmask_bits in 1u64..63,
        warm_bits in 0u64..128,
    ) {
        let (pool, models) = random_workload(fact_rows, dim_rows, &widths);
        let seed_count = models.len() / 2;
        let mut model = WorkloadModel::build(
            pool.len(),
            models.iter().take(seed_count).map(|(c, a)| (c, a)),
        );
        let mut pending = models.iter().skip(seed_count);
        for (&op, &pick) in ops.iter().zip(&picks) {
            match op {
                0 => {
                    if let Some((cache, access)) = pending.next() {
                        model.admit_query_weighted(cache, access, 1.0 + (pick % 4) as f64);
                    }
                }
                1 => {
                    let live: Vec<usize> =
                        (0..model.query_count()).filter(|&q| model.is_live(q)).collect();
                    if live.len() > 1 {
                        model.evict_query(live[pick as usize % live.len()]);
                    }
                }
                _ => {
                    let live: Vec<usize> =
                        (0..model.query_count()).filter(|&q| model.is_live(q)).collect();
                    if !live.is_empty() {
                        model.reweight_query(
                            live[pick as usize % live.len()],
                            0.5 + (pick % 8) as f64,
                        );
                    }
                }
            }
        }

        let opts = GreedyOptions {
            budget_bytes: 96 << 20,
            benefit_per_byte: false,
        };
        let mask_ids: Vec<usize> =
            (0..pool.len()).filter(|i| scope_mask & (1 << i) != 0).collect();
        let mask = Selection::from_ids(pool.len(), &mask_ids);
        let qmask: Vec<u32> = (0..model.query_count() as u32)
            .filter(|q| qmask_bits & (1 << (q % 6)) != 0)
            .collect();
        let warm_ids: Vec<usize> =
            (0..pool.len()).filter(|i| warm_bits & (1 << i) != 0).collect();
        let warm = Selection::from_ids(pool.len(), &warm_ids);
        let cold = Selection::empty(pool.len());

        let strategies: [(&str, Box<dyn SearchStrategy>); 4] = [
            ("eager", Box::new(EagerGreedy)),
            ("lazy", Box::new(LazyGreedy)),
            ("swap", Box::new(SwapHillClimb::default())),
            (
                "anneal",
                Box::new(Anneal {
                    seed: 0xA11E * (1 + scope_mask),
                    iterations: 300,
                    initial_temp: 0.05,
                    cooling: 0.997,
                }),
            ),
        ];
        let [serial, rest @ ..] = pools(); eprintln!("case: {} queries, {} live", model.query_count(), (0..model.query_count()).filter(|&q| model.is_live(q)).count());
        for (name, strategy) in &strategies {
            for (scoped, warm_start) in
                [(false, false), (false, true), (true, false), (true, true)]
            {
                let scope = |exec: &'static ProbePool| {
                    let mut s = if scoped { SearchScope::masked(&mask) } else { SearchScope::all() };
                    if scoped {
                        s = s.with_query_mask(&qmask);
                    }
                    s.with_probe_pool(exec)
                };
                let warm = if warm_start { &warm } else { &cold };
                let reference =
                    strategy.search_scoped(&pool, &model, &opts, warm, &scope(serial));
                for exec in rest {
                    let run = strategy.search_scoped(&pool, &model, &opts, warm, &scope(exec));
                    let label = format!(
                        "{name} scoped={scoped} warm={warm_start} threads={} chunk={}",
                        exec.threads(),
                        exec.chunk_size()
                    );
                    assert_bit_identical(&reference, &run, &label);
                }
            }
        }
    }
}
