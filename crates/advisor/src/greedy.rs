//! The greedy selection algorithm (paper §V-E): "it follows an iterative
//! algorithm, and selects the index which provides the most benefit to the
//! workload. To determine the index, it iterates over all candidate
//! indexes, measures their benefit if used along with the winning indexes
//! of earlier iterations. It adds the index with most benefit to the
//! winning set, and iterates till adding an index would violate the space
//! constraint."
//!
//! Two engines implement the same search:
//!
//! * [`greedy_select`] — the naive engine: every probe re-prices the whole
//!   workload through an arbitrary cost closure. O(workload) per probe;
//!   still needed for the direct-optimizer oracle and as the reference in
//!   ablations.
//! * [`greedy_select_model`] — the incremental engine over a
//!   [`WorkloadModel`]: a probe re-prices only the queries the candidate
//!   can affect ([`WorkloadModel::price_delta_into`]); a full re-pricing
//!   happens once per *pick*, not per probe. Produces the identical pick
//!   sequence and cost trajectory (bit for bit) as the naive engine over
//!   the same cached models — verified by the `advisor_scale` experiment.
//!
//! The model-based search itself is pluggable: `greedy_select_model` is
//! the reference [`crate::search::EagerGreedy`] strategy, and
//! [`crate::search`] adds lazy greedy, swap hill climbing, and annealing
//! on the same substrate.

use pinum_core::{CandidatePool, PricedWorkload, Selection, WorkloadModel};

/// Greedy knobs.
#[derive(Debug, Clone, Copy)]
pub struct GreedyOptions {
    /// Disk budget in bytes (the paper's experiment uses 5 GB).
    pub budget_bytes: u64,
    /// If true, rank candidates by benefit *per byte* instead of raw
    /// benefit (an ablation; the paper uses raw benefit).
    pub benefit_per_byte: bool,
}

/// Outcome of a greedy run.
#[derive(Debug, Clone)]
pub struct GreedyResult {
    /// Chosen candidates in pick order.
    pub picked: Vec<usize>,
    /// The final selection.
    pub selection: Selection,
    /// Workload cost before/after each pick (index 0 = no indexes).
    pub cost_trajectory: Vec<f64>,
    /// Total bytes of the final selection.
    pub total_bytes: u64,
    /// Number of workload-cost evaluations performed.
    pub evaluations: usize,
    /// Number of individual query re-pricings those evaluations cost
    /// (only tracked by [`greedy_select_model`]; the naive engine cannot
    /// see inside its cost closure and reports 0).
    pub queries_repriced: usize,
    /// Number of **full** workload re-pricings the search performed. The
    /// model-driven strategies price every probe *and every accepted
    /// move* as a delta splice, so this stays 0 whenever the search was
    /// seeded with an exact warm state; the naive closure engine
    /// re-prices fully on every evaluation and reports that count.
    pub full_repricings: usize,
    /// The exact priced state of `selection` (bit-identical to
    /// `model.price_full(&selection)`), carried out of the search so
    /// callers like `pinum_core::PricingSession` can adopt it without
    /// re-pricing. `None` for the naive closure engine, which has no
    /// per-query state to track.
    pub final_state: Option<PricedWorkload>,
}

/// Runs the greedy selection against an arbitrary workload-cost function
/// `workload_cost(selection) -> f64` (the sum of per-query costs under the
/// cache-based model, or a direct-optimizer oracle in ablations).
pub fn greedy_select(
    pool: &CandidatePool,
    opts: &GreedyOptions,
    mut workload_cost: impl FnMut(&Selection) -> f64,
) -> GreedyResult {
    let mut selection = Selection::empty(pool.len());
    let mut picked = Vec::new();
    let mut evaluations = 0usize;
    let mut current_cost = workload_cost(&selection);
    evaluations += 1;
    let mut trajectory = vec![current_cost];
    let mut used_bytes = 0u64;

    loop {
        let mut best: Option<(usize, f64, f64)> = None; // (candidate, new_cost, score)
        for cand in 0..pool.len() {
            if selection.contains(cand) {
                continue;
            }
            let size = pool.index(cand).size().total_bytes();
            if used_bytes + size > opts.budget_bytes {
                continue; // would violate the space constraint
            }
            let with = selection.with(cand);
            let cost = workload_cost(&with);
            evaluations += 1;
            // Keep only strictly positive benefits; a NaN benefit
            // (inf - inf when a query prices to infinity) is also skipped
            // instead of poisoning the argmax.
            let benefit = current_cost - cost;
            if benefit.is_nan() || benefit <= 0.0 {
                continue;
            }
            let score = if opts.benefit_per_byte {
                benefit / size.max(1) as f64
            } else {
                benefit
            };
            if best.is_none_or(|(_, _, s)| score > s) {
                best = Some((cand, cost, score));
            }
        }
        match best {
            Some((cand, cost, _)) => {
                selection.insert(cand);
                picked.push(cand);
                used_bytes += pool.index(cand).size().total_bytes();
                current_cost = cost;
                trajectory.push(cost);
            }
            None => break,
        }
    }

    GreedyResult {
        picked,
        selection,
        cost_trajectory: trajectory,
        total_bytes: used_bytes,
        evaluations,
        queries_repriced: 0,
        // Every closure evaluation re-prices the whole workload.
        full_repricings: evaluations,
        final_state: None,
    }
}

/// The incremental greedy engine: identical search to [`greedy_select`],
/// but candidate probes are priced with `WorkloadModel::price_delta_into`
/// (re-pricing only affected queries, no allocation) and the workload is
/// fully re-priced only when a candidate is actually picked. The pick
/// sequence, cost trajectory, evaluation count, and final selection are
/// exactly those of the naive engine over the same cached models.
///
/// The loop body now lives in [`crate::search::EagerGreedy`]; this is the
/// stable function-style entry point, kept as the reference engine the
/// equivalence tests and experiments compare against.
pub fn greedy_select_model(
    pool: &CandidatePool,
    opts: &GreedyOptions,
    model: &WorkloadModel,
) -> GreedyResult {
    use crate::search::{EagerGreedy, SearchStrategy};
    EagerGreedy.search(pool, model, opts)
}

/// Exhaustive reference search over all selections within budget (tiny
/// pools only — the greedy-quality ablation A3).
pub fn exhaustive_select(
    pool: &CandidatePool,
    budget_bytes: u64,
    mut workload_cost: impl FnMut(&Selection) -> f64,
) -> (Selection, f64) {
    assert!(pool.len() <= 20, "exhaustive search is for tiny pools");
    let mut best_sel = Selection::empty(pool.len());
    let mut best_cost = workload_cost(&best_sel);
    for mask in 1u32..(1 << pool.len()) {
        let ids: Vec<usize> = (0..pool.len()).filter(|i| mask & (1 << i) != 0).collect();
        let sel = Selection::from_ids(pool.len(), &ids);
        if pool.selection_bytes(&sel) > budget_bytes {
            continue;
        }
        let cost = workload_cost(&sel);
        // Same NaN guard as the greedy engines: a workload that prices to
        // NaN (inf - inf arithmetic in a caller's cost closure) must never
        // win the argmin, and an infinite incumbent must still be beatable
        // even if it turned NaN on re-evaluation upstream.
        if cost.is_nan() {
            continue;
        }
        if cost < best_cost || best_cost.is_nan() {
            best_cost = cost;
            best_sel = sel;
        }
    }
    (best_sel, best_cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinum_catalog::{Catalog, Column, ColumnType, Index, Table};

    /// A synthetic pool where candidate i saves `saves[i]` cost units.
    fn pool3() -> (CandidatePool, Vec<f64>) {
        let mut cat = Catalog::new();
        cat.add_table(Table::new(
            "t",
            1_000_000,
            vec![
                Column::new("a", ColumnType::Int8).with_ndv(1_000_000),
                Column::new("b", ColumnType::Int8).with_ndv(1_000),
                Column::new("c", ColumnType::Int8).with_ndv(100),
            ],
        ));
        let t = cat.table(cat.table_id("t").unwrap()).clone();
        let pool = CandidatePool::from_indexes(vec![
            Index::hypothetical(&t, vec![0], false),
            Index::hypothetical(&t, vec![1], false),
            Index::hypothetical(&t, vec![2], false),
        ]);
        (pool, vec![100.0, 60.0, 30.0])
    }

    fn additive_cost(saves: &[f64]) -> impl FnMut(&Selection) -> f64 + '_ {
        move |sel: &Selection| 1000.0 - sel.ids().map(|i| saves[i]).sum::<f64>()
    }

    #[test]
    fn greedy_picks_by_descending_benefit() {
        let (pool, saves) = pool3();
        let opts = GreedyOptions {
            budget_bytes: u64::MAX,
            benefit_per_byte: false,
        };
        let r = greedy_select(&pool, &opts, additive_cost(&saves));
        assert_eq!(r.picked, vec![0, 1, 2]);
        assert_eq!(r.cost_trajectory.len(), 4);
        assert_eq!(*r.cost_trajectory.last().unwrap(), 1000.0 - 190.0);
        assert!(r.evaluations > 3);
    }

    #[test]
    fn greedy_respects_budget() {
        let (pool, saves) = pool3();
        let one_index_bytes = pool.index(0).size().total_bytes();
        let opts = GreedyOptions {
            budget_bytes: one_index_bytes, // room for exactly one
            benefit_per_byte: false,
        };
        let r = greedy_select(&pool, &opts, additive_cost(&saves));
        assert_eq!(r.picked.len(), 1);
        assert_eq!(r.picked[0], 0, "must pick the highest-benefit index");
        assert!(r.total_bytes <= opts.budget_bytes);
    }

    #[test]
    fn infinite_workload_cost_picks_nothing() {
        // A workload that prices to infinity under every selection (e.g. a
        // query with an empty plan cache) yields NaN benefits; the guard
        // must skip those rather than pick budget-filling junk.
        let (pool, _) = pool3();
        let opts = GreedyOptions {
            budget_bytes: u64::MAX,
            benefit_per_byte: false,
        };
        let r = greedy_select(&pool, &opts, |_| f64::INFINITY);
        assert!(
            r.picked.is_empty(),
            "picked {:?} at infinite cost",
            r.picked
        );
        assert_eq!(r.cost_trajectory, vec![f64::INFINITY]);
    }

    #[test]
    fn greedy_stops_on_zero_benefit() {
        let (pool, _) = pool3();
        let opts = GreedyOptions {
            budget_bytes: u64::MAX,
            benefit_per_byte: false,
        };
        let r = greedy_select(&pool, &opts, |_| 500.0);
        assert!(r.picked.is_empty());
        assert_eq!(r.cost_trajectory, vec![500.0]);
    }

    #[test]
    fn exhaustive_skips_nan_costs() {
        // A workload whose cost closure yields NaN for every non-empty
        // selection (inf - inf arithmetic upstream) must leave the empty
        // selection as the winner rather than let NaN poison the argmin.
        let (pool, _) = pool3();
        let (sel, cost) = exhaustive_select(&pool, u64::MAX, |s: &Selection| {
            if s.is_empty() {
                f64::INFINITY
            } else {
                f64::NAN
            }
        });
        assert!(sel.is_empty(), "picked {:?}", sel.ids().collect::<Vec<_>>());
        assert!(cost.is_infinite());
        // And a finite selection must still beat an infinite incumbent.
        let (sel2, cost2) = exhaustive_select(&pool, u64::MAX, |s: &Selection| {
            if s.is_empty() {
                f64::INFINITY
            } else {
                s.len() as f64
            }
        });
        assert_eq!(sel2.len(), 1);
        assert_eq!(cost2, 1.0);
    }

    #[test]
    fn exhaustive_matches_greedy_on_additive_costs() {
        let (pool, saves) = pool3();
        let opts = GreedyOptions {
            budget_bytes: u64::MAX,
            benefit_per_byte: false,
        };
        let g = greedy_select(&pool, &opts, additive_cost(&saves));
        let (sel, cost) = exhaustive_select(&pool, u64::MAX, additive_cost(&saves));
        assert_eq!(sel.len(), g.selection.len());
        assert_eq!(cost, *g.cost_trajectory.last().unwrap());
    }

    #[test]
    fn benefit_per_byte_prefers_small_indexes() {
        let (pool, _) = pool3();
        // Index 2 (1 col) saves slightly less than a hypothetical wide one
        // but much more per byte; craft costs so raw picks 0 first and
        // per-byte also picks 0 (all same size here) — so instead check
        // that the option at least produces a valid result.
        let opts = GreedyOptions {
            budget_bytes: u64::MAX,
            benefit_per_byte: true,
        };
        let r = greedy_select(&pool, &opts, additive_cost(&[100.0, 60.0, 30.0]));
        assert_eq!(r.picked[0], 0);
    }
}
