//! Deterministic simulated annealing over the selection space, driven
//! entirely by incremental deltas: proposals are drawn in fixed-size
//! blocks against the block-start state and priced as one
//! [`WorkloadModel::price_delta_batch`] (add, drop, and swap probes in
//! one batch). The RNG is the in-tree `rand` shim seeded explicitly and
//! its consumption schedule is independent of the worker pool, so a run
//! is a pure function of `(pool, model, options, seed)` — identical for
//! every thread count.

use super::{apply_changed, debug_assert_state_matches, LazyGreedy, SearchScope, SearchStrategy};
use crate::greedy::{GreedyOptions, GreedyResult};
use pinum_core::{CandidatePool, Probe, Selection, WorkloadModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Proposals drawn (and batch-priced) per annealing block. A fixed
/// constant — never derived from the thread count — so the proposal
/// schedule, the RNG stream, and every metric are identical for every
/// pool size.
const BLOCK: usize = 16;

/// Simulated annealing seeded from [`LazyGreedy`]. Proposes random
/// add/drop/swap moves, accepts improving moves always and worsening moves
/// with probability `exp(-Δrel / T)` under a geometric cooling schedule,
/// and returns the **best selection ever visited** — so the final cost is
/// never above the greedy seed's.
///
/// Under a [`SearchScope::query_mask`] the Metropolis rule evaluates the
/// *masked* delta, so a move that helps the masked queries while
/// regressing the rest can be accepted — that is ordinary annealing
/// (worsening moves are allowed by design), and the maintained state and
/// best-ever tracking always use the exact unmasked totals, so the
/// returned selection is the best true-cost state the walk visited.
#[derive(Debug, Clone, Copy)]
pub struct Anneal {
    /// RNG seed; the whole run is determined by it.
    pub seed: u64,
    /// Number of proposals the Metropolis walk visits. Proposals drawn
    /// into a block but discarded after an earlier acceptance are
    /// *refunded* — they neither spend an iteration nor advance the
    /// temperature — so the knob means the same thing it does for a
    /// serial walk at every acceptance rate.
    pub iterations: usize,
    /// Initial temperature, in units of *relative* cost change (0.05 ⇒ a
    /// 5 % cost increase is accepted with probability 1/e at the start).
    pub initial_temp: f64,
    /// Geometric cooling factor applied per iteration.
    pub cooling: f64,
}

impl Anneal {
    /// Default knobs with an explicit seed.
    pub fn with_seed(seed: u64) -> Self {
        Self {
            seed,
            iterations: 1_500,
            initial_temp: 0.05,
            cooling: 0.997,
        }
    }
}

impl Default for Anneal {
    fn default() -> Self {
        Self::with_seed(0x5EED)
    }
}

impl SearchStrategy for Anneal {
    fn name(&self) -> &'static str {
        "anneal"
    }

    fn search_scoped(
        &self,
        pool: &CandidatePool,
        model: &WorkloadModel,
        opts: &GreedyOptions,
        warm: &Selection,
        scope: &SearchScope<'_>,
    ) -> GreedyResult {
        let seed_result = LazyGreedy.search_scoped(pool, model, opts, warm, scope);
        let mut selection = seed_result.selection.clone();
        let mut used_bytes = seed_result.total_bytes;
        let mut evaluations = seed_result.evaluations;
        let mut queries_repriced = seed_result.queries_repriced;
        let full_repricings = seed_result.full_repricings;
        let mut trajectory = seed_result.cost_trajectory.clone();

        // The greedy seed's exact final state carries straight into the
        // annealing walk — no re-pricing between seed and walk.
        let mut state = seed_result
            .final_state
            .clone()
            .expect("lazy greedy tracks state");

        let mut best_selection = selection.clone();
        let mut best_state = state.clone();
        let mut best_cost = state.total();
        let mut best_bytes = used_bytes;

        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut temp = self.initial_temp;
        let mut scratch = Vec::new();
        let exec = scope.pool();

        if pool.is_empty() {
            return seed_result;
        }

        // The walk runs in blocks: a block's proposals are all drawn (and
        // batch-priced) against the block-start state, then walked
        // serially through the Metropolis rule in draw order. The first
        // acceptance applies its move and discards the block's remaining
        // proposals — their deltas (and draw-time validity) are stale
        // against the new state. Discarded proposals are **refunded**:
        // only walked proposals are charged against `iterations` and
        // advance the temperature, so the knob keeps its serial meaning —
        // the number of states the Metropolis chain actually visits —
        // at every acceptance rate. RNG consumption is: all of a block's
        // proposal draws first, then one acceptance draw per walked
        // finite-worsening proposal — a fixed schedule, identical for
        // every thread count and chunk size (though not the serial
        // walk's stream: discarded proposals consumed draws).
        let mut moves: Vec<Option<Move>> = Vec::with_capacity(BLOCK);
        let mut probes: Vec<Probe> = Vec::with_capacity(BLOCK);
        let mut remaining = self.iterations;
        while remaining > 0 {
            let block_len = BLOCK.min(remaining);
            let members: Vec<usize> = selection.ids().collect();
            moves.clear();
            probes.clear();
            for _ in 0..block_len {
                // Propose a move; invalid proposals still consume RNG
                // draws so the stream (and thus the run) stays
                // deterministic.
                let kind = rng.gen_range(0..3u32);
                let mv: Option<Move> = match kind {
                    // Add a random unselected in-scope candidate that fits
                    // the budget (out-of-scope draws are invalid
                    // proposals, so the RNG stream — and thus an unmasked
                    // run — is unchanged).
                    0 => {
                        let cand = rng.gen_range(0..pool.len());
                        let bytes = pool.index(cand).size().total_bytes();
                        (!selection.contains(cand)
                            && scope.allows(cand)
                            && used_bytes + bytes <= opts.budget_bytes)
                            .then_some(Move::Add(cand))
                    }
                    // Drop a random member.
                    1 => (!members.is_empty())
                        .then(|| Move::Drop(members[rng.gen_range(0..members.len())])),
                    // Swap a random member for a random non-member.
                    _ => {
                        if members.is_empty() {
                            None
                        } else {
                            let drop = members[rng.gen_range(0..members.len())];
                            let add = rng.gen_range(0..pool.len());
                            let fits = !selection.contains(add)
                                && scope.allows(add)
                                && used_bytes - pool.index(drop).size().total_bytes()
                                    + pool.index(add).size().total_bytes()
                                    <= opts.budget_bytes;
                            fits.then_some(Move::Swap { add, drop })
                        }
                    }
                };
                if let Some(mv) = mv {
                    probes.push(match mv {
                        Move::Add(cand) => Probe::Add { cand },
                        Move::Drop(cand) => Probe::Drop { cand },
                        Move::Swap { add, drop } => Probe::Swap { add, drop },
                    });
                }
                moves.push(mv);
            }

            let deltas =
                model.price_delta_batch(&state, &selection, &probes, scope.query_mask, exec);
            let mut pi = 0usize;
            let mut walked = 0usize;
            for entry in &moves {
                // Each walked proposal — valid or not — spends one
                // iteration and one cooling step, exactly like the serial
                // walk; the block's unwalked remainder is refunded.
                walked += 1;
                temp *= self.cooling;
                let Some(mv) = entry else { continue };
                let delta = deltas[pi];
                pi += 1;
                evaluations += 1;
                queries_repriced += delta.changed;

                if !accept(state.total(), delta.total, temp, &mut rng) {
                    continue;
                }
                // Accepted: re-derive the move's exact **unmasked** delta
                // serially and splice it, so the maintained state stays
                // bit-identical to `price_full` even when a query mask
                // ranked the proposals. O(affected), never a full reprice.
                let total = match *mv {
                    Move::Add(c) => model.price_delta_into(&state, &selection, c, &mut scratch),
                    Move::Drop(c) => {
                        model.price_delta_removed_into(&state, &selection, c, &mut scratch)
                    }
                    Move::Swap { add, drop } => {
                        model.price_delta_swapped_into(&state, &selection, add, drop, &mut scratch)
                    }
                };
                evaluations += 1;
                queries_repriced += scratch.len();
                match *mv {
                    Move::Add(c) => {
                        selection.insert(c);
                        used_bytes += pool.index(c).size().total_bytes();
                    }
                    Move::Drop(c) => {
                        selection.remove(c);
                        used_bytes -= pool.index(c).size().total_bytes();
                    }
                    Move::Swap { add, drop } => {
                        selection.remove(drop);
                        selection.insert(add);
                        used_bytes = used_bytes - pool.index(drop).size().total_bytes()
                            + pool.index(add).size().total_bytes();
                    }
                }
                apply_changed(&mut state, &scratch, total);
                debug_assert_state_matches(model, &selection, &state);
                if state.total() < best_cost {
                    best_cost = state.total();
                    best_selection = selection.clone();
                    best_state = state.clone();
                    best_bytes = used_bytes;
                    trajectory.push(best_cost);
                }
                break; // discard the block's stale remainder
            }
            // Charge only what was walked (≥ 1, so the loop terminates);
            // the discarded remainder is redrawn next block.
            remaining -= walked;
        }

        GreedyResult {
            // Pick order is meaningless after annealing; report the final
            // set in ascending id order.
            picked: best_selection.ids().collect(),
            selection: best_selection,
            cost_trajectory: trajectory,
            total_bytes: best_bytes,
            evaluations,
            queries_repriced,
            full_repricings,
            final_state: Some(best_state),
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Move {
    Add(usize),
    Drop(usize),
    Swap { add: usize, drop: usize },
}

/// Metropolis acceptance on *relative* cost change: always accept
/// improvements (including inf → finite); accept a worsening with
/// probability `exp(-Δrel / temp)`. NaN or newly infinite costs are
/// rejected outright.
fn accept(current: f64, proposed: f64, temp: f64, rng: &mut StdRng) -> bool {
    if proposed.is_nan() {
        return false;
    }
    if proposed <= current {
        return true; // improvement or no-op (covers inf → finite)
    }
    if proposed.is_infinite() || current.is_infinite() || temp <= 0.0 {
        return false;
    }
    let delta_rel = (proposed - current) / current.abs().max(f64::MIN_POSITIVE);
    rng.gen_bool((-delta_rel / temp).exp().clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::super::tests::fixture;
    use super::*;

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let (pool, model) = fixture();
        let opts = GreedyOptions {
            budget_bytes: 256 << 20,
            benefit_per_byte: false,
        };
        let a = Anneal::with_seed(42).search(&pool, &model, &opts);
        let b = Anneal::with_seed(42).search(&pool, &model, &opts);
        assert_eq!(a.picked, b.picked);
        assert_eq!(a.cost_trajectory, b.cost_trajectory);
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn never_worse_than_greedy_seed() {
        let (pool, model) = fixture();
        for seed in [1u64, 7, 0xDEAD] {
            for budget in [32u64 << 20, u64::MAX] {
                let opts = GreedyOptions {
                    budget_bytes: budget,
                    benefit_per_byte: false,
                };
                let greedy = LazyGreedy.search(&pool, &model, &opts);
                let anneal = Anneal::with_seed(seed).search(&pool, &model, &opts);
                let g = *greedy.cost_trajectory.last().unwrap();
                let a = *anneal.cost_trajectory.last().unwrap();
                assert!(a <= g, "seed {seed}: anneal {a} worse than greedy {g}");
                assert!(anneal.total_bytes <= opts.budget_bytes);
            }
        }
    }

    #[test]
    fn acceptance_rule_edge_cases() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(accept(10.0, 5.0, 0.1, &mut rng), "improvement rejected");
        assert!(accept(10.0, 10.0, 0.1, &mut rng), "equal-cost rejected");
        assert!(
            accept(f64::INFINITY, 5.0, 0.1, &mut rng),
            "inf → finite rejected"
        );
        assert!(!accept(10.0, f64::NAN, 0.1, &mut rng), "NaN accepted");
        assert!(
            !accept(10.0, f64::INFINITY, 0.1, &mut rng),
            "finite → inf accepted"
        );
        assert!(
            !accept(10.0, 11.0, 0.0, &mut rng),
            "worsening accepted at zero temperature"
        );
    }
}
