//! # Pluggable index-selection search strategies
//!
//! PR 1 turned workload pricing into an incremental substrate
//! ([`pinum_core::WorkloadModel`]): one flattening, then cheap deltas.
//! This module turns the *search* that runs on top of it into a framework.
//! The paper's single hard-coded greedy loop becomes one of several
//! [`SearchStrategy`] implementations, all budget-aware through the same
//! [`GreedyOptions`] and all reporting the same [`GreedyResult`]:
//!
//! * [`EagerGreedy`] — the reference §V-E greedy, loop body extracted from
//!   the old `greedy_select_model`: every round probes every remaining
//!   in-budget candidate with an add-delta and picks the best strictly
//!   positive benefit.
//! * [`LazyGreedy`] — the same search driven by a max-heap of **stale
//!   benefit upper bounds** (Minoux's lazy evaluation). A candidate is
//!   re-priced only when its stale bound tops the heap; a *fresh* top is
//!   the exact argmax and is picked without touching the rest of the pool.
//!
//!   **Invariant this relies on:** a candidate's observed benefit never
//!   increases as the selection grows (diminishing returns). The flattened
//!   cost model makes that plausible — adding an index can only lower the
//!   per-query minimum, shrinking what any *other* index can still save —
//!   and the `search_strategies` experiment and equivalence tests verify
//!   the consequence: lazy greedy reproduces [`EagerGreedy`]'s pick
//!   sequence and cost trajectory **bit for bit** while probing a fraction
//!   of the pool. Ties break toward the lowest candidate id, exactly like
//!   the eager scan's strict `>` argmax.
//! * [`SwapHillClimb`] — drop-one/add-one local search seeded from lazy
//!   greedy, enabled by the removal deltas
//!   ([`WorkloadModel::price_delta_swapped_into`]). Escapes the
//!   one-directional greedy's local optima (e.g. a narrow index picked
//!   early whose slot a later covering index serves better).
//! * [`Anneal`] — deterministic seeded simulated annealing over
//!   add/drop/swap moves, accepting uphill moves with a cooling
//!   Metropolis rule. Seeded from lazy greedy and returning the best
//!   selection ever visited, so it can never end worse than its seed.
//!
//! The naive closure-driven `greedy_select` stays in [`crate::greedy`] for
//! the direct-optimizer oracle, which has no [`WorkloadModel`] to search
//! over.

mod anneal;
mod greedy;
mod swap;

pub use anneal::Anneal;
pub use greedy::{EagerGreedy, LazyGreedy};
pub use swap::SwapHillClimb;

use crate::greedy::{GreedyOptions, GreedyResult};
use pinum_core::{CandidatePool, PricedWorkload, ProbePool, Selection, WorkloadModel};

/// Restrictions and carried-over state for one search run — the scoping
/// layer of template-attributed online re-advising.
///
/// * `mask` limits which **non-member** candidates the strategy may probe
///   for addition (or swap in). Warm-seed members are always adopted and
///   may still be dropped or swapped out; an absent mask (or a mask
///   containing every candidate) makes the search **bit-identical** to
///   the unscoped one.
/// * `warm_state` is the exact priced state of the warm selection
///   (bit-identical to `model.price_full(warm)`, e.g. from a
///   [`pinum_core::PricingSession`]). When the warm seed is adopted
///   untruncated, the strategy starts from this state instead of paying
///   its seeding full re-pricing — the totals are bit-identical either
///   way, only [`GreedyResult::full_repricings`] (and the probe
///   accounting for the skipped seed pricing) differ.
/// * `query_mask` (sorted ascending qids) scopes the *pricing* itself:
///   batched probes re-price only the masked queries, ranking moves by
///   their masked deltas. Accepted moves are always re-derived with the
///   exact unmasked serial delta before being applied, so the maintained
///   state stays bit-identical to `price_full` even when the mask
///   changes which move wins. The greedy family and the swap climb also
///   **re-check the exact benefit** before committing — a move that
///   improves only the masked queries while regressing the full workload
///   is skipped (the next-best contender is tried instead), so masked
///   search never raises the true workload total. The annealing walk is
///   the deliberate exception: its Metropolis rule may accept
///   exact-worsening moves by design, and it returns the best *exact*
///   state visited.
/// * `probe_pool` overrides the worker pool probes fan out over (None =
///   the process-global [`ProbePool::global`]). Thread count never
///   changes results — the batch reduction is deterministic.
#[derive(Debug, Clone, Copy, Default)]
pub struct SearchScope<'a> {
    /// Candidates the search may add (None = every candidate).
    pub mask: Option<&'a Selection>,
    /// Exact priced state of the warm selection, if the caller carries
    /// one across re-advises.
    pub warm_state: Option<&'a PricedWorkload>,
    /// Sorted query ids probes re-price (None = all queries, exact).
    pub query_mask: Option<&'a [u32]>,
    /// Worker pool for batched probes (None = the global pool).
    pub probe_pool: Option<&'a ProbePool>,
}

impl<'a> SearchScope<'a> {
    /// No mask, no carried state — exactly today's unscoped search.
    pub fn all() -> Self {
        Self::default()
    }

    /// Restrict addition probes to `mask`'s members.
    pub fn masked(mask: &'a Selection) -> Self {
        Self {
            mask: Some(mask),
            ..Self::default()
        }
    }

    /// Attach the warm selection's exact priced state.
    pub fn with_warm_state(mut self, state: &'a PricedWorkload) -> Self {
        self.warm_state = Some(state);
        self
    }

    /// Scope probe pricing to `queries` (sorted ascending query ids).
    pub fn with_query_mask(mut self, queries: &'a [u32]) -> Self {
        debug_assert!(queries.is_sorted(), "query mask must be sorted");
        self.query_mask = Some(queries);
        self
    }

    /// Fan probes out over `pool` instead of the process-global one.
    pub fn with_probe_pool(mut self, pool: &'a ProbePool) -> Self {
        self.probe_pool = Some(pool);
        self
    }

    /// Whether the scope lets the search add `candidate`.
    pub fn allows(&self, candidate: usize) -> bool {
        self.mask.is_none_or(|m| m.contains(candidate))
    }

    /// The pool batched probes run on.
    pub(crate) fn pool(&self) -> &'a ProbePool {
        self.probe_pool.unwrap_or_else(|| ProbePool::global())
    }
}

/// One search policy over the incremental pricing substrate.
///
/// Implementations must be deterministic: the same pool, model, and
/// options yield the same [`GreedyResult`] on every run (randomized
/// strategies carry their own seed).
pub trait SearchStrategy {
    /// Stable human-readable name (used in experiment tables and JSON).
    fn name(&self) -> &'static str;

    /// Runs the search from scratch (an empty warm set), returning picks,
    /// final selection, cost trajectory, and probe accounting.
    fn search(
        &self,
        pool: &CandidatePool,
        model: &WorkloadModel,
        opts: &GreedyOptions,
    ) -> GreedyResult {
        self.search_warm(pool, model, opts, &Selection::empty(pool.len()))
    }

    /// Runs the search **warm-started** from a previous selection instead
    /// of from empty — the online re-advising entry point. `warm` members
    /// are adopted in ascending id order while they fit the budget
    /// (deterministic truncation when the budget shrank), then the
    /// strategy continues from there: the greedy family keeps adding,
    /// swap/anneal can also drop or exchange stale warm picks. A search
    /// warm-started from an empty selection is exactly [`Self::search`].
    fn search_warm(
        &self,
        pool: &CandidatePool,
        model: &WorkloadModel,
        opts: &GreedyOptions,
        warm: &Selection,
    ) -> GreedyResult {
        self.search_scoped(pool, model, opts, warm, &SearchScope::all())
    }

    /// [`Self::search_warm`] under a [`SearchScope`]: addition probes are
    /// restricted to the scope's mask and the seed pricing reuses the
    /// scope's carried warm state when valid. With [`SearchScope::all`]
    /// this **is** `search_warm`, bit for bit — scoping only ever removes
    /// probes. The required method every strategy implements.
    fn search_scoped(
        &self,
        pool: &CandidatePool,
        model: &WorkloadModel,
        opts: &GreedyOptions,
        warm: &Selection,
        scope: &SearchScope<'_>,
    ) -> GreedyResult;
}

/// Adopts `warm` members in ascending id order while they fit the budget.
/// Returns the seeded selection, its members in adoption order, and its
/// total size — the shared warm-start preamble of every strategy.
pub(crate) fn seed_within_budget(
    pool: &CandidatePool,
    opts: &GreedyOptions,
    warm: &Selection,
) -> (Selection, Vec<usize>, u64) {
    let mut selection = Selection::empty(pool.len());
    let mut picked = Vec::new();
    let mut used_bytes = 0u64;
    for id in warm.ids() {
        let size = pool.index(id).size().total_bytes();
        if used_bytes + size > opts.budget_bytes {
            continue;
        }
        selection.insert(id);
        picked.push(id);
        used_bytes += size;
    }
    (selection, picked, used_bytes)
}

/// Splices a delta's `changed` list into a [`PricedWorkload`] through its
/// sum tree, turning an accepted move into an O(changed·log n) state
/// update instead of an O(workload) full re-pricing. The spliced tree
/// root lands bit-identical to the `total` the delta reported (same
/// leaves, same fixed tree shape); callers re-assert the whole state
/// against `price_full` in debug builds.
pub(crate) fn apply_changed(state: &mut PricedWorkload, changed: &[(u32, f64)], total: f64) {
    state.apply_changed(changed);
    debug_assert_eq!(
        state.total().to_bits(),
        total.to_bits(),
        "spliced sum-tree total diverged from the delta's overlaid total"
    );
}

/// The seed pricing every strategy starts from. When the scope carries
/// the warm selection's exact priced state *and* the budget adopted the
/// warm set untruncated, the carried state is cloned — zero re-pricing —
/// and nothing is added to the probe accounting. Otherwise the seeded
/// selection is fully priced, with the classic accounting (one
/// evaluation, `query_count` re-pricings, one full re-pricing).
pub(crate) fn seed_state(
    model: &WorkloadModel,
    warm: &Selection,
    seeded: &Selection,
    scope: &SearchScope<'_>,
    evaluations: &mut usize,
    queries_repriced: &mut usize,
    full_repricings: &mut usize,
) -> PricedWorkload {
    match scope.warm_state {
        Some(state) if seeded.ids().eq(warm.ids()) => {
            debug_assert_state_matches(model, seeded, state);
            state.clone()
        }
        _ => {
            *evaluations += 1;
            *queries_repriced += model.query_count();
            *full_repricings += 1;
            model.price_full(seeded)
        }
    }
}

/// Sampled (`PINUM_ASSERT_SAMPLE`) debug re-check that an incrementally
/// maintained [`PricedWorkload`] still equals a fresh full re-pricing —
/// the strategy-side leg of the session's bit-identity discipline
/// (shared rule: [`PricedWorkload::debug_assert_bit_identical_to_full`]).
pub(crate) fn debug_assert_state_matches(
    model: &WorkloadModel,
    selection: &Selection,
    state: &PricedWorkload,
) {
    state.debug_assert_bit_identical_to_full(model, selection);
}

/// Strategy selector for [`crate::tool::AdvisorOptions`] — a plain enum so
/// advisor options stay `Copy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyKind {
    /// Lazy greedy (the default): identical output to the reference
    /// greedy, fraction of the probes.
    LazyGreedy,
    /// Reference eager greedy (probes every candidate every round).
    EagerGreedy,
    /// Greedy seed + drop-one/add-one hill climbing.
    SwapHillClimb,
    /// Greedy seed + deterministic simulated annealing.
    Anneal {
        /// RNG seed (the run is fully determined by it).
        seed: u64,
    },
}

impl StrategyKind {
    /// Instantiates the strategy with its default knobs.
    pub fn build(self) -> Box<dyn SearchStrategy> {
        match self {
            Self::LazyGreedy => Box::new(LazyGreedy),
            Self::EagerGreedy => Box::new(EagerGreedy),
            Self::SwapHillClimb => Box::new(SwapHillClimb::default()),
            Self::Anneal { seed } => Box::new(Anneal::with_seed(seed)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinum_catalog::{Catalog, Column, ColumnType, Table};
    use pinum_core::access_costs::collect_pinum;
    use pinum_core::builder::{build_cache_pinum, BuilderOptions};
    use pinum_optimizer::Optimizer;
    use pinum_query::QueryBuilder;

    /// Small two-query fixture shared by the strategy tests.
    pub(crate) fn fixture() -> (CandidatePool, WorkloadModel) {
        let mut cat = Catalog::new();
        cat.add_table(Table::new(
            "f",
            300_000,
            vec![
                Column::new("fk", ColumnType::Int8).with_ndv(3_000),
                Column::new("v", ColumnType::Int4).with_ndv(1_000),
                Column::new("s", ColumnType::Int4).with_ndv(100),
            ],
        ));
        cat.add_table(Table::new(
            "d",
            3_000,
            vec![
                Column::new("k", ColumnType::Int8).with_ndv(3_000),
                Column::new("w", ColumnType::Int4).with_ndv(50),
            ],
        ));
        let q1 = QueryBuilder::new("q1", &cat)
            .table("f")
            .table("d")
            .join(("f", "fk"), ("d", "k"))
            .filter_range(("f", "v"), 0.0, 10.0)
            .select(("f", "s"))
            .order_by(("d", "w"))
            .build();
        let q2 = QueryBuilder::new("q2", &cat)
            .table("f")
            .filter_range(("f", "v"), 0.0, 10.0)
            .select(("f", "s"))
            .order_by(("f", "s"))
            .build();
        let pool = crate::candidates::generate_candidates(&cat, &[q1.clone(), q2.clone()]);
        let opt = Optimizer::new(&cat);
        let models: Vec<_> = [&q1, &q2]
            .iter()
            .map(|q| {
                let built = build_cache_pinum(&opt, q, &BuilderOptions::default());
                let (access, _) = collect_pinum(&opt, q, &pool);
                (built.cache, access)
            })
            .collect();
        let model = WorkloadModel::build(pool.len(), models.iter().map(|(c, a)| (c, a)));
        (pool, model)
    }

    const ALL_KINDS: [StrategyKind; 4] = [
        StrategyKind::LazyGreedy,
        StrategyKind::EagerGreedy,
        StrategyKind::SwapHillClimb,
        StrategyKind::Anneal { seed: 7 },
    ];

    #[test]
    fn warm_start_from_empty_equals_cold_search() {
        let (pool, model) = fixture();
        let opts = GreedyOptions {
            budget_bytes: 256 << 20,
            benefit_per_byte: false,
        };
        for kind in ALL_KINDS {
            let strategy = kind.build();
            let cold = strategy.search(&pool, &model, &opts);
            let warm = strategy.search_warm(&pool, &model, &opts, &Selection::empty(pool.len()));
            assert_eq!(cold.picked, warm.picked, "{}", strategy.name());
            assert_eq!(
                cold.cost_trajectory,
                warm.cost_trajectory,
                "{}",
                strategy.name()
            );
            assert_eq!(cold.evaluations, warm.evaluations, "{}", strategy.name());
        }
    }

    #[test]
    fn warm_start_from_own_result_never_regresses() {
        let (pool, model) = fixture();
        let opts = GreedyOptions {
            budget_bytes: 256 << 20,
            benefit_per_byte: false,
        };
        for kind in ALL_KINDS {
            let strategy = kind.build();
            let cold = strategy.search(&pool, &model, &opts);
            let warm = strategy.search_warm(&pool, &model, &opts, &cold.selection);
            let c = *cold.cost_trajectory.last().unwrap();
            let w = *warm.cost_trajectory.last().unwrap();
            assert!(
                w <= c * (1.0 + 1e-12),
                "{}: warm restart regressed {w} vs {c}",
                strategy.name()
            );
            assert!(warm.total_bytes <= opts.budget_bytes);
            // Warm restarts get going from the seed, not from scratch: the
            // greedy family re-prices once and finds nothing new to add.
            if matches!(kind, StrategyKind::LazyGreedy | StrategyKind::EagerGreedy) {
                assert_eq!(warm.selection, cold.selection, "{}", strategy.name());
            }
        }
    }

    #[test]
    fn warm_seed_is_truncated_to_a_shrunken_budget() {
        let (pool, model) = fixture();
        let generous = GreedyOptions {
            budget_bytes: u64::MAX,
            benefit_per_byte: false,
        };
        let cold = LazyGreedy.search(&pool, &model, &generous);
        assert!(cold.total_bytes > 0);
        // Re-advise under a budget smaller than the warm set itself.
        let tight = GreedyOptions {
            budget_bytes: cold.total_bytes / 2,
            benefit_per_byte: false,
        };
        for kind in ALL_KINDS {
            let strategy = kind.build();
            let warm = strategy.search_warm(&pool, &model, &tight, &cold.selection);
            assert!(
                warm.total_bytes <= tight.budget_bytes,
                "{} blew the shrunken budget",
                strategy.name()
            );
            assert_eq!(warm.selection.len(), warm.picked.len());
        }
    }

    #[test]
    fn every_kind_builds_and_runs() {
        let (pool, model) = fixture();
        let opts = GreedyOptions {
            budget_bytes: 512 * 1024 * 1024,
            benefit_per_byte: false,
        };
        for kind in [
            StrategyKind::LazyGreedy,
            StrategyKind::EagerGreedy,
            StrategyKind::SwapHillClimb,
            StrategyKind::Anneal { seed: 7 },
        ] {
            let strategy = kind.build();
            let r = strategy.search(&pool, &model, &opts);
            assert!(
                r.total_bytes <= opts.budget_bytes,
                "{} blew the budget",
                strategy.name()
            );
            assert_eq!(
                r.selection.len(),
                r.picked.len(),
                "{} picked/selection mismatch",
                strategy.name()
            );
            let last = *r.cost_trajectory.last().unwrap();
            let first = r.cost_trajectory[0];
            assert!(
                last <= first,
                "{} ended worse than it started",
                strategy.name()
            );
        }
    }
}
