//! The greedy family: the reference eager loop and its lazy-evaluation
//! upgrade. Both implement the paper's §V-E search — iteratively add the
//! candidate with the largest strictly positive benefit until nothing
//! improves or fits — and both produce the **same** [`GreedyResult`];
//! lazy greedy just prices far fewer probes to get there.
//!
//! Accepted picks are applied as **delta splices**: the winning probe is
//! re-priced with [`WorkloadModel::price_delta_into`] (its total is
//! debug-asserted bit-identical to a full re-pricing) and its changed
//! queries are overlaid onto the running [`PricedWorkload`] state. A
//! search seeded from a carried warm state therefore performs **zero**
//! full workload re-pricings — the property persistent pricing sessions
//! and their steady-state re-advises are built on.

use super::{
    debug_assert_state_matches, seed_state, seed_within_budget, SearchScope, SearchStrategy,
};
use crate::greedy::{GreedyOptions, GreedyResult};
use pinum_core::{CandidatePool, Probe, Selection, WorkloadModel};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Cap on how many stale heap entries lazy greedy re-prices per batched
/// wave. Waves start at one entry (the serial lazy behavior: in the
/// common case the re-priced top stays the top and is committed with no
/// extra probes) and double on each consecutive stale encounter within a
/// round, so heavy heap churn is re-priced in parallel batches. Both the
/// cap and the doubling schedule are fixed constants — never derived from
/// the thread count — so the probe accounting (and therefore every gated
/// metric) is identical for every pool size.
const LAZY_WAVE: usize = 32;

/// The reference greedy: every round probes every remaining in-budget
/// candidate with an add-delta ([`WorkloadModel::price_delta_into`]) and
/// picks the best strictly positive benefit (ties to the lowest candidate
/// id). This is the loop body extracted from the original
/// `greedy_select_model`, which now delegates here.
#[derive(Debug, Clone, Copy, Default)]
pub struct EagerGreedy;

impl SearchStrategy for EagerGreedy {
    fn name(&self) -> &'static str {
        "eager-greedy"
    }

    fn search_scoped(
        &self,
        pool: &CandidatePool,
        model: &WorkloadModel,
        opts: &GreedyOptions,
        warm: &Selection,
        scope: &SearchScope<'_>,
    ) -> GreedyResult {
        assert_eq!(
            pool.len(),
            model.pool_size(),
            "model built against a different candidate pool"
        );
        let (mut selection, mut picked, mut used_bytes) = seed_within_budget(pool, opts, warm);
        let mut evaluations = 0usize;
        let mut queries_repriced = 0usize;
        let mut full_repricings = 0usize;
        let mut state = seed_state(
            model,
            warm,
            &selection,
            scope,
            &mut evaluations,
            &mut queries_repriced,
            &mut full_repricings,
        );
        let mut trajectory = vec![state.total()];
        let mut scratch = Vec::new();
        let exec = scope.pool();
        let mut frontier: Vec<(usize, u64)> = Vec::new();
        let mut probes: Vec<Probe> = Vec::new();

        loop {
            // The round's frontier, in ascending candidate order; the
            // batch prices every probe concurrently and writes each delta
            // at its probe's index, so the serial argmax scan below sees
            // exactly the serial loop's visit order and bits.
            frontier.clear();
            probes.clear();
            for cand in 0..pool.len() {
                if selection.contains(cand) || !scope.allows(cand) {
                    continue;
                }
                let size = pool.index(cand).size().total_bytes();
                if used_bytes + size > opts.budget_bytes {
                    continue; // would violate the space constraint
                }
                frontier.push((cand, size));
                probes.push(Probe::Add { cand });
            }
            let deltas =
                model.price_delta_batch(&state, &selection, &probes, scope.query_mask, exec);
            // Each frontier entry's score, `None` once it is no longer a
            // contender this round (non-positive or NaN benefit, or a
            // masked winner whose exact benefit fell through below).
            let mut scores: Vec<Option<f64>> = Vec::with_capacity(frontier.len());
            for (&(_, size), delta) in frontier.iter().zip(&deltas) {
                evaluations += 1;
                queries_repriced += delta.repriced;
                // NaN-proof benefit guard (inf - inf probes are skipped,
                // not picked) — identical to the naive closure engine so
                // the two stay decision-identical.
                let benefit = state.total() - delta.total;
                if benefit.is_nan() || benefit <= 0.0 {
                    scores.push(None);
                    continue;
                }
                scores.push(Some(if opts.benefit_per_byte {
                    benefit / size.max(1) as f64
                } else {
                    benefit
                }));
            }
            let mut committed = false;
            loop {
                // Strict `>` argmax: the first maximum scanned (lowest
                // candidate id) wins ties, same as the serial loop.
                let mut best: Option<(usize, f64)> = None; // (frontier idx, score)
                for (i, score) in scores.iter().enumerate() {
                    if let Some(score) = *score {
                        if best.is_none_or(|(_, s)| score > s) {
                            best = Some((i, score));
                        }
                    }
                }
                let Some((i, _)) = best else { break };
                let cand = frontier[i].0;
                // Re-run the winning probe serially and **unmasked** and
                // splice the changed queries into the running state: the
                // accepted pick costs O(affected), never a full
                // re-pricing, and the exact delta total is bit-identical
                // to `price_full` (asserted inside the delta itself).
                let total = model.price_delta_into(&state, &selection, cand, &mut scratch);
                evaluations += 1;
                queries_repriced += scratch.len();
                // A query mask ranks the frontier by *masked* benefit; a
                // winner that improves the masked queries while regressing
                // the rest would raise the true workload total. Re-check
                // the exact benefit before committing and fall through to
                // the next-best contender otherwise — masked search stays
                // monotone in the true objective. Unmasked, the exact
                // delta is bit-identical to the batch's, so this check
                // never fires.
                let exact_benefit = state.total() - total;
                if exact_benefit.is_nan() || exact_benefit <= 0.0 {
                    debug_assert!(
                        scope.query_mask.is_some(),
                        "unmasked exact delta diverged from its batch delta"
                    );
                    scores[i] = None;
                    continue;
                }
                super::apply_changed(&mut state, &scratch, total);
                selection.insert(cand);
                picked.push(cand);
                used_bytes += pool.index(cand).size().total_bytes();
                debug_assert_state_matches(model, &selection, &state);
                trajectory.push(state.total());
                committed = true;
                break;
            }
            if !committed {
                break;
            }
        }

        GreedyResult {
            picked,
            selection,
            cost_trajectory: trajectory,
            total_bytes: used_bytes,
            evaluations,
            queries_repriced,
            full_repricings,
            final_state: Some(state),
        }
    }
}

/// A heap entry: the candidate's last observed score (an upper bound once
/// the selection has grown past `round`) and the round it was computed in.
#[derive(Debug, Clone, Copy)]
struct Entry {
    score: f64,
    cand: u32,
    round: u32,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap: larger score first; among equal scores the *lower*
        // candidate id has priority, reproducing the eager scan's
        // first-maximum tie-breaking. Scores are never NaN (guarded before
        // push), so partial_cmp cannot fail.
        self.score
            .partial_cmp(&other.score)
            .expect("NaN score escaped the push guard")
            .then_with(|| other.cand.cmp(&self.cand))
    }
}

/// Lazy greedy (Minoux's accelerated greedy): a max-heap holds each
/// candidate's **stale benefit upper bound** — the score observed the last
/// time it was priced. A popped entry that is stale is re-priced under the
/// current selection and pushed back; a popped entry that is *fresh*
/// (priced in the current round) already beats every other bound, and
/// bounds only overestimate, so it is the exact argmax and is picked
/// immediately.
///
/// **Equivalence contract.** Lazy greedy reproduces [`EagerGreedy`] *when
/// observed benefits are non-increasing as the selection grows*
/// (diminishing returns): then a stale score can only overestimate, never
/// underestimate, so the heap order never hides the true maximum. The
/// flattened cost model satisfies this on every tested workload (star
/// seeds, TPC-H, the 200×400 scale experiment — gated bit-identical in
/// CI), but it is not a theorem of the model: complementary candidates
/// (e.g. a cached plan whose required orders need two hypothetical
/// indexes at once) can make a benefit *rise* after a pick, and a stale
/// positive bound recorded before the rise would then hide the increase.
/// If exact equivalence matters on an untested workload, run
/// [`EagerGreedy`] — same result type, every probe exact.
///
/// **Summation jitter.** Benefits are differences of summed workload
/// totals, so even a mathematically constant benefit can drift by a few
/// ulps of the total between rounds — enough to make a stale bound
/// *underestimate* and hide the true argmax. Before a fresh top is
/// committed, any stale bound within a total-scaled epsilon of it is
/// re-priced, so ulp-level drift costs a handful of extra probes instead
/// of a divergent pick.
///
/// Within that contract the implementation mirrors the eager scan's edge
/// behavior exactly: candidates whose benefit is ≤ 0 or NaN (workload
/// still priced at infinity) are parked, re-admitted after every pick,
/// and re-probed before the search concludes — never silently discarded.
/// Because non-positive entries sit at the bottom of the heap, those
/// re-probes only happen in rounds whose maximum has already dropped to
/// ≤ 0 (in the common case, just the terminating round). Only budget
/// violations discard permanently (the remaining budget never grows
/// back).
#[derive(Debug, Clone, Copy, Default)]
pub struct LazyGreedy;

impl SearchStrategy for LazyGreedy {
    fn name(&self) -> &'static str {
        "lazy-greedy"
    }

    fn search_scoped(
        &self,
        pool: &CandidatePool,
        model: &WorkloadModel,
        opts: &GreedyOptions,
        warm: &Selection,
        scope: &SearchScope<'_>,
    ) -> GreedyResult {
        assert_eq!(
            pool.len(),
            model.pool_size(),
            "model built against a different candidate pool"
        );
        let (mut selection, mut picked, mut used_bytes) = seed_within_budget(pool, opts, warm);
        let mut evaluations = 0usize;
        let mut queries_repriced = 0usize;
        let mut full_repricings = 0usize;
        let mut state = seed_state(
            model,
            warm,
            &selection,
            scope,
            &mut evaluations,
            &mut queries_repriced,
            &mut full_repricings,
        );
        let mut trajectory = vec![state.total()];
        let mut scratch = Vec::new();

        // Every unselected in-scope candidate starts with an infinite
        // bound and a round tag that can never equal a real round, i.e.
        // "never priced" (warm members are already in the selection, not
        // contenders; out-of-scope candidates never enter the heap).
        let mut round: u32 = 0;
        let mut heap: BinaryHeap<Entry> = (0..pool.len() as u32)
            .filter(|&cand| !selection.contains(cand as usize) && scope.allows(cand as usize))
            .map(|cand| Entry {
                score: f64::INFINITY,
                cand,
                round: u32::MAX,
            })
            .collect();

        // Fresh entries whose exact score is ≤ 0: useless *this* round,
        // but re-admitted after a pick so a later round re-probes them
        // (exactly the eager scan's skip-but-rescan treatment).
        let mut parked: Vec<Entry> = Vec::new();

        let exec = scope.pool();
        // One wave of stale entries, re-priced as a single batch. The
        // wave is drained from the heap top, so every entry in it was a
        // candidate for the current argmax; re-pricing replaces bounds
        // with exact scores, which never changes which candidate greedy
        // ultimately commits — it only front-loads probes the serial loop
        // would have issued one pop at a time.
        let mut wave: Vec<Entry> = Vec::new();
        let mut wave_cap = 1usize;
        let reprice_wave = |wave: &mut Vec<Entry>,
                            heap: &mut BinaryHeap<Entry>,
                            state: &pinum_core::PricedWorkload,
                            selection: &Selection,
                            round: u32,
                            evaluations: &mut usize,
                            queries_repriced: &mut usize| {
            let probes: Vec<Probe> = wave
                .iter()
                .map(|e| Probe::Add {
                    cand: e.cand as usize,
                })
                .collect();
            let deltas = model.price_delta_batch(state, selection, &probes, scope.query_mask, exec);
            for (e, delta) in wave.drain(..).zip(&deltas) {
                *evaluations += 1;
                *queries_repriced += delta.repriced;
                let benefit = state.total() - delta.total;
                let score = if benefit.is_nan() {
                    // inf - inf: unusable *now*, but a later pick can make
                    // the workload priceable; park at 0 so it is retried
                    // before the search concludes (same semantics as the
                    // eager scan, which skips-but-rescans NaN probes every
                    // round).
                    0.0
                } else if opts.benefit_per_byte {
                    benefit / pool.index(e.cand as usize).size().total_bytes().max(1) as f64
                } else {
                    benefit
                };
                heap.push(Entry {
                    score,
                    cand: e.cand,
                    round,
                });
            }
        };

        while let Some(top) = heap.pop() {
            let cand = top.cand as usize;
            let size = pool.index(cand).size().total_bytes();
            if used_bytes + size > opts.budget_bytes {
                // The budget only shrinks: a candidate that does not fit
                // now never will. Drop it permanently.
                continue;
            }
            if top.round == round {
                if top.score <= 0.0 {
                    // Exact and non-positive: park it and keep draining —
                    // remaining stale entries still get their re-probe, so
                    // a benefit that turned positive is found before the
                    // search concludes.
                    parked.push(top);
                    continue;
                }
                // Jitter guard: a benefit is a difference of two summed
                // totals, so even a mathematically non-increasing benefit
                // can *rise* by a few ulps of the workload total between
                // rounds — and a stale bound recorded before that rise
                // would underestimate, hiding the true argmax from the
                // heap. Every stale bound within a total-scaled epsilon of
                // the fresh top is therefore re-priced (as one batch)
                // before the top is committed; ties among fresh entries
                // then resolve exactly like the eager scan's.
                let eps = state.total().abs() * 1e-12;
                while let Some(next) = heap.peek() {
                    if next.round == round || next.score < top.score - eps {
                        break;
                    }
                    let next = heap.pop().expect("peeked entry vanished");
                    if used_bytes + pool.index(next.cand as usize).size().total_bytes()
                        > opts.budget_bytes
                    {
                        continue; // same permanent discard as the main pop
                    }
                    wave.push(next);
                }
                if !wave.is_empty() {
                    heap.push(top);
                    reprice_wave(
                        &mut wave,
                        &mut heap,
                        &state,
                        &selection,
                        round,
                        &mut evaluations,
                        &mut queries_repriced,
                    );
                    continue;
                }
                // Fresh top: its score is exact, every other entry's bound
                // is an overestimate of its true score, and the heap says
                // they are all ≤ this one. This is greedy's pick. Re-price
                // it serially and **unmasked** and apply it as a delta
                // splice: O(affected) instead of a full re-pricing, with
                // the exact bit-identical total even when a query mask
                // ranked the heap.
                let total = model.price_delta_into(&state, &selection, cand, &mut scratch);
                evaluations += 1;
                queries_repriced += scratch.len();
                // Masked scores rank by *masked* benefit; before the pick
                // is committed its exact unmasked benefit must also be
                // positive, or the move would regress the true workload
                // total. A masked winner that fails the exact check is
                // parked like any non-positive entry (back in contention
                // after the next pick); unmasked, the exact delta is
                // bit-identical to the batch's and this never fires.
                let exact_benefit = state.total() - total;
                if exact_benefit.is_nan() || exact_benefit <= 0.0 {
                    debug_assert!(
                        scope.query_mask.is_some(),
                        "unmasked exact delta diverged from its batch delta"
                    );
                    parked.push(top);
                    continue;
                }
                super::apply_changed(&mut state, &scratch, total);
                selection.insert(cand);
                picked.push(cand);
                used_bytes += size;
                debug_assert_state_matches(model, &selection, &state);
                trajectory.push(state.total());
                round += 1;
                wave_cap = 1;
                // Parked entries are stale again relative to the new
                // round; put them back in contention.
                heap.extend(parked.drain(..));
                continue;
            }
            // Stale top: drain a wave of stale entries off the heap top
            // (budget misfits are permanently discarded on the way, same
            // as the main pop) and re-price the whole wave as one batch.
            wave.push(top);
            while wave.len() < wave_cap {
                match heap.peek() {
                    Some(next) if next.round != round => {
                        let next = heap.pop().expect("peeked entry vanished");
                        if used_bytes + pool.index(next.cand as usize).size().total_bytes()
                            > opts.budget_bytes
                        {
                            continue;
                        }
                        wave.push(next);
                    }
                    _ => break,
                }
            }
            wave_cap = (wave_cap * 2).min(LAZY_WAVE);
            reprice_wave(
                &mut wave,
                &mut heap,
                &state,
                &selection,
                round,
                &mut evaluations,
                &mut queries_repriced,
            );
        }

        GreedyResult {
            picked,
            selection,
            cost_trajectory: trajectory,
            total_bytes: used_bytes,
            evaluations,
            queries_repriced,
            full_repricings,
            final_state: Some(state),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::fixture;
    use super::*;

    #[test]
    fn lazy_matches_eager_bit_for_bit() {
        let (pool, model) = fixture();
        for budget in [64u64 << 20, 256 << 20, u64::MAX] {
            for per_byte in [false, true] {
                let opts = GreedyOptions {
                    budget_bytes: budget,
                    benefit_per_byte: per_byte,
                };
                let eager = EagerGreedy.search(&pool, &model, &opts);
                let lazy = LazyGreedy.search(&pool, &model, &opts);
                assert_eq!(eager.picked, lazy.picked, "budget {budget} pb {per_byte}");
                assert_eq!(
                    eager.cost_trajectory, lazy.cost_trajectory,
                    "budget {budget} pb {per_byte}"
                );
                assert_eq!(eager.total_bytes, lazy.total_bytes);
                assert!(
                    lazy.evaluations <= eager.evaluations,
                    "lazy probed more ({} vs {})",
                    lazy.evaluations,
                    eager.evaluations
                );
            }
        }
    }

    #[test]
    fn lazy_probes_strictly_less_when_there_are_multiple_picks() {
        let (pool, model) = fixture();
        let opts = GreedyOptions {
            budget_bytes: u64::MAX,
            benefit_per_byte: false,
        };
        let eager = EagerGreedy.search(&pool, &model, &opts);
        let lazy = LazyGreedy.search(&pool, &model, &opts);
        assert!(eager.picked.len() >= 2, "fixture should pick ≥2 indexes");
        assert!(
            lazy.evaluations < eager.evaluations,
            "lazy saved nothing ({} vs {})",
            lazy.evaluations,
            eager.evaluations
        );
    }

    #[test]
    fn final_state_is_the_full_repricing_of_the_final_selection() {
        let (pool, model) = fixture();
        let opts = GreedyOptions {
            budget_bytes: u64::MAX,
            benefit_per_byte: false,
        };
        for result in [
            EagerGreedy.search(&pool, &model, &opts),
            LazyGreedy.search(&pool, &model, &opts),
        ] {
            let state = result.final_state.expect("model engines track state");
            let full = model.price_full(&result.selection);
            assert_eq!(state.total().to_bits(), full.total().to_bits());
            assert_eq!(state.per_query(), full.per_query());
            assert_eq!(result.full_repricings, 1, "only the seed pricing is full");
        }
    }

    #[test]
    fn warm_state_seeding_spends_zero_full_repricings() {
        let (pool, model) = fixture();
        let opts = GreedyOptions {
            budget_bytes: u64::MAX,
            benefit_per_byte: false,
        };
        let cold = LazyGreedy.search(&pool, &model, &opts);
        let warm_state = cold.final_state.clone().unwrap();
        let scope = SearchScope::all().with_warm_state(&warm_state);
        for strategy in [&LazyGreedy as &dyn SearchStrategy, &EagerGreedy] {
            let warm = strategy.search_scoped(&pool, &model, &opts, &cold.selection, &scope);
            assert_eq!(
                warm.full_repricings,
                0,
                "{}: a carried warm state must not be re-priced",
                strategy.name()
            );
            assert_eq!(warm.selection, cold.selection, "{}", strategy.name());
            assert_eq!(
                warm.cost_trajectory[0].to_bits(),
                warm_state.total().to_bits()
            );
        }
    }

    #[test]
    fn mask_restricts_the_picks() {
        let (pool, model) = fixture();
        let opts = GreedyOptions {
            budget_bytes: u64::MAX,
            benefit_per_byte: false,
        };
        let unscoped = LazyGreedy.search(&pool, &model, &opts);
        assert!(unscoped.picked.len() >= 2);
        // Allow only the first unscoped pick: the scoped search must pick
        // exactly within the mask.
        let only = Selection::from_ids(pool.len(), &unscoped.picked[..1]);
        let empty = Selection::empty(pool.len());
        for strategy in [&LazyGreedy as &dyn SearchStrategy, &EagerGreedy] {
            let scoped =
                strategy.search_scoped(&pool, &model, &opts, &empty, &SearchScope::masked(&only));
            assert_eq!(
                scoped.picked,
                unscoped.picked[..1].to_vec(),
                "{}",
                strategy.name()
            );
            assert!(
                scoped.evaluations < unscoped.evaluations,
                "{}: masking must cut probes",
                strategy.name()
            );
        }
    }

    #[test]
    fn heap_entry_ordering_breaks_ties_toward_low_ids() {
        let a = Entry {
            score: 1.0,
            cand: 3,
            round: 0,
        };
        let b = Entry {
            score: 1.0,
            cand: 7,
            round: 0,
        };
        let c = Entry {
            score: 2.0,
            cand: 9,
            round: 0,
        };
        assert!(a > b, "equal scores must prefer the lower candidate id");
        assert!(c > a);
        let mut heap = BinaryHeap::from(vec![a, b, c]);
        assert_eq!(heap.pop().unwrap().cand, 9);
        assert_eq!(heap.pop().unwrap().cand, 3);
        assert_eq!(heap.pop().unwrap().cand, 7);
    }
}
