//! Drop-one/add-one local search on top of a greedy seed — the first
//! consumer of the bidirectional deltas. Greedy only ever *adds*, so it
//! can strand capacity on a narrow index whose job a later, wider pick
//! also covers; a swap probe prices "replace selected `s` with unselected
//! `c`" in one [`WorkloadModel::price_delta_swapped_into`] call over the
//! merged affected-query sets.

use super::{apply_changed, debug_assert_state_matches, LazyGreedy, SearchScope, SearchStrategy};
use crate::greedy::{GreedyOptions, GreedyResult};
use pinum_core::{CandidatePool, Probe, Selection, WorkloadModel};

/// Steepest-descent swap hill climbing: seed with [`LazyGreedy`], then
/// repeatedly apply the single most improving drop-one/add-one exchange
/// until no swap lowers the workload cost (or `max_rounds` is hit). Every
/// accepted swap strictly lowers the cost, so the result is never worse
/// than the greedy seed.
#[derive(Debug, Clone, Copy)]
pub struct SwapHillClimb {
    /// Upper bound on accepted swaps (each round scans |selection| × |pool|
    /// swap candidates; the bound keeps worst-case cost predictable).
    pub max_rounds: usize,
}

impl Default for SwapHillClimb {
    fn default() -> Self {
        Self { max_rounds: 32 }
    }
}

impl SearchStrategy for SwapHillClimb {
    fn name(&self) -> &'static str {
        "swap-hill-climb"
    }

    fn search_scoped(
        &self,
        pool: &CandidatePool,
        model: &WorkloadModel,
        opts: &GreedyOptions,
        warm: &Selection,
        scope: &SearchScope<'_>,
    ) -> GreedyResult {
        let seed = LazyGreedy.search_scoped(pool, model, opts, warm, scope);
        let mut selection = seed.selection;
        let mut picked = seed.picked;
        let mut trajectory = seed.cost_trajectory;
        let mut used_bytes = seed.total_bytes;
        let mut evaluations = seed.evaluations;
        let mut queries_repriced = seed.queries_repriced;
        let full_repricings = seed.full_repricings;

        // The greedy seed hands over its exact final state — no
        // re-pricing between seed and climb.
        let mut state = seed.final_state.expect("lazy greedy tracks state");
        let mut scratch = Vec::new();
        let exec = scope.pool();
        let mut probes: Vec<Probe> = Vec::new();

        for _ in 0..self.max_rounds {
            // Steepest descent: batch-price all (drop, add) exchanges that
            // fit the budget, keep the lowest resulting cost. The
            // neighborhood is enumerated in ascending drop id, then add
            // id; deltas land at their probe's index, so the serial
            // argmin scan breaks ties toward the first exchange scanned —
            // the climb is deterministic for every thread count. Drops
            // may touch any member; adds are restricted to the scope.
            let members: Vec<usize> = selection.ids().collect();
            probes.clear();
            for &drop in &members {
                let drop_bytes = pool.index(drop).size().total_bytes();
                for add in 0..pool.len() {
                    if selection.contains(add) || !scope.allows(add) {
                        continue;
                    }
                    let add_bytes = pool.index(add).size().total_bytes();
                    if used_bytes - drop_bytes + add_bytes > opts.budget_bytes {
                        continue;
                    }
                    probes.push(Probe::Swap { add, drop });
                }
            }
            let deltas =
                model.price_delta_batch(&state, &selection, &probes, scope.query_mask, exec);
            let mut improving: Vec<(usize, f64)> = Vec::new(); // (probe idx, proposed cost)
            for (i, delta) in deltas.iter().enumerate() {
                evaluations += 1;
                queries_repriced += delta.changed;
                // Same NaN-proof guard as the greedy engines: an
                // inf/NaN probe must never win the argmin.
                let gain = state.total() - delta.total;
                if gain.is_nan() || gain <= 0.0 {
                    continue;
                }
                improving.push((i, delta.total));
            }
            // Lowest proposed cost first; among ties the first exchange
            // enumerated wins — exactly the strict `<` argmin scan.
            improving.sort_by(|a, b| {
                a.1.partial_cmp(&b.1)
                    .expect("NaN totals were filtered above")
                    .then(a.0.cmp(&b.0))
            });
            let mut committed = false;
            for &(i, _) in &improving {
                let Probe::Swap { add, drop } = probes[i] else {
                    unreachable!("swap neighborhood holds only swap probes");
                };
                // Re-run the candidate probe serially and **unmasked**:
                // the exact delta total is bit-identical to a full reprice
                // (debug-asserted inside the delta itself). A query mask
                // ranks the neighborhood by *masked* cost, so an exchange
                // that helps the masked queries can still regress the full
                // workload — re-check the exact gain before splicing and
                // fall through to the next-best exchange otherwise, so the
                // climb stays a strict descent in the true objective.
                // Unmasked, the first candidate always passes.
                let total =
                    model.price_delta_swapped_into(&state, &selection, add, drop, &mut scratch);
                evaluations += 1;
                queries_repriced += scratch.len();
                let exact_gain = state.total() - total;
                if exact_gain.is_nan() || exact_gain <= 0.0 {
                    debug_assert!(
                        scope.query_mask.is_some(),
                        "unmasked exact swap delta diverged from its batch delta"
                    );
                    continue;
                }
                apply_changed(&mut state, &scratch, total);
                selection.remove(drop);
                selection.insert(add);
                debug_assert_state_matches(model, &selection, &state);
                used_bytes = used_bytes - pool.index(drop).size().total_bytes()
                    + pool.index(add).size().total_bytes();
                // `picked` tracks the surviving set in acquisition
                // order: the dropped index leaves, the added one joins
                // at the end.
                picked.retain(|&p| p != drop);
                picked.push(add);
                trajectory.push(state.total());
                committed = true;
                break;
            }
            if !committed {
                break; // local optimum under the swap neighbourhood
            }
        }

        GreedyResult {
            picked,
            selection,
            cost_trajectory: trajectory,
            total_bytes: used_bytes,
            evaluations,
            queries_repriced,
            full_repricings,
            final_state: Some(state),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::fixture;
    use super::*;

    #[test]
    fn never_worse_than_greedy_seed() {
        let (pool, model) = fixture();
        for budget in [32u64 << 20, 128 << 20, u64::MAX] {
            let opts = GreedyOptions {
                budget_bytes: budget,
                benefit_per_byte: false,
            };
            let greedy = LazyGreedy.search(&pool, &model, &opts);
            let swap = SwapHillClimb::default().search(&pool, &model, &opts);
            let g = *greedy.cost_trajectory.last().unwrap();
            let s = *swap.cost_trajectory.last().unwrap();
            assert!(s <= g, "swap ended worse than greedy: {s} vs {g}");
            assert!(swap.total_bytes <= opts.budget_bytes);
            assert_eq!(swap.picked.len(), swap.selection.len());
        }
    }

    #[test]
    fn zero_rounds_reduces_to_greedy() {
        let (pool, model) = fixture();
        let opts = GreedyOptions {
            budget_bytes: 256 << 20,
            benefit_per_byte: false,
        };
        let greedy = LazyGreedy.search(&pool, &model, &opts);
        let swap = SwapHillClimb { max_rounds: 0 }.search(&pool, &model, &opts);
        assert_eq!(greedy.picked, swap.picked);
        assert_eq!(greedy.cost_trajectory, swap.cost_trajectory);
    }
}
