//! Syntactic candidate-index generation (paper §V-E): "The tool first
//! statically analyses the queries to find a large set of candidate
//! indexes."
//!
//! Per query and relation we emit:
//!
//! 1. a single-column index per interesting-order column (join / GROUP BY
//!    / ORDER BY columns — definition 2);
//! 2. a single-column index per filter column;
//! 3. two-column indexes pairing each filter column with each
//!    interesting-order column (filter-leading: selective lookups that
//!    also narrow the fetch; order-leading: ordered scans that cover the
//!    filter);
//! 4. covering indexes over *all* referenced columns, one variant per
//!    possible leading column among the filter and interesting-order
//!    columns — these enable index-only plans, which is how the paper's
//!    tool "reduces the cost of the most expensive queries by building
//!    covering indexes".

use pinum_catalog::{Catalog, Index};
use pinum_core::CandidatePool;
use pinum_query::{Query, RelIdx};

/// Generates the deduplicated candidate pool for a workload.
pub fn generate_candidates(catalog: &Catalog, queries: &[Query]) -> CandidatePool {
    let mut pool = CandidatePool::new();
    for q in queries {
        for rel in 0..q.relation_count() as RelIdx {
            generate_for_relation(catalog, q, rel, &mut pool);
        }
    }
    pool
}

fn generate_for_relation(catalog: &Catalog, q: &Query, rel: RelIdx, pool: &mut CandidatePool) {
    let table = catalog.table(q.table_of(rel));
    let orders = q.interesting_orders();
    let order_cols: Vec<u16> = orders.orders_of(rel).to_vec();
    let filter_cols: Vec<u16> = {
        let mut v: Vec<u16> = q.filters_on(rel).map(|f| f.column).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let referenced = q.referenced_columns(rel);

    // 1. Single-column order indexes.
    for &c in &order_cols {
        pool.add(Index::hypothetical(table, vec![c], false));
    }
    // 2. Single-column filter indexes.
    for &c in &filter_cols {
        pool.add(Index::hypothetical(table, vec![c], false));
    }
    // 3. Two-column combinations.
    for &f in &filter_cols {
        for &o in &order_cols {
            if f != o {
                pool.add(Index::hypothetical(table, vec![f, o], false));
                pool.add(Index::hypothetical(table, vec![o, f], false));
            }
        }
    }
    // 4. Covering indexes (only when they add columns beyond the leader).
    if referenced.len() > 1 {
        let mut leaders: Vec<u16> = filter_cols
            .iter()
            .chain(order_cols.iter())
            .copied()
            .collect();
        leaders.sort_unstable();
        leaders.dedup();
        for &lead in &leaders {
            let mut keys = vec![lead];
            keys.extend(referenced.iter().copied().filter(|&c| c != lead));
            pool.add(Index::hypothetical(table, keys, false));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinum_catalog::{Column, ColumnType, Table};
    use pinum_query::QueryBuilder;

    fn setup() -> (Catalog, Query) {
        let mut cat = Catalog::new();
        cat.add_table(Table::new(
            "f",
            100_000,
            vec![
                Column::new("fk", ColumnType::Int8).with_ndv(1_000),
                Column::new("v", ColumnType::Int4).with_ndv(1_000),
                Column::new("s", ColumnType::Int4).with_ndv(100),
            ],
        ));
        cat.add_table(Table::new(
            "d",
            1_000,
            vec![
                Column::new("k", ColumnType::Int8).with_ndv(1_000),
                Column::new("w", ColumnType::Int4).with_ndv(50),
            ],
        ));
        let q = QueryBuilder::new("q", &cat)
            .table("f")
            .table("d")
            .join(("f", "fk"), ("d", "k"))
            .filter_range(("f", "v"), 0.0, 10.0)
            .select(("f", "s"))
            .order_by(("d", "w"))
            .build();
        (cat, q)
    }

    #[test]
    fn generates_order_filter_and_covering_candidates() {
        let (cat, q) = setup();
        let pool = generate_candidates(&cat, std::slice::from_ref(&q));
        assert!(!pool.is_empty());
        let f = cat.table_id("f").unwrap();
        let d = cat.table_id("d").unwrap();
        // f: order index on fk, filter index on v, two 2-col combos,
        // covering variants led by fk and v.
        let f_cands = pool.on_table(f);
        assert!(f_cands.len() >= 5, "got {}", f_cands.len());
        // Among them: a covering index containing all referenced f columns.
        let referenced = q.referenced_columns(0);
        assert!(f_cands
            .iter()
            .any(|&i| pool.index(i).covers_columns(&referenced)));
        // d: order indexes on k and w + covering variants.
        assert!(pool.on_table(d).len() >= 3);
    }

    #[test]
    fn candidates_are_deduplicated_across_queries() {
        let (cat, q) = setup();
        let once = generate_candidates(&cat, std::slice::from_ref(&q));
        let twice = generate_candidates(&cat, &[q.clone(), q]);
        assert_eq!(once.len(), twice.len());
    }

    #[test]
    fn all_candidates_are_hypothetical() {
        let (cat, q) = setup();
        let pool = generate_candidates(&cat, &[q]);
        for ix in pool.indexes() {
            assert_eq!(ix.kind(), pinum_catalog::IndexKind::Hypothetical);
        }
    }
}
