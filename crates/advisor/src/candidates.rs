//! Syntactic candidate-index generation (paper §V-E): "The tool first
//! statically analyses the queries to find a large set of candidate
//! indexes."
//!
//! Per query and relation we emit:
//!
//! 1. a single-column index per interesting-order column (join / GROUP BY
//!    / ORDER BY columns — definition 2);
//! 2. a single-column index per filter column;
//! 3. two-column indexes pairing each filter column with each
//!    interesting-order column (filter-leading: selective lookups that
//!    also narrow the fetch; order-leading: ordered scans that cover the
//!    filter);
//! 4. covering indexes over *all* referenced columns, one variant per
//!    possible leading column among the filter and interesting-order
//!    columns — these enable index-only plans, which is how the paper's
//!    tool "reduces the cost of the most expensive queries by building
//!    covering indexes".
//!
//! On top of per-query generation, [`merge_prefix_subsumed`] performs
//! *workload-level* merging: candidates whose key columns are a strict
//! prefix of a wider candidate on the same table are dropped, shrinking
//! the pool before any optimizer call prices it.

use pinum_catalog::{Catalog, Index, TableId};
use pinum_core::CandidatePool;
use pinum_query::{Query, RelIdx};
use std::collections::HashMap;

/// Generates the deduplicated candidate pool for a workload.
pub fn generate_candidates(catalog: &Catalog, queries: &[Query]) -> CandidatePool {
    let mut pool = CandidatePool::new();
    for q in queries {
        for rel in 0..q.relation_count() as RelIdx {
            generate_for_relation(catalog, q, rel, &mut pool);
        }
    }
    pool
}

/// [`generate_candidates`] followed by [`merge_prefix_subsumed`].
pub fn generate_candidates_merged(catalog: &Catalog, queries: &[Query]) -> CandidatePool {
    merge_prefix_subsumed(&generate_candidates(catalog, queries)).0
}

/// Scan-cost penalty a subsuming wide index charges over the narrow one
/// it replaces, above which [`merge_prefix_subsumed`] keeps the narrow
/// candidate. The penalty is relative leaf-page growth — the dominant
/// term of every scan shape the narrow index served (range scans,
/// index-only scans, and the per-probe descent all price proportionally
/// to the leaf size at equal selectivity). This default is calibrated so
/// that the ordinary prefix pairs candidate generation emits (one or two
/// extra join/filter key columns) merge exactly as the unconditional
/// merge did, while a pathological pair — a skinny key subsumed by a
/// fat covering index many times its size — survives, because replacing
/// it would distort pricing far beyond the model's noise, not trim it.
pub const MERGE_PENALTY_NOISE_FLOOR: f64 = 8.0;

/// Workload-level candidate merging: drops every candidate whose key
/// columns are a strict **prefix** of a wider candidate on the same table
/// (same uniqueness), provided the wider index's scan-cost penalty stays
/// under [`MERGE_PENALTY_NOISE_FLOOR`]. The wider index serves every plan
/// shape the narrow one could — the same interesting orders (order
/// prefixes), the same lookups, plus covering variants — at a somewhat
/// higher per-scan cost, so this trades a little pricing fidelity for a
/// smaller pool *before* any optimizer call or model construction
/// happens. Returns the merged pool (survivors in original pool order, so
/// runs are deterministic) and the number of candidates dropped.
pub fn merge_prefix_subsumed(pool: &CandidatePool) -> (CandidatePool, usize) {
    merge_prefix_subsumed_with(pool, MERGE_PENALTY_NOISE_FLOOR)
}

/// [`merge_prefix_subsumed`] with an explicit penalty ceiling:
/// `f64::INFINITY` reproduces the unconditional (pre-cost-aware) merge;
/// `0.0` merges only extensions that are literally free (padding can
/// make an extra narrow column cost zero leaf pages); a negative ceiling
/// disables merging entirely.
pub fn merge_prefix_subsumed_with(
    pool: &CandidatePool,
    max_penalty: f64,
) -> (CandidatePool, usize) {
    // Group candidate ids by (table, uniqueness); prefix subsumption never
    // crosses either boundary.
    let mut groups: HashMap<(TableId, bool), Vec<usize>> = HashMap::new();
    for (id, ix) in pool.indexes().iter().enumerate() {
        groups
            .entry((ix.table(), ix.is_unique()))
            .or_default()
            .push(id);
    }
    let mut dropped = vec![false; pool.len()];
    for ids in groups.values() {
        // Lexicographic order on key columns makes every strict prefix's
        // extensions a contiguous run right behind it: for A < B < C with
        // A a prefix of C, B also starts with A. So each candidate scans
        // forward over its own run and stops at the first non-extension.
        let mut sorted = ids.clone();
        sorted.sort_by(|&a, &b| pool.index(a).key_columns().cmp(pool.index(b).key_columns()));
        for (i, &a) in sorted.iter().enumerate() {
            let narrow = pool.index(a);
            let ka = narrow.key_columns();
            let mut cheapest = f64::INFINITY;
            for &b in &sorted[i + 1..] {
                let wide = pool.index(b);
                if !wide.key_columns().starts_with(ka) {
                    break;
                }
                cheapest = cheapest.min(scan_penalty(narrow, wide));
            }
            // `cheapest` stays infinite when no extension exists at all —
            // finite-check first so an `INFINITY` ceiling means "any
            // extension subsumes", not "drop everything".
            if cheapest.is_finite() && cheapest <= max_penalty {
                dropped[a] = true;
            }
        }
    }
    let survivors: Vec<Index> = pool
        .indexes()
        .iter()
        .enumerate()
        .filter(|(id, _)| !dropped[*id])
        .map(|(_, ix)| ix.clone())
        .collect();
    let n_dropped = pool.len() - survivors.len();
    (CandidatePool::from_indexes(survivors), n_dropped)
}

/// Relative extra leaf pages a scan pays for using `wide` where `narrow`
/// sufficed.
fn scan_penalty(narrow: &Index, wide: &Index) -> f64 {
    let n = narrow.size().leaf_pages.max(1) as f64;
    let w = wide.size().leaf_pages as f64;
    ((w - n) / n).max(0.0)
}

fn generate_for_relation(catalog: &Catalog, q: &Query, rel: RelIdx, pool: &mut CandidatePool) {
    let table = catalog.table(q.table_of(rel));
    let orders = q.interesting_orders();
    let order_cols: Vec<u16> = orders.orders_of(rel).to_vec();
    let filter_cols: Vec<u16> = {
        let mut v: Vec<u16> = q.filters_on(rel).map(|f| f.column).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let referenced = q.referenced_columns(rel);

    // 1. Single-column order indexes.
    for &c in &order_cols {
        pool.add(Index::hypothetical(table, vec![c], false));
    }
    // 2. Single-column filter indexes.
    for &c in &filter_cols {
        pool.add(Index::hypothetical(table, vec![c], false));
    }
    // 3. Two-column combinations.
    for &f in &filter_cols {
        for &o in &order_cols {
            if f != o {
                pool.add(Index::hypothetical(table, vec![f, o], false));
                pool.add(Index::hypothetical(table, vec![o, f], false));
            }
        }
    }
    // 4. Covering indexes (only when they add columns beyond the leader).
    if referenced.len() > 1 {
        let mut leaders: Vec<u16> = filter_cols
            .iter()
            .chain(order_cols.iter())
            .copied()
            .collect();
        leaders.sort_unstable();
        leaders.dedup();
        for &lead in &leaders {
            let mut keys = vec![lead];
            keys.extend(referenced.iter().copied().filter(|&c| c != lead));
            pool.add(Index::hypothetical(table, keys, false));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinum_catalog::{Column, ColumnType, Table};
    use pinum_query::QueryBuilder;

    fn setup() -> (Catalog, Query) {
        let mut cat = Catalog::new();
        cat.add_table(Table::new(
            "f",
            100_000,
            vec![
                Column::new("fk", ColumnType::Int8).with_ndv(1_000),
                Column::new("v", ColumnType::Int4).with_ndv(1_000),
                Column::new("s", ColumnType::Int4).with_ndv(100),
            ],
        ));
        cat.add_table(Table::new(
            "d",
            1_000,
            vec![
                Column::new("k", ColumnType::Int8).with_ndv(1_000),
                Column::new("w", ColumnType::Int4).with_ndv(50),
            ],
        ));
        let q = QueryBuilder::new("q", &cat)
            .table("f")
            .table("d")
            .join(("f", "fk"), ("d", "k"))
            .filter_range(("f", "v"), 0.0, 10.0)
            .select(("f", "s"))
            .order_by(("d", "w"))
            .build();
        (cat, q)
    }

    #[test]
    fn generates_order_filter_and_covering_candidates() {
        let (cat, q) = setup();
        let pool = generate_candidates(&cat, std::slice::from_ref(&q));
        assert!(!pool.is_empty());
        let f = cat.table_id("f").unwrap();
        let d = cat.table_id("d").unwrap();
        // f: order index on fk, filter index on v, two 2-col combos,
        // covering variants led by fk and v.
        let f_cands = pool.on_table(f);
        assert!(f_cands.len() >= 5, "got {}", f_cands.len());
        // Among them: a covering index containing all referenced f columns.
        let referenced = q.referenced_columns(0);
        assert!(f_cands
            .iter()
            .any(|&i| pool.index(i).covers_columns(&referenced)));
        // d: order indexes on k and w + covering variants.
        assert!(pool.on_table(d).len() >= 3);
    }

    #[test]
    fn candidates_are_deduplicated_across_queries() {
        let (cat, q) = setup();
        let once = generate_candidates(&cat, std::slice::from_ref(&q));
        let twice = generate_candidates(&cat, &[q.clone(), q]);
        assert_eq!(once.len(), twice.len());
    }

    #[test]
    fn merge_drops_strict_prefixes_only() {
        let (cat, _) = setup();
        let f = cat.table(cat.table_id("f").unwrap()).clone();
        let d = cat.table(cat.table_id("d").unwrap()).clone();
        let pool = CandidatePool::from_indexes(vec![
            Index::hypothetical(&f, vec![0], false), // prefix of [0,1] → dropped
            Index::hypothetical(&f, vec![0, 1], false), // prefix of [0,1,2] → dropped
            Index::hypothetical(&f, vec![0, 1, 2], false), // widest: kept
            Index::hypothetical(&f, vec![1], false), // no extension: kept
            Index::hypothetical(&f, vec![2, 0], false), // kept
            Index::hypothetical(&d, vec![0], false), // other table: kept
        ]);
        let (merged, dropped) = merge_prefix_subsumed(&pool);
        assert_eq!(dropped, 2);
        assert_eq!(merged.len(), 4);
        let keys: Vec<&[u16]> = merged
            .indexes()
            .iter()
            .filter(|i| i.table() == f.id())
            .map(|i| i.key_columns())
            .collect();
        assert!(keys.contains(&&[0u16, 1, 2][..]));
        assert!(keys.contains(&&[1u16][..]));
        assert!(keys.contains(&&[2u16, 0][..]));
        assert!(!keys.contains(&&[0u16][..]));
        assert!(!keys.contains(&&[0u16, 1][..]));
        // d's single index survives (prefix relations never cross tables).
        assert_eq!(merged.on_table(cat.table_id("d").unwrap()).len(), 1);
    }

    #[test]
    fn merge_non_adjacent_prefix_is_still_found() {
        // [0] < [0,1] < [0,2] lexicographically: [0] is adjacent only to
        // [0,1], but it must still be dropped as a prefix of both.
        let (cat, _) = setup();
        let f = cat.table(cat.table_id("f").unwrap()).clone();
        let pool = CandidatePool::from_indexes(vec![
            Index::hypothetical(&f, vec![0, 2], false),
            Index::hypothetical(&f, vec![0], false),
            Index::hypothetical(&f, vec![0, 1], false),
        ]);
        let (merged, dropped) = merge_prefix_subsumed(&pool);
        assert_eq!(dropped, 1);
        assert!(merged.indexes().iter().all(|i| i.key_columns().len() == 2));
    }

    #[test]
    fn cost_aware_merge_is_bit_identical_where_the_guard_does_not_fire() {
        // On pools that candidate generation actually emits, every
        // subsuming extension stays well under the noise floor: the
        // cost-aware default must pick the exact survivor list (same
        // indexes, same order) as the unconditional merge.
        let (cat, q) = setup();
        let pool = generate_candidates(&cat, std::slice::from_ref(&q));
        let (merged, dropped) = merge_prefix_subsumed(&pool);
        let (unconditional, dropped_unconditional) =
            merge_prefix_subsumed_with(&pool, f64::INFINITY);
        assert_eq!(dropped, dropped_unconditional);
        let keys = |p: &CandidatePool| {
            p.indexes()
                .iter()
                .map(|i| (i.table(), i.key_columns().to_vec(), i.is_unique()))
                .collect::<Vec<_>>()
        };
        assert_eq!(keys(&merged), keys(&unconditional));
    }

    #[test]
    fn cost_aware_merge_keeps_a_prefix_its_wide_twin_would_overprice() {
        // A skinny single-column key vs a fat covering extension dozens
        // of times its leaf size: the old merge dropped the skinny index
        // unconditionally; the cost guard must keep it.
        let mut cat = Catalog::new();
        let mut cols = vec![Column::new("k", ColumnType::Int4).with_ndv(100_000)];
        for i in 0..30 {
            cols.push(Column::new(format!("p{i}"), ColumnType::Int8).with_ndv(1_000));
        }
        let wide_table = cat.add_table(Table::new("fat", 1_000_000, cols));
        let t = cat.table(wide_table).clone();
        let narrow = Index::hypothetical(&t, vec![0], false);
        let fat = Index::hypothetical(&t, (0..31u16).collect(), false);
        let penalty = (fat.size().leaf_pages as f64 - narrow.size().leaf_pages as f64)
            / narrow.size().leaf_pages as f64;
        assert!(
            penalty > MERGE_PENALTY_NOISE_FLOOR,
            "fixture not fat enough: penalty {penalty:.2}"
        );
        let pool = CandidatePool::from_indexes(vec![narrow, fat]);
        let (merged, dropped) = merge_prefix_subsumed(&pool);
        assert_eq!(dropped, 0, "cost guard should keep the skinny index");
        assert_eq!(merged.len(), 2);
        // The unconditional merge (penalty ceiling lifted) still drops it.
        let (_, dropped_unconditional) = merge_prefix_subsumed_with(&pool, f64::INFINITY);
        assert_eq!(dropped_unconditional, 1);
        // A negative ceiling disables merging outright; a zero ceiling
        // admits only literally-free extensions (alignment padding can
        // make one extra narrow column cost zero leaf pages).
        let (cat2, q) = setup();
        let generated = generate_candidates(&cat2, std::slice::from_ref(&q));
        let (_, dropped_negative) = merge_prefix_subsumed_with(&generated, -1.0);
        assert_eq!(dropped_negative, 0);
        let (_, dropped_zero) = merge_prefix_subsumed_with(&generated, 0.0);
        let (_, dropped_default) = merge_prefix_subsumed(&generated);
        assert!(dropped_zero <= dropped_default);
    }

    #[test]
    fn merge_shrinks_generated_pools_and_is_idempotent() {
        let (cat, q) = setup();
        let pool = generate_candidates(&cat, std::slice::from_ref(&q));
        let (merged, dropped) = merge_prefix_subsumed(&pool);
        assert!(dropped > 0, "generated pool should contain prefixes");
        assert_eq!(merged.len() + dropped, pool.len());
        let (again, dropped_again) = merge_prefix_subsumed(&merged);
        assert_eq!(dropped_again, 0, "merging must be idempotent");
        assert_eq!(again.len(), merged.len());
        assert_eq!(
            generate_candidates_merged(&cat, std::slice::from_ref(&q)).len(),
            merged.len()
        );
    }

    #[test]
    fn all_candidates_are_hypothetical() {
        let (cat, q) = setup();
        let pool = generate_candidates(&cat, &[q]);
        for ix in pool.indexes() {
            assert_eq!(ix.kind(), pinum_catalog::IndexKind::Hypothetical);
        }
    }
}
